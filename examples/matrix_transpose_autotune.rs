//! The paper's headline use-case: Grover as an *auto-tuning step*.
//!
//! For each simulated device, run the Matrix Transpose benchmark with and
//! without local memory and pick the faster version — reproducing the
//! §II-C observation that the right choice flips between GPUs (keep local
//! memory) and cache-only CPUs (drop it).
//!
//! ```sh
//! cargo run --release --example matrix_transpose_autotune
//! ```

use grover::devsim::{Device, ALL_DEVICES};
use grover::kernels::{app_by_id, prepare_pair, run_prepared, Scale};

fn main() {
    let app = app_by_id("NVD-MT").expect("bundled benchmark");
    let pair = prepare_pair(&app, Scale::Test).expect("transformable");

    println!(
        "auto-tuning {} across all six devices of the paper\n",
        app.id
    );
    println!(
        "{:<9} {:>14} {:>14} {:>8}   chosen version",
        "device", "with-LM (cyc)", "no-LM (cyc)", "np"
    );
    for dev_name in ALL_DEVICES {
        let mut dev = Device::by_name(dev_name).unwrap();
        run_prepared(&pair.original, (app.prepare)(Scale::Test), &mut dev).unwrap();
        let with_lm = dev.finish().cycles;

        let mut dev = Device::by_name(dev_name).unwrap();
        run_prepared(&pair.transformed, (app.prepare)(Scale::Test), &mut dev).unwrap();
        let without = dev.finish().cycles;

        let np = with_lm as f64 / without.max(1) as f64;
        let choice = if np > 1.05 {
            "grover-transformed (no local memory)"
        } else if np < 0.95 {
            "original (keep local memory)"
        } else {
            "either (within 5%)"
        };
        println!("{dev_name:<9} {with_lm:>14} {without:>14} {np:>8.3}   {choice}");
    }
    println!("\nGPUs prefer the staged version; cache-only processors often do not —");
    println!("the unpredictability that motivates Grover (paper §II-C).");
}
