//! Paper §III-C / Fig. 4–5: the index expression trees and the linear
//! system behind the Matrix Transpose example, shown step by step using
//! the library's analysis API directly.
//!
//! ```sh
//! cargo run --example expression_trees
//! ```

use grover::frontend::{compile, BuildOptions};
use grover::ir::Inst;
use grover::pass::transform::split_dims;
use grover::pass::{detect, solve, ExprTree};

const MT: &str = r#"
__kernel void mt(__global float* in, __global float* out, int w) {
    __local float lm[16][16];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int wy = get_group_id(1);
    lm[ly][lx] = in[(wy * 16 + ly) * w + (wx * 16 + lx)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[(wx * 16 + lx) * w + (wy * 16 + ly)] = lm[lx][ly];
}
"#;

fn main() {
    let module = compile(MT, &BuildOptions::new()).expect("compile");
    let f = module.kernel("mt").expect("kernel");

    // S1 — candidate detection: find GL, LS, LL (paper §IV-A).
    let pattern = detect(f, grover::ir::LocalBufId(0)).expect("staging pattern");
    println!("detected the staging pattern:");
    println!("  GL = v{} (global load)", pattern.gl.0);
    println!("  LS = v{} (local store)", pattern.ls.0);
    println!(
        "  LL = {:?} (local loads)\n",
        pattern.lls.iter().map(|v| v.0).collect::<Vec<_>>()
    );

    // S1 — index expression trees (paper Fig. 4).
    let ls_tree = ExprTree::build(f, pattern.ls_index);
    println!("LS index expression tree (flattened 2-D index):");
    println!("  {}", ls_tree.display_root(f));
    let ls_flat = ls_tree.affine(f);
    println!("  as affine form: {ls_flat}");
    let dims = f.local_buf(pattern.buf).dims.clone();
    let ls_dims = split_dims(&ls_flat, &dims).expect("splits along [16][16]");
    println!(
        "  split along the tile dims: ({}, {})\n",
        ls_dims[0], ls_dims[1]
    );

    let ll = pattern.lls[0];
    let Some(Inst::Load { ptr }) = f.inst(ll) else {
        unreachable!()
    };
    let Some(Inst::Gep { index, .. }) = f.inst(*ptr) else {
        unreachable!()
    };
    let ll_tree = ExprTree::build(f, *index);
    println!("LL index expression tree:");
    println!("  {}", ll_tree.display_root(f));
    let ll_dims = split_dims(&ll_tree.affine(f), &dims).expect("splits");
    println!("  split: ({}, {})\n", ll_dims[0], ll_dims[1]);

    // S2 — create and solve the linear system (paper Eq. 3).
    let solution = solve(&ls_dims, &ll_dims).expect("unique solution");
    println!(
        "linear system solution (paper §III-C): {}",
        solution.display()
    );

    // S3 — the GL tree whose leaves get substituted (paper Fig. 5).
    let Some(Inst::Load { ptr }) = f.inst(pattern.gl) else {
        unreachable!()
    };
    let gl_tree = ExprTree::build(f, *ptr);
    println!("\nGL pointer expression tree (paper Fig. 5a):");
    println!("  {}", gl_tree.display_root(f));
    println!("\nafter substituting the solution, the new global load (Fig. 5b) reads:");
    println!(
        "  in[((wy*16 + lx) * w) + (wx*16 + ly)]   (see `grover transform` for the real output)"
    );

    // Sanity: a local access pattern still marks this kernel as staged.
    assert_eq!(solution.display(), "(lx, ly) = (ly, lx)");
}
