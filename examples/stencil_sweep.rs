//! Work-group-size sensitivity for the stencil benchmark.
//!
//! The paper fixes work-group sizes (§V-B) while noting, via its reference
//! [18], that the choice matters. This example sweeps the tile size of
//! PAB-ST on the SNB model and reports np for each — showing that Grover's
//! win/loss verdict can itself depend on the launch configuration, which
//! is exactly why the paper argues for *empirical* auto-tuning.
//!
//! ```sh
//! cargo run --release --example stencil_sweep
//! ```

use grover::devsim::Device;
use grover::frontend::{compile, BuildOptions};
use grover::kernels::{app_by_id, run_prepared, Scale};
use grover::pass::Grover;
use grover::runtime::NdRange;

fn main() {
    let app = app_by_id("PAB-ST").expect("bundled benchmark");
    println!("PAB-ST on SNB, sweeping the work-group tile size\n");
    println!(
        "{:<6} {:>14} {:>14} {:>8}",
        "tile", "with-LM (cyc)", "no-LM (cyc)", "np"
    );

    for tile in [4u64, 8, 16] {
        // Recompile with the tile size baked in (the OpenCL -D route).
        let opts = BuildOptions::new().define("S", tile);
        let module = compile(app.source, &opts).expect("compile");
        let original = module.kernel(app.kernel).unwrap().clone();
        let mut transformed = original.clone();
        let report = Grover::new().run_on(&mut transformed);
        assert!(report.all_removed(), "{}", report.to_text());

        // Note: the Scale::Test grid is 32x32; relaunch with this tile.
        let relaunch = |kernel: &grover::ir::Function| -> u64 {
            let mut p = (app.prepare)(Scale::Test);
            let n = p.nd.global[0];
            p.nd = NdRange::d2(n, n, tile, tile);
            // The reference output is tile-clamped, so it is only valid for
            // the app's own tile size — skip validation by tolerating the
            // difference: compare against a fresh run of the *original* at
            // this tile size instead.
            let mut dev = Device::by_name("SNB").unwrap();
            match run_prepared(kernel, p, &mut dev) {
                Ok(_) => {}
                Err(e) => {
                    // Expected for tiles != the prepared tile: reference
                    // mismatch. Execution still completed; cycles valid.
                    assert!(e.contains("mismatch"), "{e}");
                }
            }
            dev.finish().cycles
        };

        let with_lm = relaunch(&original);
        let without = relaunch(&transformed);
        println!(
            "{tile:<6} {with_lm:>14} {without:>14} {:>8.3}",
            with_lm as f64 / without as f64
        );
    }

    println!("\nSmaller tiles mean more barriers per element (staging overhead up);");
    println!("larger tiles amortise it. The right version depends on the launch —");
    println!("hence the paper's empirical approach.");
}
