//! Performance portability in practice: the N-body kernel stages tiles of
//! bodies in local memory — a classic GPU optimisation. This example runs
//! the paper's auto-tuning comparison on a GPU and a CPU model, and also
//! shows the trace-level statistics that explain the outcome (transactions
//! vs cache hits), reproducing the reasoning of §VI-C.
//!
//! ```sh
//! cargo run --release --example nbody_portability
//! ```

use grover::devsim::profiles::{fermi, snb};
use grover::devsim::{CpuModel, GpuModel};
use grover::kernels::{app_by_id, prepare_pair, run_prepared, Scale};
use grover::runtime::CountingSink;

fn main() {
    let app = app_by_id("NVD-NBody").expect("bundled benchmark");
    let pair = prepare_pair(&app, Scale::Test).expect("transformable");

    println!("{}\n", pair.report.to_text());

    // Raw operation counts first.
    for (name, kernel) in [
        ("with local memory", &pair.original),
        ("without", &pair.transformed),
    ] {
        let mut counts = CountingSink::default();
        run_prepared(kernel, (app.prepare)(Scale::Test), &mut counts).unwrap();
        println!(
            "{name:<20}: {:>8} global loads, {:>6} local loads, {:>5} local stores, {:>3} barriers",
            counts.global_loads, counts.local_loads, counts.local_stores, counts.barriers
        );
    }

    // GPU: staging pays because the tile is served from the on-chip SPM.
    println!("\n--- Fermi (GPU) ---");
    for (name, kernel) in [
        ("with local memory", &pair.original),
        ("without", &pair.transformed),
    ] {
        let mut gpu = GpuModel::new(fermi());
        run_prepared(kernel, (app.prepare)(Scale::Test), &mut gpu).unwrap();
        let r = gpu.finish();
        println!(
            "{name:<20}: {:>9} cycles  ({} global transactions, L2 hit rate {:.2})",
            r.cycles,
            r.transactions,
            r.l2.hit_rate()
        );
    }

    // CPU: the tile would have been in cache anyway; staging is overhead.
    println!("\n--- SNB (CPU) ---");
    for (name, kernel) in [
        ("with local memory", &pair.original),
        ("without", &pair.transformed),
    ] {
        let mut cpu = CpuModel::new(snb());
        run_prepared(kernel, (app.prepare)(Scale::Test), &mut cpu).unwrap();
        let r = cpu.finish();
        println!(
            "{name:<20}: {:>9} cycles  (L1 hit rate {:.3}, {} DRAM accesses)",
            r.cycles,
            r.l1.hit_rate(),
            r.dram_accesses
        );
    }

    println!("\nEvery work-item reads every body, so the CPU cache already");
    println!("captures the sharing the GPU needs local memory for (paper §VI-C).");
}
