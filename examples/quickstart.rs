//! Quickstart: compile the paper's motivating Matrix Transpose kernel
//! (Fig. 1a), run Grover to disable its local memory (Fig. 1b), execute
//! both versions and check they agree.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use grover::frontend::{compile, BuildOptions};
use grover::ir::printer::function_to_string;
use grover::pass::Grover;
use grover::runtime::{enqueue, ArgValue, Context, Limits, NdRange, NullSink};

const MT: &str = r#"
// Paper Fig. 1(a): local memory stages a tile so both the read and the
// write side stay coalesced on GPUs.
__kernel void mt(__global float* in, __global float* out, int w) {
    __local float lm[S][S];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int wy = get_group_id(1);
    lm[ly][lx] = in[(wy * S + ly) * w + (wx * S + lx)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[(wx * S + ly) * w + (wy * S + lx)] = lm[lx][ly];
}
"#;

fn main() {
    let opts = BuildOptions::new().define("S", 16);
    let module = compile(MT, &opts).expect("compile");
    let original = module.kernel("mt").expect("kernel").clone();

    // Run the Grover pass.
    let mut transformed = original.clone();
    let report = Grover::new().run_on(&mut transformed);
    println!("=== Grover report ===\n{}", report.to_text());
    assert!(report.all_removed());

    println!("=== transformed kernel (paper Fig. 1b) ===");
    println!("{}", function_to_string(&transformed));

    // Execute both versions on a 64x64 transpose and compare.
    let n = 64usize;
    let input: Vec<f32> = (0..n * n).map(|i| i as f32).collect();

    let run = |kernel: &grover::ir::Function| -> Vec<f32> {
        let mut ctx = Context::new();
        let bi = ctx.buffer_f32(&input);
        let bo = ctx.zeros_f32(n * n);
        enqueue(
            &mut ctx,
            kernel,
            &[
                ArgValue::Buffer(bi),
                ArgValue::Buffer(bo),
                ArgValue::I32(n as i32),
            ],
            &NdRange::d2(n as u64, n as u64, 16, 16),
            &mut NullSink,
            &Limits::default(),
        )
        .expect("run");
        ctx.read_f32(bo).to_vec()
    };

    let a = run(&original);
    let b = run(&transformed);
    assert_eq!(a, b, "the transformation changed the kernel's result!");
    // Spot-check the transpose itself.
    assert_eq!(a[5 * n + 3], input[3 * n + 5]);
    println!("both versions agree on a {n}x{n} transpose — transformation is correct.");
}
