//! The auto-tuning framework (`grover-tuner`) in action — the paper's
//! §VIII future-work item: per-platform kernel specialisation with cached
//! decisions.
//!
//! ```sh
//! cargo run --release --example autotune_api
//! ```

use grover::frontend::{compile, BuildOptions};
use grover::runtime::{ArgValue, Context, NdRange};
use grover::tuner::{Choice, Tuner, Workload};

const KERNEL: &str = r#"
__kernel void mt(__global float* in, __global float* out, int w) {
    __local float lm[16][16];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int wy = get_group_id(1);
    lm[ly][lx] = in[(wy * 16 + ly) * w + (wx * 16 + lx)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[(wx * 16 + ly) * w + (wy * 16 + lx)] = lm[lx][ly];
}
"#;

fn main() {
    let module = compile(KERNEL, &BuildOptions::new()).expect("compile");
    let kernel = module.kernel("mt").expect("kernel");

    let n = 128usize;
    let workload = Workload::new(move || {
        let mut ctx = Context::new();
        let input: Vec<f32> = (0..n * n).map(|i| i as f32).collect();
        let a = ctx.buffer_f32(&input);
        let b = ctx.zeros_f32(n * n);
        (
            ctx,
            vec![
                ArgValue::Buffer(a),
                ArgValue::Buffer(b),
                ArgValue::I32(n as i32),
            ],
            NdRange::d2(n as u64, n as u64, 16, 16),
        )
    });

    let mut tuner = Tuner::new();
    println!("tuning `mt` across platforms:\n");
    for (device, result) in tuner.tune_all(
        kernel,
        &["Fermi", "Kepler", "Tahiti", "SNB", "Nehalem", "MIC"],
        &workload,
    ) {
        match result {
            Ok(d) => {
                let verdict = match d.choice {
                    Choice::WithLocalMemory => "keep local memory",
                    Choice::WithoutLocalMemory => "disable local memory",
                    Choice::Similar => "either (within 5%)",
                };
                println!("  {device:<9} np = {:>6.3}  →  {verdict}", d.np);
            }
            Err(e) => println!("  {device:<9} failed: {e}"),
        }
    }
    println!("\ncached decisions: {}", tuner.cached_decisions());

    // Retrieve the recommended kernel for one platform.
    let best = tuner.best_kernel(kernel, "SNB", &workload).expect("tuned");
    println!(
        "SNB recommendation uses {} bytes of local memory",
        best.local_mem_bytes()
    );
}
