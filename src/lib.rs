//! # grover
//!
//! Facade crate for the **Grover** toolchain — a full reproduction of
//! *"Grover: Looking for Performance Improvement by Disabling Local Memory
//! Usage in OpenCL Kernels"* (Fang, Sips, Jääskeläinen, Varbanescu — ICPP
//! 2014), built from scratch in Rust.
//!
//! The toolchain mirrors the paper's pipeline (Fig. 9):
//!
//! ```text
//! OpenCL C ──frontend──▶ SSA IR ──grover pass──▶ IR without local memory
//!                          │                         │
//!                       runtime (NDRange interpreter + memory trace)
//!                          │                         │
//!                       devsim (SNB / Nehalem / MIC / Fermi / Kepler / Tahiti)
//!                          ▼                         ▼
//!                     cycles(with LM)  vs  cycles(without LM)  → np
//! ```
//!
//! * [`frontend`] — the OpenCL C subset compiler (Clang stand-in)
//! * [`ir`] — typed SSA IR with address spaces (LLVM/SPIR stand-in)
//! * [`pass`] — the Grover transformation itself
//! * [`runtime`] — OpenCL-like host API + interpreter (vendor-runtime stand-in)
//! * [`devsim`] — trace-driven device performance models (hardware stand-in)
//! * [`kernels`] — the 11 benchmark applications of Table I
//! * [`tuner`] — the auto-tuning framework of §VIII (future work, implemented)
//! * [`obs`] — telemetry: spans, events, launch metrics, JSONL export
//! * [`serve`] — persistent tuning-cache service with an HTTP compile/tune API
//! * [`predict`] — architecture-independent features + zero-launch predictive tuning
//!
//! ## Quickstart
//!
//! ```
//! use grover::frontend::{compile, BuildOptions};
//! use grover::pass::Grover;
//!
//! let mut module = compile(
//!     "__kernel void stage(__global float* in, __global float* out) {
//!          __local float lm[64];
//!          int lx = get_local_id(0);
//!          int gx = get_global_id(0);
//!          lm[lx] = in[gx];
//!          barrier(CLK_LOCAL_MEM_FENCE);
//!          out[gx] = lm[63 - lx];
//!      }",
//!     &BuildOptions::new(),
//! ).unwrap();
//!
//! let kernel = module.kernel_mut("stage").unwrap();
//! let report = Grover::new().run_on(kernel);
//! assert!(report.all_removed());
//! assert_eq!(kernel.local_mem_bytes(), 0);
//! ```

pub use grover_core as pass;
pub use grover_devsim as devsim;
pub use grover_frontend as frontend;
pub use grover_fuzz as fuzz;
pub use grover_ir as ir;
pub use grover_kernels as kernels;
pub use grover_obs as obs;
pub use grover_predict as predict;
pub use grover_runtime as runtime;
pub use grover_serve as serve;
pub use grover_tuner as tuner;

pub use grover_core::{Grover, GroverOptions, GroverReport};
pub use grover_frontend::{compile, BuildOptions};
pub use grover_runtime::{enqueue, ArgValue, Context, Limits, NdRange};
