//! Property-based tests (proptest) over the core machinery:
//!
//! * exact rational arithmetic obeys field axioms,
//! * affine algebra is a faithful homomorphism under evaluation,
//! * the linear-system solver inverts arbitrary unimodular staging maps,
//! * randomly generated staging kernels survive Grover semantically,
//! * the optimisation pipeline (GVN/LICM/fold) preserves kernel results,
//! * the cache model satisfies counting and inclusion-style invariants.

use proptest::prelude::*;

use grover::devsim::{Cache, CacheConfig};
use grover::frontend::{compile, BuildOptions};
use grover::pass::{solve, Affine, Atom, Grover, Rational};
use grover::runtime::{enqueue, ArgValue, Context, Limits, NdRange, NullSink};

// ---------------- rationals ----------------

fn rational() -> impl Strategy<Value = Rational> {
    (-1000i64..1000, 1i64..100).prop_map(|(n, d)| Rational::new(n, d))
}

proptest! {
    #[test]
    fn rational_add_commutes(a in rational(), b in rational()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn rational_mul_commutes(a in rational(), b in rational()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn rational_add_associates(a in rational(), b in rational(), c in rational()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn rational_distributes(a in rational(), b in rational(), c in rational()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn rational_mul_inverse(a in rational()) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(a * a.recip(), Rational::ONE);
    }

    #[test]
    fn rational_sub_add_roundtrip(a in rational(), b in rational()) {
        prop_assert_eq!(a - b + b, a);
    }

    #[test]
    fn rational_normalised(n in -1000i64..1000, d in 1i64..100) {
        let r = Rational::new(n, d);
        prop_assert!(r.denominator() > 0);
        let g = gcd(r.numerator().abs(), r.denominator());
        prop_assert!(g <= 1 || r.numerator() == 0);
    }
}

fn gcd(mut a: i64, mut b: i64) -> i64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

// ---------------- affine forms ----------------

fn small_affine() -> impl Strategy<Value = Affine> {
    (
        -8i64..8, // lx coeff
        -8i64..8, // ly coeff
        -64i64..64,
    )
        .prop_map(|(a, b, k)| {
            Affine::atom(Atom::LocalId(0))
                .scale(Rational::int(a))
                .add(&Affine::atom(Atom::LocalId(1)).scale(Rational::int(b)))
                .add(&Affine::constant(k))
        })
}

proptest! {
    #[test]
    fn affine_eval_is_additive(a in small_affine(), b in small_affine(),
                               lx in 0i64..16, ly in 0i64..16) {
        let v = |at: Atom| match at {
            Atom::LocalId(0) => lx,
            Atom::LocalId(1) => ly,
            _ => 0,
        };
        prop_assert_eq!(a.add(&b).eval(v), a.eval(v) + b.eval(v));
    }

    #[test]
    fn affine_eval_scales(a in small_affine(), s in -8i64..8,
                          lx in 0i64..16, ly in 0i64..16) {
        let v = |at: Atom| match at {
            Atom::LocalId(0) => lx,
            Atom::LocalId(1) => ly,
            _ => 0,
        };
        prop_assert_eq!(a.scale(Rational::int(s)).eval(v),
                        a.eval(v) * Rational::int(s));
    }

    #[test]
    fn split_by_stride_recomposes(a in small_affine(), stride in 1i64..64,
                                  lx in 0i64..16, ly in 0i64..16) {
        if let Some((hi, lo)) = a.split_by_stride(stride) {
            let v = |at: Atom| match at {
                Atom::LocalId(0) => lx,
                Atom::LocalId(1) => ly,
                _ => 0,
            };
            prop_assert_eq!(hi.eval(v) * Rational::int(stride) + lo.eval(v), a.eval(v));
        }
    }

    #[test]
    fn substitution_matches_eval(a in small_affine(), rx in -8i64..8, rk in -8i64..8,
                                 ly in 0i64..16) {
        // Substitute lx := rx*ly + rk and compare against direct evaluation.
        let rep = Affine::atom(Atom::LocalId(1))
            .scale(Rational::int(rx))
            .add(&Affine::constant(rk));
        let sub = a.substitute(|at| (at == Atom::LocalId(0)).then(|| rep.clone()));
        let v_orig = |at: Atom| match at {
            Atom::LocalId(0) => rx * ly + rk,
            Atom::LocalId(1) => ly,
            _ => 0,
        };
        let v_sub = |at: Atom| match at {
            Atom::LocalId(1) => ly,
            _ => 0,
        };
        prop_assert_eq!(sub.eval(v_sub), a.eval(v_orig));
    }
}

// ---------------- solver round-trip ----------------

proptest! {
    /// For any unimodular 2x2 integer map M and offset d, solving
    /// `M·l' + d = rhs` and substituting the solution back must reproduce
    /// the right-hand side exactly.
    #[test]
    fn solver_inverts_unimodular_maps(
        a in -3i64..4, b in -3i64..4, k in -3i64..4,
        d0 in -8i64..8, d1 in -8i64..8,
    ) {
        // Unimodular construction: [[1, a],[b, 1+ab]] has determinant 1;
        // scale rows by ±1 via k parity for variety.
        let m = [[1, a], [b, 1 + a * b]];
        let sign = if k % 2 == 0 { 1 } else { -1 };
        let m = [[m[0][0] * sign, m[0][1] * sign], m[1]];
        let lx = Affine::atom(Atom::LocalId(0));
        let ly = Affine::atom(Atom::LocalId(1));
        let ls0 = lx.scale(Rational::int(m[0][0]))
            .add(&ly.scale(Rational::int(m[0][1])))
            .add(&Affine::constant(d0));
        let ls1 = lx.scale(Rational::int(m[1][0]))
            .add(&ly.scale(Rational::int(m[1][1])))
            .add(&Affine::constant(d1));
        // Symbolic RHS: two opaque atoms (the loader's index values).
        let r0 = Affine::atom(Atom::Value(grover::ir::ValueId(9000)));
        let r1 = Affine::atom(Atom::Value(grover::ir::ValueId(9001)));
        let sol = solve(&[ls0.clone(), ls1.clone()], &[r0.clone(), r1.clone()])
            .expect("unimodular systems always solve");
        // Substitute back: ls_i(sol) must equal r_i.
        let back0 = ls0.substitute(|at| match at {
            Atom::LocalId(d) => sol.for_dim(d).cloned(),
            _ => None,
        });
        let back1 = ls1.substitute(|at| match at {
            Atom::LocalId(d) => sol.for_dim(d).cloned(),
            _ => None,
        });
        prop_assert_eq!(back0, r0);
        prop_assert_eq!(back1, r1);
    }

    /// Singular maps must be rejected, never "solved".
    #[test]
    fn solver_rejects_singular_maps(a in -3i64..4, b in -3i64..4, s in -3i64..4) {
        // Rows are scalar multiples: rank <= 1 with two unknowns.
        let lx = Affine::atom(Atom::LocalId(0));
        let ly = Affine::atom(Atom::LocalId(1));
        let row = lx.scale(Rational::int(a)).add(&ly.scale(Rational::int(b)));
        let row2 = row.scale(Rational::int(s));
        let r0 = Affine::atom(Atom::Value(grover::ir::ValueId(9000)));
        let r1 = Affine::atom(Atom::Value(grover::ir::ValueId(9001)));
        prop_assume!(a != 0 || b != 0);
        let out = solve(&[row, row2], &[r0, r1]);
        prop_assert!(out.is_err());
    }
}

// ---------------- randomly generated staging kernels ----------------

/// Generate a staging kernel whose LL reads a bijective remapping of the
/// written window (`LS` stores at `(ly+oy, lx+ox)`), transform it with
/// Grover, run both versions and compare. Variants cover identity, swap,
/// and the two reflections — all affine, all invertible, all staying
/// inside the staged region (the pattern's own precondition).
fn staging_roundtrip(variant: u8, ox: i64, oy: i64) {
    const S: i64 = 8;
    let (py, px) = match variant % 4 {
        0 => ("ly".to_string(), "lx".to_string()),
        1 => ("lx".to_string(), "ly".to_string()),
        2 => (format!("{} - ly", S - 1), format!("{} - lx", S - 1)),
        _ => (format!("{} - lx", S - 1), format!("{} - ly", S - 1)),
    };
    let src = format!(
        "__kernel void gen(__global float* in, __global float* out, int w) {{
             __local float lm[{sx}][{sx}];
             int lx = get_local_id(0);
             int ly = get_local_id(1);
             int gx = get_global_id(0);
             int gy = get_global_id(1);
             lm[ly + {oy}][lx + {ox}] = in[gy * w + gx];
             barrier(CLK_LOCAL_MEM_FENCE);
             out[gy * w + gx] = lm[({py}) + {oy}][({px}) + {ox}];
         }}",
        sx = S + 4, // room for offsets
    );
    let module = compile(&src, &BuildOptions::new()).expect("compile");
    let original = module.kernel("gen").unwrap().clone();
    let mut transformed = original.clone();
    let report = Grover::new().run_on(&mut transformed);
    assert!(report.all_removed(), "{}\n{src}", report.to_text());

    let n = 16u64;
    let input: Vec<f32> = (0..n * n).map(|i| (i as f32).sin()).collect();
    let run = |kernel: &grover::ir::Function| -> Vec<f32> {
        let mut ctx = Context::new();
        let bi = ctx.buffer_f32(&input);
        let bo = ctx.zeros_f32((n * n) as usize);
        enqueue(
            &mut ctx,
            kernel,
            &[ArgValue::Buffer(bi), ArgValue::Buffer(bo), ArgValue::I32(n as i32)],
            &NdRange::d2(n, n, S as u64, S as u64),
            &mut NullSink,
            &Limits::default(),
        )
        .unwrap_or_else(|e| panic!("{e}\n{src}"));
        ctx.read_f32(bo).to_vec()
    };
    assert_eq!(run(&original), run(&transformed), "{src}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn random_staging_kernels_roundtrip(variant in 0u8..4,
                                        ox in 0i64..4, oy in 0i64..4) {
        staging_roundtrip(variant, ox, oy);
    }
}

// ---------------- optimisation pipeline preserves semantics ----------------

fn arith_kernel(c1: i32, c2: i32, c3: i32, use_loop: bool) -> String {
    let body = if use_loop {
        format!(
            "float acc = 0.0f;
             for (int i = 0; i < 8; i++) {{
                 acc += in[(gx + i) % n] * {c1}.0f + {c2}.0f;
             }}
             out[gx] = acc * {c3}.0f;"
        )
    } else {
        format!(
            "float t = in[gx] * {c1}.0f + {c2}.0f;
             float u = in[gx] * {c1}.0f + {c2}.0f;
             out[gx] = (t + u) * {c3}.0f;"
        )
    };
    format!(
        "__kernel void a(__global float* in, __global float* out, int n) {{
             int gx = get_global_id(0);
             {body}
         }}"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn optimisation_pipeline_preserves_results(
        c1 in -4i32..5, c2 in -4i32..5, c3 in -4i32..5, use_loop in any::<bool>()
    ) {
        let src = arith_kernel(c1, c2, c3, use_loop);
        let module = compile(&src, &BuildOptions::new()).unwrap();
        let plain = module.kernel("a").unwrap().clone();
        let mut opt = plain.clone();
        grover::ir::passes::PassManager::optimize_pipeline().run_to_fixpoint(&mut opt, 8);
        grover::ir::verify(&opt).unwrap();

        let input: Vec<f32> = (0..32).map(|i| (i as f32) * 0.25 - 3.0).collect();
        let run = |kernel: &grover::ir::Function| -> Vec<f32> {
            let mut ctx = Context::new();
            let bi = ctx.buffer_f32(&input);
            let bo = ctx.zeros_f32(32);
            enqueue(
                &mut ctx,
                kernel,
                &[ArgValue::Buffer(bi), ArgValue::Buffer(bo), ArgValue::I32(32)],
                &NdRange::d1(32, 8),
                &mut NullSink,
                &Limits::default(),
            )
            .unwrap();
            ctx.read_f32(bo).to_vec()
        };
        prop_assert_eq!(run(&plain), run(&opt));
    }
}

// ---------------- cache invariants ----------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn cache_counts_are_consistent(addrs in prop::collection::vec(0u64..4096, 1..200)) {
        let mut c = Cache::new(CacheConfig::new(512, 32, 2, 1));
        for (i, &a) in addrs.iter().enumerate() {
            c.access(a, i % 3 == 0);
        }
        prop_assert_eq!(c.stats.accesses(), addrs.len() as u64);
        prop_assert!(c.stats.writebacks <= c.stats.evictions);
        prop_assert!(c.stats.hit_rate() >= 0.0 && c.stats.hit_rate() <= 1.0);
    }

    /// A cache never misses on an address accessed within the last
    /// `ways` *distinct same-set lines* — the LRU stack property.
    #[test]
    fn immediate_reaccess_always_hits(addrs in prop::collection::vec(0u64..65536, 1..100)) {
        let mut c = Cache::new(CacheConfig::new(4096, 64, 4, 1));
        for &a in &addrs {
            c.access(a, false);
            let hits_before = c.stats.hits;
            c.access(a, false);
            prop_assert_eq!(c.stats.hits, hits_before + 1);
        }
    }

    /// Working sets no larger than one way-set always fit.
    #[test]
    fn small_working_set_fully_cached(start in 0u64..1024) {
        // 4 KiB / 64 B lines / 4 ways = 16 sets; 16 consecutive lines span
        // all sets exactly once.
        let mut c = Cache::new(CacheConfig::new(4096, 64, 4, 1));
        let base = start * 64;
        for rep in 0..4 {
            for i in 0..16u64 {
                c.access(base + i * 64, false);
            }
            let _ = rep;
        }
        prop_assert_eq!(c.stats.misses, 16);
        prop_assert_eq!(c.stats.hits, 48);
    }
}

// ---------------- textual IR round-trip ----------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// print ∘ parse is a fixpoint and preserves execution results for
    /// generated arithmetic kernels.
    #[test]
    fn text_ir_roundtrip_preserves_semantics(
        c1 in -4i32..5, c2 in -4i32..5, c3 in -4i32..5, use_loop in any::<bool>()
    ) {
        let src = arith_kernel(c1, c2, c3, use_loop);
        let module = compile(&src, &BuildOptions::new()).unwrap();
        let plain = module.kernel("a").unwrap().clone();
        let text1 = grover::ir::printer::function_to_string(&plain);
        let parsed = grover::ir::parse_function(&text1).unwrap();
        grover::ir::verify(&parsed).unwrap();
        let text2 = grover::ir::printer::function_to_string(&parsed);
        let parsed2 = grover::ir::parse_function(&text2).unwrap();
        let text3 = grover::ir::printer::function_to_string(&parsed2);
        prop_assert_eq!(&text2, &text3, "fixpoint");

        let input: Vec<f32> = (0..32).map(|i| (i as f32) * 0.5 - 8.0).collect();
        let run = |kernel: &grover::ir::Function| -> Vec<f32> {
            let mut ctx = Context::new();
            let bi = ctx.buffer_f32(&input);
            let bo = ctx.zeros_f32(32);
            enqueue(
                &mut ctx,
                kernel,
                &[ArgValue::Buffer(bi), ArgValue::Buffer(bo), ArgValue::I32(32)],
                &NdRange::d1(32, 8),
                &mut NullSink,
                &Limits::default(),
            )
            .unwrap();
            ctx.read_f32(bo).to_vec()
        };
        prop_assert_eq!(run(&plain), run(&parsed));
    }
}

// ---------------- interpreter determinism ----------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn interpreter_is_deterministic(seed in 0u64..1000) {
        let src = "__kernel void d(__global float* a, __global float* b) {
            __local float lm[8];
            int lx = get_local_id(0);
            int gx = get_global_id(0);
            lm[lx] = a[gx];
            barrier(CLK_LOCAL_MEM_FENCE);
            b[gx] = lm[7 - lx] + lm[lx];
        }";
        let module = compile(src, &BuildOptions::new()).unwrap();
        let k = module.kernel("d").unwrap();
        let input: Vec<f32> = (0..32).map(|i| ((i as u64 * seed) % 97) as f32).collect();
        let mut outs = Vec::new();
        for _ in 0..2 {
            let mut ctx = Context::new();
            let ba = ctx.buffer_f32(&input);
            let bb = ctx.zeros_f32(32);
            enqueue(&mut ctx, k, &[ArgValue::Buffer(ba), ArgValue::Buffer(bb)],
                    &NdRange::d1(32, 8), &mut NullSink, &Limits::default()).unwrap();
            outs.push(ctx.read_f32(bb).to_vec());
        }
        prop_assert_eq!(&outs[0], &outs[1]);
    }
}
