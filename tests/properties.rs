//! Property-style tests over the core machinery, driven by a deterministic
//! in-repo generator (no external PRNG/proptest dependency — the build must
//! stay hermetic):
//!
//! * exact rational arithmetic obeys field axioms,
//! * affine algebra is a faithful homomorphism under evaluation,
//! * the linear-system solver inverts arbitrary unimodular staging maps,
//! * randomly generated staging kernels survive Grover semantically,
//! * the optimisation pipeline (GVN/LICM/fold) preserves kernel results,
//! * the cache model satisfies counting and inclusion-style invariants.

use grover::devsim::{Cache, CacheConfig};
use grover::frontend::{compile, BuildOptions};
use grover::pass::{solve, Affine, Atom, Grover, Rational};
use grover::runtime::{enqueue, ArgValue, Context, Limits, NdRange, NullSink};

// The SplitMix64 generator lives in the fuzzing crate (`grover::fuzz::Gen`)
// so the property tests and the differential fuzzer share one seeded
// randomness source; domain-specific draws stay local.
use grover::fuzz::Gen;

fn rational(g: &mut Gen) -> Rational {
    Rational::new(g.int(-1000, 1000), g.int(1, 100))
}

fn small_affine(g: &mut Gen) -> Affine {
    let (a, b, k) = (g.int(-8, 8), g.int(-8, 8), g.int(-64, 64));
    Affine::atom(Atom::LocalId(0))
        .scale(Rational::int(a))
        .add(&Affine::atom(Atom::LocalId(1)).scale(Rational::int(b)))
        .add(&Affine::constant(k))
}

const CASES: usize = 256;

// ---------------- rationals ----------------

#[test]
fn rational_field_axioms() {
    let mut g = Gen::new(1);
    for _ in 0..CASES {
        let (a, b, c) = (rational(&mut g), rational(&mut g), rational(&mut g));
        assert_eq!(a + b, b + a, "addition commutes");
        assert_eq!(a * b, b * a, "multiplication commutes");
        assert_eq!((a + b) + c, a + (b + c), "addition associates");
        assert_eq!(a * (b + c), a * b + a * c, "distributivity");
        assert_eq!(a - b + b, a, "sub/add round-trip");
        if !a.is_zero() {
            assert_eq!(a * a.recip(), Rational::ONE, "multiplicative inverse");
        }
    }
}

#[test]
fn rational_normalised() {
    let mut g = Gen::new(2);
    for _ in 0..CASES {
        let r = Rational::new(g.int(-1000, 1000), g.int(1, 100));
        assert!(r.denominator() > 0);
        let gg = gcd(r.numerator().abs(), r.denominator());
        assert!(gg <= 1 || r.numerator() == 0);
    }
}

fn gcd(mut a: i64, mut b: i64) -> i64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

// ---------------- affine forms ----------------

#[test]
fn affine_eval_is_additive_and_scales() {
    let mut g = Gen::new(3);
    for _ in 0..CASES {
        let (a, b) = (small_affine(&mut g), small_affine(&mut g));
        let (lx, ly, s) = (g.int(0, 16), g.int(0, 16), g.int(-8, 8));
        let v = |at: Atom| match at {
            Atom::LocalId(0) => lx,
            Atom::LocalId(1) => ly,
            _ => 0,
        };
        assert_eq!(a.add(&b).eval(v), a.eval(v) + b.eval(v));
        assert_eq!(
            a.scale(Rational::int(s)).eval(v),
            a.eval(v) * Rational::int(s)
        );
    }
}

#[test]
fn split_by_stride_recomposes() {
    let mut g = Gen::new(4);
    for _ in 0..CASES {
        let a = small_affine(&mut g);
        let stride = g.int(1, 64);
        let (lx, ly) = (g.int(0, 16), g.int(0, 16));
        if let Some((hi, lo)) = a.split_by_stride(stride) {
            let v = |at: Atom| match at {
                Atom::LocalId(0) => lx,
                Atom::LocalId(1) => ly,
                _ => 0,
            };
            assert_eq!(hi.eval(v) * Rational::int(stride) + lo.eval(v), a.eval(v));
        }
    }
}

#[test]
fn substitution_matches_eval() {
    let mut g = Gen::new(5);
    for _ in 0..CASES {
        let a = small_affine(&mut g);
        let (rx, rk, ly) = (g.int(-8, 8), g.int(-8, 8), g.int(0, 16));
        // Substitute lx := rx*ly + rk and compare against direct evaluation.
        let rep = Affine::atom(Atom::LocalId(1))
            .scale(Rational::int(rx))
            .add(&Affine::constant(rk));
        let sub = a.substitute(|at| (at == Atom::LocalId(0)).then(|| rep.clone()));
        let v_orig = |at: Atom| match at {
            Atom::LocalId(0) => rx * ly + rk,
            Atom::LocalId(1) => ly,
            _ => 0,
        };
        let v_sub = |at: Atom| match at {
            Atom::LocalId(1) => ly,
            _ => 0,
        };
        assert_eq!(sub.eval(v_sub), a.eval(v_orig));
    }
}

// ---------------- solver round-trip ----------------

/// For any unimodular 2x2 integer map M and offset d, solving
/// `M·l' + d = rhs` and substituting the solution back must reproduce
/// the right-hand side exactly.
#[test]
fn solver_inverts_unimodular_maps() {
    let mut g = Gen::new(6);
    for _ in 0..CASES {
        let (a, b, k) = (g.int(-3, 4), g.int(-3, 4), g.int(-3, 4));
        let (d0, d1) = (g.int(-8, 8), g.int(-8, 8));
        // Unimodular construction: [[1, a],[b, 1+ab]] has determinant 1;
        // scale rows by ±1 via k parity for variety.
        let m = [[1, a], [b, 1 + a * b]];
        let sign = if k % 2 == 0 { 1 } else { -1 };
        let m = [[m[0][0] * sign, m[0][1] * sign], m[1]];
        let lx = Affine::atom(Atom::LocalId(0));
        let ly = Affine::atom(Atom::LocalId(1));
        let ls0 = lx
            .scale(Rational::int(m[0][0]))
            .add(&ly.scale(Rational::int(m[0][1])))
            .add(&Affine::constant(d0));
        let ls1 = lx
            .scale(Rational::int(m[1][0]))
            .add(&ly.scale(Rational::int(m[1][1])))
            .add(&Affine::constant(d1));
        // Symbolic RHS: two opaque atoms (the loader's index values).
        let r0 = Affine::atom(Atom::Value(grover::ir::ValueId(9000)));
        let r1 = Affine::atom(Atom::Value(grover::ir::ValueId(9001)));
        let sol = solve(&[ls0.clone(), ls1.clone()], &[r0.clone(), r1.clone()])
            .expect("unimodular systems always solve");
        // Substitute back: ls_i(sol) must equal r_i.
        let back0 = ls0.substitute(|at| match at {
            Atom::LocalId(d) => sol.for_dim(d).cloned(),
            _ => None,
        });
        let back1 = ls1.substitute(|at| match at {
            Atom::LocalId(d) => sol.for_dim(d).cloned(),
            _ => None,
        });
        assert_eq!(back0, r0);
        assert_eq!(back1, r1);
    }
}

/// Singular maps must be rejected, never "solved".
#[test]
fn solver_rejects_singular_maps() {
    let mut g = Gen::new(7);
    for _ in 0..CASES {
        let (a, b, s) = (g.int(-3, 4), g.int(-3, 4), g.int(-3, 4));
        if a == 0 && b == 0 {
            continue;
        }
        // Rows are scalar multiples: rank <= 1 with two unknowns.
        let lx = Affine::atom(Atom::LocalId(0));
        let ly = Affine::atom(Atom::LocalId(1));
        let row = lx.scale(Rational::int(a)).add(&ly.scale(Rational::int(b)));
        let row2 = row.scale(Rational::int(s));
        let r0 = Affine::atom(Atom::Value(grover::ir::ValueId(9000)));
        let r1 = Affine::atom(Atom::Value(grover::ir::ValueId(9001)));
        assert!(solve(&[row, row2], &[r0, r1]).is_err());
    }
}

// ---------------- randomly generated staging kernels ----------------

/// Generate a staging kernel whose LL reads a bijective remapping of the
/// written window (`LS` stores at `(ly+oy, lx+ox)`), transform it with
/// Grover, run both versions and compare. Variants cover identity, swap,
/// and the two reflections — all affine, all invertible, all staying
/// inside the staged region (the pattern's own precondition).
fn staging_roundtrip(variant: u8, ox: i64, oy: i64) {
    const S: i64 = 8;
    let (py, px) = match variant % 4 {
        0 => ("ly".to_string(), "lx".to_string()),
        1 => ("lx".to_string(), "ly".to_string()),
        2 => (format!("{} - ly", S - 1), format!("{} - lx", S - 1)),
        _ => (format!("{} - lx", S - 1), format!("{} - ly", S - 1)),
    };
    let src = format!(
        "__kernel void gen(__global float* in, __global float* out, int w) {{
             __local float lm[{sx}][{sx}];
             int lx = get_local_id(0);
             int ly = get_local_id(1);
             int gx = get_global_id(0);
             int gy = get_global_id(1);
             lm[ly + {oy}][lx + {ox}] = in[gy * w + gx];
             barrier(CLK_LOCAL_MEM_FENCE);
             out[gy * w + gx] = lm[({py}) + {oy}][({px}) + {ox}];
         }}",
        sx = S + 4, // room for offsets
    );
    let module = compile(&src, &BuildOptions::new()).expect("compile");
    let original = module.kernel("gen").unwrap().clone();
    let mut transformed = original.clone();
    let report = Grover::new().run_on(&mut transformed);
    assert!(report.all_removed(), "{}\n{src}", report.to_text());

    let n = 16u64;
    let input: Vec<f32> = (0..n * n).map(|i| (i as f32).sin()).collect();
    let run = |kernel: &grover::ir::Function| -> Vec<f32> {
        let mut ctx = Context::new();
        let bi = ctx.buffer_f32(&input);
        let bo = ctx.zeros_f32((n * n) as usize);
        enqueue(
            &mut ctx,
            kernel,
            &[
                ArgValue::Buffer(bi),
                ArgValue::Buffer(bo),
                ArgValue::I32(n as i32),
            ],
            &NdRange::d2(n, n, S as u64, S as u64),
            &mut NullSink,
            &Limits::default(),
        )
        .unwrap_or_else(|e| panic!("{e}\n{src}"));
        ctx.read_f32(bo).to_vec()
    };
    assert_eq!(run(&original), run(&transformed), "{src}");
}

#[test]
fn random_staging_kernels_roundtrip() {
    let mut g = Gen::new(8);
    for _ in 0..24 {
        staging_roundtrip(g.int(0, 4) as u8, g.int(0, 4), g.int(0, 4));
    }
}

// ---------------- optimisation pipeline preserves semantics ----------------

fn arith_kernel(c1: i32, c2: i32, c3: i32, use_loop: bool) -> String {
    let body = if use_loop {
        format!(
            "float acc = 0.0f;
             for (int i = 0; i < 8; i++) {{
                 acc += in[(gx + i) % n] * {c1}.0f + {c2}.0f;
             }}
             out[gx] = acc * {c3}.0f;"
        )
    } else {
        format!(
            "float t = in[gx] * {c1}.0f + {c2}.0f;
             float u = in[gx] * {c1}.0f + {c2}.0f;
             out[gx] = (t + u) * {c3}.0f;"
        )
    };
    format!(
        "__kernel void a(__global float* in, __global float* out, int n) {{
             int gx = get_global_id(0);
             {body}
         }}"
    )
}

#[test]
fn optimisation_pipeline_preserves_results() {
    let mut g = Gen::new(9);
    for _ in 0..32 {
        let (c1, c2, c3) = (
            g.int(-4, 5) as i32,
            g.int(-4, 5) as i32,
            g.int(-4, 5) as i32,
        );
        let use_loop = g.int(0, 2) == 1;
        let src = arith_kernel(c1, c2, c3, use_loop);
        let module = compile(&src, &BuildOptions::new()).unwrap();
        let plain = module.kernel("a").unwrap().clone();
        let mut opt = plain.clone();
        grover::ir::passes::PassManager::optimize_pipeline().run_to_fixpoint(&mut opt, 8);
        grover::ir::verify(&opt).unwrap();

        let input: Vec<f32> = (0..32).map(|i| (i as f32) * 0.25 - 3.0).collect();
        let run = |kernel: &grover::ir::Function| -> Vec<f32> {
            let mut ctx = Context::new();
            let bi = ctx.buffer_f32(&input);
            let bo = ctx.zeros_f32(32);
            enqueue(
                &mut ctx,
                kernel,
                &[
                    ArgValue::Buffer(bi),
                    ArgValue::Buffer(bo),
                    ArgValue::I32(32),
                ],
                &NdRange::d1(32, 8),
                &mut NullSink,
                &Limits::default(),
            )
            .unwrap();
            ctx.read_f32(bo).to_vec()
        };
        assert_eq!(run(&plain), run(&opt), "{src}");
    }
}

// ---------------- cache invariants ----------------

#[test]
fn cache_counts_are_consistent() {
    let mut g = Gen::new(10);
    for _ in 0..64 {
        let n = g.int(1, 200) as usize;
        let addrs: Vec<u64> = (0..n).map(|_| g.int(0, 4096) as u64).collect();
        let mut c = Cache::new(CacheConfig::new(512, 32, 2, 1));
        for (i, &a) in addrs.iter().enumerate() {
            c.access(a, i % 3 == 0);
        }
        assert_eq!(c.stats.accesses(), addrs.len() as u64);
        assert!(c.stats.writebacks <= c.stats.evictions);
        assert!(c.stats.hit_rate() >= 0.0 && c.stats.hit_rate() <= 1.0);
    }
}

/// A cache never misses on an address accessed within the last
/// `ways` *distinct same-set lines* — the LRU stack property.
#[test]
fn immediate_reaccess_always_hits() {
    let mut g = Gen::new(11);
    for _ in 0..64 {
        let n = g.int(1, 100) as usize;
        let addrs: Vec<u64> = (0..n).map(|_| g.int(0, 65536) as u64).collect();
        let mut c = Cache::new(CacheConfig::new(4096, 64, 4, 1));
        for &a in &addrs {
            c.access(a, false);
            let hits_before = c.stats.hits;
            c.access(a, false);
            assert_eq!(c.stats.hits, hits_before + 1);
        }
    }
}

/// Working sets no larger than one way-set always fit.
#[test]
fn small_working_set_fully_cached() {
    let mut g = Gen::new(12);
    for _ in 0..64 {
        let start = g.int(0, 1024) as u64;
        // 4 KiB / 64 B lines / 4 ways = 16 sets; 16 consecutive lines span
        // all sets exactly once.
        let mut c = Cache::new(CacheConfig::new(4096, 64, 4, 1));
        let base = start * 64;
        for _rep in 0..4 {
            for i in 0..16u64 {
                c.access(base + i * 64, false);
            }
        }
        assert_eq!(c.stats.misses, 16);
        assert_eq!(c.stats.hits, 48);
    }
}

// ---------------- textual IR round-trip ----------------

/// print ∘ parse is a fixpoint and preserves execution results for
/// generated arithmetic kernels.
#[test]
fn text_ir_roundtrip_preserves_semantics() {
    let mut g = Gen::new(13);
    for _ in 0..24 {
        let (c1, c2, c3) = (
            g.int(-4, 5) as i32,
            g.int(-4, 5) as i32,
            g.int(-4, 5) as i32,
        );
        let use_loop = g.int(0, 2) == 1;
        let src = arith_kernel(c1, c2, c3, use_loop);
        let module = compile(&src, &BuildOptions::new()).unwrap();
        let plain = module.kernel("a").unwrap().clone();
        let text1 = grover::ir::printer::function_to_string(&plain);
        let parsed = grover::ir::parse_function(&text1).unwrap();
        grover::ir::verify(&parsed).unwrap();
        let text2 = grover::ir::printer::function_to_string(&parsed);
        let parsed2 = grover::ir::parse_function(&text2).unwrap();
        let text3 = grover::ir::printer::function_to_string(&parsed2);
        assert_eq!(&text2, &text3, "fixpoint");

        let input: Vec<f32> = (0..32).map(|i| (i as f32) * 0.5 - 8.0).collect();
        let run = |kernel: &grover::ir::Function| -> Vec<f32> {
            let mut ctx = Context::new();
            let bi = ctx.buffer_f32(&input);
            let bo = ctx.zeros_f32(32);
            enqueue(
                &mut ctx,
                kernel,
                &[
                    ArgValue::Buffer(bi),
                    ArgValue::Buffer(bo),
                    ArgValue::I32(32),
                ],
                &NdRange::d1(32, 8),
                &mut NullSink,
                &Limits::default(),
            )
            .unwrap();
            ctx.read_f32(bo).to_vec()
        };
        assert_eq!(run(&plain), run(&parsed));
    }
}

// ---------------- interpreter determinism ----------------

#[test]
fn interpreter_is_deterministic() {
    let mut g = Gen::new(14);
    for _ in 0..8 {
        let seed = g.int(0, 1000) as u64;
        let src = "__kernel void d(__global float* a, __global float* b) {
            __local float lm[8];
            int lx = get_local_id(0);
            int gx = get_global_id(0);
            lm[lx] = a[gx];
            barrier(CLK_LOCAL_MEM_FENCE);
            b[gx] = lm[7 - lx] + lm[lx];
        }";
        let module = compile(src, &BuildOptions::new()).unwrap();
        let k = module.kernel("d").unwrap();
        let input: Vec<f32> = (0..32).map(|i| ((i as u64 * seed) % 97) as f32).collect();
        let mut outs = Vec::new();
        for _ in 0..2 {
            let mut ctx = Context::new();
            let ba = ctx.buffer_f32(&input);
            let bb = ctx.zeros_f32(32);
            enqueue(
                &mut ctx,
                k,
                &[ArgValue::Buffer(ba), ArgValue::Buffer(bb)],
                &NdRange::d1(32, 8),
                &mut NullSink,
                &Limits::default(),
            )
            .unwrap();
            outs.push(ctx.read_f32(bb).to_vec());
        }
        assert_eq!(&outs[0], &outs[1]);
    }
}
