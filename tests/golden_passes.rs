//! Per-pass golden IR snapshots of the composable pipeline over every
//! bundled app.
//!
//! Where `tests/golden.rs` snapshots the whole transform, this suite
//! snapshots the IR after every *prefix* of the tuned pipeline
//! (`local-removal`, then `barrier-elim`, then `index-simplify`, then
//! `remap`), one file per pass under `tests/golden/passes/<app>/` — so a
//! change to a single pass diffs exactly the files of the passes it
//! affects, with the earlier prefixes pinning where the change begins.
//!
//! `default.ir` snapshots the default sequence and doubles as the
//! refactor-is-a-no-op gate: it must byte-match the `==== transformed ====`
//! section of the monolithic snapshot in `tests/golden/<app>.txt`.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! GROVER_BLESS=1 cargo test -q --test golden_passes
//! ```

use grover::frontend::compile;
use grover::ir::printer::function_to_string;
use grover::ir::Function;
use grover::kernels::{all_apps, extension_apps, App, Scale};
use grover::pass::{apply_sequence, pass_fingerprint, GroverOptions, PassId, Sequence};
use std::path::PathBuf;

fn passes_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("passes")
}

fn monolithic_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn original_kernel(app: &App) -> Function {
    let opts = (app.options)(Scale::Test);
    let module = compile(app.source, &opts).unwrap_or_else(|e| panic!("{}: {e}", app.id));
    module
        .kernel(app.kernel)
        .unwrap_or_else(|| panic!("{}: kernel {} missing", app.id, app.kernel))
        .clone()
}

fn grover_options(app: &App) -> GroverOptions {
    GroverOptions {
        buffers: app
            .disable
            .map(|names| names.iter().map(|s| s.to_string()).collect()),
        keep_barriers: false,
    }
}

/// IR after running the given sequence prefix on a fresh copy of the
/// app's kernel. Passes are deterministic, so the prefix run equals the
/// cumulative state of a single full-pipeline run after that pass.
fn ir_after(app: &App, original: &Function, ids: &[PassId]) -> String {
    let seq = Sequence::new(ids.to_vec()).expect("prefixes of the tuned pipeline are legal");
    let mut f = original.clone();
    apply_sequence(&mut f, &seq, &grover_options(app));
    format!(
        "pass: {}\nsequence: {}\n{}",
        pass_fingerprint(),
        seq.spec(),
        function_to_string(&f)
    )
}

/// The tuned pipeline's pass order — each prefix is one snapshot file.
const ORDER: [PassId; 4] = [
    PassId::LocalRemoval,
    PassId::BarrierElim,
    PassId::IndexSimplify,
    PassId::Remap,
];

#[test]
fn per_pass_ir_matches_golden_snapshots() {
    let bless = std::env::var_os("GROVER_BLESS").is_some();
    let mut apps = all_apps();
    apps.extend(extension_apps());
    assert!(apps.len() >= 12, "expected all bundled apps");
    let mut stale = Vec::new();
    for app in &apps {
        let original = original_kernel(app);
        let dir = passes_dir().join(app.id);
        let mut files: Vec<(String, String)> = (1..=ORDER.len())
            .map(|k| {
                let name = format!("{}.ir", ORDER[k - 1].name());
                (name, ir_after(app, &original, &ORDER[..k]))
            })
            .collect();
        // The default sequence gets its own snapshot — the no-op gate
        // compares it against the monolithic golden.
        let default_ids: Vec<PassId> = Sequence::default_pipeline().passes().to_vec();
        files.push((
            "default.ir".to_string(),
            ir_after(app, &original, &default_ids),
        ));
        for (name, got) in files {
            let path = dir.join(&name);
            if bless {
                std::fs::create_dir_all(&dir).unwrap();
                std::fs::write(&path, &got).unwrap();
                continue;
            }
            match std::fs::read_to_string(&path) {
                Ok(want) if want == got => {}
                Ok(want) => {
                    let line = want
                        .lines()
                        .zip(got.lines())
                        .position(|(a, b)| a != b)
                        .unwrap_or_else(|| want.lines().count().min(got.lines().count()));
                    stale.push(format!("{}/{name}: differs at line {line}", app.id));
                }
                Err(_) => stale.push(format!("{}/{name}: missing {}", app.id, path.display())),
            }
        }
    }
    assert!(
        stale.is_empty(),
        "stale per-pass golden snapshots:\n{}\nRegenerate with GROVER_BLESS=1 cargo test --test golden_passes",
        stale.join("\n")
    );
}

/// Refactor-is-a-no-op gate: the default pipeline's output must byte-match
/// the `==== transformed ====` section of the committed monolithic golden
/// snapshot for every app. This is the hard promise that splitting the
/// transform into composable passes changed nothing — compared against the
/// files in git, not against a fresh run of the monolithic code path.
#[test]
fn default_sequence_reproduces_monolithic_golden_output() {
    let mut apps = all_apps();
    apps.extend(extension_apps());
    let seq = Sequence::default_pipeline();
    for app in &apps {
        let txt = monolithic_dir().join(format!("{}.txt", app.id));
        let committed = std::fs::read_to_string(&txt)
            .unwrap_or_else(|e| panic!("{}: missing monolithic golden: {e}", app.id));
        let want = committed
            .split("==== transformed ====\n")
            .nth(1)
            .unwrap_or_else(|| panic!("{}: golden has no transformed section", app.id));
        let mut f = original_kernel(app);
        apply_sequence(&mut f, &seq, &grover_options(app));
        let got = function_to_string(&f);
        assert!(
            got == want,
            "{}: default pipeline output differs from the committed monolithic snapshot",
            app.id
        );
    }
}
