//! Acceptance gate for the per-device sequence search (PR 9).
//!
//! Sweeps the bundled apps across every devsim profile and asserts the
//! search is *live*: every winning sequence is drawn from the device's
//! seeded candidate set, and at least one (app, device) pair settles on a
//! non-default sequence — i.e. the race is not a constant function that
//! always returns `local-removal,barrier-elim,index-simplify`.

use grover::devsim::{candidate_sequences, ALL_DEVICES};
use grover::kernels::{all_apps, prepare_pair, Scale};
use grover::pass::Sequence;
use grover::tuner::{TuneError, Tuner, Workload};

#[test]
fn some_app_wins_with_a_non_default_sequence() {
    let default = Sequence::default_pipeline().spec();
    let mut non_default: Vec<(String, String, String)> = Vec::new();
    let mut tuned = 0usize;
    for app in all_apps() {
        let pair = match prepare_pair(&app, Scale::Test) {
            Ok(p) => p,
            Err(e) => panic!("{}: {e}", app.id),
        };
        let prepare = app.prepare;
        let workload = Workload::new(move || {
            let p = prepare(Scale::Test);
            (p.ctx, p.args, p.nd)
        });
        let mut tuner = Tuner::new();
        tuner.buffers = app
            .disable
            .map(|names| names.iter().map(|s| s.to_string()).collect());
        for device in ALL_DEVICES {
            let d = match tuner.tune(&pair.original, device, &workload) {
                Ok(d) => d,
                // A kernel the pass refuses is a valid sweep member with
                // nothing to race; anything else is a real failure.
                Err(TuneError::NothingToDisable(_)) => continue,
                Err(e) => panic!("{} on {device}: {e}", app.id),
            };
            tuned += 1;
            let seeded = candidate_sequences(device);
            assert!(
                seeded.contains(&d.sequence.as_str()),
                "{} on {device}: winning sequence `{}` not in the seeded set {seeded:?}",
                app.id,
                d.sequence
            );
            if d.sequence != default {
                non_default.push((app.id.to_string(), device.to_string(), d.sequence.clone()));
            }
        }
    }
    assert!(tuned > 0, "no app tuned on any device");
    for (app, device, seq) in &non_default {
        eprintln!("non-default winner: {app} on {device} -> {seq}");
    }
    assert!(
        !non_default.is_empty(),
        "sequence search never beat the default pipeline on any (app, device) \
         pair — the race is dead weight"
    );
}
