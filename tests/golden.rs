//! Golden-file IR snapshots of the Grover pass over every bundled app.
//!
//! For each application the snapshot records the freshly-compiled kernel,
//! the pass report, and the kernel after the pass (no optimisation
//! pipeline — this isolates exactly what the pass itself does). Any change
//! to the front-end lowering, the candidate filter or the rewrite shows up
//! as a reviewable textual diff instead of a silent behaviour shift.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! GROVER_BLESS=1 cargo test -q --test golden
//! ```

use grover::frontend::compile;
use grover::ir::printer::function_to_string;
use grover::kernels::{all_apps, extension_apps, App, Scale};
use grover::pass::{pass_fingerprint, source_fingerprint, Grover};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn snapshot(app: &App) -> String {
    let opts = (app.options)(Scale::Test);
    let module = compile(app.source, &opts).unwrap_or_else(|e| panic!("{}: {e}", app.id));
    let original = module
        .kernel(app.kernel)
        .unwrap_or_else(|| panic!("{}: kernel {} missing", app.id, app.kernel))
        .clone();
    let mut transformed = original.clone();
    let grover = match app.disable {
        Some(buffers) => Grover::for_buffers(buffers),
        None => Grover::new(),
    };
    let report = grover.run_on(&mut transformed);
    // The identity header pins the snapshot to the pass-version epoch and
    // the canonical source fingerprint — the same identities the
    // `grover-serve` decision cache is keyed by. A behaviour change
    // without a `TRANSFORM_REVISION` bump diffs here; a bump without
    // re-blessing fails the suite.
    format!(
        "==== identity ====\npass: {}\nsource: {}\n==== original ====\n{}\n==== report ====\n{}\n==== transformed ====\n{}",
        pass_fingerprint(),
        source_fingerprint(app.source),
        function_to_string(&original),
        report.to_text(),
        function_to_string(&transformed),
    )
}

#[test]
fn pass_output_matches_golden_snapshots() {
    let bless = std::env::var_os("GROVER_BLESS").is_some();
    let dir = golden_dir();
    let mut apps = all_apps();
    apps.extend(extension_apps());
    assert!(apps.len() >= 12, "expected all bundled apps");
    let mut stale = Vec::new();
    for app in &apps {
        let got = snapshot(app);
        let path = dir.join(format!("{}.txt", app.id));
        if bless {
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(want) if want == got => {}
            Ok(want) => {
                let diff_at = want
                    .lines()
                    .zip(got.lines())
                    .position(|(a, b)| a != b)
                    .unwrap_or_else(|| want.lines().count().min(got.lines().count()));
                stale.push(format!("{}: differs from golden at line {diff_at}", app.id));
            }
            Err(_) => stale.push(format!(
                "{}: missing golden file {}",
                app.id,
                path.display()
            )),
        }
    }
    assert!(
        stale.is_empty(),
        "stale golden snapshots:\n{}\nRegenerate with GROVER_BLESS=1 cargo test --test golden",
        stale.join("\n")
    );
}
