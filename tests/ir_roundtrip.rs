//! The "SPIR export" leg (paper Fig. 9): every benchmark kernel — original
//! and Grover-transformed — must survive print → parse → verify, and the
//! re-imported kernel must compute identical results.

use grover::ir::printer::function_to_string;
use grover::ir::{parse_function, verify, Function};
use grover::kernels::{all_apps, prepare_pair, run_prepared, Scale};
use grover::runtime::NullSink;

fn reimport(f: &Function) -> Function {
    let text = function_to_string(f);
    let parsed = parse_function(&text)
        .unwrap_or_else(|e| panic!("{}: parse failed: {e}\n---\n{text}", f.name));
    verify(&parsed).unwrap_or_else(|e| panic!("{}: verify failed: {e:?}", f.name));
    parsed
}

#[test]
fn all_original_kernels_roundtrip_and_execute() {
    for app in all_apps() {
        let pair = prepare_pair(&app, Scale::Test).unwrap();
        let reimported = reimport(&pair.original);
        // The re-imported kernel must still validate against the reference.
        run_prepared(&reimported, (app.prepare)(Scale::Test), &mut NullSink)
            .unwrap_or_else(|e| panic!("{} reimported original: {e}", app.id));
    }
}

#[test]
fn all_transformed_kernels_roundtrip_and_execute() {
    for app in all_apps() {
        let pair = prepare_pair(&app, Scale::Test).unwrap();
        let reimported = reimport(&pair.transformed);
        run_prepared(&reimported, (app.prepare)(Scale::Test), &mut NullSink)
            .unwrap_or_else(|e| panic!("{} reimported transformed: {e}", app.id));
    }
}

#[test]
fn print_parse_is_fixpoint_for_benchmarks() {
    for app in all_apps() {
        let pair = prepare_pair(&app, Scale::Test).unwrap();
        for k in [&pair.original, &pair.transformed] {
            let p1 = reimport(k);
            let t1 = function_to_string(&p1);
            let p2 = reimport(&p1);
            let t2 = function_to_string(&p2);
            assert_eq!(t1, t2, "{}: print∘parse not a fixpoint", app.id);
        }
    }
}

#[test]
fn grover_can_run_on_reimported_kernels() {
    // Import the textual form, then run the pass on the import — the
    // full "compile elsewhere, optimise here" pipeline.
    for app in all_apps() {
        if app.disable.is_some() {
            continue; // variants need buffer names; covered via reimport above
        }
        let pair = prepare_pair(&app, Scale::Test).unwrap();
        let mut reimported = reimport(&pair.original);
        let report = grover::pass::Grover::new().run_on(&mut reimported);
        assert!(report.all_removed(), "{}: {}", app.id, report.to_text());
        run_prepared(&reimported, (app.prepare)(Scale::Test), &mut NullSink)
            .unwrap_or_else(|e| panic!("{}: {e}", app.id));
    }
}
