//! Cross-crate integration tests: the full paper pipeline
//! (compile → Grover → execute → simulate) for every benchmark.

use grover::devsim::{Device, CPU_DEVICES};
use grover::kernels::{all_apps, app_by_id, prepare_pair, run_prepared, validate_app, Scale};
use grover::runtime::CountingSink;

#[test]
fn all_eleven_apps_transform_and_validate() {
    // The paper's Table III claim: Grover succeeds on all 11 applications
    // and "each benchmark still runs correctly".
    for app in all_apps() {
        let pair = validate_app(&app, Scale::Test).unwrap_or_else(|e| panic!("{e}"));
        assert!(
            pair.report.all_removed(),
            "{}: {}",
            app.id,
            pair.report.to_text()
        );
    }
}

#[test]
fn transformed_kernels_pass_ir_verification() {
    for app in all_apps() {
        let pair = prepare_pair(&app, Scale::Test).unwrap();
        grover::ir::verify(&pair.original).unwrap_or_else(|e| panic!("{}: {e:?}", app.id));
        grover::ir::verify(&pair.transformed).unwrap_or_else(|e| panic!("{}: {e:?}", app.id));
    }
}

#[test]
fn table3_solutions_match_paper() {
    // The derived correspondences for the structurally-distinct rows of
    // Table III.
    let expect = [
        ("NVD-MT", "(lx, ly) = (ly, lx)"),
        ("AMD-MT", "(lx, ly) = (ly, lx)"),
        ("AMD-RG", "(ly) = (ly)"),
    ];
    for (id, want) in expect {
        let app = app_by_id(id).unwrap();
        let pair = prepare_pair(&app, Scale::Test).unwrap();
        let sols = &pair.report.buffers[0].solutions;
        assert_eq!(sols[0], want, "{id}");
    }
}

#[test]
fn loop_counter_solutions_reference_the_phi() {
    // AMD-SS / ROD-SC / NVD-NBody solve (lx) = (k) where k is a loop phi.
    for id in ["AMD-SS", "ROD-SC", "NVD-NBody"] {
        let app = app_by_id(id).unwrap();
        let pair = prepare_pair(&app, Scale::Test).unwrap();
        let sol = &pair.report.buffers[0].solutions[0];
        assert!(sol.starts_with("(lx) = "), "{id}: {sol}");
        assert!(
            !sol.contains("= (lx)"),
            "{id}: solution should not be the identity: {sol}"
        );
    }
}

#[test]
fn stencil_has_five_rewired_loads() {
    let app = app_by_id("PAB-ST").unwrap();
    let pair = prepare_pair(&app, Scale::Test).unwrap();
    let b = &pair.report.buffers[0];
    assert_eq!(b.ngl.len(), 5, "five LLs: centre + four neighbours");
    assert_eq!(b.solutions.len(), 5);
}

#[test]
fn np_is_finite_and_positive_on_every_device() {
    for app in all_apps() {
        let pair = prepare_pair(&app, Scale::Test).unwrap();
        for dev_name in CPU_DEVICES {
            let mut dev = Device::by_name(dev_name).unwrap();
            run_prepared(&pair.original, (app.prepare)(Scale::Test), &mut dev)
                .unwrap_or_else(|e| panic!("{} on {dev_name}: {e}", app.id));
            let with_lm = dev.finish();
            let mut dev = Device::by_name(dev_name).unwrap();
            run_prepared(&pair.transformed, (app.prepare)(Scale::Test), &mut dev)
                .unwrap_or_else(|e| panic!("{} on {dev_name}: {e}", app.id));
            let without = dev.finish();
            assert!(with_lm.cycles > 0, "{} {dev_name}", app.id);
            assert!(without.cycles > 0, "{} {dev_name}", app.id);
        }
    }
}

#[test]
fn transformed_version_reduces_memory_operations_for_mt() {
    let app = app_by_id("NVD-MT").unwrap();
    let pair = prepare_pair(&app, Scale::Test).unwrap();
    let count = |k| {
        let mut s = CountingSink::default();
        run_prepared(k, (app.prepare)(Scale::Test), &mut s).unwrap();
        s
    };
    let with_lm = count(&pair.original);
    let without = count(&pair.transformed);
    // Same global traffic, zero local traffic, zero barriers, fewer insts.
    assert_eq!(with_lm.global_loads, without.global_loads);
    assert_eq!(with_lm.global_stores, without.global_stores);
    assert_eq!(without.local_loads + without.local_stores, 0);
    assert_eq!(without.barriers, 0);
    assert!(without.instructions < with_lm.instructions);
}

#[test]
fn gpu_prefers_local_memory_for_mt_at_scale() {
    // Fig. 2's left side at Small scale: Fermi/Kepler lose when Grover
    // removes MT's staging (uncoalesced loads appear).
    let app = app_by_id("NVD-MT").unwrap();
    let pair = prepare_pair(&app, Scale::Small).unwrap();
    for dev_name in ["Fermi", "Kepler"] {
        let mut dev = Device::by_name(dev_name).unwrap();
        run_prepared(&pair.original, (app.prepare)(Scale::Small), &mut dev).unwrap();
        let with_lm = dev.finish();
        let mut dev = Device::by_name(dev_name).unwrap();
        run_prepared(&pair.transformed, (app.prepare)(Scale::Small), &mut dev).unwrap();
        let without = dev.finish();
        assert!(
            without.cycles > with_lm.cycles,
            "{dev_name}: removing local memory should hurt the GPU \
             (with={}, without={})",
            with_lm.cycles,
            without.cycles
        );
        // And the mechanism is the transaction count.
        assert!(without.transactions > with_lm.transactions, "{dev_name}");
    }
}

#[test]
fn cpu_prefers_no_local_memory_for_mt_at_scale() {
    // Fig. 2's right side: SNB and Nehalem gain.
    let app = app_by_id("NVD-MT").unwrap();
    let pair = prepare_pair(&app, Scale::Small).unwrap();
    for dev_name in ["SNB", "Nehalem"] {
        let mut dev = Device::by_name(dev_name).unwrap();
        run_prepared(&pair.original, (app.prepare)(Scale::Small), &mut dev).unwrap();
        let with_lm = dev.finish();
        let mut dev = Device::by_name(dev_name).unwrap();
        run_prepared(&pair.transformed, (app.prepare)(Scale::Small), &mut dev).unwrap();
        let without = dev.finish();
        assert!(
            with_lm.cycles > without.cycles,
            "{dev_name}: removing local memory should help the CPU"
        );
    }
}

#[test]
fn partial_variants_keep_the_other_buffer() {
    for (id, kept) in [("NVD-MM-A", "tb"), ("NVD-MM-B", "ta")] {
        let app = app_by_id(id).unwrap();
        let pair = prepare_pair(&app, Scale::Test).unwrap();
        let lb = pair
            .transformed
            .local_bufs()
            .iter()
            .find(|l| l.name == kept)
            .unwrap_or_else(|| panic!("{id}: buffer {kept} missing"));
        assert!(!lb.is_empty(), "{id}: {kept} should remain allocated");
        assert!(pair.transformed.local_mem_bytes() > 0, "{id}");
    }
    let app = app_by_id("NVD-MM-AB").unwrap();
    let pair = prepare_pair(&app, Scale::Test).unwrap();
    assert_eq!(pair.transformed.local_mem_bytes(), 0);
}

#[test]
fn report_text_round_trips_key_information() {
    let app = app_by_id("AMD-MM").unwrap();
    let pair = prepare_pair(&app, Scale::Test).unwrap();
    let text = pair.report.to_text();
    assert!(text.contains("__local bl"), "{text}");
    assert!(text.contains("removed"), "{text}");
    assert!(text.contains("GL"), "{text}");
    assert!(text.contains("nGL"), "{text}");
}
