//! Golden-file snapshots of the register-bytecode lowering over every
//! bundled app.
//!
//! For each application the snapshot records the textual disassembly of
//! the compiled bytecode for both kernel versions (straight from the
//! front-end and the pass, no optimisation pipeline — its instruction
//! order is not run-deterministic, and skipping it isolates exactly what
//! the lowering does). Any change to the lowering — opcode selection,
//! gep/load fusion, phi-edge move lists, branch layout — shows up as a
//! reviewable textual diff instead of a silent behaviour shift in the
//! execution engine.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! GROVER_BLESS=1 cargo test -q --test golden_bytecode
//! ```

use grover::frontend::compile;
use grover::kernels::{all_apps, extension_apps, App, Scale};
use grover::pass::Grover;
use grover::runtime::disassemble;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("bytecode")
}

fn snapshot(app: &App) -> String {
    let opts = (app.options)(Scale::Test);
    let module = compile(app.source, &opts).unwrap_or_else(|e| panic!("{}: {e}", app.id));
    let original = module
        .kernel(app.kernel)
        .unwrap_or_else(|| panic!("{}: kernel {} missing", app.id, app.kernel))
        .clone();
    let mut transformed = original.clone();
    let grover = match app.disable {
        Some(buffers) => Grover::for_buffers(buffers),
        None => Grover::new(),
    };
    grover.run_on(&mut transformed);
    format!(
        "==== original ====\n{}\n==== transformed ====\n{}",
        disassemble(&original),
        disassemble(&transformed),
    )
}

#[test]
fn bytecode_lowering_matches_golden_snapshots() {
    let bless = std::env::var_os("GROVER_BLESS").is_some();
    let dir = golden_dir();
    let mut apps = all_apps();
    apps.extend(extension_apps());
    assert!(apps.len() >= 12, "expected all bundled apps");
    let mut stale = Vec::new();
    for app in &apps {
        let got = snapshot(app);
        let path = dir.join(format!("{}.txt", app.id));
        if bless {
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(want) if want == got => {}
            Ok(want) => {
                let diff_at = want
                    .lines()
                    .zip(got.lines())
                    .position(|(a, b)| a != b)
                    .unwrap_or_else(|| want.lines().count().min(got.lines().count()));
                stale.push(format!("{}: differs from golden at line {diff_at}", app.id));
            }
            Err(_) => stale.push(format!(
                "{}: missing golden file {}",
                app.id,
                path.display()
            )),
        }
    }
    assert!(
        stale.is_empty(),
        "stale bytecode snapshots:\n{}\nRegenerate with GROVER_BLESS=1 cargo test --test golden_bytecode",
        stale.join("\n")
    );
}
