//! Failure-injection tests: kernels outside Grover's supported pattern
//! (paper §VI-D limitations) must be declined *cleanly* — the kernel is
//! left untouched and still runs correctly. Grover must never miscompile.

use grover::frontend::{compile, BuildOptions};
use grover::ir::Function;
use grover::pass::{BufferOutcome, Grover};
use grover::runtime::{enqueue, ArgValue, Context, Limits, NdRange, NullSink};

fn kernel(src: &str) -> Function {
    compile(src, &BuildOptions::new())
        .unwrap_or_else(|e| panic!("compile: {e}"))
        .kernels
        .remove(0)
}

/// Run Grover, assert it declined, and assert the kernel is unchanged.
fn assert_declined(src: &str) -> Function {
    let mut f = kernel(src);
    let before = grover::ir::printer::function_to_string(&f);
    let report = Grover::new().run_on(&mut f);
    assert!(
        !report.all_removed(),
        "expected a decline, got:\n{}",
        report.to_text()
    );
    let after = grover::ir::printer::function_to_string(&f);
    assert_eq!(before, after, "declined kernel must be untouched");
    f
}

#[test]
fn reduction_pattern_declined() {
    // §VI-D: "local memory used as temporal storage for repeated
    // read/write operations — e.g. reductions".
    assert_declined(
        "__kernel void red(__global float* in, __global float* out) {
             __local float acc[64];
             int lx = get_local_id(0);
             acc[lx] = in[lx];
             barrier(CLK_LOCAL_MEM_FENCE);
             for (int s = 32; s > 0; s = s / 2) {
                 if (lx < s) { acc[lx] = acc[lx] + acc[lx + s]; }
                 barrier(CLK_LOCAL_MEM_FENCE);
             }
             if (lx == 0) { out[0] = acc[0]; }
         }",
    );
}

#[test]
fn computed_staging_value_declined() {
    assert_declined(
        "__kernel void c(__global float* in, __global float* out) {
             __local float lm[16];
             int lx = get_local_id(0);
             lm[lx] = in[lx] * 0.5f;
             barrier(CLK_LOCAL_MEM_FENCE);
             out[lx] = lm[15 - lx];
         }",
    );
}

#[test]
fn non_affine_ls_index_declined() {
    assert_declined(
        "__kernel void na(__global float* in, __global float* out) {
             __local float lm[256];
             int lx = get_local_id(0);
             lm[lx * lx] = in[lx];
             barrier(CLK_LOCAL_MEM_FENCE);
             out[lx] = lm[lx];
         }",
    );
}

#[test]
fn singular_map_declined() {
    // All work-items store to slot 0 from distinct global addresses; the
    // GL cannot be reconstructed (§III-B: no unique solution).
    assert_declined(
        "__kernel void s(__global float* in, __global float* out) {
             __local float lm[16];
             int lx = get_local_id(0);
             lm[0] = in[lx];
             barrier(CLK_LOCAL_MEM_FENCE);
             out[lx] = lm[0];
         }",
    );
}

#[test]
fn rank_deficient_two_dim_declined() {
    // LS (lx+ly, lx+ly): rank 1 in two unknowns.
    assert_declined(
        "__kernel void rd(__global float* in, __global float* out, int w) {
             __local float lm[32][32];
             int lx = get_local_id(0);
             int ly = get_local_id(1);
             lm[lx + ly][lx + ly] = in[ly * w + lx];
             barrier(CLK_LOCAL_MEM_FENCE);
             out[ly * w + lx] = lm[lx][ly];
         }",
    );
}

#[test]
fn fractional_solution_declined() {
    // LS index 2*lx: the inverse needs lx' = k/2 — not materialisable.
    assert_declined(
        "__kernel void fr(__global float* in, __global float* out) {
             __local float lm[32];
             int lx = get_local_id(0);
             lm[2 * lx] = in[lx];
             barrier(CLK_LOCAL_MEM_FENCE);
             float acc = 0.0f;
             for (int k = 0; k < 32; k++) { acc += lm[k]; }
             out[lx] = acc;
         }",
    );
}

#[test]
fn lid_dependent_loop_bound_declined() {
    // The GL index hides lx inside a loop phi.
    assert_declined(
        "__kernel void ph(__global float* in, __global float* out) {
             __local float lm[16];
             int lx = get_local_id(0);
             float s = 0.0f;
             for (int i = lx; i < 16; i++) {
                 lm[lx] = in[i];
                 barrier(CLK_LOCAL_MEM_FENCE);
                 s += lm[0];
                 barrier(CLK_LOCAL_MEM_FENCE);
             }
             out[lx] = s;
         }",
    );
}

#[test]
fn declined_kernels_still_execute_correctly() {
    // A declined reduction must keep producing the right answer.
    let src = "__kernel void red(__global float* in, __global float* out) {
         __local float acc[8];
         int lx = get_local_id(0);
         acc[lx] = in[lx];
         barrier(CLK_LOCAL_MEM_FENCE);
         for (int s = 4; s > 0; s = s / 2) {
             if (lx < s) { acc[lx] = acc[lx] + acc[lx + s]; }
             barrier(CLK_LOCAL_MEM_FENCE);
         }
         if (lx == 0) { out[0] = acc[0]; }
     }";
    let f = assert_declined(src);
    let mut ctx = Context::new();
    let data = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
    let bi = ctx.buffer_f32(&data);
    let bo = ctx.zeros_f32(1);
    enqueue(
        &mut ctx,
        &f,
        &[ArgValue::Buffer(bi), ArgValue::Buffer(bo)],
        &NdRange::d1(8, 8),
        &mut NullSink,
        &Limits::default(),
    )
    .unwrap();
    assert_eq!(ctx.read_f32(bo)[0], 36.0);
}

#[test]
fn decline_reasons_are_reported() {
    let mut f = kernel(
        "__kernel void s(__global float* in, __global float* out) {
             __local float lm[16];
             int lx = get_local_id(0);
             lm[0] = in[lx];
             barrier(CLK_LOCAL_MEM_FENCE);
             out[lx] = lm[0];
         }",
    );
    let report = Grover::new().run_on(&mut f);
    match &report.buffers[0].outcome {
        BufferOutcome::Declined(d) => {
            let msg = d.to_string();
            assert!(!msg.is_empty());
        }
        other => panic!("expected Declined, got {other:?}"),
    }
}

#[test]
fn mixed_kernel_partial_success() {
    // One good buffer and one reduction buffer: the good one is removed,
    // the bad one declined, barriers stay (the reduction still needs them).
    let mut f = kernel(
        "__kernel void mix(__global float* in, __global float* out) {
             __local float stage[8];
             __local float acc[8];
             int lx = get_local_id(0);
             stage[lx] = in[lx];
             acc[lx] = in[lx + 8];
             barrier(CLK_LOCAL_MEM_FENCE);
             acc[lx] = acc[lx] + stage[7 - lx];
             barrier(CLK_LOCAL_MEM_FENCE);
             out[lx] = acc[lx];
         }",
    );
    let report = Grover::new().run_on(&mut f);
    assert_eq!(report.removed_count(), 1, "{}", report.to_text());
    assert!(matches!(
        report.buffers[1].outcome,
        BufferOutcome::NotCandidate(_)
    ));
    assert!(f.local_mem_bytes() > 0);
    // Verify it still runs correctly.
    grover::ir::verify(&f).unwrap();
    let mut ctx = Context::new();
    let data: Vec<f32> = (0..16).map(|i| i as f32).collect();
    let bi = ctx.buffer_f32(&data);
    let bo = ctx.zeros_f32(8);
    enqueue(
        &mut ctx,
        &f,
        &[ArgValue::Buffer(bi), ArgValue::Buffer(bo)],
        &NdRange::d1(8, 8),
        &mut NullSink,
        &Limits::default(),
    )
    .unwrap();
    let out = ctx.read_f32(bo);
    for lx in 0..8 {
        assert_eq!(out[lx], data[lx + 8] + data[7 - lx]);
    }
}

#[test]
fn empty_kernel_without_local_memory_is_noop() {
    let mut f = kernel("__kernel void nop(__global float* a) { a[0] = 1.0f; }");
    let before = f.num_insts();
    let report = Grover::new().run_on(&mut f);
    assert!(report.buffers.is_empty());
    assert_eq!(f.num_insts(), before);
}
