//! Creating and solving the linear system (paper §III-B S2 and §IV-D).
//!
//! Each dimension of the local buffer contributes one equation
//! `a·lx' + b·ly' + c·lz' + d = x_LL`, where the left-hand side comes from
//! the LS data index (pure `get_local_id` affine form) and the right-hand
//! side from the LL data index (an affine form over arbitrary atoms — a
//! value the loading work-item knows at runtime). Solving for
//! `(lx', ly', lz')` — the indices of the work-item that *stored* the
//! element — uses Gauss–Jordan elimination over exact rationals with
//! affine-valued right-hand sides.

use std::collections::BTreeMap;

use crate::affine::{Affine, Atom};
use crate::rational::Rational;

/// Why a system could not be solved (maps to paper §III-B: "when the system
/// does not have a unique solution, Grover will not be able to cancel the
/// use of the local memory").
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// An LS dimension mentions something other than `get_local_id`.
    NonLocalIdLhs,
    /// Fewer independent equations than unknowns.
    Underdetermined,
    /// A constant-LHS row whose RHS is not the identical constant.
    Inconsistent,
    /// The solution involves non-integral coefficients, which cannot be
    /// materialised with integer index arithmetic.
    NonIntegralSolution,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SolveError::NonLocalIdLhs => "LS index is not a pure get_local_id expression",
            SolveError::Underdetermined => "linear system has no unique solution",
            SolveError::Inconsistent => "linear system is inconsistent",
            SolveError::NonIntegralSolution => "solution has non-integral coefficients",
        };
        f.write_str(s)
    }
}

impl std::error::Error for SolveError {}

/// The unique solution: for every unknown `get_local_id(d)` of the storing
/// work-item, the affine expression (over the loader's atoms) that equals it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Solution {
    map: BTreeMap<u8, Affine>,
}

impl Solution {
    /// Solution for dimension `d`, if that dimension was an unknown.
    pub fn for_dim(&self, d: u8) -> Option<&Affine> {
        self.map.get(&d)
    }

    /// Iterate `(dimension, solution expression)` pairs.
    pub fn dims(&self) -> impl Iterator<Item = (u8, &Affine)> + '_ {
        self.map.iter().map(|(&d, a)| (d, a))
    }

    /// Number of solved dimensions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no dimension was an unknown (constant staging maps).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Render as the paper writes it: `(lx, ly) = (ly, lx)`.
    pub fn display(&self) -> String {
        let lhs: Vec<String> = self
            .map
            .keys()
            .map(|&d| Atom::LocalId(d).display_name())
            .collect();
        let rhs: Vec<String> = self.map.values().map(|a| a.to_string()).collect();
        format!("({}) = ({})", lhs.join(", "), rhs.join(", "))
    }

    /// Render with opaque atoms resolved to their source names in `f`.
    pub fn display_in(&self, f: &grover_ir::Function) -> String {
        let lhs: Vec<String> = self
            .map
            .keys()
            .map(|&d| Atom::LocalId(d).display_name())
            .collect();
        let rhs: Vec<String> = self.map.values().map(|a| a.display_in(f)).collect();
        format!("({}) = ({})", lhs.join(", "), rhs.join(", "))
    }
}

/// Solve `ls_dims[i](l') = ll_dims[i]` for the `get_local_id` unknowns.
///
/// `ls_dims` and `ll_dims` are the per-dimension data indices of the LS and
/// LL operations (outermost dimension first); they must have equal length.
pub fn solve(ls_dims: &[Affine], ll_dims: &[Affine]) -> Result<Solution, SolveError> {
    assert_eq!(ls_dims.len(), ll_dims.len(), "dimension count mismatch");

    // Collect unknowns: every get_local_id dimension mentioned by any LS row.
    let mut unknowns: Vec<u8> = Vec::new();
    for row in ls_dims {
        if !row.is_local_id_only() {
            return Err(SolveError::NonLocalIdLhs);
        }
        for (a, _) in row.terms() {
            if let Atom::LocalId(d) = a {
                if !unknowns.contains(&d) {
                    unknowns.push(d);
                }
            }
        }
    }
    unknowns.sort_unstable();
    let n = unknowns.len();

    // Build the augmented system: matrix rows over the unknowns, RHS =
    // ll_dim - constant(ls_dim).
    let mut mat: Vec<Vec<Rational>> = Vec::new();
    let mut rhs: Vec<Affine> = Vec::new();
    for (ls, ll) in ls_dims.iter().zip(ll_dims) {
        let row: Vec<Rational> = unknowns
            .iter()
            .map(|&d| ls.coeff(Atom::LocalId(d)))
            .collect();
        let r = ll.sub(&Affine::constant(ls.constant_part()));
        if row.iter().all(|c| c.is_zero()) {
            // 0 = r: verifiable only when symbolically zero.
            if r != Affine::zero() {
                return Err(SolveError::Inconsistent);
            }
            continue;
        }
        mat.push(row);
        rhs.push(r);
    }

    if n == 0 {
        return Ok(Solution::default());
    }
    if mat.len() < n {
        return Err(SolveError::Underdetermined);
    }

    // Gauss–Jordan elimination with affine-valued right-hand sides.
    let rows = mat.len();
    let mut pivot_row_of_col: Vec<Option<usize>> = vec![None; n];
    let mut r = 0;
    for c in 0..n {
        // Find a pivot.
        let Some(p) = (r..rows).find(|&i| !mat[i][c].is_zero()) else {
            continue;
        };
        mat.swap(r, p);
        rhs.swap(r, p);
        // Normalize pivot row.
        let inv = mat[r][c].recip();
        for x in &mut mat[r] {
            *x = *x * inv;
        }
        rhs[r] = rhs[r].scale(inv);
        // Eliminate the column everywhere else.
        let pivot_row = mat[r].clone();
        for i in 0..rows {
            if i == r || mat[i][c].is_zero() {
                continue;
            }
            let factor = mat[i][c];
            for (x, p) in mat[i].iter_mut().zip(&pivot_row) {
                *x = *x - factor * *p;
            }
            rhs[i] = rhs[i].sub(&rhs[r].scale(factor));
        }
        pivot_row_of_col[c] = Some(r);
        r += 1;
        if r == rows {
            break;
        }
    }

    // Unique solution requires a pivot in every column.
    if pivot_row_of_col.iter().any(Option::is_none) {
        return Err(SolveError::Underdetermined);
    }
    // Leftover rows must have reduced to 0 = 0.
    for i in r..rows {
        if mat[i].iter().any(|c| !c.is_zero()) {
            continue; // still has a pivot column handled above
        }
        if rhs[i] != Affine::zero() {
            return Err(SolveError::Inconsistent);
        }
    }

    let mut sol = Solution::default();
    for (c, &d) in unknowns.iter().enumerate() {
        let row = pivot_row_of_col[c].expect("checked");
        let a = rhs[row].clone();
        if !a.is_integral() {
            return Err(SolveError::NonIntegralSolution);
        }
        sol.map.insert(d, a);
    }
    Ok(sol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grover_ir::ValueId;

    fn lx() -> Affine {
        Affine::atom(Atom::LocalId(0))
    }
    fn ly() -> Affine {
        Affine::atom(Atom::LocalId(1))
    }
    fn val(n: u32) -> Affine {
        Affine::atom(Atom::Value(ValueId(n)))
    }

    #[test]
    fn matrix_transpose_swap() {
        // Paper §III-C: LS = (lx, ly), LL = (ly, lx)  =>  (lx', ly') = (ly, lx).
        let sol = solve(&[lx(), ly()], &[ly(), lx()]).unwrap();
        assert_eq!(sol.for_dim(0), Some(&ly()));
        assert_eq!(sol.for_dim(1), Some(&lx()));
        assert_eq!(sol.display(), "(lx, ly) = (ly, lx)");
    }

    #[test]
    fn identity_staging() {
        // LS = (lx, ly), LL = (lx, ly)  =>  identity.
        let sol = solve(&[lx(), ly()], &[lx(), ly()]).unwrap();
        assert_eq!(sol.for_dim(0), Some(&lx()));
        assert_eq!(sol.for_dim(1), Some(&ly()));
    }

    #[test]
    fn loop_counter_rhs() {
        // NVD-NBody: LS = (lx), LL = (k)  =>  lx' = k.
        let k = val(42);
        let sol = solve(&[lx()], std::slice::from_ref(&k)).unwrap();
        assert_eq!(sol.for_dim(0), Some(&k));
    }

    #[test]
    fn offset_and_scale() {
        // LS = (lx + 3), LL = (k)  =>  lx' = k - 3.
        let sol = solve(&[lx().add(&Affine::constant(3))], &[val(9)]).unwrap();
        assert_eq!(sol.for_dim(0), Some(&val(9).sub(&Affine::constant(3))));
    }

    #[test]
    fn scaled_ls_gives_fractional_and_declines() {
        // LS = (2*lx), LL = (k): lx' = k/2 is not materialisable.
        let sol = solve(&[lx().scale(Rational::int(2))], &[val(5)]);
        assert_eq!(sol, Err(SolveError::NonIntegralSolution));
    }

    #[test]
    fn coupled_system() {
        // LS = (lx + ly, ly), LL = (a, b)  =>  ly' = b, lx' = a - b.
        let a = val(1);
        let b = val(2);
        let sol = solve(&[lx().add(&ly()), ly()], &[a.clone(), b.clone()]).unwrap();
        assert_eq!(sol.for_dim(1), Some(&b));
        assert_eq!(sol.for_dim(0), Some(&a.sub(&b)));
    }

    #[test]
    fn singular_system_declines() {
        // LS = (lx + ly, lx + ly): rank 1, two unknowns.
        let sol = solve(&[lx().add(&ly()), lx().add(&ly())], &[val(1), val(2)]);
        assert_eq!(sol, Err(SolveError::Underdetermined));
    }

    #[test]
    fn underdetermined_single_row() {
        let sol = solve(&[lx().add(&ly())], &[val(1)]);
        assert_eq!(sol, Err(SolveError::Underdetermined));
    }

    #[test]
    fn constant_row_consistent() {
        // AMD-RG-like: LS = (0, ly), LL = (0, ly): first row drops out.
        let zero = Affine::zero();
        let sol = solve(&[zero.clone(), ly()], &[zero.clone(), ly()]).unwrap();
        assert_eq!(sol.for_dim(1), Some(&ly()));
        assert_eq!(sol.len(), 1);
    }

    #[test]
    fn constant_row_inconsistent() {
        // LS = (0, ly), LL = (k, ly): 0 = k unverifiable -> inconsistent.
        let sol = solve(&[Affine::zero(), ly()], &[val(3), ly()]);
        assert_eq!(sol, Err(SolveError::Inconsistent));
    }

    #[test]
    fn non_local_lhs_declines() {
        let bad = lx().add(&Affine::atom(Atom::GroupId(0)));
        let sol = solve(&[bad], &[val(1)]);
        assert_eq!(sol, Err(SolveError::NonLocalIdLhs));
    }

    #[test]
    fn no_unknowns_no_equations() {
        // All-constant LS that matches: empty solution (shared data block,
        // e.g. AMD-SS pattern string where every work-item stores index k).
        let sol = solve(&[], &[]).unwrap();
        assert!(sol.is_empty());
    }

    #[test]
    fn three_dim_permutation() {
        let lz = Affine::atom(Atom::LocalId(2));
        let sol = solve(
            &[ly(), Affine::atom(Atom::LocalId(2)), lx()],
            &[val(1), val(2), val(3)],
        )
        .unwrap();
        assert_eq!(sol.for_dim(1), Some(&val(1)));
        assert_eq!(sol.for_dim(2), Some(&val(2)));
        assert_eq!(sol.for_dim(0), Some(&val(3)));
        let _ = lz;
    }

    use crate::rational::Rational;
}
