//! The reversing transformation (paper §IV-C through §IV-F): determine the
//! data indices, solve the linear system, duplicate the GL instruction
//! chain with the solution substituted in (Algorithm 1), and rewire the LL.

use std::collections::{HashMap, HashSet};

use grover_ir::cfg::DomTree;
use grover_ir::{BinOp, BlockId, Builtin, CastKind, Function, Inst, Type, ValueDef, ValueId};

use crate::affine::{Affine, Atom};
use crate::candidates::StagingPattern;
use crate::linsys::{solve, Solution, SolveError};
use crate::tree::{ExprTree, LeafKind};

/// Why a particular buffer/load could not be reversed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decline {
    /// The linear system had no unique integral solution.
    Solve(SolveError),
    /// The LS index could not be split along the buffer dimensions.
    SplitFailed,
    /// The GL index uses `get_local_id(d)`/`get_global_id(d)` for a
    /// dimension the system does not determine.
    MissingDim(u8),
    /// A reused leaf value does not dominate the LL insertion point.
    LeafNotAvailable(String),
    /// A phi or call leaf hides a dependence on the work-item index.
    TaintedLeaf(String),
    /// The GL index is not affine in the work-item indices (a product of
    /// two index-dependent terms, or an index under a non-linear
    /// operation), so substituting the solved correspondence into it would
    /// not reproduce the staged address.
    NonAffineGl(String),
    /// An affine atom has a non-integer type.
    BadAtomType,
}

impl std::fmt::Display for Decline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Decline::Solve(e) => write!(f, "{e}"),
            Decline::SplitFailed => f.write_str("LS index does not decompose along buffer dims"),
            Decline::MissingDim(d) => {
                write!(
                    f,
                    "GL index depends on work-item dimension {d} not fixed by the system"
                )
            }
            Decline::LeafNotAvailable(s) => write!(f, "value `{s}` unavailable at the local load"),
            Decline::TaintedLeaf(s) => {
                write!(f, "value `{s}` hides a work-item-index dependence")
            }
            Decline::NonAffineGl(s) => {
                write!(f, "GL index `{s}` is not affine in the work-item indices")
            }
            Decline::BadAtomType => f.write_str("index component has non-integer type"),
        }
    }
}

impl std::error::Error for Decline {}

/// Result of rewriting one LL.
#[derive(Clone, Debug)]
pub struct LlRewrite {
    /// The new global load that replaced the local load.
    pub ngl: ValueId,
    /// The solved correspondence, e.g. `(lx, ly) = (ly, lx)`.
    pub solution: Solution,
    /// Per-dimension LL data index (paper Table III's `LL` column).
    pub ll_dims: Vec<Affine>,
    /// Pretty-printed new global pointer expression (Table III's `nGL`).
    pub ngl_display: String,
}

/// Values transitively dependent on `get_local_id`/`get_global_id` — the
/// two queries that vary *within* a work-group. Reusing such a value when
/// rebuilding the storer's index would silently pick up the loader's index.
pub fn lid_tainted(f: &Function) -> HashSet<ValueId> {
    let mut tainted: HashSet<ValueId> = HashSet::new();
    loop {
        let mut changed = false;
        for (_, iv) in f.iter_insts() {
            if tainted.contains(&iv) {
                continue;
            }
            let inst = f.inst(iv).expect("inst");
            let is_root = matches!(
                inst,
                Inst::Call {
                    builtin: Builtin::LocalId | Builtin::GlobalId,
                    ..
                }
            );
            let mut hit = is_root;
            if !hit {
                inst.visit_operands(|v| hit |= tainted.contains(&v));
            }
            if hit {
                tainted.insert(iv);
                changed = true;
            }
        }
        if !changed {
            return tainted;
        }
    }
}

/// Split a flat index affine along the buffer's declared dimensions
/// (outermost first), producing one data-index form per dimension.
pub fn split_dims(flat: &Affine, dims: &[u64]) -> Option<Vec<Affine>> {
    let n = dims.len();
    if n == 1 {
        return Some(vec![flat.clone()]);
    }
    // strides: dim i has stride = product(dims[i+1..]).
    let mut out = Vec::with_capacity(n);
    let mut rem = flat.clone();
    for i in 0..n - 1 {
        let stride: u64 = dims[i + 1..].iter().product();
        let (hi, lo) = rem.split_by_stride(stride as i64)?;
        out.push(hi);
        rem = lo;
    }
    out.push(rem);
    Some(out)
}

fn position_of(f: &Function, v: ValueId) -> (BlockId, usize) {
    f.position_of(v).expect("instruction has a position")
}

/// Degree of `n` in the work-item indices (`get_local_id`/`get_global_id`):
/// `Some(0)` for group-uniform expressions, `Some(1)` for affine ones, and
/// `None` when an index-dependent term sits under a non-linear operation
/// (a product of two such terms, a modulo, a shift by one, …). Substituting
/// the solved correspondence leaf-by-leaf is only address-preserving for
/// degree ≤ 1; anything else must decline as [`Decline::NonAffineGl`].
fn query_degree(f: &Function, t: &ExprTree, n: crate::tree::NodeId) -> Option<u32> {
    if t.is_leaf(n) {
        return Some(match t.leaf_kind(f, n).expect("leaf") {
            LeafKind::Query(Builtin::LocalId | Builtin::GlobalId, _) => 1,
            // Group-uniform queries, constants, params, and opaque leaves
            // (phi/call taint is declined separately as `TaintedLeaf`).
            _ => 0,
        });
    }
    let ch = &t.node(n).children;
    let inst = f.inst(t.node(n).value).expect("internal node");
    match inst {
        Inst::Bin { op, .. } => {
            let l = query_degree(f, t, ch[0])?;
            let r = query_degree(f, t, ch[1])?;
            match op {
                BinOp::Add | BinOp::Sub => Some(l.max(r)),
                BinOp::Mul => Some(l + r),
                BinOp::Shl if r == 0 => Some(l),
                _ if l == 0 && r == 0 => Some(0),
                _ => None,
            }
        }
        Inst::Cast { .. } => query_degree(f, t, ch[0]),
        Inst::Gep { .. } => {
            let mut d = 0u32;
            for &c in ch {
                d = d.max(query_degree(f, t, c)?);
            }
            Some(d)
        }
        _ => {
            for &c in ch {
                if query_degree(f, t, c)? != 0 {
                    return None;
                }
            }
            Some(0)
        }
    }
}

/// Does `v` dominate the program point `(blk, idx)`?
fn available_at(f: &Function, dt: &DomTree, v: ValueId, blk: BlockId, idx: usize) -> bool {
    match f.value(v).def {
        ValueDef::Param(_) | ValueDef::Const(_) | ValueDef::LocalBuf(_) => true,
        ValueDef::Inst(_) => match f.position_of(v) {
            None => false,
            Some((db, di)) => {
                if db == blk {
                    di < idx
                } else {
                    dt.dominates(db, blk)
                }
            }
        },
    }
}

/// Emits instructions immediately before a moving insertion point.
struct Inserter {
    blk: BlockId,
    pos: usize,
}

impl Inserter {
    fn emit(&mut self, f: &mut Function, inst: Inst, ty: Type) -> ValueId {
        let v = f.insert_inst(self.blk, self.pos, inst, ty);
        self.pos += 1;
        v
    }

    /// Truncate/extend an integer value to `i32`.
    fn coerce_i32(&mut self, f: &mut Function, v: ValueId) -> Result<ValueId, Decline> {
        match f.ty(v) {
            Type::Scalar(grover_ir::Scalar::I32) => Ok(v),
            Type::Scalar(grover_ir::Scalar::I64) => Ok(self.emit(
                f,
                Inst::Cast {
                    kind: CastKind::Trunc,
                    value: v,
                    to: Type::I32,
                },
                Type::I32,
            )),
            Type::Scalar(grover_ir::Scalar::Bool) => Ok(self.emit(
                f,
                Inst::Cast {
                    kind: CastKind::ZExt,
                    value: v,
                    to: Type::I32,
                },
                Type::I32,
            )),
            _ => Err(Decline::BadAtomType),
        }
    }

    /// Materialise an affine form as `i32` arithmetic. Query atoms become
    /// fresh calls; `Value` atoms are reused (validated for dominance by the
    /// caller).
    fn materialize(&mut self, f: &mut Function, a: &Affine) -> Result<ValueId, Decline> {
        let k = a
            .constant_part()
            .as_integer()
            .ok_or(Decline::Solve(SolveError::NonIntegralSolution))?;
        let mut acc = f.const_i32(k as i32);
        let mut acc_is_zero = k == 0;
        for (atom, c) in a.terms() {
            let c = c
                .as_integer()
                .ok_or(Decline::Solve(SolveError::NonIntegralSolution))?;
            let base = self.atom_value(f, atom)?;
            let term = if c == 1 {
                base
            } else {
                let cv = f.const_i32(c as i32);
                self.emit(
                    f,
                    Inst::Bin {
                        op: BinOp::Mul,
                        lhs: base,
                        rhs: cv,
                    },
                    Type::I32,
                )
            };
            acc = if acc_is_zero {
                term
            } else {
                self.emit(
                    f,
                    Inst::Bin {
                        op: BinOp::Add,
                        lhs: acc,
                        rhs: term,
                    },
                    Type::I32,
                )
            };
            acc_is_zero = false;
        }
        Ok(acc)
    }

    fn atom_value(&mut self, f: &mut Function, atom: Atom) -> Result<ValueId, Decline> {
        match atom {
            Atom::Value(v) => self.coerce_i32(f, v),
            _ => {
                let (b, d) = match atom {
                    Atom::LocalId(d) => (Builtin::LocalId, d),
                    Atom::GroupId(d) => (Builtin::GroupId, d),
                    Atom::GlobalId(d) => (Builtin::GlobalId, d),
                    Atom::LocalSize(d) => (Builtin::LocalSize, d),
                    Atom::GlobalSize(d) => (Builtin::GlobalSize, d),
                    Atom::NumGroups(d) => (Builtin::NumGroups, d),
                    Atom::Value(_) => unreachable!(),
                };
                let dim = f.const_i32(d as i32);
                let call = self.emit(
                    f,
                    Inst::Call {
                        builtin: b,
                        args: vec![dim],
                    },
                    Type::I64,
                );
                self.coerce_i32(f, call)
            }
        }
    }
}

/// Rewrite one local load (LL): solve the system and create its nGL
/// (paper §IV-D/E/F). On success the LL has been replaced and removed.
pub fn rewrite_ll(
    f: &mut Function,
    pattern: &StagingPattern,
    ls_dims: &[Affine],
    ll: ValueId,
    tainted: &HashSet<ValueId>,
) -> Result<LlRewrite, Decline> {
    let dims: Vec<u64> = {
        let buf = f.local_buf(pattern.buf);
        buf.dims.clone()
    };

    // S1: the LL data index.
    let ll_index = match f.inst(ll) {
        Some(Inst::Load { ptr }) => match f.inst(*ptr) {
            Some(Inst::Gep { index, .. }) => *index,
            _ => f.const_i32(0), // direct base access = element 0
        },
        _ => panic!("rewrite_ll on a non-load"),
    };
    let ll_tree = ExprTree::build(f, ll_index);
    let ll_flat = ll_tree.affine(f);
    let ll_dims = split_dims(&ll_flat, &dims).ok_or(Decline::SplitFailed)?;

    // S2: create and solve the linear system.
    let solution = solve(ls_dims, &ll_dims).map_err(Decline::Solve)?;

    // S3/S4: duplicate the GL pointer chain with the solution substituted.
    let gl_ptr = match f.inst(pattern.gl) {
        Some(Inst::Load { ptr }) => *ptr,
        _ => panic!("GL is not a load"),
    };
    let mut gl_tree = ExprTree::build(f, gl_ptr);
    if query_degree(f, &gl_tree, gl_tree.root()).is_none_or(|d| d > 1) {
        return Err(Decline::NonAffineGl(gl_tree.display_root(f)));
    }
    let dt = DomTree::compute(f);
    let (ll_blk, ll_idx) = position_of(f, ll);

    // Pass 1 — classify leaves and compute the `state` (needs_update) flags.
    #[derive(Clone, Copy, PartialEq)]
    enum LeafAction {
        Reuse,
        CloneCall,
        SubstLocal(u8),
        SubstGlobal(u8),
    }
    let post = gl_tree.post_order();
    let mut action: HashMap<u32, LeafAction> = HashMap::new();
    for &n in &post {
        if !gl_tree.is_leaf(n) {
            continue;
        }
        let v = gl_tree.node(n).value;
        let kind = gl_tree.leaf_kind(f, n).expect("leaf");
        let act = match kind {
            LeafKind::Const(_) | LeafKind::Param | LeafKind::LocalBuf => LeafAction::Reuse,
            LeafKind::Query(Builtin::LocalId, d) => {
                if solution.for_dim(d).is_none() {
                    return Err(Decline::MissingDim(d));
                }
                LeafAction::SubstLocal(d)
            }
            LeafKind::Query(Builtin::GlobalId, d) => {
                if solution.for_dim(d).is_none() {
                    return Err(Decline::MissingDim(d));
                }
                LeafAction::SubstGlobal(d)
            }
            LeafKind::Query(_, _) => {
                // Group-uniform query: reuse if it dominates, else re-emit.
                if available_at(f, &dt, v, ll_blk, ll_idx) {
                    LeafAction::Reuse
                } else {
                    LeafAction::CloneCall
                }
            }
            LeafKind::Phi | LeafKind::OtherCall => {
                if tainted.contains(&v) {
                    return Err(Decline::TaintedLeaf(display_value(f, v)));
                }
                if !available_at(f, &dt, v, ll_blk, ll_idx) {
                    return Err(Decline::LeafNotAvailable(display_value(f, v)));
                }
                LeafAction::Reuse
            }
        };
        if act != LeafAction::Reuse {
            gl_tree.mark_path_to_root(n);
        }
        action.insert(n.0, act);
    }
    // Internal nodes that do not dominate the LL must be cloned too.
    for &n in &post {
        if gl_tree.is_leaf(n) || gl_tree.node(n).needs_update {
            continue;
        }
        let v = gl_tree.node(n).value;
        if !available_at(f, &dt, v, ll_blk, ll_idx) {
            gl_tree.mark_path_to_root(n);
        }
    }
    // Cloned internal nodes need their *children* values available; a clean
    // child below a cloned parent is reused, so validate it.
    for &n in &post {
        if !gl_tree.node(n).needs_update {
            let v = gl_tree.node(n).value;
            let parent_cloned = gl_tree
                .node(n)
                .parent
                .map(|p| gl_tree.node(p).needs_update)
                .unwrap_or(false);
            if parent_cloned && !available_at(f, &dt, v, ll_blk, ll_idx) {
                return Err(Decline::LeafNotAvailable(display_value(f, v)));
            }
        }
    }

    // Pass 2 — materialise solutions and duplicate (Algorithm 1).
    let mut ins = Inserter {
        blk: ll_blk,
        pos: ll_idx,
    };
    let mut sol_cache: HashMap<u8, ValueId> = HashMap::new();
    let mut sol32 = |f: &mut Function, ins: &mut Inserter, d: u8| -> Result<ValueId, Decline> {
        if let Some(&v) = sol_cache.get(&d) {
            return Ok(v);
        }
        let a = solution.for_dim(d).expect("checked").clone();
        // Validate Value atoms' availability before reuse.
        for (atom, _) in a.terms() {
            if let Atom::Value(v) = atom {
                let dt = DomTree::compute(f);
                let cur = ins.pos;
                if !available_at(f, &dt, v, ins.blk, cur) {
                    return Err(Decline::LeafNotAvailable(display_value(f, v)));
                }
            }
        }
        let v = ins.materialize(f, &a)?;
        sol_cache.insert(d, v);
        Ok(v)
    };

    let mut built: HashMap<u32, ValueId> = HashMap::new();
    for &n in &post {
        let v = gl_tree.node(n).value;
        let out = if gl_tree.is_leaf(n) {
            match action.get(&n.0).copied().unwrap_or(LeafAction::Reuse) {
                LeafAction::Reuse => v,
                LeafAction::CloneCall => {
                    let inst = f.inst(v).expect("call leaf").clone();
                    let ty = f.ty(v);
                    ins.emit(f, inst, ty)
                }
                LeafAction::SubstLocal(d) => {
                    let s32 = sol32(f, &mut ins, d)?;
                    ins.emit(
                        f,
                        Inst::Cast {
                            kind: CastKind::SExt,
                            value: s32,
                            to: Type::I64,
                        },
                        Type::I64,
                    )
                }
                LeafAction::SubstGlobal(d) => {
                    // storer's gid = group_id(d) * local_size(d) + sol_d
                    let dim = f.const_i32(d as i32);
                    let wg = ins.emit(
                        f,
                        Inst::Call {
                            builtin: Builtin::GroupId,
                            args: vec![dim],
                        },
                        Type::I64,
                    );
                    let ls = ins.emit(
                        f,
                        Inst::Call {
                            builtin: Builtin::LocalSize,
                            args: vec![dim],
                        },
                        Type::I64,
                    );
                    let base = ins.emit(
                        f,
                        Inst::Bin {
                            op: BinOp::Mul,
                            lhs: wg,
                            rhs: ls,
                        },
                        Type::I64,
                    );
                    let s32 = sol32(f, &mut ins, d)?;
                    let s64 = ins.emit(
                        f,
                        Inst::Cast {
                            kind: CastKind::SExt,
                            value: s32,
                            to: Type::I64,
                        },
                        Type::I64,
                    );
                    ins.emit(
                        f,
                        Inst::Bin {
                            op: BinOp::Add,
                            lhs: base,
                            rhs: s64,
                        },
                        Type::I64,
                    )
                }
            }
        } else if gl_tree.node(n).needs_update {
            let mut inst = f.inst(v).expect("internal").clone();
            let children = gl_tree.node(n).children.clone();
            let mut it = children.iter();
            inst.map_operands(|_| {
                let c = it.next().expect("operand arity matches children");
                built[&c.0]
            });
            let ty = f.ty(v);
            ins.emit(f, inst, ty)
        } else {
            v
        };
        built.insert(n.0, out);
    }
    let new_ptr = built[&gl_tree.root().0];

    // The new global load (nGL), inserted right before the LL.
    let load_ty = f.ty(pattern.gl);
    let ngl = ins.emit(f, Inst::Load { ptr: new_ptr }, load_ty);
    let ngl_display = {
        let t = ExprTree::build(f, new_ptr);
        t.display_root(f)
    };

    // Replace all uses of the LL and delete it.
    f.replace_all_uses(ll, ngl);
    f.remove_inst(ll);

    Ok(LlRewrite {
        ngl,
        solution,
        ll_dims,
        ngl_display,
    })
}

fn display_value(f: &Function, v: ValueId) -> String {
    f.value(v)
        .name
        .clone()
        .unwrap_or_else(|| format!("v{}", v.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::detect;
    use crate::rational::Rational;
    use grover_frontend::{compile, BuildOptions};
    use grover_ir::LocalBufId;

    fn kernel(src: &str) -> Function {
        compile(src, &BuildOptions::new())
            .unwrap()
            .kernels
            .remove(0)
    }

    fn run_one(src: &str) -> (Function, Result<LlRewrite, Decline>) {
        let mut f = kernel(src);
        let p = detect(&f, LocalBufId(0)).unwrap();
        let ls_tree = ExprTree::build(&f, p.ls_index);
        let ls_flat = ls_tree.affine(&f);
        let dims = f.local_buf(p.buf).dims.clone();
        let ls_dims = split_dims(&ls_flat, &dims).unwrap();
        let tainted = lid_tainted(&f);
        let ll = p.lls[0];
        let r = rewrite_ll(&mut f, &p, &ls_dims, ll, &tainted);
        (f, r)
    }

    #[test]
    fn transpose_rewrite_succeeds() {
        let (f, r) = run_one(
            "__kernel void mt(__global float* in, __global float* out, int w) {
                 __local float lm[16][16];
                 int lx = get_local_id(0);
                 int ly = get_local_id(1);
                 int wx = get_group_id(0);
                 int wy = get_group_id(1);
                 lm[ly][lx] = in[(wy * 16 + ly) * w + (wx * 16 + lx)];
                 barrier(CLK_LOCAL_MEM_FENCE);
                 out[(wx * 16 + lx) * w + (wy * 16 + ly)] = lm[lx][ly];
             }",
        );
        let r = r.unwrap();
        assert_eq!(r.solution.display(), "(lx, ly) = (ly, lx)");
        assert!(grover_ir::verify(&f).is_ok(), "{:?}", grover_ir::verify(&f));
        // the nGL display should mention the width parameter
        assert!(r.ngl_display.contains('w'), "{}", r.ngl_display);
    }

    #[test]
    fn loop_counter_rhs_rewrite() {
        let (f, r) = run_one(
            "__kernel void nb(__global float* in, __global float* out) {
                 __local float tile[64];
                 int lx = get_local_id(0);
                 int gx = get_global_id(0);
                 tile[lx] = in[gx];
                 barrier(CLK_LOCAL_MEM_FENCE);
                 float acc = 0.0f;
                 for (int k = 0; k < 64; k++) { acc += tile[k]; }
                 out[gx] = acc;
             }",
        );
        let r = r.unwrap();
        // lx' = k; the nGL index must be group-base + k.
        assert!(grover_ir::verify(&f).is_ok(), "{:?}", grover_ir::verify(&f));
        assert_eq!(r.solution.len(), 1);
    }

    #[test]
    fn lid_through_phi_declines() {
        // Running offset initialised with lx: the loop itself is uniform
        // (every work-item runs 16 iterations) but the GL index is a phi
        // hiding a lid dependence.
        let (_, r) = run_one(
            "__kernel void bad(__global float* in, __global float* out) {
                 __local float lm[16];
                 int lx = get_local_id(0);
                 float s = 0.0f;
                 int j = lx;
                 for (int i = 0; i < 16; i++) {
                     lm[lx] = in[j];
                     barrier(CLK_LOCAL_MEM_FENCE);
                     s += lm[0];
                     j = j + 1;
                 }
                 out[lx] = s;
             }",
        );
        assert!(matches!(r, Err(Decline::TaintedLeaf(_))), "{r:?}");
    }

    #[test]
    fn non_affine_gl_declines() {
        // gx*gx: degree 2 in the work-item index — leaf substitution would
        // still be address-preserving here, but the pattern is outside the
        // paper's affine model and must be refused, not guessed at.
        let (_, r) = run_one(
            "__kernel void sq(__global float* in, __global float* out) {
                 __local float lm[8];
                 int lx = get_local_id(0);
                 int gx = get_global_id(0);
                 lm[lx] = in[gx * gx];
                 barrier(CLK_LOCAL_MEM_FENCE);
                 out[gx] = lm[7 - lx];
             }",
        );
        assert!(matches!(r, Err(Decline::NonAffineGl(_))), "{r:?}");
    }

    #[test]
    fn uniform_product_gl_is_affine() {
        // (wy*S + ly) * w is degree 1 — the width parameter is group
        // uniform — and must stay transformable.
        let (f, r) = run_one(
            "__kernel void row(__global float* in, __global float* out, int w) {
                 __local float lm[8];
                 int lx = get_local_id(0);
                 int wy = get_group_id(1);
                 int ly = get_local_id(1);
                 lm[ly] = in[(wy * 8 + ly) * w];
                 barrier(CLK_LOCAL_MEM_FENCE);
                 out[ly * w + lx] = lm[7 - ly];
             }",
        );
        let r = r.unwrap();
        assert!(grover_ir::verify(&f).is_ok(), "{:?}", grover_ir::verify(&f));
        assert!(r.ngl_display.contains('w'), "{}", r.ngl_display);
    }

    #[test]
    fn untainted_call_in_gl_index_is_reused() {
        // GL index clamps via min() over group-uniform values: the call is
        // an OtherCall leaf — untainted and dominating, so it is reused.
        let (f, r) = run_one(
            "__kernel void cl(__global float* in, __global float* out, int n) {
                 __local float lm[16];
                 int lx = get_local_id(0);
                 int wx = get_group_id(0);
                 int base = min(wx * 16, n - 16);
                 lm[lx] = in[base + lx];
                 barrier(CLK_LOCAL_MEM_FENCE);
                 out[wx * 16 + lx] = lm[15 - lx];
             }",
        );
        let r = r.unwrap();
        assert!(grover_ir::verify(&f).is_ok(), "{:?}", grover_ir::verify(&f));
        assert_eq!(r.solution.display(), "(lx) = (-lx + 15)");
    }

    #[test]
    fn tainted_call_in_gl_index_declines() {
        // min() over the *global id* hides a work-item dependence inside a
        // call leaf — must decline, not miscompile.
        let (_, r) = run_one(
            "__kernel void tc(__global float* in, __global float* out, int n) {
                 __local float lm[16];
                 int lx = get_local_id(0);
                 int gx = get_global_id(0);
                 int idx = min(gx, n - 1);
                 lm[lx] = in[idx];
                 barrier(CLK_LOCAL_MEM_FENCE);
                 out[gx] = lm[15 - lx];
             }",
        );
        assert!(matches!(r, Err(Decline::TaintedLeaf(_))), "{r:?}");
    }

    #[test]
    fn taint_set_is_transitive() {
        let f = kernel(
            "__kernel void t(__global int* a) {
                 int lx = get_local_id(0);
                 int y = lx * 2 + 1;
                 int z = a[0];
                 a[1] = y + z;
             }",
        );
        let t = lid_tainted(&f);
        // find the add y+z: it must be tainted; the load z must not.
        let mut found = false;
        for (_, iv) in f.iter_insts() {
            if let Some(Inst::Load { .. }) = f.inst(iv) {
                assert!(!t.contains(&iv));
                found = true;
            }
        }
        assert!(found);
        assert!(!t.is_empty());
    }

    #[test]
    fn split_dims_3d() {
        let a = Affine::atom(Atom::LocalId(0))
            .add(&Affine::atom(Atom::LocalId(1)).scale(Rational::int(4)))
            .add(&Affine::atom(Atom::LocalId(2)).scale(Rational::int(12)));
        // dims [2][3][4]: strides 12, 4, 1 → z-coeff 12 → dim0 = lz, dim1 = ly, dim2 = lx
        let d = split_dims(&a, &[2, 3, 4]).unwrap();
        assert_eq!(d[0], Affine::atom(Atom::LocalId(2)));
        assert_eq!(d[1], Affine::atom(Atom::LocalId(1)));
        assert_eq!(d[2], Affine::atom(Atom::LocalId(0)));
    }
}
