//! Index expression trees (paper §III-C and §IV-B, Fig. 6).
//!
//! An [`ExprTree`] represents one data-index computation. Leaves are the
//! values the recursive builder stops at — call instructions, constants,
//! function arguments and phi nodes — exactly the stop set of the paper's
//! algorithm. Internal nodes are ordinary arithmetic instructions. Each node
//! carries the paper's *state* flag (`needs_update`) used during instruction
//! duplication (§IV-E).

use grover_ir::{BinOp, Builtin, CastKind, ConstVal, Function, Inst, ValueDef, ValueId};

use crate::affine::{Affine, Atom};
use crate::rational::Rational;

/// Index of a node within its tree.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// One tree node (paper Fig. 6: value, state, children, parent).
#[derive(Clone, Debug)]
pub struct ExprNode {
    /// The IR value this node stands for.
    pub value: ValueId,
    /// The paper's `state` field: does this node need to be re-created when
    /// duplicating the expression for the new global load?
    pub needs_update: bool,
    /// Child nodes (operands), in operand order.
    pub children: Vec<NodeId>,
    /// Parent node (`None` for the root).
    pub parent: Option<NodeId>,
}

/// An index expression tree rooted at a data-index value.
#[derive(Clone, Debug)]
pub struct ExprTree {
    nodes: Vec<ExprNode>,
    root: NodeId,
}

/// Classification of a leaf node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LeafKind {
    /// A constant.
    Const(ConstVal),
    /// A work-item query call with a constant dimension argument.
    Query(Builtin, u8),
    /// A call whose dimension is not constant, or a non-query builtin call.
    OtherCall,
    /// A kernel parameter.
    Param,
    /// A phi node (loop counters etc.).
    Phi,
    /// Pointer to a local buffer (appears only in pointer trees).
    LocalBuf,
}

impl ExprTree {
    /// Build the tree for `index` in `f`, recursing through arithmetic and
    /// stopping at calls, constants, arguments and phi nodes (§IV-B).
    pub fn build(f: &Function, index: ValueId) -> ExprTree {
        let mut t = ExprTree {
            nodes: Vec::new(),
            root: NodeId(0),
        };
        let root = t.build_node(f, index, None);
        t.root = root;
        t
    }

    fn build_node(&mut self, f: &Function, v: ValueId, parent: Option<NodeId>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(ExprNode {
            value: v,
            needs_update: false,
            children: Vec::new(),
            parent,
        });
        let is_internal = matches!(
            f.value(v).def,
            ValueDef::Inst(ref i) if !matches!(i, Inst::Call { .. } | Inst::Phi { .. })
        );
        if is_internal {
            let operands = f.inst(v).expect("inst").operands();
            for op in operands {
                let c = self.build_node(f, op, Some(id));
                self.nodes[id.index()].children.push(c);
            }
        }
        id
    }

    /// The root node (the whole index expression).
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// One node by id.
    pub fn node(&self, n: NodeId) -> &ExprNode {
        &self.nodes[n.index()]
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, n: NodeId) -> &mut ExprNode {
        &mut self.nodes[n.index()]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no nodes (never true after `build`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `n` is a leaf (call / const / argument / phi).
    pub fn is_leaf(&self, n: NodeId) -> bool {
        self.node(n).children.is_empty()
    }

    /// Classify a leaf node.
    pub fn leaf_kind(&self, f: &Function, n: NodeId) -> Option<LeafKind> {
        if !self.is_leaf(n) {
            return None;
        }
        let v = self.node(n).value;
        Some(match &f.value(v).def {
            ValueDef::Const(c) => LeafKind::Const(*c),
            ValueDef::Param(_) => LeafKind::Param,
            ValueDef::LocalBuf(_) => LeafKind::LocalBuf,
            ValueDef::Inst(Inst::Call { builtin, args }) if builtin.is_workitem_query() => {
                match f.as_const_int(args[0]) {
                    Some(d) if (0..3).contains(&d) => LeafKind::Query(*builtin, d as u8),
                    _ => LeafKind::OtherCall,
                }
            }
            ValueDef::Inst(Inst::Call { .. }) => LeafKind::OtherCall,
            ValueDef::Inst(Inst::Phi { .. }) => LeafKind::Phi,
            ValueDef::Inst(_) => {
                // A leaf can only be a stop-set value; internal instructions
                // always have children.
                unreachable!("internal node classified as leaf")
            }
        })
    }

    /// Iterate node ids in post-order (children before parents), the order
    /// Algorithm 1 duplicates instructions in.
    pub fn post_order(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        self.post_order_from(self.root, &mut out);
        out
    }

    fn post_order_from(&self, n: NodeId, out: &mut Vec<NodeId>) {
        for &c in &self.node(n).children {
            self.post_order_from(c, out);
        }
        out.push(n);
    }

    /// Mark `n` and all its ancestors as needing update (used after a leaf
    /// substitution: the paper "backtracks the tree until the root node").
    pub fn mark_path_to_root(&mut self, n: NodeId) {
        let mut cur = Some(n);
        while let Some(c) = cur {
            self.node_mut(c).needs_update = true;
            cur = self.node(c).parent;
        }
    }

    /// Lower the tree to an affine form over [`Atom`]s.
    ///
    /// Unsupported operations (non-constant multiplies, divisions, selects…)
    /// collapse into opaque [`Atom::Value`] atoms of the node's own value —
    /// sound for right-hand sides (the value is known to the executing
    /// work-item) and rejected later for LS indices, which must be pure
    /// `get_local_id` combinations.
    pub fn to_affine(&self, f: &Function, n: NodeId) -> Affine {
        let v = self.node(n).value;
        if self.is_leaf(n) {
            return match self.leaf_kind(f, n).expect("leaf") {
                LeafKind::Const(c) => match c.as_int() {
                    Some(k) => Affine::constant(k),
                    None => Affine::atom(Atom::Value(v)),
                },
                LeafKind::Query(b, d) => Affine::atom(query_atom(b, d)),
                LeafKind::OtherCall | LeafKind::Param | LeafKind::Phi | LeafKind::LocalBuf => {
                    Affine::atom(Atom::Value(v))
                }
            };
        }
        let inst = f.inst(v).expect("internal node is an instruction");
        let ch = &self.node(n).children;
        match inst {
            Inst::Bin { op, .. } => {
                let l = self.to_affine(f, ch[0]);
                let r = self.to_affine(f, ch[1]);
                match op {
                    BinOp::Add => l.add(&r),
                    BinOp::Sub => l.sub(&r),
                    BinOp::Mul => l.mul(&r).unwrap_or_else(|| Affine::atom(Atom::Value(v))),
                    BinOp::Shl => match r.is_constant().then(|| r.constant_part().as_integer()) {
                        Some(Some(s)) if (0..31).contains(&s) => l.scale(Rational::int(1 << s)),
                        _ => Affine::atom(Atom::Value(v)),
                    },
                    _ => Affine::atom(Atom::Value(v)),
                }
            }
            // Index arithmetic in the kernels stays well inside 32 bits;
            // width changes are value-preserving there.
            Inst::Cast {
                kind: CastKind::SExt | CastKind::ZExt | CastKind::Trunc,
                ..
            } => self.to_affine(f, ch[0]),
            _ => Affine::atom(Atom::Value(v)),
        }
    }

    /// Affine form of the whole tree.
    pub fn affine(&self, f: &Function) -> Affine {
        self.to_affine(f, self.root)
    }

    /// Pretty-print the tree as a C-like expression.
    pub fn display(&self, f: &Function, n: NodeId) -> String {
        let v = self.node(n).value;
        if self.is_leaf(n) {
            return match self.leaf_kind(f, n).expect("leaf") {
                LeafKind::Const(c) => match c.as_int() {
                    Some(k) => k.to_string(),
                    None => format!("{:?}", c),
                },
                LeafKind::Query(b, d) => query_atom(b, d).display_name(),
                _ => f
                    .value(v)
                    .name
                    .clone()
                    .unwrap_or_else(|| format!("v{}", v.0)),
            };
        }
        let inst = f.inst(v).expect("inst");
        let ch = &self.node(n).children;
        match inst {
            Inst::Bin { op, .. } => {
                let sym = match op {
                    BinOp::Add | BinOp::FAdd => "+",
                    BinOp::Sub | BinOp::FSub => "-",
                    BinOp::Mul | BinOp::FMul => "*",
                    BinOp::SDiv | BinOp::UDiv | BinOp::FDiv => "/",
                    BinOp::SRem | BinOp::URem => "%",
                    BinOp::Shl => "<<",
                    BinOp::LShr | BinOp::AShr => ">>",
                    BinOp::And => "&",
                    BinOp::Or => "|",
                    BinOp::Xor => "^",
                    BinOp::FMin => "min",
                    BinOp::FMax => "max",
                };
                format!(
                    "({} {} {})",
                    self.display(f, ch[0]),
                    sym,
                    self.display(f, ch[1])
                )
            }
            Inst::Cast { .. } => self.display(f, ch[0]),
            Inst::Gep { .. } => {
                format!("{}[{}]", self.display(f, ch[0]), self.display(f, ch[1]))
            }
            _ => format!("v{}", v.0),
        }
    }

    /// Pretty-print from the root.
    pub fn display_root(&self, f: &Function) -> String {
        self.display(f, self.root)
    }
}

/// Map a work-item query call to its atom.
pub fn query_atom(b: Builtin, d: u8) -> Atom {
    match b {
        Builtin::LocalId => Atom::LocalId(d),
        Builtin::GroupId => Atom::GroupId(d),
        Builtin::GlobalId => Atom::GlobalId(d),
        Builtin::LocalSize => Atom::LocalSize(d),
        Builtin::GlobalSize => Atom::GlobalSize(d),
        Builtin::NumGroups => Atom::NumGroups(d),
        _ => unreachable!("not a work-item query"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grover_frontend::{compile, BuildOptions};

    fn kernel(src: &str) -> Function {
        compile(src, &BuildOptions::new())
            .unwrap()
            .kernels
            .remove(0)
    }

    /// Find the index operand of the first store to __local memory.
    fn ls_index(f: &Function) -> ValueId {
        for (_, iv) in f.iter_insts() {
            if let Some(Inst::Store { ptr, .. }) = f.inst(iv) {
                if f.ty(*ptr).address_space() == Some(grover_ir::AddressSpace::Local) {
                    if let Some(Inst::Gep { index, .. }) = f.inst(*ptr) {
                        return *index;
                    }
                }
            }
        }
        panic!("no local store found");
    }

    #[test]
    fn mt_ls_tree_is_affine() {
        let f = kernel(
            "__kernel void mt(__global float* in) {
                 __local float lm[16][16];
                 int lx = get_local_id(0);
                 int ly = get_local_id(1);
                 lm[ly][lx] = in[0];
                 barrier(CLK_LOCAL_MEM_FENCE);
                 in[0] = lm[lx][ly];
             }",
        );
        let idx = ls_index(&f);
        let t = ExprTree::build(&f, idx);
        let a = t.affine(&f);
        // flat index = ly*16 + lx
        assert_eq!(a.coeff(Atom::LocalId(1)), Rational::int(16));
        assert_eq!(a.coeff(Atom::LocalId(0)), Rational::ONE);
        assert!(a.is_local_id_only());
        let (h, l) = a.split_by_stride(16).unwrap();
        assert_eq!(h, Affine::atom(Atom::LocalId(1)));
        assert_eq!(l, Affine::atom(Atom::LocalId(0)));
    }

    #[test]
    fn loop_var_becomes_opaque_atom() {
        let f = kernel(
            "__kernel void k(__global float* in) {
                 __local float lm[8];
                 int lx = get_local_id(0);
                 lm[lx] = in[lx];
                 barrier(CLK_LOCAL_MEM_FENCE);
                 float acc = 0.0f;
                 for (int i = 0; i < 8; i++) { acc += lm[i]; }
                 in[lx] = acc;
             }",
        );
        // Find the local load index (inside the loop): it is the phi `i`.
        for (_, iv) in f.iter_insts() {
            if let Some(Inst::Load { ptr }) = f.inst(iv) {
                if f.ty(*ptr).address_space() == Some(grover_ir::AddressSpace::Local) {
                    let Some(Inst::Gep { index, .. }) = f.inst(*ptr) else {
                        panic!()
                    };
                    let t = ExprTree::build(&f, *index);
                    let a = t.affine(&f);
                    assert_eq!(a.num_terms(), 1);
                    let (atom, c) = a.terms().next().unwrap();
                    assert!(matches!(atom, Atom::Value(_)));
                    assert_eq!(c, Rational::ONE);
                    return;
                }
            }
        }
        panic!("no local load");
    }

    #[test]
    fn post_order_visits_children_first() {
        let f = kernel(
            "__kernel void k(__global float* a) {
                 int lx = get_local_id(0);
                 int ly = get_local_id(1);
                 a[ly * 16 + lx] = 1.0f;
             }",
        );
        // index tree for the store
        for (_, iv) in f.iter_insts() {
            if let Some(Inst::Store { ptr, .. }) = f.inst(iv) {
                let Some(Inst::Gep { index, .. }) = f.inst(*ptr) else {
                    continue;
                };
                let t = ExprTree::build(&f, *index);
                let po = t.post_order();
                assert_eq!(*po.last().unwrap(), t.root());
                // Every child appears before its parent.
                for (i, &n) in po.iter().enumerate() {
                    if let Some(p) = t.node(n).parent {
                        let pi = po.iter().position(|&x| x == p).unwrap();
                        assert!(pi > i);
                    }
                }
                return;
            }
        }
        panic!("no store");
    }

    #[test]
    fn mark_path_sets_state() {
        let f = kernel(
            "__kernel void k(__global float* a) {
                 int lx = get_local_id(0);
                 a[lx * 4 + 1] = 1.0f;
             }",
        );
        for (_, iv) in f.iter_insts() {
            if let Some(Inst::Store { ptr, .. }) = f.inst(iv) {
                let Some(Inst::Gep { index, .. }) = f.inst(*ptr) else {
                    continue;
                };
                let mut t = ExprTree::build(&f, *index);
                // find the lx leaf (a Query leaf behind the trunc internal node)
                let leaf = t
                    .post_order()
                    .into_iter()
                    .find(|&n| {
                        matches!(
                            t.leaf_kind(&f, n),
                            Some(LeafKind::Query(Builtin::LocalId, 0))
                        )
                    })
                    .expect("lx leaf");
                t.mark_path_to_root(leaf);
                assert!(t.node(t.root()).needs_update);
                assert!(t.node(leaf).needs_update);
                // The constant leaf `1` must remain clean.
                let const_leaf = t
                    .post_order()
                    .into_iter()
                    .find(|&n| matches!(t.leaf_kind(&f, n), Some(LeafKind::Const(_))))
                    .map(|n| t.node(n).needs_update);
                // (some constant leaf untouched — the `4` or the `1`)
                assert_eq!(const_leaf, Some(false));
                return;
            }
        }
        panic!("no store");
    }

    #[test]
    fn display_is_c_like() {
        let f = kernel(
            "__kernel void k(__global float* a) {
                 int lx = get_local_id(0);
                 int ly = get_local_id(1);
                 a[ly * 16 + lx] = 1.0f;
             }",
        );
        for (_, iv) in f.iter_insts() {
            if let Some(Inst::Store { ptr, .. }) = f.inst(iv) {
                let Some(Inst::Gep { index, .. }) = f.inst(*ptr) else {
                    continue;
                };
                let t = ExprTree::build(&f, *index);
                let s = t.display_root(&f);
                assert!(s.contains("lx"), "{s}");
                assert!(s.contains("ly"), "{s}");
                assert!(s.contains("16"), "{s}");
                return;
            }
        }
    }
}
