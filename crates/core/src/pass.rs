//! The Grover pass: orchestrates detection, solving, rewriting and cleanup
//! for every `__local` buffer of a kernel, and produces the symbolic report
//! behind the paper's Table III.

use grover_ir::passes::FunctionPass;
use grover_ir::{AddressSpace, BarrierScope, Function, Inst, LocalBufId, ValueId};

use crate::affine::Affine;
use crate::candidates::{detect, CandidateError};
use crate::transform::{lid_tainted, rewrite_ll, split_dims, Decline, LlRewrite};
use crate::tree::ExprTree;

/// Options controlling which buffers Grover disables.
#[derive(Clone, Debug, Default)]
pub struct GroverOptions {
    /// Only disable the named buffers (`None` = all). This is how the
    /// paper's NVD-MM-A / NVD-MM-B / NVD-MM-AB variants are produced from
    /// the one `oclMatrixMul` kernel.
    pub buffers: Option<Vec<String>>,
    /// Keep local barriers even when no local memory remains. Used by the
    /// barrier-elision ablation; default `false` (barriers are removed, as
    /// in the paper's Fig. 1(b)).
    pub keep_barriers: bool,
}

/// What happened to one buffer.
#[derive(Clone, Debug)]
pub enum BufferOutcome {
    /// Local-memory usage was removed.
    Removed,
    /// The buffer did not match the staging pattern.
    NotCandidate(CandidateError),
    /// The reversing analysis declined.
    Declined(Decline),
    /// The buffer was excluded by [`GroverOptions::buffers`].
    Skipped,
}

impl BufferOutcome {
    /// Whether the buffer's local memory was removed.
    pub fn is_removed(&self) -> bool {
        matches!(self, BufferOutcome::Removed)
    }

    /// A stable machine-readable tag for this outcome (`removed`,
    /// `not_candidate`, `declined`, `skipped`).
    pub fn kind(&self) -> &'static str {
        match self {
            BufferOutcome::Removed => "removed",
            BufferOutcome::NotCandidate(_) => "not_candidate",
            BufferOutcome::Declined(_) => "declined",
            BufferOutcome::Skipped => "skipped",
        }
    }

    /// The structured reason behind a negative outcome, if any: the
    /// [`CandidateError`] or [`Decline`] rendered via `Display`.
    pub fn reason(&self) -> Option<String> {
        match self {
            BufferOutcome::Removed | BufferOutcome::Skipped => None,
            BufferOutcome::NotCandidate(e) => Some(e.to_string()),
            BufferOutcome::Declined(d) => Some(d.to_string()),
        }
    }
}

/// Per-buffer symbolic report (one row of the paper's Table III).
#[derive(Clone, Debug)]
pub struct BufferReport {
    /// Buffer name.
    pub buffer: String,
    /// What happened to the buffer.
    pub outcome: BufferOutcome,
    /// Pretty-printed GL pointer expression.
    pub gl: Option<String>,
    /// Per-dimension LS data index.
    pub ls_dims: Vec<Affine>,
    /// Per-LL: per-dimension data index.
    pub ll_dims: Vec<Vec<Affine>>,
    /// Per-LL: rendered data index with source-level atom names.
    pub ll_display: Vec<String>,
    /// Per-LL: solved correspondence (`(lx, ly) = (ly, lx)`).
    pub solutions: Vec<String>,
    /// Per-LL: pretty-printed nGL pointer expression.
    pub ngl: Vec<String>,
}

impl BufferReport {
    /// Whether this buffer's handling modified the kernel.
    pub fn changed(&self) -> bool {
        self.outcome.is_removed()
    }
}

/// Whole-kernel report.
#[derive(Clone, Debug, Default)]
pub struct GroverReport {
    /// Kernel name the report describes.
    pub kernel: String,
    /// One entry per `__local` buffer, in declaration order.
    pub buffers: Vec<BufferReport>,
    /// Local barriers removed during cleanup.
    pub barriers_removed: usize,
    /// Instructions removed by the final DCE.
    pub insts_removed: usize,
}

impl GroverReport {
    /// Did every (selected) buffer get its local memory removed?
    pub fn all_removed(&self) -> bool {
        self.buffers
            .iter()
            .filter(|b| !matches!(b.outcome, BufferOutcome::Skipped))
            .all(|b| b.outcome.is_removed())
    }

    /// Number of buffers removed.
    pub fn removed_count(&self) -> usize {
        self.buffers
            .iter()
            .filter(|b| b.outcome.is_removed())
            .count()
    }

    /// Render the report as a human-readable table block.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "kernel {}:", self.kernel);
        for b in &self.buffers {
            let _ = write!(s, "  __local {}: ", b.buffer);
            match &b.outcome {
                BufferOutcome::Removed => {
                    let _ = writeln!(s, "removed");
                }
                BufferOutcome::NotCandidate(e) => {
                    let _ = writeln!(s, "not a candidate ({e})");
                }
                BufferOutcome::Declined(d) => {
                    let _ = writeln!(s, "declined ({d})");
                }
                BufferOutcome::Skipped => {
                    let _ = writeln!(s, "skipped");
                }
            }
            if let Some(gl) = &b.gl {
                let _ = writeln!(s, "    GL : {gl}");
            }
            if !b.ls_dims.is_empty() {
                let d: Vec<String> = b.ls_dims.iter().map(|a| a.to_string()).collect();
                let _ = writeln!(s, "    LS : ({})", d.join(", "));
            }
            for ((ll, sol), ngl) in b.ll_display.iter().zip(&b.solutions).zip(&b.ngl) {
                let _ = writeln!(s, "    LL : ({ll})   solve {sol}   nGL: {ngl}");
            }
        }
        if self.barriers_removed > 0 {
            let _ = writeln!(s, "  removed {} barrier(s)", self.barriers_removed);
        }
        s
    }
}

/// The Grover pass.
#[derive(Clone, Debug, Default)]
pub struct Grover {
    /// Behaviour options.
    pub options: GroverOptions,
}

impl Grover {
    /// A pass instance with default options (disable every buffer).
    pub fn new() -> Grover {
        Grover::default()
    }

    /// A pass instance with explicit options.
    pub fn with_options(options: GroverOptions) -> Grover {
        Grover { options }
    }

    /// Restrict to specific buffers by name.
    pub fn for_buffers(names: &[&str]) -> Grover {
        Grover {
            options: GroverOptions {
                buffers: Some(names.iter().map(|s| s.to_string()).collect()),
                keep_barriers: false,
            },
        }
    }

    /// Run on a kernel, returning the detailed report.
    pub fn run_on(&self, f: &mut Function) -> GroverReport {
        self.run_on_observed(f, &grover_obs::NOOP, None)
    }

    /// [`Grover::run_on`] with telemetry: records one `grover.pass` span on
    /// `recorder` (under `parent`, if given) carrying the kernel name,
    /// buffer/removal counts and cleanup statistics, plus one `buffer`
    /// event per `__local` buffer with its [`BufferOutcome::kind`] and
    /// structured [`BufferOutcome::reason`]. With a disabled recorder this
    /// is exactly `run_on`.
    pub fn run_on_observed(
        &self,
        f: &mut Function,
        recorder: &dyn grover_obs::Recorder,
        parent: Option<grover_obs::SpanId>,
    ) -> GroverReport {
        let span = recorder
            .enabled()
            .then(|| recorder.span_start("grover.pass", parent));
        let report = self.run_on_inner(f);
        if let Some(span) = span {
            use grover_obs::Value;
            recorder.span_attr(span, "kernel", Value::from(report.kernel.as_str()));
            recorder.span_attr(span, "buffers", Value::from(report.buffers.len()));
            recorder.span_attr(span, "removed", Value::from(report.removed_count()));
            recorder.span_attr(span, "all_removed", Value::from(report.all_removed()));
            recorder.span_attr(
                span,
                "barriers_removed",
                Value::from(report.barriers_removed),
            );
            recorder.span_attr(span, "insts_removed", Value::from(report.insts_removed));
            for b in &report.buffers {
                let mut attrs = vec![
                    ("buffer", Value::from(b.buffer.as_str())),
                    ("outcome", Value::from(b.outcome.kind())),
                ];
                if let Some(reason) = b.outcome.reason() {
                    attrs.push(("reason", Value::from(reason)));
                }
                for sol in &b.solutions {
                    attrs.push(("solution", Value::from(sol.as_str())));
                }
                recorder.event("buffer", Some(span), &attrs);
            }
            recorder.span_end(span);
        }
        report
    }

    /// Since PR 9 this routes through the composable pipeline: the default
    /// sequence (`local-removal, barrier-elim, index-simplify`, minus
    /// `barrier-elim` under `keep_barriers`) reproduces the pre-split
    /// monolithic transform byte-for-byte — gated by the golden snapshots
    /// under `tests/golden/passes/`.
    fn run_on_inner(&self, f: &mut Function) -> GroverReport {
        let sequence = crate::pipeline::Sequence::for_options(&self.options);
        crate::pipeline::PassManager::new(sequence, self.options.clone())
            .run(f)
            .report
    }
}

/// Disable one buffer: detect the staging pattern, solve, rewrite every LL
/// and commit — or return the structured refusal. The kernel is untouched
/// unless every LL rewrite succeeds (scratch-clone commit).
pub(crate) fn disable_buffer(f: &mut Function, buf: LocalBufId, name: String) -> BufferReport {
    let mut br = BufferReport {
        buffer: name,
        outcome: BufferOutcome::Removed,
        gl: None,
        ls_dims: Vec::new(),
        ll_dims: Vec::new(),
        ll_display: Vec::new(),
        solutions: Vec::new(),
        ngl: Vec::new(),
    };
    let pattern = match detect(f, buf) {
        Ok(p) => p,
        Err(e) => {
            br.outcome = BufferOutcome::NotCandidate(e);
            return br;
        }
    };
    // Symbolic GL for the report.
    let gl_ptr = match f.inst(pattern.gl) {
        Some(Inst::Load { ptr }) => *ptr,
        _ => unreachable!(),
    };
    br.gl = Some(ExprTree::build(f, gl_ptr).display_root(f));

    // LS data index (per dimension).
    let dims = f.local_buf(buf).dims.clone();
    let ls_flat = ExprTree::build(f, pattern.ls_index).affine(f);
    let Some(ls_dims) = split_dims(&ls_flat, &dims) else {
        br.outcome = BufferOutcome::Declined(Decline::SplitFailed);
        return br;
    };
    br.ls_dims = ls_dims.clone();

    let tainted = lid_tainted(f);

    // Rewrite every LL. Collect rewrites; if any declines, the kernel
    // must stay untouched — run on a scratch clone first.
    let mut scratch = f.clone();
    let mut rewrites: Vec<LlRewrite> = Vec::new();
    for &ll in &pattern.lls {
        match rewrite_ll(&mut scratch, &pattern, &ls_dims, ll, &tainted) {
            Ok(r) => rewrites.push(r),
            Err(d) => {
                br.outcome = BufferOutcome::Declined(d);
                return br;
            }
        }
    }
    // All succeeded: remove the staging stores and the buffer, commit.
    for &st in &pattern.all_stores {
        scratch.remove_inst(st);
    }
    scratch.mark_local_buf_removed(buf);
    *f = scratch;

    for r in rewrites {
        br.solutions.push(r.solution.display_in(f));
        br.ll_display.push(
            r.ll_dims
                .iter()
                .map(|a| a.display_in(f))
                .collect::<Vec<_>>()
                .join(", "),
        );
        br.ll_dims.push(r.ll_dims);
        br.ngl.push(r.ngl_display);
    }
    br
}

impl FunctionPass for Grover {
    fn name(&self) -> &'static str {
        "grover"
    }

    fn run(&mut self, f: &mut Function) -> bool {
        let before = f.local_mem_bytes();
        let _ = self.run_on(f);
        f.local_mem_bytes() != before
    }
}

/// Any load/store through a `__local` pointer left?
pub fn has_local_traffic(f: &Function) -> bool {
    for (_, iv) in f.iter_insts() {
        match f.inst(iv) {
            Some(Inst::Load { ptr }) | Some(Inst::Store { ptr, .. })
                if f.ty(*ptr).address_space() == Some(AddressSpace::Local) =>
            {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// Remove local barriers (Both-scope barriers are narrowed to Global).
pub(crate) fn remove_local_barriers(f: &mut Function) -> usize {
    let mut removed = 0;
    let targets: Vec<ValueId> = f
        .iter_insts()
        .filter(|&(_, iv)| matches!(f.inst(iv), Some(Inst::Barrier { .. })))
        .map(|(_, iv)| iv)
        .collect();
    for iv in targets {
        let Some(Inst::Barrier { scope }) = f.inst(iv).cloned() else {
            continue;
        };
        match scope {
            BarrierScope::Local => {
                f.remove_inst(iv);
                removed += 1;
            }
            BarrierScope::Both => {
                if let Some(Inst::Barrier { scope }) = f.inst_mut(iv) {
                    *scope = BarrierScope::Global;
                }
                removed += 1;
            }
            BarrierScope::Global => {}
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use grover_frontend::{compile, BuildOptions};

    fn kernel(src: &str) -> Function {
        compile(src, &BuildOptions::new())
            .unwrap()
            .kernels
            .remove(0)
    }

    const MT: &str = "__kernel void mt(__global float* in, __global float* out, int w) {
        __local float lm[16][16];
        int lx = get_local_id(0);
        int ly = get_local_id(1);
        int wx = get_group_id(0);
        int wy = get_group_id(1);
        lm[ly][lx] = in[(wy * 16 + ly) * w + (wx * 16 + lx)];
        barrier(CLK_LOCAL_MEM_FENCE);
        out[(wx * 16 + lx) * w + (wy * 16 + ly)] = lm[lx][ly];
    }";

    #[test]
    fn transpose_fully_disabled() {
        let mut f = kernel(MT);
        let report = Grover::new().run_on(&mut f);
        assert!(report.all_removed(), "{}", report.to_text());
        assert_eq!(f.local_mem_bytes(), 0);
        assert!(!has_local_traffic(&f));
        assert_eq!(report.barriers_removed, 1);
        // No barrier instruction remains.
        let barriers = f
            .iter_insts()
            .filter(|&(_, iv)| matches!(f.inst(iv), Some(Inst::Barrier { .. })))
            .count();
        assert_eq!(barriers, 0);
        assert!(grover_ir::verify(&f).is_ok(), "{:?}", grover_ir::verify(&f));
        assert_eq!(report.buffers[0].solutions[0], "(lx, ly) = (ly, lx)");
    }

    #[test]
    fn pass_reports_change() {
        let mut f = kernel(MT);
        let mut g = Grover::new();
        assert!(g.run(&mut f));
        assert!(!g.run(&mut f)); // idempotent
    }

    #[test]
    fn selective_buffer_removal_keeps_barrier() {
        // Two staged buffers; only `a` removed -> barrier must remain.
        let src = "__kernel void two(__global float* pa, __global float* pb, __global float* out) {
            __local float a[16];
            __local float b[16];
            int lx = get_local_id(0);
            int gx = get_global_id(0);
            a[lx] = pa[gx];
            b[lx] = pb[gx];
            barrier(CLK_LOCAL_MEM_FENCE);
            out[gx] = a[15 - lx] + b[15 - lx];
        }";
        let mut f = kernel(src);
        let report = Grover::for_buffers(&["a"]).run_on(&mut f);
        assert_eq!(report.removed_count(), 1);
        assert!(has_local_traffic(&f));
        assert_eq!(report.barriers_removed, 0);
        let barriers = f
            .iter_insts()
            .filter(|&(_, iv)| matches!(f.inst(iv), Some(Inst::Barrier { .. })))
            .count();
        assert_eq!(barriers, 1);
        assert!(grover_ir::verify(&f).is_ok());
        // Removing the second buffer afterwards also drops the barrier.
        let report2 = Grover::new().run_on(&mut f);
        assert!(report2.all_removed());
        assert_eq!(report2.barriers_removed, 1);
        assert_eq!(f.local_mem_bytes(), 0);
    }

    #[test]
    fn reduction_left_untouched() {
        let src = "__kernel void red(__global float* in, __global float* out) {
            __local float acc[16];
            int lx = get_local_id(0);
            acc[lx] = in[lx];
            barrier(CLK_LOCAL_MEM_FENCE);
            acc[lx] = acc[lx] + 1.0f;
            barrier(CLK_LOCAL_MEM_FENCE);
            out[lx] = acc[lx];
        }";
        let mut f = kernel(src);
        let before = f.num_insts();
        let report = Grover::new().run_on(&mut f);
        assert!(!report.all_removed());
        assert!(matches!(
            report.buffers[0].outcome,
            BufferOutcome::NotCandidate(_)
        ));
        assert!(has_local_traffic(&f));
        assert_eq!(f.num_insts(), before);
    }

    #[test]
    fn declined_kernel_unmodified() {
        // Non-invertible: every work-item stores to slot 0.
        let src = "__kernel void sing(__global float* in, __global float* out) {
            __local float lm[16];
            int lx = get_local_id(0);
            lm[0] = in[lx];
            barrier(CLK_LOCAL_MEM_FENCE);
            out[lx] = lm[0];
        }";
        let mut f = kernel(src);
        let report = Grover::new().run_on(&mut f);
        // LS = (0): constant row with RHS 0 is consistent, no unknowns —
        // but GL uses lx with no solution — MissingDim.
        assert!(!report.all_removed(), "{}", report.to_text());
        assert!(has_local_traffic(&f));
    }

    #[test]
    fn observed_pass_records_buffer_outcomes() {
        let mut f = kernel(MT);
        let rec = grover_obs::MemoryRecorder::new();
        let report = Grover::new().run_on_observed(&mut f, &rec, None);
        assert!(report.all_removed());
        let snap = rec.snapshot();
        let span = snap.span("grover.pass").expect("pass span recorded");
        assert_eq!(span.attr_str("kernel"), Some("mt"));
        assert_eq!(span.attr_u64("removed"), Some(1));
        assert_eq!(span.attr_u64("barriers_removed"), Some(1));
        let buffers = snap.events_named("buffer");
        assert_eq!(buffers.len(), 1);
        assert_eq!(
            buffers[0].attr("outcome").and_then(|v| v.as_str()),
            Some("removed")
        );
    }

    #[test]
    fn outcome_kind_and_reason_are_structured() {
        let src = "__kernel void red(__global float* in, __global float* out) {
            __local float acc[16];
            int lx = get_local_id(0);
            acc[lx] = in[lx];
            barrier(CLK_LOCAL_MEM_FENCE);
            acc[lx] = acc[lx] + 1.0f;
            barrier(CLK_LOCAL_MEM_FENCE);
            out[lx] = acc[lx];
        }";
        let mut f = kernel(src);
        let report = Grover::new().run_on(&mut f);
        let outcome = &report.buffers[0].outcome;
        assert_eq!(outcome.kind(), "not_candidate");
        assert!(outcome.reason().is_some());
        assert!(BufferOutcome::Removed.reason().is_none());
        assert_eq!(BufferOutcome::Skipped.kind(), "skipped");
    }

    #[test]
    fn report_text_is_informative() {
        let mut f = kernel(MT);
        let report = Grover::new().run_on(&mut f);
        let text = report.to_text();
        assert!(text.contains("GL"), "{text}");
        assert!(text.contains("LS : (ly, lx)"), "{text}");
        assert!(text.contains("nGL"), "{text}");
    }

    #[test]
    fn three_dimensional_staging() {
        // 3-D tile with a cyclic axis permutation: the full 3x3 system.
        let src = "__kernel void t3(__global float* in, __global float* out, int nx, int ny) {
            __local float lm[4][4][4];
            int lx = get_local_id(0);
            int ly = get_local_id(1);
            int lz = get_local_id(2);
            int gx = get_global_id(0);
            int gy = get_global_id(1);
            int gz = get_global_id(2);
            lm[lz][ly][lx] = in[(gz * ny + gy) * nx + gx];
            barrier(CLK_LOCAL_MEM_FENCE);
            out[(gz * ny + gy) * nx + gx] = lm[lx][lz][ly];
        }";
        let mut f = kernel(src);
        let report = Grover::new().run_on(&mut f);
        assert!(report.all_removed(), "{}", report.to_text());
        // lm[lx][lz][ly]: dims = (lx, lz, ly) → solve lz'=lx, ly'=lz, lx'=ly.
        assert_eq!(
            report.buffers[0].solutions[0],
            "(lx, ly, lz) = (ly, lz, lx)"
        );
        assert!(grover_ir::verify(&f).is_ok());
    }

    #[test]
    fn shared_block_pattern() {
        // AMD-SS style: every work-item stages the same shared pattern; the
        // work-group index part is zero and LL uses a loop counter.
        let src = "__kernel void ss(__global int* pat, __global int* text, __global int* out) {
            __local int lpat[16];
            int lx = get_local_id(0);
            int gx = get_global_id(0);
            if (lx < 16) { lpat[lx] = pat[lx]; }
            barrier(CLK_LOCAL_MEM_FENCE);
            int m = 1;
            for (int k = 0; k < 16; k++) {
                if (text[gx + k] != lpat[k]) { m = 0; }
            }
            out[gx] = m;
        }";
        let mut f = kernel(src);
        let report = Grover::new().run_on(&mut f);
        assert!(report.all_removed(), "{}", report.to_text());
        assert!(!has_local_traffic(&f));
        assert!(grover_ir::verify(&f).is_ok(), "{:?}", grover_ir::verify(&f));
    }
}
