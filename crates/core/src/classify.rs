//! Local-memory usage-pattern classification.
//!
//! The paper restricts Grover to the *software-cache* pattern and notes
//! (§VI-D) that other patterns — reductions, temporal read-write buffers —
//! need different analyses. Inspired by the usage-pattern catalogue of the
//! ELMO work the paper cites (reference \[4\]), this module classifies how each
//! `__local` buffer is actually used, giving auto-tuners and diagnostics a
//! sharper answer than a bare "declined".

use grover_ir::{AddressSpace, BarrierScope, Function, Inst, LocalBufId, ValueId};

/// How a `__local` buffer is used by its kernel.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UsagePattern {
    /// The paper's target: every store stages a fresh global load, every
    /// load consumes staged data (Fig. 3). Grover can reverse this.
    SoftwareCache,
    /// Stores write computed values exactly once per location per phase and
    /// loads read them back — a scratch buffer for exchanging *derived*
    /// data between work-items (e.g. partial results shared once).
    ComputedExchange,
    /// The buffer is loaded and stored repeatedly with data dependences
    /// between phases (classic tree reductions, scan buffers). Removing it
    /// would change the algorithm (§VI-D: "such applications typically
    /// benefit from using local memory on any platform").
    ReadWriteTemporary,
    /// Written but never read (dead staging — removable trivially).
    WriteOnly,
    /// Read but never written (reads see zero-initialised memory; almost
    /// certainly a bug in the kernel).
    ReadOnly,
    /// No accesses at all.
    Unused,
}

impl UsagePattern {
    /// Whether Grover's reversing analysis applies to this pattern.
    pub fn is_reversible_candidate(self) -> bool {
        matches!(self, UsagePattern::SoftwareCache)
    }

    /// Human-readable explanation of the pattern.
    pub fn describe(self) -> &'static str {
        match self {
            UsagePattern::SoftwareCache => {
                "software cache: global data staged for reuse (Grover's target pattern)"
            }
            UsagePattern::ComputedExchange => {
                "computed exchange: work-items share derived values once"
            }
            UsagePattern::ReadWriteTemporary => {
                "read-write temporary: iterative updates (reduction/scan-like)"
            }
            UsagePattern::WriteOnly => "write-only: stores are dead",
            UsagePattern::ReadOnly => "read-only: reads see zero-initialised memory",
            UsagePattern::Unused => "unused",
        }
    }
}

/// Classification result for one buffer.
#[derive(Clone, Debug)]
pub struct BufferClass {
    /// Buffer name.
    pub buffer: String,
    /// Detected usage pattern.
    pub pattern: UsagePattern,
    /// Number of load sites reading the buffer.
    pub loads: usize,
    /// Number of store sites writing the buffer.
    pub stores: usize,
    /// Barriers between the first store and the last load, program-order.
    pub synchronised: bool,
}

/// Classify every local buffer of a kernel.
pub fn classify(f: &Function) -> Vec<BufferClass> {
    (0..f.local_bufs().len())
        .map(|i| classify_buffer(f, LocalBufId(i as u32)))
        .collect()
}

/// Classify one buffer.
pub fn classify_buffer(f: &Function, buf: LocalBufId) -> BufferClass {
    let base = f.local_buf_value(buf);
    let name = f.local_buf(buf).name.clone();

    let is_access = |ptr: ValueId| -> bool {
        if ptr == base {
            return true;
        }
        matches!(f.inst(ptr), Some(Inst::Gep { base: b, .. }) if *b == base)
    };

    // Program-order walk collecting accesses and barriers.
    #[derive(PartialEq, Clone, Copy)]
    enum Ev {
        Load,
        StoreStaged,
        StoreComputed,
        StoreFromLocal,
        Barrier,
    }
    let mut events = Vec::new();
    for (_, iv) in f.iter_insts() {
        match f.inst(iv) {
            Some(Inst::Load { ptr }) if is_access(*ptr) => events.push(Ev::Load),
            Some(Inst::Store { ptr, value }) if is_access(*ptr) => {
                let ev = match f.inst(*value) {
                    Some(Inst::Load { ptr: src }) => match f.ty(*src).address_space() {
                        Some(AddressSpace::Global) | Some(AddressSpace::Constant) => {
                            Ev::StoreStaged
                        }
                        Some(AddressSpace::Local) => Ev::StoreFromLocal,
                        _ => Ev::StoreComputed,
                    },
                    _ => Ev::StoreComputed,
                };
                events.push(ev);
            }
            Some(Inst::Barrier { scope }) => {
                if matches!(scope, BarrierScope::Local | BarrierScope::Both) {
                    events.push(Ev::Barrier);
                }
            }
            _ => {}
        }
    }

    let loads = events.iter().filter(|&&e| e == Ev::Load).count();
    let stores = events
        .iter()
        .filter(|&&e| matches!(e, Ev::StoreStaged | Ev::StoreComputed | Ev::StoreFromLocal))
        .count();
    let staged = events.iter().filter(|&&e| e == Ev::StoreStaged).count();

    let synchronised = {
        let first_store = events
            .iter()
            .position(|&e| matches!(e, Ev::StoreStaged | Ev::StoreComputed | Ev::StoreFromLocal));
        let last_load = events.iter().rposition(|&e| e == Ev::Load);
        match (first_store, last_load) {
            (Some(s), Some(l)) if s < l => events[s..l].contains(&Ev::Barrier),
            _ => false,
        }
    };

    let pattern = match (loads, stores) {
        (0, 0) => UsagePattern::Unused,
        (0, _) => UsagePattern::WriteOnly,
        (_, 0) => UsagePattern::ReadOnly,
        _ => {
            let any_from_local = events.contains(&Ev::StoreFromLocal);
            // A store that structurally depends on a prior load of the same
            // buffer (load → compute → store) marks iterative update. We
            // approximate with a dataflow reachability check below.
            if any_from_local || store_depends_on_own_load(f, buf) {
                UsagePattern::ReadWriteTemporary
            } else if staged == stores {
                UsagePattern::SoftwareCache
            } else {
                UsagePattern::ComputedExchange
            }
        }
    };

    BufferClass {
        buffer: name,
        pattern,
        loads,
        stores,
        synchronised,
    }
}

/// Does any store into `buf` transitively depend on a load from `buf`?
fn store_depends_on_own_load(f: &Function, buf: LocalBufId) -> bool {
    let base = f.local_buf_value(buf);
    let is_access = |ptr: ValueId| -> bool {
        if ptr == base {
            return true;
        }
        matches!(f.inst(ptr), Some(Inst::Gep { base: b, .. }) if *b == base)
    };
    // Taint = values derived from loads of this buffer.
    let mut tainted: std::collections::HashSet<ValueId> = std::collections::HashSet::new();
    loop {
        let mut changed = false;
        for (_, iv) in f.iter_insts() {
            if tainted.contains(&iv) {
                continue;
            }
            let inst = f.inst(iv).expect("inst");
            let root = matches!(inst, Inst::Load { ptr } if is_access(*ptr));
            let mut hit = root;
            if !hit {
                inst.visit_operands(|v| hit |= tainted.contains(&v));
            }
            if hit {
                tainted.insert(iv);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for (_, iv) in f.iter_insts() {
        if let Some(Inst::Store { ptr, value }) = f.inst(iv) {
            if is_access(*ptr) && tainted.contains(value) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use grover_frontend::{compile, BuildOptions};

    fn kernel(src: &str) -> Function {
        compile(src, &BuildOptions::new())
            .unwrap()
            .kernels
            .remove(0)
    }

    #[test]
    fn staging_is_software_cache() {
        let f = kernel(
            "__kernel void k(__global float* in, __global float* out) {
                 __local float lm[16];
                 int lx = get_local_id(0);
                 lm[lx] = in[lx];
                 barrier(CLK_LOCAL_MEM_FENCE);
                 out[lx] = lm[15 - lx];
             }",
        );
        let c = classify(&f);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].pattern, UsagePattern::SoftwareCache);
        assert!(c[0].pattern.is_reversible_candidate());
        assert!(c[0].synchronised);
        assert_eq!(c[0].loads, 1);
        assert_eq!(c[0].stores, 1);
    }

    #[test]
    fn reduction_is_read_write_temporary() {
        let f = kernel(
            "__kernel void k(__global float* in, __global float* out) {
                 __local float acc[8];
                 int lx = get_local_id(0);
                 acc[lx] = in[lx];
                 barrier(CLK_LOCAL_MEM_FENCE);
                 for (int s = 4; s > 0; s = s / 2) {
                     if (lx < s) { acc[lx] = acc[lx] + acc[lx + s]; }
                     barrier(CLK_LOCAL_MEM_FENCE);
                 }
                 out[0] = acc[0];
             }",
        );
        let c = classify(&f);
        assert_eq!(c[0].pattern, UsagePattern::ReadWriteTemporary);
        assert!(!c[0].pattern.is_reversible_candidate());
    }

    #[test]
    fn computed_values_are_exchange() {
        let f = kernel(
            "__kernel void k(__global float* in, __global float* out) {
                 __local float sq[16];
                 int lx = get_local_id(0);
                 sq[lx] = in[lx] * in[lx];
                 barrier(CLK_LOCAL_MEM_FENCE);
                 out[lx] = sq[15 - lx];
             }",
        );
        let c = classify(&f);
        assert_eq!(c[0].pattern, UsagePattern::ComputedExchange);
    }

    #[test]
    fn write_only_detected() {
        let f = kernel(
            "__kernel void k(__global float* in, __global float* out) {
                 __local float dead[16];
                 int lx = get_local_id(0);
                 dead[lx] = in[lx];
                 out[lx] = in[lx];
             }",
        );
        assert_eq!(classify(&f)[0].pattern, UsagePattern::WriteOnly);
    }

    #[test]
    fn read_only_detected() {
        let f = kernel(
            "__kernel void k(__global float* out) {
                 __local float ghost[16];
                 int lx = get_local_id(0);
                 out[lx] = ghost[lx];
             }",
        );
        assert_eq!(classify(&f)[0].pattern, UsagePattern::ReadOnly);
    }

    #[test]
    fn unsynchronised_staging_flagged() {
        // Missing barrier: still a software cache structurally, but
        // `synchronised` is false — a correctness smell worth surfacing.
        let f = kernel(
            "__kernel void k(__global float* in, __global float* out) {
                 __local float lm[16];
                 int lx = get_local_id(0);
                 lm[lx] = in[lx];
                 out[lx] = lm[lx];
             }",
        );
        let c = classify(&f);
        assert_eq!(c[0].pattern, UsagePattern::SoftwareCache);
        assert!(!c[0].synchronised);
    }

    #[test]
    fn multiple_buffers_classified_independently() {
        let f = kernel(
            "__kernel void k(__global float* in, __global float* out) {
                 __local float stage[8];
                 __local float acc[8];
                 int lx = get_local_id(0);
                 stage[lx] = in[lx];
                 acc[lx] = in[lx + 8];
                 barrier(CLK_LOCAL_MEM_FENCE);
                 acc[lx] = acc[lx] + stage[7 - lx];
                 barrier(CLK_LOCAL_MEM_FENCE);
                 out[lx] = acc[lx];
             }",
        );
        let c = classify(&f);
        assert_eq!(c[0].pattern, UsagePattern::SoftwareCache);
        assert_eq!(c[1].pattern, UsagePattern::ReadWriteTemporary);
    }

    #[test]
    fn describe_strings_exist() {
        for p in [
            UsagePattern::SoftwareCache,
            UsagePattern::ComputedExchange,
            UsagePattern::ReadWriteTemporary,
            UsagePattern::WriteOnly,
            UsagePattern::ReadOnly,
            UsagePattern::Unused,
        ] {
            assert!(!p.describe().is_empty());
        }
    }
}
