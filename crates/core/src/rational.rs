//! Exact rational arithmetic for the linear-system solver (paper §IV-D).
//!
//! Gaussian elimination over floats would mis-detect singular systems;
//! over machine integers it would overflow. `Rational` keeps every
//! intermediate value exact with an `i64/i64` normalized fraction.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number `num/den`, always normalized: `den > 0`,
/// `gcd(|num|, den) == 1`, and zero is `0/1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Rational {
    num: i64,
    den: i64,
}

/// Greatest common divisor (non-negative).
fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Construct `num/den`. Panics on a zero denominator.
    pub fn new(num: i64, den: i64) -> Rational {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Rational {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// An integer as a rational.
    pub fn int(v: i64) -> Rational {
        Rational { num: v, den: 1 }
    }

    /// The (normalized) numerator.
    pub fn numerator(self) -> i64 {
        self.num
    }

    /// The (normalized, positive) denominator.
    pub fn denominator(self) -> i64 {
        self.den
    }

    /// Whether the value is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// The integer value, if this rational is integral.
    pub fn as_integer(self) -> Option<i64> {
        (self.den == 1).then_some(self.num)
    }

    /// Whether the denominator is one.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Multiplicative inverse. Panics on zero.
    pub fn recip(self) -> Rational {
        Rational::new(self.den, self.num)
    }

    /// Absolute value.
    pub fn abs(self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        // Cross-reduce first to keep intermediates small.
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        Rational::new(
            (self.num / g1) * (rhs.num / g2),
            (self.den / g2) * (rhs.den / g1),
        )
    }
}

impl Div for Rational {
    type Output = Rational;
    // Division as multiplication by the reciprocal is the definition for
    // rationals, not a typo.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Default for Rational {
    /// Zero (`0/1`) — a derived default would produce an invalid `0/0`.
    fn default() -> Rational {
        Rational::ZERO
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Rational {
        Rational::int(v)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> std::cmp::Ordering {
        (self.num as i128 * other.den as i128).cmp(&(other.num as i128 * self.den as i128))
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, -7), Rational::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(5, 6));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 6));
        assert_eq!(a / b, Rational::new(3, 2));
        assert_eq!(-a, Rational::new(-1, 2));
    }

    #[test]
    fn integrality() {
        assert_eq!(Rational::new(6, 3).as_integer(), Some(2));
        assert_eq!(Rational::new(1, 2).as_integer(), None);
        assert!(Rational::int(5).is_integer());
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert!(Rational::new(7, 7) == Rational::ONE);
    }

    #[test]
    fn recip_and_zero() {
        assert_eq!(Rational::new(2, 3).recip(), Rational::new(3, 2));
        assert!(Rational::ZERO.is_zero());
        assert_eq!(Rational::new(-3, 4).abs(), Rational::new(3, 4));
    }

    #[test]
    #[should_panic]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(3, 1).to_string(), "3");
        assert_eq!(Rational::new(-1, 2).to_string(), "-1/2");
    }

    #[test]
    fn cross_reduction_avoids_overflow() {
        // (2^40 / 3) * (3 / 2^40) must not overflow.
        let a = Rational::new(1 << 40, 3);
        let b = Rational::new(3, 1 << 40);
        assert_eq!(a * b, Rational::ONE);
    }
}
