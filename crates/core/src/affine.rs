//! Affine index forms (paper §III-B, Equations 1–3).
//!
//! A data index is modelled as a rational-coefficient linear combination of
//! *atoms* plus a constant. Atoms are the work-item query functions
//! (`get_local_id(d)`, `get_group_id(d)`, …) and — for right-hand sides —
//! arbitrary opaque kernel values (loop counters, parameters, sub-trees the
//! analysis does not need to see inside).

use std::collections::BTreeMap;
use std::fmt;

use grover_ir::ValueId;

use crate::rational::Rational;

/// A symbol an affine form can mention.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Atom {
    /// `get_local_id(d)` — the unknowns of the linear system.
    LocalId(u8),
    /// `get_group_id(d)`.
    GroupId(u8),
    /// `get_global_id(d)`.
    GlobalId(u8),
    /// `get_local_size(d)`.
    LocalSize(u8),
    /// `get_global_size(d)`.
    GlobalSize(u8),
    /// `get_num_groups(d)`.
    NumGroups(u8),
    /// Any other kernel value (loop phi, parameter, opaque sub-expression).
    Value(ValueId),
}

impl Atom {
    /// Whether this atom is `get_local_id(dim)`.
    pub fn is_local_id(self) -> bool {
        matches!(self, Atom::LocalId(_))
    }

    /// Short display name (`lx`, `wy`, `gz`, `v17`, …) following the paper's
    /// notation.
    pub fn display_name(self) -> String {
        let dim_char = |d: u8| ["x", "y", "z"].get(d as usize).copied().unwrap_or("?");
        match self {
            Atom::LocalId(d) => format!("l{}", dim_char(d)),
            Atom::GroupId(d) => format!("w{}", dim_char(d)),
            Atom::GlobalId(d) => format!("g{}", dim_char(d)),
            Atom::LocalSize(d) => format!("ls{}", dim_char(d)),
            Atom::GlobalSize(d) => format!("gs{}", dim_char(d)),
            Atom::NumGroups(d) => format!("ng{}", dim_char(d)),
            Atom::Value(v) => format!("v{}", v.0),
        }
    }
}

/// An affine form `Σ cᵢ·atomᵢ + k` with exact rational coefficients.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Affine {
    terms: BTreeMap<Atom, Rational>,
    constant: Rational,
}

impl Affine {
    /// The zero form.
    pub fn zero() -> Affine {
        Affine::default()
    }

    /// A constant form.
    pub fn constant(k: impl Into<Rational>) -> Affine {
        Affine {
            terms: BTreeMap::new(),
            constant: k.into(),
        }
    }

    /// A single atom with coefficient 1.
    pub fn atom(a: Atom) -> Affine {
        let mut t = BTreeMap::new();
        t.insert(a, Rational::ONE);
        Affine {
            terms: t,
            constant: Rational::ZERO,
        }
    }

    /// The constant term.
    pub fn constant_part(&self) -> Rational {
        self.constant
    }

    /// Coefficient of an atom (zero if absent).
    pub fn coeff(&self, a: Atom) -> Rational {
        self.terms.get(&a).copied().unwrap_or(Rational::ZERO)
    }

    /// Iterate `(atom, coefficient)` pairs with nonzero coefficients.
    pub fn terms(&self) -> impl Iterator<Item = (Atom, Rational)> + '_ {
        self.terms.iter().map(|(&a, &c)| (a, c))
    }

    /// Number of atoms with nonzero coefficients.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// True if the form is a plain constant.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// True if every atom is `get_local_id(_)` — the requirement on LS
    /// indices (Equation 2: `x = a·lx + b·ly + c·lz + d`).
    pub fn is_local_id_only(&self) -> bool {
        self.terms.keys().all(|a| a.is_local_id())
    }

    /// True if all coefficients and the constant are integers.
    pub fn is_integral(&self) -> bool {
        self.constant.is_integer() && self.terms.values().all(|c| c.is_integer())
    }

    fn insert(&mut self, a: Atom, c: Rational) {
        if c.is_zero() {
            self.terms.remove(&a);
        } else {
            self.terms.insert(a, c);
        }
    }

    /// Sum of two forms.
    pub fn add(&self, rhs: &Affine) -> Affine {
        let mut out = self.clone();
        out.constant = out.constant + rhs.constant;
        for (a, c) in rhs.terms() {
            let nc = out.coeff(a) + c;
            out.insert(a, nc);
        }
        out
    }

    /// Difference of two forms.
    pub fn sub(&self, rhs: &Affine) -> Affine {
        self.add(&rhs.scale(-Rational::ONE))
    }

    /// Multiply every coefficient and the constant by `s`.
    pub fn scale(&self, s: Rational) -> Affine {
        if s.is_zero() {
            return Affine::zero();
        }
        Affine {
            terms: self.terms.iter().map(|(&a, &c)| (a, c * s)).collect(),
            constant: self.constant * s,
        }
    }

    /// Product, defined only when at least one side is constant.
    pub fn mul(&self, rhs: &Affine) -> Option<Affine> {
        if rhs.is_constant() {
            Some(self.scale(rhs.constant))
        } else if self.is_constant() {
            Some(rhs.scale(self.constant))
        } else {
            None
        }
    }

    /// Substitute atoms via `f` (atoms mapping to `None` stay unchanged).
    pub fn substitute(&self, f: impl Fn(Atom) -> Option<Affine>) -> Affine {
        let mut out = Affine::constant(self.constant);
        for (a, c) in self.terms() {
            match f(a) {
                Some(rep) => out = out.add(&rep.scale(c)),
                None => {
                    let nc = out.coeff(a) + c;
                    out.insert(a, nc);
                }
            }
        }
        out
    }

    /// Split this form by a constant stride: `self = high*stride + low`.
    ///
    /// This is the algebraic counterpart of the paper's `+ → *` tree
    /// pattern (§IV-C). Each atom's coefficient must split *cleanly*: a
    /// multiple of the stride goes entirely to `high`, a coefficient with
    /// magnitude below the stride goes entirely (sign-preserved) to `low`.
    /// Mixed coefficients are rejected: assigning the euclidean remainder
    /// to `low` would keep the recomposition identity but break the value
    /// ranges the dimensions stand for (e.g. `(7-ly)*S + (7-lx)` must
    /// decompose as `(7-ly, 7-lx)`, not `(7-ly-lx, (S-1)·lx+7)`). The
    /// constant term is split with euclidean division, matching offset
    /// patterns like `(y+1)*S + (x+1)`.
    pub fn split_by_stride(&self, stride: i64) -> Option<(Affine, Affine)> {
        if stride <= 0 || !self.is_integral() {
            return None;
        }
        let mut high = Affine::zero();
        let mut low = Affine::zero();
        let k = self.constant.as_integer()?;
        high.constant = Rational::int(k.div_euclid(stride));
        low.constant = Rational::int(k.rem_euclid(stride));
        for (a, c) in self.terms() {
            let c = c.as_integer()?;
            if c % stride == 0 {
                high.insert(a, Rational::int(c / stride));
            } else if c.abs() < stride {
                low.insert(a, Rational::int(c));
            } else {
                return None; // mixed coefficient: not cleanly separable
            }
        }
        Some((high, low))
    }

    /// Evaluate given a valuation of atoms (used by tests/property checks).
    pub fn eval(&self, mut v: impl FnMut(Atom) -> i64) -> Rational {
        let mut acc = self.constant;
        for (a, c) in self.terms() {
            acc = acc + c * Rational::int(v(a));
        }
        acc
    }
}

impl Affine {
    /// Render with a custom atom-naming function (used to resolve opaque
    /// [`Atom::Value`]s to their source-level names, e.g. loop counters).
    pub fn display_with(&self, name_of: impl Fn(Atom) -> String) -> String {
        use std::fmt::Write;
        let mut f = String::new();
        let mut first = true;
        for (a, c) in self.terms() {
            let name = name_of(a);
            if first {
                if c == Rational::ONE {
                    let _ = write!(f, "{name}");
                } else if c == -Rational::ONE {
                    let _ = write!(f, "-{name}");
                } else {
                    let _ = write!(f, "{c}*{name}");
                }
                first = false;
            } else if c == Rational::ONE {
                let _ = write!(f, " + {name}");
            } else if c == -Rational::ONE {
                let _ = write!(f, " - {name}");
            } else if c < Rational::ZERO {
                let _ = write!(f, " - {}*{name}", c.abs());
            } else {
                let _ = write!(f, " + {c}*{name}");
            }
        }
        if first {
            let _ = write!(f, "{}", self.constant);
        } else if self.constant > Rational::ZERO {
            let _ = write!(f, " + {}", self.constant);
        } else if self.constant < Rational::ZERO {
            let _ = write!(f, " - {}", self.constant.abs());
        }
        f
    }

    /// Render, resolving opaque value atoms to their names in `f`.
    pub fn display_in(&self, f: &grover_ir::Function) -> String {
        self.display_with(|a| match a {
            Atom::Value(v) => f.value(v).name.clone().unwrap_or_else(|| a.display_name()),
            _ => a.display_name(),
        })
    }
}

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_with(Atom::display_name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lx() -> Atom {
        Atom::LocalId(0)
    }
    fn ly() -> Atom {
        Atom::LocalId(1)
    }

    #[test]
    fn basic_algebra() {
        let a = Affine::atom(lx())
            .scale(Rational::int(2))
            .add(&Affine::constant(3));
        let b = Affine::atom(ly()).sub(&Affine::constant(1));
        let s = a.add(&b);
        assert_eq!(s.coeff(lx()), Rational::int(2));
        assert_eq!(s.coeff(ly()), Rational::ONE);
        assert_eq!(s.constant_part(), Rational::int(2));
    }

    #[test]
    fn mul_requires_constant_side() {
        let a = Affine::atom(lx());
        let c = Affine::constant(4);
        assert_eq!(a.mul(&c).unwrap().coeff(lx()), Rational::int(4));
        assert_eq!(c.mul(&a).unwrap().coeff(lx()), Rational::int(4));
        assert!(a.mul(&a).is_none());
    }

    #[test]
    fn zero_coefficients_vanish() {
        let a = Affine::atom(lx());
        let z = a.sub(&Affine::atom(lx()));
        assert!(z.is_constant());
        assert_eq!(z, Affine::zero());
    }

    #[test]
    fn split_matrix_transpose_pattern() {
        // lm[ly][lx] with row stride 16: index = 16*ly + lx.
        let idx = Affine::atom(ly())
            .scale(Rational::int(16))
            .add(&Affine::atom(lx()));
        let (h, l) = idx.split_by_stride(16).unwrap();
        assert_eq!(h, Affine::atom(ly()));
        assert_eq!(l, Affine::atom(lx()));
    }

    #[test]
    fn split_with_mixed_constant() {
        // 16*k + lx + 17 -> high = k + 1, low = lx + 1
        let idx = Affine::atom(Atom::Value(ValueId(9)))
            .scale(Rational::int(16))
            .add(&Affine::atom(lx()))
            .add(&Affine::constant(17));
        let (h, l) = idx.split_by_stride(16).unwrap();
        assert_eq!(h.coeff(Atom::Value(ValueId(9))), Rational::ONE);
        assert_eq!(h.constant_part(), Rational::ONE);
        assert_eq!(l.coeff(lx()), Rational::ONE);
        assert_eq!(l.constant_part(), Rational::ONE);
    }

    #[test]
    fn split_rejects_fractional() {
        let idx = Affine::atom(lx()).scale(Rational::new(1, 2));
        assert!(idx.split_by_stride(16).is_none());
    }

    #[test]
    fn substitution() {
        // 4*lx + ly, with lx := ly + 1  =>  4*ly + 4 + ly = 5*ly + 4
        let e = Affine::atom(lx())
            .scale(Rational::int(4))
            .add(&Affine::atom(ly()));
        let sub =
            e.substitute(|a| (a == lx()).then(|| Affine::atom(ly()).add(&Affine::constant(1))));
        assert_eq!(sub.coeff(ly()), Rational::int(5));
        assert_eq!(sub.constant_part(), Rational::int(4));
        assert_eq!(sub.coeff(lx()), Rational::ZERO);
    }

    #[test]
    fn local_id_only_check() {
        let pure = Affine::atom(lx()).add(&Affine::atom(ly()));
        assert!(pure.is_local_id_only());
        let mixed = pure.add(&Affine::atom(Atom::GroupId(0)));
        assert!(!mixed.is_local_id_only());
    }

    #[test]
    fn eval_matches_structure() {
        let e = Affine::atom(lx())
            .scale(Rational::int(3))
            .add(&Affine::atom(ly()).scale(Rational::int(-2)))
            .add(&Affine::constant(7));
        let v = e.eval(|a| match a {
            Atom::LocalId(0) => 5,
            Atom::LocalId(1) => 4,
            _ => 0,
        });
        assert_eq!(v, Rational::int(3 * 5 - 2 * 4 + 7));
    }

    #[test]
    fn display_is_readable() {
        let e = Affine::atom(ly())
            .scale(Rational::int(16))
            .add(&Affine::atom(lx()))
            .sub(&Affine::constant(2));
        assert_eq!(e.to_string(), "lx + 16*ly - 2");
        assert_eq!(Affine::zero().to_string(), "0");
        assert_eq!(Affine::atom(Atom::GroupId(1)).to_string(), "wy");
    }

    #[test]
    fn split_preserves_value() {
        // high*stride + low == original for a sample valuation.
        let idx = Affine::atom(ly())
            .scale(Rational::int(32))
            .add(&Affine::atom(lx()).scale(Rational::int(2)))
            .add(&Affine::constant(5));
        let (h, l) = idx.split_by_stride(16).unwrap();
        let v = |a: Atom| match a {
            Atom::LocalId(0) => 3,
            Atom::LocalId(1) => 7,
            _ => 0,
        };
        let recomposed = h.eval(v) * Rational::int(16) + l.eval(v);
        assert_eq!(recomposed, idx.eval(v));
    }

    #[test]
    fn split_keeps_negative_low_coefficients() {
        // (7 - ly)*12 + (7 - lx): the reflection pattern must decompose
        // into (7-ly, 7-lx) — euclidean per-coefficient splitting would
        // produce an algebraically-equal but dimensionally-wrong pair.
        let idx = Affine::constant(7)
            .sub(&Affine::atom(ly()))
            .scale(Rational::int(12))
            .add(&Affine::constant(7).sub(&Affine::atom(lx())));
        let (h, l) = idx.split_by_stride(12).unwrap();
        assert_eq!(h, Affine::constant(7).sub(&Affine::atom(ly())));
        assert_eq!(l, Affine::constant(7).sub(&Affine::atom(lx())));
    }

    #[test]
    fn split_rejects_mixed_coefficients() {
        // 33*ly cannot be split by 16 without breaking value ranges.
        let idx = Affine::atom(ly()).scale(Rational::int(33));
        assert!(idx.split_by_stride(16).is_none());
    }
}
