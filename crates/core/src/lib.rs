#![warn(missing_docs)]
//! # grover-core
//!
//! The Grover pass — *automatically disabling local-memory usage in OpenCL
//! kernels* — reproducing Fang, Sips, Jääskeläinen & Varbanescu,
//! "Grover: Looking for Performance Improvement by Disabling Local Memory
//! Usage in OpenCL Kernels" (ICPP 2014).
//!
//! Grover targets the software-cache pattern (paper Fig. 3):
//!
//! ```text
//!   GL (global load) → LS (local store) → barrier → LL (local load) → use
//! ```
//!
//! It derives, for each `LL`, which work-item `(lx', ly', lz')` stored the
//! element being read — by expressing the LS data index as an affine
//! function of the local work-item index (Equation 2), forming a linear
//! system whose right-hand side is the LL data index (Equation 3), and
//! solving it exactly over the rationals. The GL index expression is then
//! duplicated with the solution substituted for the work-item index
//! (Algorithm 1), producing a *new global load* (`nGL`) that replaces the
//! local load. The staging stores, the buffer, and the synchronising
//! barriers become dead and are removed.
//!
//! ```
//! use grover_frontend::{compile, BuildOptions};
//! use grover_core::Grover;
//!
//! let mut module = compile(
//!     "__kernel void mt(__global float* in, __global float* out, int w) {
//!          __local float lm[16][16];
//!          int lx = get_local_id(0);
//!          int ly = get_local_id(1);
//!          int wx = get_group_id(0);
//!          int wy = get_group_id(1);
//!          lm[ly][lx] = in[(wy*16 + ly)*w + (wx*16 + lx)];
//!          barrier(CLK_LOCAL_MEM_FENCE);
//!          out[(wx*16 + lx)*w + (wy*16 + ly)] = lm[lx][ly];
//!      }",
//!     &BuildOptions::new(),
//! ).unwrap();
//!
//! let kernel = module.kernel_mut("mt").unwrap();
//! let report = Grover::new().run_on(kernel);
//! assert!(report.all_removed());
//! assert_eq!(kernel.local_mem_bytes(), 0);
//! assert_eq!(report.buffers[0].solutions[0], "(lx, ly) = (ly, lx)");
//! ```

pub mod affine;
pub mod candidates;
pub mod classify;
pub mod fingerprint;
pub mod linsys;
pub mod pass;
pub mod pipeline;
pub mod rational;
pub mod transform;
pub mod tree;

pub use affine::{Affine, Atom};
pub use candidates::{detect, CandidateError, StagingPattern};
pub use classify::{classify, BufferClass, UsagePattern};
pub use fingerprint::{
    canonicalize_source, pass_fingerprint, source_fingerprint, tune_key, tune_key_with_sequences,
    Fingerprint, FingerprintBuilder, TRANSFORM_REVISION,
};
pub use linsys::{solve, Solution, SolveError};
pub use pass::{BufferOutcome, BufferReport, Grover, GroverOptions, GroverReport};
pub use pipeline::{
    apply_sequence, Pass, PassCtx, PassId, PassManager, PassReport, PipelineReport, Sequence,
    SequenceError,
};
pub use rational::Rational;
pub use transform::{Decline, LlRewrite};
pub use tree::{ExprTree, LeafKind, NodeId};
