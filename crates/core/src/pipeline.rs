//! The composable pass pipeline.
//!
//! PR 9 splits the monolithic Grover transform into four independent
//! passes behind the [`Pass`] trait, each with declared preconditions and
//! its own behaviour revision:
//!
//! * `local-removal` — the per-buffer staging-pattern reversal (detect →
//!   solve → rewrite, paper §IV), followed by dead-code elimination of the
//!   GL/LS chains it orphaned;
//! * `barrier-elim` — removes local barriers once no local traffic
//!   remains (Both-scope barriers are narrowed to Global);
//! * `index-simplify` — the standard cleanup fixpoint (constant folding,
//!   DCE, CFG simplification) folding the constants the rewrites
//!   introduced;
//! * `remap` — the coalescing-friendly remapping fixpoint (GVN + LICM on
//!   top of cleanup), hoisting and deduplicating the nGL address
//!   arithmetic the rewrites multiplied.
//!
//! A [`Sequence`] is a validated ordering of passes; [`PassManager`] runs
//! one and produces a [`PipelineReport`] with a per-pass [`PassReport`]
//! next to the aggregate [`GroverReport`] the rest of the system already
//! consumes. The *default* sequence (`local-removal, barrier-elim,
//! index-simplify`) reproduces the pre-split monolithic transform
//! byte-for-byte — the golden per-pass snapshots under
//! `tests/golden/passes/` gate that equivalence.
//!
//! Legality is validated at [`Sequence`] construction with stable error
//! kinds ([`SequenceError::kind`]): every sequence must be non-empty
//! (`empty`), name only known passes (`unknown_pass`), and satisfy each
//! pass's preconditions — the three cleanup passes require a preceding
//! `local-removal` (`missing_dependency`). Repeating a pass is legal:
//! every pass is idempotent (property-tested in `tests/properties.rs`).
//!
//! Every pass refuses to touch a kernel the local-removal stage did not
//! change, preserving the paper's §VI-D invariant — a kernel Grover
//! cannot reverse is returned byte-identical no matter which legal
//! sequence runs.

use std::fmt;

use grover_ir::passes::{DeadCodeElim, FunctionPass, PassManager as IrPassManager};
use grover_ir::{Function, LocalBufId};

use crate::pass::{
    disable_buffer, has_local_traffic, remove_local_barriers, BufferOutcome, BufferReport,
    GroverOptions, GroverReport,
};

/// Identity of one composable pass.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PassId {
    /// Per-buffer local-memory removal (+ DCE of the orphaned chains).
    LocalRemoval,
    /// Local-barrier elimination once no local traffic remains.
    BarrierElim,
    /// Cleanup fixpoint: constant folding, DCE, CFG simplification.
    IndexSimplify,
    /// Coalescing-friendly remapping fixpoint: GVN + LICM on top of
    /// cleanup.
    Remap,
}

impl PassId {
    /// Every pass, in canonical order.
    pub const ALL: [PassId; 4] = [
        PassId::LocalRemoval,
        PassId::BarrierElim,
        PassId::IndexSimplify,
        PassId::Remap,
    ];

    /// Stable machine-readable name (the `--passes` vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            PassId::LocalRemoval => "local-removal",
            PassId::BarrierElim => "barrier-elim",
            PassId::IndexSimplify => "index-simplify",
            PassId::Remap => "remap",
        }
    }

    /// Monotonic revision of this pass's observable behaviour. Bump when
    /// the pass produces different IR; the revision feeds
    /// [`crate::fingerprint::pass_fingerprint`], so a bump invalidates
    /// every persisted tuning decision in lock-step.
    pub fn revision(self) -> u32 {
        match self {
            PassId::LocalRemoval => 1,
            PassId::BarrierElim => 1,
            PassId::IndexSimplify => 1,
            PassId::Remap => 1,
        }
    }

    /// Passes that must appear *earlier* in any legal sequence. The three
    /// cleanup passes are gated on local-removal having run: without it
    /// they would rewrite kernels Grover declined, breaking the
    /// untouched-kernel invariant.
    pub fn preconditions(self) -> &'static [PassId] {
        match self {
            PassId::LocalRemoval => &[],
            PassId::BarrierElim | PassId::IndexSimplify | PassId::Remap => &[PassId::LocalRemoval],
        }
    }

    /// Parse a stable name back into a pass id.
    pub fn parse(name: &str) -> Option<PassId> {
        PassId::ALL.iter().copied().find(|p| p.name() == name)
    }
}

impl fmt::Display for PassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An illegal pass sequence, with a stable machine-readable kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SequenceError {
    /// The sequence names no passes at all.
    Empty,
    /// An unknown pass name (carried verbatim).
    UnknownPass(String),
    /// `pass` appears before its precondition `requires`.
    MissingDependency {
        /// The pass whose precondition is unmet.
        pass: PassId,
        /// The pass that must run earlier.
        requires: PassId,
    },
}

impl SequenceError {
    /// Stable tag: `empty`, `unknown_pass` or `missing_dependency`.
    pub fn kind(&self) -> &'static str {
        match self {
            SequenceError::Empty => "empty",
            SequenceError::UnknownPass(_) => "unknown_pass",
            SequenceError::MissingDependency { .. } => "missing_dependency",
        }
    }
}

impl fmt::Display for SequenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SequenceError::Empty => f.write_str("empty pass sequence"),
            SequenceError::UnknownPass(name) => write!(
                f,
                "unknown pass `{name}` (known: {})",
                PassId::ALL.map(PassId::name).join(", ")
            ),
            SequenceError::MissingDependency { pass, requires } => {
                write!(
                    f,
                    "pass `{pass}` requires `{requires}` earlier in the sequence"
                )
            }
        }
    }
}

impl std::error::Error for SequenceError {}

/// A validated ordering of passes. Construction enforces legality, so a
/// `Sequence` value is legal by type.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Sequence(Vec<PassId>);

impl Sequence {
    /// Validate and wrap an explicit ordering.
    pub fn new(ids: Vec<PassId>) -> Result<Sequence, SequenceError> {
        if ids.is_empty() {
            return Err(SequenceError::Empty);
        }
        for (i, id) in ids.iter().enumerate() {
            for &req in id.preconditions() {
                if !ids[..i].contains(&req) {
                    return Err(SequenceError::MissingDependency {
                        pass: *id,
                        requires: req,
                    });
                }
            }
        }
        Ok(Sequence(ids))
    }

    /// Parse a comma-separated spec (`local-removal,barrier-elim,...`).
    /// Whitespace around names is ignored.
    pub fn parse(spec: &str) -> Result<Sequence, SequenceError> {
        let names: Vec<&str> = spec
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        if names.is_empty() {
            return Err(SequenceError::Empty);
        }
        let mut ids = Vec::with_capacity(names.len());
        for name in names {
            ids.push(PassId::parse(name).ok_or_else(|| SequenceError::UnknownPass(name.into()))?);
        }
        Sequence::new(ids)
    }

    /// The default pipeline — byte-identical to the pre-split monolithic
    /// transform: `local-removal, barrier-elim, index-simplify`.
    pub fn default_pipeline() -> Sequence {
        Sequence(vec![
            PassId::LocalRemoval,
            PassId::BarrierElim,
            PassId::IndexSimplify,
        ])
    }

    /// The tuner's traditional candidate pipeline: the default plus the
    /// remapping fixpoint (what `prepare_pair` and the pre-PR-9 tuner
    /// applied to the transformed kernel before racing it).
    pub fn tuned_pipeline() -> Sequence {
        Sequence(vec![
            PassId::LocalRemoval,
            PassId::BarrierElim,
            PassId::IndexSimplify,
            PassId::Remap,
        ])
    }

    /// The default pipeline for the given options: `keep_barriers` drops
    /// `barrier-elim` (the barrier-elision ablation).
    pub fn for_options(options: &GroverOptions) -> Sequence {
        if options.keep_barriers {
            Sequence(vec![PassId::LocalRemoval, PassId::IndexSimplify])
        } else {
            Sequence::default_pipeline()
        }
    }

    /// The passes, in run order.
    pub fn passes(&self) -> &[PassId] {
        &self.0
    }

    /// The comma-separated spec (`Display` renders the same).
    pub fn spec(&self) -> String {
        self.to_string()
    }

    /// Identity token carrying per-pass revisions
    /// (`local-removal@1,barrier-elim@1,...`) — the string hashed into
    /// sequence-aware tune keys so a per-pass revision bump changes
    /// identity even when the spec does not.
    pub fn token(&self) -> String {
        self.0
            .iter()
            .map(|p| format!("{}@{}", p.name(), p.revision()))
            .collect::<Vec<_>>()
            .join(",")
    }
}

impl fmt::Display for Sequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.0.iter().map(|p| p.name()).collect();
        f.write_str(&names.join(","))
    }
}

/// Shared state threaded through one pipeline run.
#[derive(Debug, Default)]
pub struct PassCtx {
    /// The aggregate report, accumulated across passes.
    pub report: GroverReport,
    /// Whether local-removal changed the kernel this run. Every later
    /// pass gates on it: an unreversed kernel stays byte-identical.
    pub removed_any: bool,
}

/// Per-pass outcome of one pipeline run.
#[derive(Clone, Debug)]
pub struct PassReport {
    /// Which pass ran.
    pub pass: PassId,
    /// Whether the pass changed the IR.
    pub changed: bool,
    /// One-line human summary of what it did.
    pub detail: String,
}

/// A composable transformation stage. Unlike
/// [`grover_ir::passes::FunctionPass`], a pipeline pass sees the shared
/// [`PassCtx`] (so cleanup stages can refuse to touch unreversed kernels)
/// and produces a structured [`PassReport`].
pub trait Pass {
    /// The pass's identity (name, revision, preconditions).
    fn id(&self) -> PassId;
    /// Run on `f`, updating the shared context.
    fn run(&mut self, f: &mut Function, ctx: &mut PassCtx) -> PassReport;
}

/// `local-removal`: the per-buffer staging-pattern reversal plus DCE of
/// the orphaned GL/LS chains.
pub struct LocalRemovalPass {
    /// Buffer selection (and the unused-here `keep_barriers` flag).
    pub options: GroverOptions,
}

impl Pass for LocalRemovalPass {
    fn id(&self) -> PassId {
        PassId::LocalRemoval
    }

    fn run(&mut self, f: &mut Function, ctx: &mut PassCtx) -> PassReport {
        if ctx.report.kernel.is_empty() {
            ctx.report.kernel = f.name.clone();
        }
        let mut removed_here = 0usize;
        let n_bufs = f.local_bufs().len();
        for i in 0..n_bufs {
            let buf = LocalBufId(i as u32);
            let name = f.local_buf(buf).name.clone();
            if f.local_buf(buf).is_empty() {
                continue; // already removed
            }
            if let Some(sel) = &self.options.buffers {
                if !sel.contains(&name) {
                    ctx.report.buffers.push(BufferReport {
                        buffer: name,
                        outcome: BufferOutcome::Skipped,
                        gl: None,
                        ls_dims: Vec::new(),
                        ll_dims: Vec::new(),
                        ll_display: Vec::new(),
                        solutions: Vec::new(),
                        ngl: Vec::new(),
                    });
                    continue;
                }
            }
            let br = disable_buffer(f, buf, name);
            if br.changed() {
                removed_here += 1;
            }
            ctx.report.buffers.push(br);
        }
        // DCE only when something changed: a fully-declined kernel must be
        // returned untouched (paper §VI-D).
        let mut insts_removed = 0;
        if removed_here > 0 {
            let mut dce = DeadCodeElim::default();
            dce.run(f);
            insts_removed = dce.removed;
            ctx.report.insts_removed += insts_removed;
            ctx.removed_any = true;
        }
        PassReport {
            pass: PassId::LocalRemoval,
            changed: removed_here > 0,
            detail: format!("{removed_here} buffer(s) removed, {insts_removed} inst(s) DCE'd"),
        }
    }
}

/// `barrier-elim`: removes local barriers once no local traffic remains.
#[derive(Default)]
pub struct BarrierElimPass;

impl Pass for BarrierElimPass {
    fn id(&self) -> PassId {
        PassId::BarrierElim
    }

    fn run(&mut self, f: &mut Function, ctx: &mut PassCtx) -> PassReport {
        let mut removed = 0;
        if ctx.removed_any && !has_local_traffic(f) {
            removed = remove_local_barriers(f);
            ctx.report.barriers_removed += removed;
        }
        PassReport {
            pass: PassId::BarrierElim,
            changed: removed > 0,
            detail: format!("{removed} barrier(s) removed"),
        }
    }
}

/// `index-simplify`: the standard cleanup fixpoint.
#[derive(Default)]
pub struct IndexSimplifyPass;

impl Pass for IndexSimplifyPass {
    fn id(&self) -> PassId {
        PassId::IndexSimplify
    }

    fn run(&mut self, f: &mut Function, ctx: &mut PassCtx) -> PassReport {
        let mut changed = false;
        if ctx.removed_any {
            changed = IrPassManager::cleanup_pipeline().run_to_fixpoint(f, 8);
        }
        PassReport {
            pass: PassId::IndexSimplify,
            changed,
            detail: if changed {
                "cleanup fixpoint simplified the kernel".into()
            } else {
                "no change".into()
            },
        }
    }
}

/// `remap`: the coalescing-friendly remapping fixpoint (GVN + LICM).
#[derive(Default)]
pub struct RemapPass;

impl Pass for RemapPass {
    fn id(&self) -> PassId {
        PassId::Remap
    }

    fn run(&mut self, f: &mut Function, ctx: &mut PassCtx) -> PassReport {
        let mut changed = false;
        if ctx.removed_any {
            changed = IrPassManager::optimize_pipeline().run_to_fixpoint(f, 8);
        }
        PassReport {
            pass: PassId::Remap,
            changed,
            detail: if changed {
                "remapping fixpoint rewrote the kernel".into()
            } else {
                "no change".into()
            },
        }
    }
}

/// Instantiate the pass behind an id.
pub fn pass_for(id: PassId, options: &GroverOptions) -> Box<dyn Pass> {
    match id {
        PassId::LocalRemoval => Box::new(LocalRemovalPass {
            options: options.clone(),
        }),
        PassId::BarrierElim => Box::new(BarrierElimPass),
        PassId::IndexSimplify => Box::new(IndexSimplifyPass),
        PassId::Remap => Box::new(RemapPass),
    }
}

/// Outcome of one pipeline run: per-pass reports plus the aggregate
/// [`GroverReport`] existing consumers expect.
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// The sequence that ran.
    pub sequence: Sequence,
    /// One entry per pass, in run order.
    pub passes: Vec<PassReport>,
    /// The aggregate report (buffers, barriers removed, DCE count).
    pub report: GroverReport,
}

impl PipelineReport {
    /// Render the per-pass reports as a human-readable block.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "sequence {}:", self.sequence);
        for p in &self.passes {
            let _ = writeln!(
                s,
                "  {:<16} {} — {}",
                p.pass.name(),
                if p.changed { "changed " } else { "no-op   " },
                p.detail
            );
        }
        s
    }
}

/// Runs a validated [`Sequence`] over a function, producing per-pass
/// reports. Distinct from [`grover_ir::passes::PassManager`] (the generic
/// fixpoint driver the cleanup stages use internally): this manager knows
/// pass identity, preconditions and the shared [`PassCtx`] gating.
pub struct PassManager {
    sequence: Sequence,
    options: GroverOptions,
}

impl PassManager {
    /// A manager for a validated sequence.
    pub fn new(sequence: Sequence, options: GroverOptions) -> PassManager {
        PassManager { sequence, options }
    }

    /// Run the sequence over `f`.
    pub fn run(&self, f: &mut Function) -> PipelineReport {
        let mut ctx = PassCtx {
            report: GroverReport {
                kernel: f.name.clone(),
                ..Default::default()
            },
            removed_any: false,
        };
        let mut passes = Vec::with_capacity(self.sequence.passes().len());
        for &id in self.sequence.passes() {
            let mut pass = pass_for(id, &self.options);
            passes.push(pass.run(f, &mut ctx));
        }
        PipelineReport {
            sequence: self.sequence.clone(),
            passes,
            report: ctx.report,
        }
    }
}

/// Convenience: run `sequence` over `f` with `options`.
pub fn apply_sequence(
    f: &mut Function,
    sequence: &Sequence,
    options: &GroverOptions,
) -> PipelineReport {
    PassManager::new(sequence.clone(), options.clone()).run(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grover_frontend::{compile, BuildOptions};
    use grover_ir::printer::function_to_string;

    fn kernel(src: &str) -> Function {
        compile(src, &BuildOptions::new())
            .unwrap()
            .kernels
            .remove(0)
    }

    const MT: &str = "__kernel void mt(__global float* in, __global float* out, int w) {
        __local float lm[16][16];
        int lx = get_local_id(0);
        int ly = get_local_id(1);
        int wx = get_group_id(0);
        int wy = get_group_id(1);
        lm[ly][lx] = in[(wy * 16 + ly) * w + (wx * 16 + lx)];
        barrier(CLK_LOCAL_MEM_FENCE);
        out[(wx * 16 + lx) * w + (wy * 16 + ly)] = lm[lx][ly];
    }";

    /// A reduction Grover must refuse — every legal sequence must leave it
    /// byte-identical.
    const RED: &str = "__kernel void red(__global float* in, __global float* out) {
        __local float acc[16];
        int lx = get_local_id(0);
        acc[lx] = in[lx];
        barrier(CLK_LOCAL_MEM_FENCE);
        acc[lx] = acc[lx] + 1.0f;
        barrier(CLK_LOCAL_MEM_FENCE);
        out[lx] = acc[lx];
    }";

    /// Every legal order over the four passes (local-removal first, then
    /// any permutation of any subset of the cleanup passes).
    fn all_legal_sequences() -> Vec<Sequence> {
        let tail = [PassId::BarrierElim, PassId::IndexSimplify, PassId::Remap];
        let mut out = Vec::new();
        // Subsets by bitmask, orders by the two permutations of each pair
        // and six of each triple — enumerate by recursive permutation.
        fn perms(items: &[PassId]) -> Vec<Vec<PassId>> {
            if items.is_empty() {
                return vec![Vec::new()];
            }
            let mut out = Vec::new();
            for (i, &x) in items.iter().enumerate() {
                let mut rest = items.to_vec();
                rest.remove(i);
                for mut p in perms(&rest) {
                    p.insert(0, x);
                    out.push(p);
                }
            }
            out
        }
        for mask in 0..8u32 {
            let subset: Vec<PassId> = tail
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &p)| p)
                .collect();
            for perm in perms(&subset) {
                let mut ids = vec![PassId::LocalRemoval];
                ids.extend(perm);
                out.push(Sequence::new(ids).unwrap());
            }
        }
        out
    }

    #[test]
    fn default_sequence_matches_monolithic_run_on() {
        // The refactor-is-a-no-op gate at unit scope (the golden per-pass
        // snapshots gate it across all 12 apps): running the default
        // sequence must equal `Grover::run_on`, which now routes through
        // the pipeline — so also check against a hand-run of the stages.
        let mut via_grover = kernel(MT);
        let report = crate::Grover::new().run_on(&mut via_grover);
        let mut via_seq = kernel(MT);
        let pr = apply_sequence(
            &mut via_seq,
            &Sequence::default_pipeline(),
            &GroverOptions::default(),
        );
        assert_eq!(
            function_to_string(&via_grover),
            function_to_string(&via_seq)
        );
        assert_eq!(report.barriers_removed, pr.report.barriers_removed);
        assert_eq!(report.insts_removed, pr.report.insts_removed);
        assert_eq!(report.to_text(), pr.report.to_text());
        assert_eq!(pr.passes.len(), 3);
        assert!(pr.passes.iter().all(|p| p.changed), "{}", pr.to_text());
    }

    #[test]
    fn sequence_legality_stable_error_kinds() {
        assert_eq!(Sequence::parse("").unwrap_err().kind(), "empty");
        assert_eq!(Sequence::parse(" , ,").unwrap_err().kind(), "empty");
        assert_eq!(
            Sequence::parse("local-removal,frobnicate")
                .unwrap_err()
                .kind(),
            "unknown_pass"
        );
        assert_eq!(
            Sequence::parse("barrier-elim").unwrap_err().kind(),
            "missing_dependency"
        );
        assert_eq!(
            Sequence::parse("index-simplify,local-removal")
                .unwrap_err()
                .kind(),
            "missing_dependency"
        );
        assert_eq!(
            Sequence::parse("remap,local-removal").unwrap_err().kind(),
            "missing_dependency"
        );
        // Legal orders parse, and roundtrip through spec().
        for spec in [
            "local-removal",
            "local-removal,barrier-elim,index-simplify",
            "local-removal,remap,barrier-elim",
            "local-removal, index-simplify , remap",
            "local-removal,local-removal,index-simplify",
        ] {
            let seq = Sequence::parse(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(Sequence::parse(&seq.spec()).unwrap(), seq);
        }
    }

    #[test]
    fn every_pass_is_idempotent_on_mt() {
        for seq in all_legal_sequences() {
            let mut once = kernel(MT);
            apply_sequence(&mut once, &seq, &GroverOptions::default());
            // Doubling the sequence (run it again on the result) must be a
            // no-op — pass idempotence composed.
            let mut twice = once.clone();
            let mut ids: Vec<PassId> = seq.passes().to_vec();
            ids.extend(seq.passes().iter().copied());
            let doubled = Sequence::new(ids).unwrap();
            apply_sequence(&mut twice, &doubled, &GroverOptions::default());
            // `twice` started from the already-transformed kernel: nothing
            // is left to remove, so removed_any stays false and the IR must
            // be untouched.
            assert_eq!(
                function_to_string(&once),
                function_to_string(&twice),
                "sequence {seq} not idempotent"
            );
        }
    }

    #[test]
    fn no_change_report_means_byte_identical_ir() {
        // Report/IR consistency: on a kernel every pass refuses, each pass
        // must report changed=false AND leave the IR byte-identical.
        for seq in all_legal_sequences() {
            let original = kernel(RED);
            let mut f = original.clone();
            let pr = apply_sequence(&mut f, &seq, &GroverOptions::default());
            assert!(
                pr.passes.iter().all(|p| !p.changed),
                "sequence {seq}: {}",
                pr.to_text()
            );
            assert_eq!(
                function_to_string(&original),
                function_to_string(&f),
                "sequence {seq} modified a refused kernel"
            );
            assert_eq!(pr.report.removed_count(), 0);
        }
    }

    #[test]
    fn changed_flags_agree_with_ir_diffs() {
        // On a kernel that does transform, run pass-by-pass and check each
        // PassReport.changed against an actual before/after byte compare.
        let seq = Sequence::tuned_pipeline();
        let mut f = kernel(MT);
        let opts = GroverOptions::default();
        let mut ctx = PassCtx::default();
        for &id in seq.passes() {
            let before = function_to_string(&f);
            let rep = pass_for(id, &opts).run(&mut f, &mut ctx);
            let after = function_to_string(&f);
            assert_eq!(
                rep.changed,
                before != after,
                "{}: changed flag disagrees with IR diff",
                id.name()
            );
        }
    }

    #[test]
    fn token_carries_revisions() {
        let t = Sequence::default_pipeline().token();
        assert!(t.contains("local-removal@1"), "{t}");
        assert_ne!(
            Sequence::default_pipeline().token(),
            Sequence::tuned_pipeline().token()
        );
    }

    #[test]
    fn keep_barriers_maps_to_sequence_without_barrier_elim() {
        let opts = GroverOptions {
            buffers: None,
            keep_barriers: true,
        };
        let seq = Sequence::for_options(&opts);
        assert!(!seq.passes().contains(&PassId::BarrierElim));
        let mut via_grover = kernel(MT);
        crate::Grover::with_options(opts.clone()).run_on(&mut via_grover);
        let mut via_seq = kernel(MT);
        apply_sequence(&mut via_seq, &seq, &opts);
        assert_eq!(
            function_to_string(&via_grover),
            function_to_string(&via_seq)
        );
    }
}
