//! Selecting the reversing candidates (paper §IV-A).
//!
//! For every `__local` buffer we locate the three operations of the
//! software-cache pattern (paper Fig. 3):
//!
//! * `GL` — the global load whose result is staged,
//! * `LS` — the local store that writes it into the buffer,
//! * `LL` — every local load that reads the buffer afterwards.
//!
//! A buffer qualifies only if *every* store into it stages a freshly loaded
//! global value; anything else (reductions, read-modify-write temporaries)
//! is outside the pattern and the buffer is declined (paper §VI-D).

use grover_ir::cfg::DomTree;
use grover_ir::{AddressSpace, BarrierScope, BlockId, Function, Inst, LocalBufId, ValueId};

/// The detected pattern for one local buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StagingPattern {
    /// The buffer this pattern describes.
    pub buf: LocalBufId,
    /// The chosen `(GL, LS)` pair. When the kernel loads the buffer in
    /// multiple passes, any pair gives the same correspondence (§IV-A);
    /// we take the first in program order.
    pub gl: ValueId,
    /// The local store of the chosen staging pair.
    pub ls: ValueId,
    /// The index operand of the LS's gep.
    pub ls_index: ValueId,
    /// All local loads reading this buffer, in program order.
    pub lls: Vec<ValueId>,
    /// Every store into the buffer (all staging stores, including the
    /// chosen one) — removed once the loads are rewired.
    pub all_stores: Vec<ValueId>,
}

/// Why a buffer does not fit the pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CandidateError {
    /// Nothing is ever stored to the buffer.
    NeverWritten,
    /// The buffer is never read; removing it is trivial but pointless.
    NeverRead,
    /// A store's value is not the result of a global load (e.g. a computed
    /// value — the buffer is used as a read-write temporary).
    NotStaged,
    /// The buffer is accessed through something other than a single-level
    /// gep of its base pointer.
    IndirectAccess,
    /// A work-group barrier executes under work-item-divergent control
    /// flow, so work-items of one group may disagree about reaching it
    /// (undefined behaviour in the source program; reversing it could
    /// only launder the bug).
    DivergentBarrier,
}

impl CandidateError {
    /// Stable machine-readable tag, used by structured outputs (the
    /// `grover-serve` 422 response body, JSON reports).
    pub fn kind(&self) -> &'static str {
        match self {
            CandidateError::NeverWritten => "never_written",
            CandidateError::NeverRead => "never_read",
            CandidateError::NotStaged => "not_staged",
            CandidateError::IndirectAccess => "indirect_access",
            CandidateError::DivergentBarrier => "divergent_barrier",
        }
    }
}

impl std::fmt::Display for CandidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CandidateError::NeverWritten => "local buffer is never written",
            CandidateError::NeverRead => "local buffer is never read",
            CandidateError::NotStaged => {
                "local buffer is not a pure staging cache (stored values are not global loads)"
            }
            CandidateError::IndirectAccess => "local buffer is accessed through derived pointers",
            CandidateError::DivergentBarrier => {
                "a barrier executes under work-item-divergent control flow"
            }
        };
        f.write_str(s)
    }
}

impl std::error::Error for CandidateError {}

/// Resolve a pointer value to `(buffer, index)` if it is a (possibly
/// zero-offset) access to the given local buffer.
fn local_access(f: &Function, buf: LocalBufId, ptr: ValueId) -> Option<ValueId> {
    let base = f.local_buf_value(buf);
    if ptr == base {
        // Direct use of the buffer pointer = element 0. Callers need a
        // value; the constant is interned lazily by the transform, so we
        // only signal with the base itself here.
        return Some(base);
    }
    match f.inst(ptr) {
        Some(Inst::Gep { base: b, index }) if *b == base => Some(*index),
        _ => None,
    }
}

/// True if `ptr` points into *some* local buffer (used to detect leftover
/// local traffic before removing barriers).
pub fn is_local_ptr(f: &Function, ptr: ValueId) -> bool {
    f.ty(ptr).address_space() == Some(AddressSpace::Local)
}

/// Is `to` reachable from `from` (reflexively)?
fn reaches(f: &Function, from: BlockId, to: BlockId) -> bool {
    let mut seen = vec![false; f.num_blocks()];
    let mut stack = vec![from];
    seen[from.index()] = true;
    while let Some(b) = stack.pop() {
        if b == to {
            return true;
        }
        for s in f.successors(b) {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    false
}

/// True if some local-scope barrier sits in a region only one arm of a
/// work-item-divergent branch executes: its block is dominated by a
/// `CondBr` successor whose condition depends on `get_local_id` /
/// `get_global_id`, and that successor is not a merge point the other arm
/// rejoins (which is how a plain `if` without `else`, or a loop back
/// edge, reconverges before the barrier).
fn divergent_barrier(f: &Function) -> bool {
    let barrier_blocks: Vec<BlockId> = f
        .iter_insts()
        .filter_map(|(b, iv)| match f.inst(iv) {
            Some(Inst::Barrier {
                scope: BarrierScope::Local | BarrierScope::Both,
            }) => Some(b),
            _ => None,
        })
        .collect();
    if barrier_blocks.is_empty() {
        return false;
    }
    let tainted = crate::transform::lid_tainted(f);
    let dt = DomTree::compute(f);
    for b in f.blocks() {
        let Some(Inst::CondBr {
            cond,
            then_blk,
            else_blk,
        }) = f.terminator(b)
        else {
            continue;
        };
        if !tainted.contains(cond) {
            continue;
        }
        for (succ, other) in [(*then_blk, *else_blk), (*else_blk, *then_blk)] {
            if reaches(f, other, succ) {
                continue;
            }
            if barrier_blocks.iter().any(|&bb| dt.dominates(succ, bb)) {
                return true;
            }
        }
    }
    false
}

/// Detect the staging pattern for one buffer.
pub fn detect(f: &Function, buf: LocalBufId) -> Result<StagingPattern, CandidateError> {
    let base = f.local_buf_value(buf);
    let mut stores: Vec<(ValueId, ValueId, ValueId)> = Vec::new(); // (store, index, value)
    let mut loads: Vec<ValueId> = Vec::new();

    for (_, iv) in f.iter_insts() {
        match f.inst(iv) {
            Some(Inst::Store { ptr, value }) => {
                if let Some(idx) = local_access(f, buf, *ptr) {
                    stores.push((iv, idx, *value));
                } else if is_local_ptr(f, *ptr) {
                    // store to a different local buffer — ignore
                } else {
                    // Store of the buffer *pointer* itself would be exotic;
                    // our IR cannot express it (pointers are not storable).
                }
            }
            Some(Inst::Load { ptr }) if local_access(f, buf, *ptr).is_some() => {
                loads.push(iv);
            }
            Some(Inst::Gep { base: b, .. }) if *b == base => {
                // A gep of the buffer is fine; a gep *of a gep* of the
                // buffer would make index recovery multi-level.
            }
            _ => {}
        }
    }

    // Multi-level geps: a gep whose base is itself a gep into the buffer.
    for (_, iv) in f.iter_insts() {
        if let Some(Inst::Gep { base: b, .. }) = f.inst(iv) {
            if let Some(Inst::Gep { base: bb, .. }) = f.inst(*b) {
                if *bb == base {
                    return Err(CandidateError::IndirectAccess);
                }
            }
        }
    }

    if stores.is_empty() {
        return Err(CandidateError::NeverWritten);
    }
    if loads.is_empty() {
        return Err(CandidateError::NeverRead);
    }
    if divergent_barrier(f) {
        return Err(CandidateError::DivergentBarrier);
    }

    // Every store must stage a global load's result.
    let mut pair: Option<(ValueId, ValueId, ValueId)> = None; // (gl, ls, ls_index)
    for &(st, idx, val) in &stores {
        match f.inst(val) {
            Some(Inst::Load { ptr })
                if f.ty(*ptr).address_space() == Some(AddressSpace::Global) =>
            {
                if pair.is_none() {
                    pair = Some((val, st, idx));
                }
            }
            _ => return Err(CandidateError::NotStaged),
        }
    }
    let (gl, ls, ls_index) = pair.expect("stores nonempty and all staged");

    Ok(StagingPattern {
        buf,
        gl,
        ls,
        ls_index,
        lls: loads,
        all_stores: stores.iter().map(|&(s, _, _)| s).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use grover_frontend::{compile, BuildOptions};
    use grover_ir::LocalBufId;

    fn kernel(src: &str) -> Function {
        compile(src, &BuildOptions::new())
            .unwrap()
            .kernels
            .remove(0)
    }

    #[test]
    fn detects_simple_staging() {
        let f = kernel(
            "__kernel void k(__global float* in, __global float* out) {
                 __local float lm[16];
                 int lx = get_local_id(0);
                 int gx = get_global_id(0);
                 lm[lx] = in[gx];
                 barrier(CLK_LOCAL_MEM_FENCE);
                 out[gx] = lm[15 - lx];
             }",
        );
        let p = detect(&f, LocalBufId(0)).unwrap();
        assert_eq!(p.lls.len(), 1);
        assert_eq!(p.all_stores.len(), 1);
        assert!(matches!(f.inst(p.gl), Some(Inst::Load { .. })));
        assert!(matches!(f.inst(p.ls), Some(Inst::Store { .. })));
    }

    #[test]
    fn multiple_lls_collected() {
        let f = kernel(
            "__kernel void k(__global float* in, __global float* out) {
                 __local float lm[18];
                 int lx = get_local_id(0);
                 int gx = get_global_id(0);
                 lm[lx + 1] = in[gx];
                 barrier(CLK_LOCAL_MEM_FENCE);
                 out[gx] = lm[lx] + lm[lx + 1] + lm[lx + 2];
             }",
        );
        let p = detect(&f, LocalBufId(0)).unwrap();
        assert_eq!(p.lls.len(), 3);
    }

    #[test]
    fn reduction_declined() {
        // Accumulating into local memory is a read-write temporary (§VI-D).
        let f = kernel(
            "__kernel void k(__global float* in, __global float* out) {
                 __local float acc[16];
                 int lx = get_local_id(0);
                 acc[lx] = in[lx];
                 barrier(CLK_LOCAL_MEM_FENCE);
                 acc[lx] = acc[lx] + 1.0f;
                 barrier(CLK_LOCAL_MEM_FENCE);
                 out[lx] = acc[lx];
             }",
        );
        assert_eq!(detect(&f, LocalBufId(0)), Err(CandidateError::NotStaged));
    }

    #[test]
    fn computed_store_declined() {
        let f = kernel(
            "__kernel void k(__global float* in, __global float* out) {
                 __local float lm[16];
                 int lx = get_local_id(0);
                 lm[lx] = in[lx] * 2.0f;
                 barrier(CLK_LOCAL_MEM_FENCE);
                 out[lx] = lm[lx];
             }",
        );
        assert_eq!(detect(&f, LocalBufId(0)), Err(CandidateError::NotStaged));
    }

    #[test]
    fn never_written_detected() {
        let f = kernel(
            "__kernel void k(__global float* out) {
                 __local float lm[16];
                 int lx = get_local_id(0);
                 out[lx] = 1.0f;
                 if (lx < 0) { out[lx] = lm[lx]; }
             }",
        );
        assert_eq!(detect(&f, LocalBufId(0)), Err(CandidateError::NeverWritten));
    }

    #[test]
    fn never_read_detected() {
        let f = kernel(
            "__kernel void k(__global float* in, __global float* out) {
                 __local float lm[16];
                 int lx = get_local_id(0);
                 lm[lx] = in[lx];
                 out[lx] = in[lx];
             }",
        );
        assert_eq!(detect(&f, LocalBufId(0)), Err(CandidateError::NeverRead));
    }

    #[test]
    fn divergent_barrier_declined() {
        // Only a quarter of the group reaches the barrier: UB in the
        // source program, so the buffer must not be a candidate.
        let f = kernel(
            "__kernel void k(__global float* in, __global float* out) {
                 __local float lm[8];
                 int lx = get_local_id(0);
                 int gx = get_global_id(0);
                 if (lx < 4) {
                     lm[lx] = in[gx];
                     barrier(CLK_LOCAL_MEM_FENCE);
                 }
                 out[gx] = lm[lx];
             }",
        );
        assert_eq!(
            detect(&f, LocalBufId(0)),
            Err(CandidateError::DivergentBarrier)
        );
    }

    #[test]
    fn divergent_store_before_uniform_barrier_ok() {
        // The AMD-SS shape: a guarded staging store, but the barrier sits
        // at the join every work-item reaches — still a candidate.
        let f = kernel(
            "__kernel void k(__global float* in, __global float* out) {
                 __local float lm[8];
                 int lx = get_local_id(0);
                 int gx = get_global_id(0);
                 if (lx < 8) {
                     lm[lx] = in[gx];
                 }
                 barrier(CLK_LOCAL_MEM_FENCE);
                 out[gx] = lm[7 - lx];
             }",
        );
        assert!(detect(&f, LocalBufId(0)).is_ok());
    }

    #[test]
    fn lid_divergent_loop_barrier_declined() {
        // Work-item-dependent trip count around a barrier: divergent
        // barrier execution even though no branch arm holds the barrier
        // exclusively at the source level.
        let f = kernel(
            "__kernel void k(__global float* in, __global float* out) {
                 __local float lm[16];
                 int lx = get_local_id(0);
                 float s = 0.0f;
                 for (int i = lx; i < 16; i++) {
                     lm[lx] = in[i];
                     barrier(CLK_LOCAL_MEM_FENCE);
                     s += lm[0];
                 }
                 out[lx] = s;
             }",
        );
        assert_eq!(
            detect(&f, LocalBufId(0)),
            Err(CandidateError::DivergentBarrier)
        );
    }

    #[test]
    fn multi_pass_staging_picks_first_pair() {
        // Image-convolution style: two staging passes (§IV-A).
        let f = kernel(
            "__kernel void k(__global float* in, __global float* out) {
                 __local float lm[32];
                 int lx = get_local_id(0);
                 int gx = get_global_id(0);
                 lm[lx] = in[gx];
                 lm[lx + 16] = in[gx + 16];
                 barrier(CLK_LOCAL_MEM_FENCE);
                 out[gx] = lm[lx] + lm[lx + 16];
             }",
        );
        let p = detect(&f, LocalBufId(0)).unwrap();
        assert_eq!(p.all_stores.len(), 2);
        assert_eq!(p.lls.len(), 2);
        // The first store in program order is the chosen LS.
        assert_eq!(p.ls, p.all_stores[0]);
    }
}
