//! Stable kernel fingerprints and the pass-version epoch.
//!
//! The tuner's decision — keep local memory or drop it — is a function of
//! `(kernel, device profile, launch geometry)` and of the pass revision
//! that produced the transformed candidate. This module gives every
//! consumer (the golden snapshot tests, the `grover-serve` decision cache,
//! the CLI's `--json` outputs) *one* shared notion of kernel identity so
//! the cache key and the test identity can never drift apart:
//!
//! * [`canonicalize_source`] normalises OpenCL-C text (comments stripped,
//!   horizontal whitespace collapsed, blank lines dropped) so formatting
//!   changes do not change identity — while preserving line structure, so
//!   preprocessor directives keep their meaning;
//! * [`Fingerprint`] is a 128-bit FNV-1a hash with length-prefixed,
//!   labelled parts (no concatenation ambiguity between parts);
//! * [`pass_fingerprint`] is the cache-invalidation *epoch*: crate version
//!   plus [`TRANSFORM_REVISION`]. Bump the revision whenever the transform
//!   changes behaviour; persisted decisions from older epochs are ignored.

use std::fmt;

/// Monotonic revision of the Grover transform's observable behaviour.
///
/// Bump this constant whenever the pass produces different IR, accepts or
/// refuses different kernels, or changes a reported reason. The golden
/// snapshot tests embed [`pass_fingerprint`] in every snapshot, so a
/// behaviour change without a bump shows up as a reviewable diff, and a
/// bump without re-blessing fails the suite — either way the persisted
/// tuning caches (keyed by the same epoch) are invalidated in lock-step.
pub const TRANSFORM_REVISION: u32 = 1;

/// The pass-version epoch:
/// `grover-<crate version>+rev<revision>+pp<per-pass revisions>`.
///
/// Used as the cache-invalidation epoch by the `grover-serve` decision
/// store and surfaced in CLI `--json` outputs and `grover version`. Since
/// PR 9 the epoch also carries the per-pass revision of every composable
/// pipeline pass ([`crate::pipeline::PassId::revision`], in
/// [`crate::pipeline::PassId::ALL`] order), so bumping any single pass's
/// revision invalidates persisted decisions — regardless of which
/// sequence produced them.
pub fn pass_fingerprint() -> String {
    let per_pass: Vec<String> = crate::pipeline::PassId::ALL
        .iter()
        .map(|p| p.revision().to_string())
        .collect();
    format!(
        "grover-{}+rev{}+pp{}",
        env!("CARGO_PKG_VERSION"),
        TRANSFORM_REVISION,
        per_pass.join(".")
    )
}

/// A 128-bit content fingerprint (FNV-1a), rendered as 32 hex digits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Fingerprint(pub u128);

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

impl Fingerprint {
    /// Render as 32 lowercase hex digits.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parse 32 hex digits back into a fingerprint.
    pub fn from_hex(s: &str) -> Option<Fingerprint> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Incremental FNV-1a fingerprint builder over labelled parts.
///
/// Each part hashes its label, a separator, the byte length, and the
/// bytes, so `("a", "bc")` and `("ab", "c")` cannot collide by
/// concatenation and parts cannot bleed into each other.
#[derive(Clone, Debug)]
pub struct FingerprintBuilder {
    state: u128,
}

impl Default for FingerprintBuilder {
    fn default() -> FingerprintBuilder {
        FingerprintBuilder::new()
    }
}

impl FingerprintBuilder {
    /// A fresh builder at the FNV offset basis.
    pub fn new() -> FingerprintBuilder {
        FingerprintBuilder { state: FNV_OFFSET }
    }

    fn feed(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Mix in one labelled part.
    pub fn part(mut self, label: &str, bytes: &[u8]) -> FingerprintBuilder {
        self.feed(label.as_bytes());
        self.feed(&[0xff]);
        self.feed(&(bytes.len() as u64).to_le_bytes());
        self.feed(bytes);
        self
    }

    /// Mix in a labelled `u64` sequence (launch dims, scales).
    pub fn part_u64s(self, label: &str, values: &[u64]) -> FingerprintBuilder {
        let mut bytes = Vec::with_capacity(values.len() * 8);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.part(label, &bytes)
    }

    /// Finish into a [`Fingerprint`].
    pub fn finish(self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

/// Canonicalise OpenCL-C source for fingerprinting.
///
/// Strips `//` and `/* */` comments (string literals are respected),
/// collapses runs of horizontal whitespace to one space, trims each line,
/// and drops blank lines. Line structure is preserved, so preprocessor
/// directives keep their line-based meaning and two *different* programs
/// can never canonicalise to the same text merely by joining lines.
pub fn canonicalize_source(src: &str) -> String {
    // Comment stripping (preserving newlines inside block comments so
    // line-based directives after the comment stay on their own lines).
    let bytes = src.as_bytes();
    let mut stripped = String::with_capacity(src.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => {
                // String literal: copy verbatim through the closing quote.
                stripped.push('"');
                i += 1;
                while i < bytes.len() {
                    let c = bytes[i];
                    stripped.push(c as char);
                    i += 1;
                    if c == b'\\' && i < bytes.len() {
                        stripped.push(bytes[i] as char);
                        i += 1;
                    } else if c == b'"' {
                        break;
                    }
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                i += 2;
                stripped.push(' ');
                while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                    if bytes[i] == b'\n' {
                        stripped.push('\n');
                    }
                    i += 1;
                }
                i = (i + 2).min(bytes.len());
            }
            c => {
                stripped.push(c as char);
                i += 1;
            }
        }
    }

    // Whitespace normalisation, line by line.
    let mut out = String::with_capacity(stripped.len());
    for line in stripped.lines() {
        let mut last_space = true; // leading whitespace is dropped
        let mut norm = String::with_capacity(line.len());
        for c in line.chars() {
            if c == ' ' || c == '\t' || c == '\r' {
                if !last_space {
                    norm.push(' ');
                    last_space = true;
                }
            } else {
                norm.push(c);
                last_space = false;
            }
        }
        let norm = norm.trim_end();
        if !norm.is_empty() {
            out.push_str(norm);
            out.push('\n');
        }
    }
    out
}

/// Fingerprint of canonicalised source text alone (kernel identity for
/// golden snapshots and the `/v1/compile` endpoint).
pub fn source_fingerprint(src: &str) -> Fingerprint {
    FingerprintBuilder::new()
        .part("source", canonicalize_source(src).as_bytes())
        .finish()
}

/// The full tuning-cache key: canonicalised source, kernel name, device
/// profile and launch geometry. The pass-version epoch is deliberately
/// *not* hashed in — it is stored alongside each cache entry so an epoch
/// bump invalidates entries observably instead of silently orphaning them.
///
/// This is the sequence-agnostic key; `grover-serve` keys its cache with
/// [`tune_key_with_sequences`] so decisions for different candidate
/// sequence sets never collide.
pub fn tune_key(
    source: &str,
    kernel: &str,
    device: &str,
    global: &[u64],
    local: &[u64],
) -> Fingerprint {
    FingerprintBuilder::new()
        .part("source", canonicalize_source(source).as_bytes())
        .part("kernel", kernel.as_bytes())
        .part("device", device.as_bytes())
        .part_u64s("global", global)
        .part_u64s("local", local)
        .finish()
}

/// [`tune_key`] extended with the identity of the candidate pass-sequence
/// set the decision was tuned over.
///
/// `sequences` is a free-form identity string — for an explicit request,
/// the sequence's revision-carrying token
/// ([`crate::pipeline::Sequence::token`]); for the device-default search,
/// the joined tokens of the seeded candidate set. Hashing it as its own
/// labelled part guarantees two different sequences (or candidate sets)
/// over the same source can never collide in a decision cache.
pub fn tune_key_with_sequences(
    source: &str,
    kernel: &str,
    device: &str,
    global: &[u64],
    local: &[u64],
    sequences: &str,
) -> Fingerprint {
    FingerprintBuilder::new()
        .part("source", canonicalize_source(source).as_bytes())
        .part("kernel", kernel.as_bytes())
        .part("device", device.as_bytes())
        .part_u64s("global", global)
        .part_u64s("local", local)
        .part("sequences", sequences.as_bytes())
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_changes_do_not_change_identity() {
        let a = "__kernel void f(__global float* x) {\n    x[0] = 1.0f; // store\n}";
        let b = "__kernel  void f(__global float* x)   {\n\n x[0]   = 1.0f; /* store */\n}\n";
        assert_eq!(source_fingerprint(a), source_fingerprint(b));
    }

    #[test]
    fn semantic_changes_change_identity() {
        let a = "__kernel void f(__global float* x) { x[0] = 1.0f; }";
        let b = "__kernel void f(__global float* x) { x[0] = 2.0f; }";
        assert_ne!(source_fingerprint(a), source_fingerprint(b));
    }

    #[test]
    fn directives_keep_line_structure() {
        // Joining a directive line onto the next would conflate two
        // different programs; canonicalisation must keep them distinct.
        let a = "#define W 4\nint w = W;";
        let b = "#define W 4 int w = W;";
        assert_ne!(
            canonicalize_source(a),
            canonicalize_source(b),
            "directive line must stay separate"
        );
    }

    #[test]
    fn block_comments_keep_newlines() {
        let a = "/* c1\nc2 */\n#define A 1\nint q;";
        let canon = canonicalize_source(a);
        assert!(canon.starts_with("#define A 1\n"), "{canon:?}");
    }

    #[test]
    fn strings_are_preserved_verbatim() {
        let a = r#"x = "a // not a comment";"#;
        let canon = canonicalize_source(a);
        assert!(canon.contains("// not a comment"), "{canon:?}");
    }

    #[test]
    fn parts_are_separated() {
        let a = FingerprintBuilder::new().part("k", b"ab").part("k", b"c");
        let b = FingerprintBuilder::new().part("k", b"a").part("k", b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn tune_key_varies_by_every_component() {
        let src = "__kernel void f(__global float* x) { x[0] = 1.0f; }";
        let base = tune_key(src, "f", "SNB", &[256], &[16]);
        assert_ne!(base, tune_key(src, "f", "Fermi", &[256], &[16]));
        assert_ne!(base, tune_key(src, "g", "SNB", &[256], &[16]));
        assert_ne!(base, tune_key(src, "f", "SNB", &[512], &[16]));
        assert_ne!(base, tune_key(src, "f", "SNB", &[256], &[32]));
        assert_eq!(base, tune_key(src, "f", "SNB", &[256], &[16]));
    }

    #[test]
    fn hex_roundtrip() {
        let fp = source_fingerprint("x");
        assert_eq!(Fingerprint::from_hex(&fp.to_hex()), Some(fp));
        assert_eq!(fp.to_hex().len(), 32);
        assert_eq!(Fingerprint::from_hex("zz"), None);
    }

    #[test]
    fn pass_fingerprint_names_version_and_revision() {
        let fp = pass_fingerprint();
        assert!(fp.starts_with("grover-"), "{fp}");
        assert!(fp.contains("+rev"), "{fp}");
        // One revision digit per composable pass, in canonical order.
        assert!(fp.contains("+pp1.1.1.1"), "{fp}");
    }

    #[test]
    fn tune_key_varies_by_sequence_set() {
        let src = "__kernel void f(__global float* x) { x[0] = 1.0f; }";
        let a = tune_key_with_sequences(src, "f", "SNB", &[256], &[16], "local-removal@1");
        let b = tune_key_with_sequences(src, "f", "SNB", &[256], &[16], "local-removal@1,remap@1");
        assert_ne!(a, b, "two sequence sets must never collide");
        // A per-pass revision bump changes the token, hence the key.
        let c = tune_key_with_sequences(src, "f", "SNB", &[256], &[16], "local-removal@2");
        assert_ne!(a, c);
        // And the sequence-aware key never collides with the legacy key's
        // space by accident of concatenation.
        assert_ne!(a, tune_key(src, "f", "SNB", &[256], &[16]));
    }
}
