#![warn(missing_docs)]
//! # grover-obs
//!
//! Zero-dependency structured telemetry for the Grover toolchain, in the
//! spirit of `tracing`'s span/event model but hand-rolled like the rest of
//! the workspace:
//!
//! * a [`Span`] is a named, timed region with an optional parent and typed
//!   key/value attributes — a kernel launch, a tuning run, a pass
//!   execution;
//! * an *event* is a point-in-time record attached to a span — a
//!   per-buffer pass decision, a measurement retry, a worker-utilization
//!   sample;
//! * a [`Recorder`] consumes both. Every method has a no-op default, so
//!   the production default ([`NoopRecorder`], via the [`NOOP`] static)
//!   costs one virtual call returning immediately — instrumented code
//!   guards any attribute *construction* behind [`Recorder::enabled`].
//!
//! Two real recorders ship: [`MemoryRecorder`] keeps an in-process
//! snapshot for tests and programmatic inspection, and [`JsonlRecorder`]
//! streams one JSON object per line to any writer (the CLI's
//! `--trace-out` file). Both are thread-safe: the interpreter's worker
//! pool and the tuner's race threads record concurrently.
//!
//! ```
//! use grover_obs::{MemoryRecorder, Recorder};
//!
//! let rec = MemoryRecorder::new();
//! let span = rec.span_start("launch", None);
//! rec.span_attr(span, "kernel", "mt".into());
//! rec.event("worker", Some(span), &[("groups", 4u64.into())]);
//! rec.span_end(span);
//!
//! let snap = rec.snapshot();
//! let launch = snap.span("launch").unwrap();
//! assert_eq!(launch.attr_str("kernel"), Some("mt"));
//! assert!(launch.duration.is_some());
//! ```

pub mod json;

use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Identifier of a span within one recorder. `0` is reserved for the
/// no-op recorder (it never allocates ids).
pub type SpanId = u64;

/// A typed attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A string.
    Str(String),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// Render as JSON (strings escaped, non-finite floats as `null`).
    pub fn to_json(&self) -> String {
        match self {
            Value::Str(s) => json::escape(s),
            Value::I64(v) => v.to_string(),
            Value::U64(v) => v.to_string(),
            Value::F64(v) => json::number(*v),
            Value::Bool(v) => if *v { "true" } else { "false" }.to_string(),
        }
    }

    /// The value as `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as `&str`, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

/// Consumer of spans and events. All methods default to no-ops so a
/// disabled recorder pays nothing; implementations must be thread-safe
/// (`Send + Sync`) — spans may start, annotate and end on different
/// threads.
pub trait Recorder: Send + Sync {
    /// Whether this recorder actually consumes records. Instrumented code
    /// checks this before *constructing* attributes (which may allocate);
    /// the recording calls themselves are safe to make regardless.
    fn enabled(&self) -> bool {
        false
    }

    /// Open a span. Wall-time starts now.
    fn span_start(&self, _name: &str, _parent: Option<SpanId>) -> SpanId {
        0
    }

    /// Attach an attribute to an open span.
    fn span_attr(&self, _span: SpanId, _key: &str, _value: Value) {}

    /// Close a span. Wall-time stops now.
    fn span_end(&self, _span: SpanId) {}

    /// Record a point-in-time event, optionally attached to a span.
    fn event(&self, _name: &str, _span: Option<SpanId>, _attrs: &[(&str, Value)]) {}

    /// Flush any buffered records to their destination. Long-running
    /// processes (the `grover-serve` server) call this on graceful
    /// shutdown and at checkpoints; recorders that buffer (e.g.
    /// [`JsonlRecorder`] over a `BufWriter`) must make everything
    /// recorded so far durable. Defaults to a no-op.
    fn flush(&self) {}
}

/// Discards everything ([`Recorder::enabled`] is `false`).
#[derive(Default, Clone, Copy, Debug)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// The shared no-op recorder instance: the default for every
/// instrumented API that takes a `&dyn Recorder`.
pub static NOOP: NoopRecorder = NoopRecorder;

/// One finished (or still-open) span, as captured by [`MemoryRecorder`].
#[derive(Clone, Debug)]
pub struct Span {
    /// Recorder-unique id.
    pub id: SpanId,
    /// Enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Span name (e.g. `launch`, `tune`, `grover.pass`).
    pub name: String,
    /// Start offset from the recorder's creation.
    pub start: Duration,
    /// Wall-time from start to [`Recorder::span_end`]; `None` while open.
    pub duration: Option<Duration>,
    /// Typed attributes, in recording order.
    pub attrs: Vec<(String, Value)>,
}

impl Span {
    /// Look up an attribute by key (last write wins).
    pub fn attr(&self, key: &str) -> Option<&Value> {
        self.attrs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Attribute as `u64`.
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        self.attr(key).and_then(Value::as_u64)
    }

    /// Attribute as `&str`.
    pub fn attr_str(&self, key: &str) -> Option<&str> {
        self.attr(key).and_then(Value::as_str)
    }
}

/// One event, as captured by [`MemoryRecorder`].
#[derive(Clone, Debug)]
pub struct Event {
    /// Event name.
    pub name: String,
    /// Span it was attached to, if any.
    pub span: Option<SpanId>,
    /// Typed attributes, in recording order.
    pub attrs: Vec<(String, Value)>,
}

impl Event {
    /// Look up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&Value> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Everything a [`MemoryRecorder`] has seen, cloned out for inspection.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// All spans, in start order (open spans have `duration: None`).
    pub spans: Vec<Span>,
    /// All events, in recording order.
    pub events: Vec<Event>,
}

impl Snapshot {
    /// First span with this name.
    pub fn span(&self, name: &str) -> Option<&Span> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// All spans with this name.
    pub fn spans_named(&self, name: &str) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.name == name).collect()
    }

    /// All events with this name.
    pub fn events_named(&self, name: &str) -> Vec<&Event> {
        self.events.iter().filter(|e| e.name == name).collect()
    }
}

#[derive(Default)]
struct MemoryState {
    spans: Vec<Span>,
    events: Vec<Event>,
}

/// Buffers every span and event in memory; [`MemoryRecorder::snapshot`]
/// clones them out. Intended for tests and programmatic inspection of
/// small traces.
pub struct MemoryRecorder {
    epoch: Instant,
    next_id: AtomicU64,
    state: Mutex<MemoryState>,
}

impl Default for MemoryRecorder {
    fn default() -> MemoryRecorder {
        MemoryRecorder::new()
    }
}

impl MemoryRecorder {
    /// An empty recorder; time zero is now.
    pub fn new() -> MemoryRecorder {
        MemoryRecorder {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            state: Mutex::new(MemoryState::default()),
        }
    }

    /// Clone out everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        let s = self.state.lock().expect("recorder poisoned");
        Snapshot {
            spans: s.spans.clone(),
            events: s.events.clone(),
        }
    }
}

fn own_attrs(attrs: &[(&str, Value)]) -> Vec<(String, Value)> {
    attrs
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

impl Recorder for MemoryRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span_start(&self, name: &str, parent: Option<SpanId>) -> SpanId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let span = Span {
            id,
            parent,
            name: name.to_string(),
            start: self.epoch.elapsed(),
            duration: None,
            attrs: Vec::new(),
        };
        self.state
            .lock()
            .expect("recorder poisoned")
            .spans
            .push(span);
        id
    }

    fn span_attr(&self, span: SpanId, key: &str, value: Value) {
        let mut s = self.state.lock().expect("recorder poisoned");
        if let Some(sp) = s.spans.iter_mut().find(|sp| sp.id == span) {
            sp.attrs.push((key.to_string(), value));
        }
    }

    fn span_end(&self, span: SpanId) {
        let now = self.epoch.elapsed();
        let mut s = self.state.lock().expect("recorder poisoned");
        if let Some(sp) = s.spans.iter_mut().find(|sp| sp.id == span) {
            if sp.duration.is_none() {
                sp.duration = Some(now.saturating_sub(sp.start));
            }
        }
    }

    fn event(&self, name: &str, span: Option<SpanId>, attrs: &[(&str, Value)]) {
        let ev = Event {
            name: name.to_string(),
            span,
            attrs: own_attrs(attrs),
        };
        self.state
            .lock()
            .expect("recorder poisoned")
            .events
            .push(ev);
    }
}

struct OpenSpan {
    name: String,
    parent: Option<SpanId>,
    start: Instant,
    attrs: Vec<(String, Value)>,
}

struct JsonlState<W> {
    out: W,
    open: HashMap<SpanId, OpenSpan>,
}

/// Streams the trace as JSON Lines: one self-contained object per line.
///
/// * spans (written at `span_end`):
///   `{"type":"span","id":N,"parent":N|null,"name":"...","start_us":N,"dur_us":N,"attrs":{...}}`
/// * events (written immediately):
///   `{"type":"event","name":"...","span":N|null,"attrs":{...}}`
///
/// Every line carries `type`, `name` and `attrs` — the stable keys the CI
/// trace validator checks. Write errors are swallowed: telemetry must
/// never take down the run it observes.
pub struct JsonlRecorder<W: Write + Send> {
    epoch: Instant,
    next_id: AtomicU64,
    state: Mutex<JsonlState<W>>,
}

impl<W: Write + Send> JsonlRecorder<W> {
    /// Record into `out` (wrap files in a `BufWriter`).
    pub fn new(out: W) -> JsonlRecorder<W> {
        JsonlRecorder {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            state: Mutex::new(JsonlState {
                out,
                open: HashMap::new(),
            }),
        }
    }
}

fn attrs_json(attrs: &[(String, Value)]) -> String {
    let mut obj = json::Obj::new();
    for (k, v) in attrs {
        obj = obj.raw(k, &v.to_json());
    }
    obj.finish()
}

impl<W: Write + Send> Recorder for JsonlRecorder<W> {
    fn enabled(&self) -> bool {
        true
    }

    fn span_start(&self, name: &str, parent: Option<SpanId>) -> SpanId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut s = self.state.lock().expect("recorder poisoned");
        s.open.insert(
            id,
            OpenSpan {
                name: name.to_string(),
                parent,
                start: Instant::now(),
                attrs: Vec::new(),
            },
        );
        id
    }

    fn span_attr(&self, span: SpanId, key: &str, value: Value) {
        let mut s = self.state.lock().expect("recorder poisoned");
        if let Some(sp) = s.open.get_mut(&span) {
            sp.attrs.push((key.to_string(), value));
        }
    }

    fn span_end(&self, span: SpanId) {
        let mut s = self.state.lock().expect("recorder poisoned");
        let Some(sp) = s.open.remove(&span) else {
            return;
        };
        let mut obj = json::Obj::new()
            .str("type", "span")
            .u64("id", span)
            .str("name", &sp.name)
            .u64(
                "start_us",
                sp.start.duration_since(self.epoch).as_micros() as u64,
            )
            .u64("dur_us", sp.start.elapsed().as_micros() as u64);
        obj = match sp.parent {
            Some(p) => obj.u64("parent", p),
            None => obj.null("parent"),
        };
        let line = obj.raw("attrs", &attrs_json(&sp.attrs)).finish();
        let _ = writeln!(s.out, "{line}");
    }

    fn event(&self, name: &str, span: Option<SpanId>, attrs: &[(&str, Value)]) {
        let mut obj = json::Obj::new().str("type", "event").str("name", name);
        obj = match span {
            Some(p) => obj.u64("span", p),
            None => obj.null("span"),
        };
        let line = obj.raw("attrs", &attrs_json(&own_attrs(attrs))).finish();
        let mut s = self.state.lock().expect("recorder poisoned");
        let _ = writeln!(s.out, "{line}");
    }

    fn flush(&self) {
        if let Ok(mut s) = self.state.lock() {
            let _ = s.out.flush();
        }
    }
}

/// Dropping the recorder flushes, so a trace file is never truncated
/// mid-line by a normal exit; for long-running servers call
/// [`Recorder::flush`] explicitly at shutdown/checkpoints as well, since
/// `Drop` cannot run on an abrupt kill.
impl<W: Write + Send> Drop for JsonlRecorder<W> {
    fn drop(&mut self) {
        self.flush();
    }
}

/// RAII helper: opens a span on creation, closes it on drop. Borrow-based,
/// so it nests naturally inside one stage; pass raw [`SpanId`]s across
/// threads or stages instead.
pub struct SpanGuard<'a> {
    rec: &'a dyn Recorder,
    id: SpanId,
}

impl<'a> SpanGuard<'a> {
    /// Open `name` under `parent` on `rec`.
    pub fn open(rec: &'a dyn Recorder, name: &str, parent: Option<SpanId>) -> SpanGuard<'a> {
        SpanGuard {
            rec,
            id: rec.span_start(name, parent),
        }
    }

    /// The underlying span id (e.g. to parent child spans).
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Attach an attribute.
    pub fn attr(&self, key: &str, value: impl Into<Value>) {
        self.rec.span_attr(self.id, key, value.into());
    }

    /// Record an event attached to this span.
    pub fn event(&self, name: &str, attrs: &[(&str, Value)]) {
        self.rec.event(name, Some(self.id), attrs);
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.rec.span_end(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_free() {
        assert!(!NOOP.enabled());
        let id = NOOP.span_start("x", None);
        assert_eq!(id, 0);
        NOOP.span_attr(id, "k", 1u64.into());
        NOOP.event("e", Some(id), &[]);
        NOOP.span_end(id);
    }

    #[test]
    fn memory_recorder_captures_hierarchy() {
        let rec = MemoryRecorder::new();
        let root = rec.span_start("tune", None);
        let child = rec.span_start("launch", Some(root));
        rec.span_attr(child, "kernel", "mt".into());
        rec.event("worker", Some(child), &[("groups", 3u64.into())]);
        rec.span_end(child);
        rec.span_end(root);

        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let launch = snap.span("launch").unwrap();
        assert_eq!(launch.parent, Some(root));
        assert_eq!(launch.attr_str("kernel"), Some("mt"));
        assert!(launch.duration.is_some());
        let ev = &snap.events_named("worker")[0];
        assert_eq!(ev.attr("groups").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn memory_recorder_is_thread_safe() {
        let rec = MemoryRecorder::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let rec = &rec;
                s.spawn(move || {
                    for i in 0..50 {
                        let id = rec.span_start("w", None);
                        rec.span_attr(id, "t", (t as u64).into());
                        rec.event("tick", Some(id), &[("i", (i as u64).into())]);
                        rec.span_end(id);
                    }
                });
            }
        });
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 200);
        assert_eq!(snap.events.len(), 200);
        assert!(snap.spans.iter().all(|s| s.duration.is_some()));
    }

    #[test]
    fn jsonl_emits_one_object_per_line() {
        let buf: Vec<u8> = Vec::new();
        let rec = JsonlRecorder::new(buf);
        let root = rec.span_start("tune", None);
        rec.span_attr(root, "device", "SNB".into());
        rec.event(
            "decision",
            Some(root),
            &[("np", 1.3f64.into()), ("choice", "without".into())],
        );
        rec.span_end(root);

        let out = {
            let s = rec.state.lock().unwrap();
            String::from_utf8(s.out.clone()).unwrap()
        };
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"type\":"), "{line}");
            assert!(line.contains("\"name\":"), "{line}");
            assert!(line.contains("\"attrs\":{"), "{line}");
        }
        assert!(lines[0].contains("\"type\":\"event\""));
        assert!(lines[1].contains("\"type\":\"span\""));
        assert!(lines[1].contains("\"device\":\"SNB\""));
    }

    #[test]
    fn dropped_recorder_leaves_only_complete_json_lines() {
        // Regression: a `JsonlRecorder` over a `BufWriter<File>` must
        // flush on drop, otherwise a trace from a shutting-down process
        // ends mid-line. Write well past the BufWriter's 8 KiB default
        // buffer so an unflushed tail would be visible.
        let path = std::env::temp_dir().join(format!(
            "grover-obs-flush-test-{}.jsonl",
            std::process::id()
        ));
        let events = 500usize;
        {
            let f = std::fs::File::create(&path).unwrap();
            let rec = JsonlRecorder::new(std::io::BufWriter::new(f));
            for i in 0..events {
                rec.event(
                    "tick",
                    None,
                    &[("i", (i as u64).into()), ("pad", "x".repeat(40).into())],
                );
            }
        } // drop: must flush
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), events, "all events durable after drop");
        for line in lines {
            json::parse(line).unwrap_or_else(|e| panic!("incomplete line `{line}`: {e}"));
        }
    }

    #[test]
    fn explicit_flush_makes_records_durable_without_drop() {
        let path = std::env::temp_dir().join(format!(
            "grover-obs-flush2-test-{}.jsonl",
            std::process::id()
        ));
        let f = std::fs::File::create(&path).unwrap();
        let rec = JsonlRecorder::new(std::io::BufWriter::new(f));
        rec.event("one", None, &[]);
        rec.flush();
        // Recorder still alive — the file must already be complete.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        json::parse(text.lines().next().unwrap()).unwrap();
        drop(rec);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn span_guard_closes_on_drop() {
        let rec = MemoryRecorder::new();
        {
            let g = SpanGuard::open(&rec, "launch", None);
            g.attr("groups", 4u64);
            g.event("worker", &[]);
        }
        let snap = rec.snapshot();
        assert!(snap.span("launch").unwrap().duration.is_some());
    }
}
