#![warn(missing_docs)]
//! # grover-obs
//!
//! Zero-dependency structured telemetry for the Grover toolchain, in the
//! spirit of `tracing`'s span/event model but hand-rolled like the rest of
//! the workspace:
//!
//! * a [`Span`] is a named, timed region with an optional parent and typed
//!   key/value attributes — a kernel launch, a tuning run, a pass
//!   execution;
//! * an *event* is a point-in-time record attached to a span — a
//!   per-buffer pass decision, a measurement retry, a worker-utilization
//!   sample;
//! * a [`Recorder`] consumes both. Every method has a no-op default, so
//!   the production default ([`NoopRecorder`], via the [`NOOP`] static)
//!   costs one virtual call returning immediately — instrumented code
//!   guards any attribute *construction* behind [`Recorder::enabled`].
//!
//! Two real recorders ship: [`MemoryRecorder`] keeps an in-process
//! snapshot for tests and programmatic inspection, and [`JsonlRecorder`]
//! streams one JSON object per line to any writer (the CLI's
//! `--trace-out` file). Both are thread-safe: the interpreter's worker
//! pool and the tuner's race threads record concurrently.
//!
//! ```
//! use grover_obs::{MemoryRecorder, Recorder};
//!
//! let rec = MemoryRecorder::new();
//! let span = rec.span_start("launch", None);
//! rec.span_attr(span, "kernel", "mt".into());
//! rec.event("worker", Some(span), &[("groups", 4u64.into())]);
//! rec.span_end(span);
//!
//! let snap = rec.snapshot();
//! let launch = snap.span("launch").unwrap();
//! assert_eq!(launch.attr_str("kernel"), Some("mt"));
//! assert!(launch.duration.is_some());
//! ```

pub mod json;

use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Identifier of a span within one recorder. `0` is reserved for the
/// no-op recorder (it never allocates ids).
pub type SpanId = u64;

/// A 128-bit request-scoped trace identifier, rendered as 32 lowercase
/// hex digits (the `x-grover-trace-id` wire format). `0` is not a valid
/// trace id — [`TraceId::parse`] rejects it and [`TraceId::mint`] never
/// produces it — so recorders can treat "all-zero" as "absent".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceId(pub u128);

impl TraceId {
    /// Mint a fresh id: 128 bits mixed from the wall clock, a process-wide
    /// counter and two independently-keyed SipHash rounds (`RandomState`).
    /// Collision-resistant enough for correlating traces; not a secret.
    pub fn mint() -> TraceId {
        use std::collections::hash_map::RandomState;
        use std::hash::{BuildHasher, Hasher};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        let mut h1 = RandomState::new().build_hasher();
        h1.write_u128(now);
        h1.write_u64(n);
        let hi = h1.finish();
        let mut h2 = RandomState::new().build_hasher();
        h2.write_u64(hi);
        h2.write_u64(n);
        h2.write_u128(now);
        let lo = h2.finish();
        let id = ((hi as u128) << 64) | lo as u128;
        TraceId(if id == 0 { 1 } else { id })
    }

    /// The 32-hex-digit wire form.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parse the 32-hex-digit wire form (case-insensitive). Rejects any
    /// other length, non-hex characters and the all-zero id.
    pub fn parse(s: &str) -> Option<TraceId> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        match u128::from_str_radix(s, 16) {
            Ok(0) | Err(_) => None,
            Ok(v) => Some(TraceId(v)),
        }
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// The request-scoped trace context a serving edge threads through the
/// layers below it: the minted (or inbound) trace id plus the span every
/// nested span should parent under.
#[derive(Clone, Copy, Debug)]
pub struct TraceCtx {
    /// The request's trace id.
    pub trace: TraceId,
    /// The span to parent nested work under (e.g. the `serve.request`
    /// span).
    pub parent: SpanId,
}

/// A typed attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A string.
    Str(String),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// Render as JSON (strings escaped, non-finite floats as `null`).
    pub fn to_json(&self) -> String {
        match self {
            Value::Str(s) => json::escape(s),
            Value::I64(v) => v.to_string(),
            Value::U64(v) => v.to_string(),
            Value::F64(v) => json::number(*v),
            Value::Bool(v) => if *v { "true" } else { "false" }.to_string(),
        }
    }

    /// The value as `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as `&str`, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

/// Consumer of spans and events. All methods default to no-ops so a
/// disabled recorder pays nothing; implementations must be thread-safe
/// (`Send + Sync`) — spans may start, annotate and end on different
/// threads.
pub trait Recorder: Send + Sync {
    /// Whether this recorder actually consumes records. Instrumented code
    /// checks this before *constructing* attributes (which may allocate);
    /// the recording calls themselves are safe to make regardless.
    fn enabled(&self) -> bool {
        false
    }

    /// Open a span. Wall-time starts now.
    fn span_start(&self, _name: &str, _parent: Option<SpanId>) -> SpanId {
        0
    }

    /// Attach an attribute to an open span.
    fn span_attr(&self, _span: SpanId, _key: &str, _value: Value) {}

    /// Close a span. Wall-time stops now.
    fn span_end(&self, _span: SpanId) {}

    /// Record a point-in-time event, optionally attached to a span.
    fn event(&self, _name: &str, _span: Option<SpanId>, _attrs: &[(&str, Value)]) {}

    /// Bind `span` (and, transitively, every span started under it *after*
    /// this call, plus every event attached to them) to a trace id.
    /// Recorders that persist records propagate the id parent→child at
    /// [`Recorder::span_start`], so a serving edge only tags its root
    /// span. Defaults to a no-op.
    fn set_trace(&self, _span: SpanId, _trace: TraceId) {}

    /// The trace id `span` is bound to (directly or by inheritance), for
    /// recorders that track traces. Defaults to `None`.
    fn trace_of(&self, _span: SpanId) -> Option<TraceId> {
        None
    }

    /// Flush any buffered records to their destination. Long-running
    /// processes (the `grover-serve` server) call this on graceful
    /// shutdown and at checkpoints; recorders that buffer (e.g.
    /// [`JsonlRecorder`] over a `BufWriter`) must make everything
    /// recorded so far durable. Defaults to a no-op.
    fn flush(&self) {}
}

/// Discards everything ([`Recorder::enabled`] is `false`).
#[derive(Default, Clone, Copy, Debug)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// The shared no-op recorder instance: the default for every
/// instrumented API that takes a `&dyn Recorder`.
pub static NOOP: NoopRecorder = NoopRecorder;

/// One finished (or still-open) span, as captured by [`MemoryRecorder`].
#[derive(Clone, Debug)]
pub struct Span {
    /// Recorder-unique id.
    pub id: SpanId,
    /// Enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Span name (e.g. `launch`, `tune`, `grover.pass`).
    pub name: String,
    /// The trace this span belongs to — set via [`Recorder::set_trace`]
    /// on this span or inherited from the parent at start.
    pub trace: Option<TraceId>,
    /// Start offset from the recorder's creation.
    pub start: Duration,
    /// Wall-time from start to [`Recorder::span_end`]; `None` while open.
    pub duration: Option<Duration>,
    /// Typed attributes, in recording order.
    pub attrs: Vec<(String, Value)>,
}

impl Span {
    /// Look up an attribute by key (last write wins).
    pub fn attr(&self, key: &str) -> Option<&Value> {
        self.attrs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Attribute as `u64`.
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        self.attr(key).and_then(Value::as_u64)
    }

    /// Attribute as `&str`.
    pub fn attr_str(&self, key: &str) -> Option<&str> {
        self.attr(key).and_then(Value::as_str)
    }
}

/// One event, as captured by [`MemoryRecorder`].
#[derive(Clone, Debug)]
pub struct Event {
    /// Event name.
    pub name: String,
    /// Span it was attached to, if any.
    pub span: Option<SpanId>,
    /// Trace inherited from the attached span at recording time.
    pub trace: Option<TraceId>,
    /// Typed attributes, in recording order.
    pub attrs: Vec<(String, Value)>,
}

impl Event {
    /// Look up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&Value> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Everything a [`MemoryRecorder`] has seen, cloned out for inspection.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// All spans, in start order (open spans have `duration: None`).
    pub spans: Vec<Span>,
    /// All events, in recording order.
    pub events: Vec<Event>,
}

impl Snapshot {
    /// First span with this name.
    pub fn span(&self, name: &str) -> Option<&Span> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// All spans with this name.
    pub fn spans_named(&self, name: &str) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.name == name).collect()
    }

    /// All events with this name.
    pub fn events_named(&self, name: &str) -> Vec<&Event> {
        self.events.iter().filter(|e| e.name == name).collect()
    }
}

#[derive(Default)]
struct MemoryState {
    spans: Vec<Span>,
    events: Vec<Event>,
}

/// Buffers every span and event in memory; [`MemoryRecorder::snapshot`]
/// clones them out. Intended for tests and programmatic inspection of
/// small traces.
pub struct MemoryRecorder {
    epoch: Instant,
    next_id: AtomicU64,
    state: Mutex<MemoryState>,
}

impl Default for MemoryRecorder {
    fn default() -> MemoryRecorder {
        MemoryRecorder::new()
    }
}

impl MemoryRecorder {
    /// An empty recorder; time zero is now.
    pub fn new() -> MemoryRecorder {
        MemoryRecorder {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            state: Mutex::new(MemoryState::default()),
        }
    }

    /// Clone out everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        let s = self.state.lock().expect("recorder poisoned");
        Snapshot {
            spans: s.spans.clone(),
            events: s.events.clone(),
        }
    }
}

fn own_attrs(attrs: &[(&str, Value)]) -> Vec<(String, Value)> {
    attrs
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

impl Recorder for MemoryRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span_start(&self, name: &str, parent: Option<SpanId>) -> SpanId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let start = self.epoch.elapsed();
        let mut s = self.state.lock().expect("recorder poisoned");
        let trace = parent
            .and_then(|p| s.spans.iter().rev().find(|sp| sp.id == p))
            .and_then(|sp| sp.trace);
        s.spans.push(Span {
            id,
            parent,
            name: name.to_string(),
            trace,
            start,
            duration: None,
            attrs: Vec::new(),
        });
        id
    }

    fn span_attr(&self, span: SpanId, key: &str, value: Value) {
        let mut s = self.state.lock().expect("recorder poisoned");
        if let Some(sp) = s.spans.iter_mut().find(|sp| sp.id == span) {
            sp.attrs.push((key.to_string(), value));
        }
    }

    fn span_end(&self, span: SpanId) {
        let now = self.epoch.elapsed();
        let mut s = self.state.lock().expect("recorder poisoned");
        if let Some(sp) = s.spans.iter_mut().find(|sp| sp.id == span) {
            if sp.duration.is_none() {
                sp.duration = Some(now.saturating_sub(sp.start));
            }
        }
    }

    fn event(&self, name: &str, span: Option<SpanId>, attrs: &[(&str, Value)]) {
        let mut s = self.state.lock().expect("recorder poisoned");
        let trace = span
            .and_then(|p| s.spans.iter().rev().find(|sp| sp.id == p))
            .and_then(|sp| sp.trace);
        s.events.push(Event {
            name: name.to_string(),
            span,
            trace,
            attrs: own_attrs(attrs),
        });
    }

    fn set_trace(&self, span: SpanId, trace: TraceId) {
        let mut s = self.state.lock().expect("recorder poisoned");
        if let Some(sp) = s.spans.iter_mut().rev().find(|sp| sp.id == span) {
            sp.trace = Some(trace);
        }
    }

    fn trace_of(&self, span: SpanId) -> Option<TraceId> {
        let s = self.state.lock().expect("recorder poisoned");
        s.spans
            .iter()
            .rev()
            .find(|sp| sp.id == span)
            .and_then(|sp| sp.trace)
    }
}

struct OpenSpan {
    name: String,
    parent: Option<SpanId>,
    trace: Option<TraceId>,
    start: Instant,
    attrs: Vec<(String, Value)>,
}

struct JsonlState<W> {
    out: W,
    open: HashMap<SpanId, OpenSpan>,
}

/// Streams the trace as JSON Lines: one self-contained object per line.
///
/// * spans (written at `span_end`):
///   `{"type":"span","id":N,"parent":N|null,"name":"...","start_us":N,"dur_us":N,"attrs":{...}}`
/// * events (written immediately):
///   `{"type":"event","name":"...","span":N|null,"attrs":{...}}`
///
/// Every line carries `type`, `name` and `attrs` — the stable keys the CI
/// trace validator checks. Write errors are swallowed: telemetry must
/// never take down the run it observes.
pub struct JsonlRecorder<W: Write + Send> {
    epoch: Instant,
    next_id: AtomicU64,
    state: Mutex<JsonlState<W>>,
}

impl<W: Write + Send> JsonlRecorder<W> {
    /// Record into `out` (wrap files in a `BufWriter`).
    pub fn new(out: W) -> JsonlRecorder<W> {
        JsonlRecorder {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            state: Mutex::new(JsonlState {
                out,
                open: HashMap::new(),
            }),
        }
    }
}

fn attrs_json(attrs: &[(String, Value)]) -> String {
    let mut obj = json::Obj::new();
    for (k, v) in attrs {
        obj = obj.raw(k, &v.to_json());
    }
    obj.finish()
}

/// Render one JSONL span line — the exact format [`JsonlRecorder`] emits.
/// Shared with out-of-crate recorders (the serve flight recorder) so every
/// JSONL surface stays byte-compatible. The returned string has no
/// trailing newline.
#[allow(clippy::too_many_arguments)]
pub fn span_line(
    id: SpanId,
    name: &str,
    parent: Option<SpanId>,
    trace: Option<TraceId>,
    start_us: u64,
    dur_us: u64,
    attrs: &[(String, Value)],
) -> String {
    let mut obj = json::Obj::new()
        .str("type", "span")
        .u64("id", id)
        .u64("span_id", id)
        .str("name", name)
        .u64("start_us", start_us)
        .u64("dur_us", dur_us);
    obj = match trace {
        Some(t) => obj.str("trace_id", &t.to_hex()),
        None => obj.null("trace_id"),
    };
    obj = match parent {
        Some(p) => obj.u64("parent", p).u64("parent_id", p),
        None => obj.null("parent").null("parent_id"),
    };
    obj.raw("attrs", &attrs_json(attrs)).finish()
}

/// Render one JSONL event line (see [`span_line`]); no trailing newline.
pub fn event_line(
    name: &str,
    span: Option<SpanId>,
    trace: Option<TraceId>,
    attrs: &[(String, Value)],
) -> String {
    let mut obj = json::Obj::new().str("type", "event").str("name", name);
    obj = match span {
        Some(p) => obj.u64("span", p).u64("span_id", p),
        None => obj.null("span").null("span_id"),
    };
    obj = match trace {
        Some(t) => obj.str("trace_id", &t.to_hex()),
        None => obj.null("trace_id"),
    };
    obj.raw("attrs", &attrs_json(attrs)).finish()
}

impl<W: Write + Send> Recorder for JsonlRecorder<W> {
    fn enabled(&self) -> bool {
        true
    }

    fn span_start(&self, name: &str, parent: Option<SpanId>) -> SpanId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut s = self.state.lock().expect("recorder poisoned");
        let trace = parent.and_then(|p| s.open.get(&p)).and_then(|sp| sp.trace);
        s.open.insert(
            id,
            OpenSpan {
                name: name.to_string(),
                parent,
                trace,
                start: Instant::now(),
                attrs: Vec::new(),
            },
        );
        id
    }

    fn span_attr(&self, span: SpanId, key: &str, value: Value) {
        let mut s = self.state.lock().expect("recorder poisoned");
        if let Some(sp) = s.open.get_mut(&span) {
            sp.attrs.push((key.to_string(), value));
        }
    }

    fn span_end(&self, span: SpanId) {
        let mut s = self.state.lock().expect("recorder poisoned");
        let Some(sp) = s.open.remove(&span) else {
            return;
        };
        let mut line = span_line(
            span,
            &sp.name,
            sp.parent,
            sp.trace,
            sp.start.duration_since(self.epoch).as_micros() as u64,
            sp.start.elapsed().as_micros() as u64,
            &sp.attrs,
        );
        line.push('\n');
        // One `write_all` per line: the emission itself is atomic, so even
        // a writer shared beyond this recorder's lock never sees torn
        // lines.
        let _ = s.out.write_all(line.as_bytes());
    }

    fn event(&self, name: &str, span: Option<SpanId>, attrs: &[(&str, Value)]) {
        let mut s = self.state.lock().expect("recorder poisoned");
        let trace = span.and_then(|p| s.open.get(&p)).and_then(|sp| sp.trace);
        let mut line = event_line(name, span, trace, &own_attrs(attrs));
        line.push('\n');
        let _ = s.out.write_all(line.as_bytes());
    }

    fn set_trace(&self, span: SpanId, trace: TraceId) {
        let mut s = self.state.lock().expect("recorder poisoned");
        if let Some(sp) = s.open.get_mut(&span) {
            sp.trace = Some(trace);
        }
    }

    fn trace_of(&self, span: SpanId) -> Option<TraceId> {
        let s = self.state.lock().expect("recorder poisoned");
        s.open.get(&span).and_then(|sp| sp.trace)
    }

    fn flush(&self) {
        if let Ok(mut s) = self.state.lock() {
            let _ = s.out.flush();
        }
    }
}

/// Dropping the recorder flushes, so a trace file is never truncated
/// mid-line by a normal exit; for long-running servers call
/// [`Recorder::flush`] explicitly at shutdown/checkpoints as well, since
/// `Drop` cannot run on an abrupt kill.
impl<W: Write + Send> Drop for JsonlRecorder<W> {
    fn drop(&mut self) {
        self.flush();
    }
}

/// RAII helper: opens a span on creation, closes it on drop. Borrow-based,
/// so it nests naturally inside one stage; pass raw [`SpanId`]s across
/// threads or stages instead.
pub struct SpanGuard<'a> {
    rec: &'a dyn Recorder,
    id: SpanId,
}

impl<'a> SpanGuard<'a> {
    /// Open `name` under `parent` on `rec`.
    pub fn open(rec: &'a dyn Recorder, name: &str, parent: Option<SpanId>) -> SpanGuard<'a> {
        SpanGuard {
            rec,
            id: rec.span_start(name, parent),
        }
    }

    /// The underlying span id (e.g. to parent child spans).
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Attach an attribute.
    pub fn attr(&self, key: &str, value: impl Into<Value>) {
        self.rec.span_attr(self.id, key, value.into());
    }

    /// Record an event attached to this span.
    pub fn event(&self, name: &str, attrs: &[(&str, Value)]) {
        self.rec.event(name, Some(self.id), attrs);
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.rec.span_end(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_free() {
        assert!(!NOOP.enabled());
        let id = NOOP.span_start("x", None);
        assert_eq!(id, 0);
        NOOP.span_attr(id, "k", 1u64.into());
        NOOP.event("e", Some(id), &[]);
        NOOP.span_end(id);
    }

    #[test]
    fn memory_recorder_captures_hierarchy() {
        let rec = MemoryRecorder::new();
        let root = rec.span_start("tune", None);
        let child = rec.span_start("launch", Some(root));
        rec.span_attr(child, "kernel", "mt".into());
        rec.event("worker", Some(child), &[("groups", 3u64.into())]);
        rec.span_end(child);
        rec.span_end(root);

        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let launch = snap.span("launch").unwrap();
        assert_eq!(launch.parent, Some(root));
        assert_eq!(launch.attr_str("kernel"), Some("mt"));
        assert!(launch.duration.is_some());
        let ev = &snap.events_named("worker")[0];
        assert_eq!(ev.attr("groups").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn memory_recorder_is_thread_safe() {
        let rec = MemoryRecorder::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let rec = &rec;
                s.spawn(move || {
                    for i in 0..50 {
                        let id = rec.span_start("w", None);
                        rec.span_attr(id, "t", (t as u64).into());
                        rec.event("tick", Some(id), &[("i", (i as u64).into())]);
                        rec.span_end(id);
                    }
                });
            }
        });
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 200);
        assert_eq!(snap.events.len(), 200);
        assert!(snap.spans.iter().all(|s| s.duration.is_some()));
    }

    #[test]
    fn jsonl_emits_one_object_per_line() {
        let buf: Vec<u8> = Vec::new();
        let rec = JsonlRecorder::new(buf);
        let root = rec.span_start("tune", None);
        rec.span_attr(root, "device", "SNB".into());
        rec.event(
            "decision",
            Some(root),
            &[("np", 1.3f64.into()), ("choice", "without".into())],
        );
        rec.span_end(root);

        let out = {
            let s = rec.state.lock().unwrap();
            String::from_utf8(s.out.clone()).unwrap()
        };
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"type\":"), "{line}");
            assert!(line.contains("\"name\":"), "{line}");
            assert!(line.contains("\"attrs\":{"), "{line}");
        }
        assert!(lines[0].contains("\"type\":\"event\""));
        assert!(lines[1].contains("\"type\":\"span\""));
        assert!(lines[1].contains("\"device\":\"SNB\""));
    }

    #[test]
    fn dropped_recorder_leaves_only_complete_json_lines() {
        // Regression: a `JsonlRecorder` over a `BufWriter<File>` must
        // flush on drop, otherwise a trace from a shutting-down process
        // ends mid-line. Write well past the BufWriter's 8 KiB default
        // buffer so an unflushed tail would be visible.
        let path = std::env::temp_dir().join(format!(
            "grover-obs-flush-test-{}.jsonl",
            std::process::id()
        ));
        let events = 500usize;
        {
            let f = std::fs::File::create(&path).unwrap();
            let rec = JsonlRecorder::new(std::io::BufWriter::new(f));
            for i in 0..events {
                rec.event(
                    "tick",
                    None,
                    &[("i", (i as u64).into()), ("pad", "x".repeat(40).into())],
                );
            }
        } // drop: must flush
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), events, "all events durable after drop");
        for line in lines {
            json::parse(line).unwrap_or_else(|e| panic!("incomplete line `{line}`: {e}"));
        }
    }

    #[test]
    fn explicit_flush_makes_records_durable_without_drop() {
        let path = std::env::temp_dir().join(format!(
            "grover-obs-flush2-test-{}.jsonl",
            std::process::id()
        ));
        let f = std::fs::File::create(&path).unwrap();
        let rec = JsonlRecorder::new(std::io::BufWriter::new(f));
        rec.event("one", None, &[]);
        rec.flush();
        // Recorder still alive — the file must already be complete.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        json::parse(text.lines().next().unwrap()).unwrap();
        drop(rec);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_id_roundtrips_and_rejects_garbage() {
        let t = TraceId::mint();
        assert_eq!(TraceId::parse(&t.to_hex()), Some(t));
        assert_eq!(t.to_hex().len(), 32);
        assert_ne!(TraceId::mint(), TraceId::mint());
        for bad in [
            "",
            "xyz",
            "0123",
            "0123456789abcdef0123456789abcdeg",  // non-hex
            "00000000000000000000000000000000",  // zero reserved
            "0123456789abcdef0123456789abcdef0", // 33 chars
            " 123456789abcdef0123456789abcdef",  // space
        ] {
            assert_eq!(TraceId::parse(bad), None, "{bad:?}");
        }
        // Case-insensitive parse.
        assert_eq!(
            TraceId::parse("00000000000000000000000000000ABC"),
            Some(TraceId(0xabc))
        );
    }

    #[test]
    fn memory_recorder_inherits_trace_parent_to_child_and_events() {
        let rec = MemoryRecorder::new();
        let trace = TraceId::mint();
        let root = rec.span_start("serve.request", None);
        rec.set_trace(root, trace);
        let tune = rec.span_start("tune", Some(root));
        let launch = rec.span_start("launch", Some(tune));
        rec.event("decision", Some(tune), &[]);
        rec.event("orphan", None, &[]);
        rec.span_end(launch);
        rec.span_end(tune);
        rec.span_end(root);

        assert_eq!(rec.trace_of(launch), Some(trace));
        let snap = rec.snapshot();
        for name in ["serve.request", "tune", "launch"] {
            assert_eq!(snap.span(name).unwrap().trace, Some(trace), "{name}");
        }
        assert_eq!(snap.events_named("decision")[0].trace, Some(trace));
        assert_eq!(snap.events_named("orphan")[0].trace, None);
    }

    #[test]
    fn jsonl_lines_carry_trace_span_and_parent_ids() {
        let rec = JsonlRecorder::new(Vec::new());
        let trace = TraceId(0xdead_beef);
        let root = rec.span_start("serve.request", None);
        rec.set_trace(root, trace);
        let child = rec.span_start("launch", Some(root));
        rec.event("worker", Some(child), &[]);
        rec.span_end(child);
        rec.span_end(root);

        let out = {
            let s = rec.state.lock().unwrap();
            String::from_utf8(s.out.clone()).unwrap()
        };
        let hex = trace.to_hex();
        for line in out.lines() {
            let v = json::parse(line).unwrap();
            assert_eq!(v.str_of("trace_id"), Some(hex.as_str()), "{line}");
            assert!(v.get("span_id").is_some(), "{line}");
        }
        let spans: Vec<_> = out
            .lines()
            .map(|l| json::parse(l).unwrap())
            .filter(|v| v.str_of("type") == Some("span"))
            .collect();
        assert_eq!(spans.len(), 2);
        // Child's parent_id names the root's span_id.
        assert_eq!(spans[0].u64_of("parent_id"), spans[1].u64_of("span_id"));
        assert_eq!(spans[1].get("parent_id"), Some(&json::Json::Null));
    }

    /// A writer that panics unless every single `write` call it receives
    /// is one (or more) complete, newline-terminated JSON lines — a torn
    /// line (an emission split across two `write` calls) fails the test
    /// even though the test never inspects the final buffer.
    struct WholeLineWriter {
        lines: std::sync::Arc<AtomicU64>,
    }

    impl Write for WholeLineWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let text = std::str::from_utf8(buf).expect("utf-8 write");
            assert!(
                text.ends_with('\n'),
                "torn write (no trailing newline): {text:?}"
            );
            for line in text.lines() {
                json::parse(line).unwrap_or_else(|e| panic!("torn JSON line `{line}`: {e}"));
                self.lines.fetch_add(1, Ordering::Relaxed);
            }
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn concurrent_writers_never_tear_jsonl_lines() {
        let lines = std::sync::Arc::new(AtomicU64::new(0));
        let rec = JsonlRecorder::new(WholeLineWriter {
            lines: lines.clone(),
        });
        std::thread::scope(|s| {
            for t in 0..8 {
                let rec = &rec;
                s.spawn(move || {
                    for i in 0..100 {
                        let id = rec.span_start("w", None);
                        rec.set_trace(id, TraceId::mint());
                        rec.span_attr(id, "pad", "y".repeat(64).into());
                        rec.event(
                            "tick",
                            Some(id),
                            &[("t", (t as u64).into()), ("i", (i as u64).into())],
                        );
                        rec.span_end(id);
                    }
                });
            }
        });
        // 8 threads × 100 iterations × (1 event + 1 span) lines.
        assert_eq!(lines.load(Ordering::Relaxed), 1600);
    }

    #[test]
    fn span_guard_closes_on_drop() {
        let rec = MemoryRecorder::new();
        {
            let g = SpanGuard::open(&rec, "launch", None);
            g.attr("groups", 4u64);
            g.event("worker", &[]);
        }
        let snap = rec.snapshot();
        assert!(snap.span("launch").unwrap().duration.is_some());
    }
}
