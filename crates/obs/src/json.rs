//! A tiny JSON writer and reader shared by every machine-readable surface
//! of the workspace (the CLI's `--json` outputs, the bench bins, the JSONL
//! trace exporter, and the `grover-serve` HTTP API), replacing the
//! hand-rolled `format!` escaping each of them used to carry.
//!
//! The writer is a plain string builder ([`Obj`] / [`array`]); the reader
//! ([`parse`]) is a small recursive-descent parser into the [`Json`] value
//! tree. There is deliberately no derive machinery; the workspace stays
//! dependency-free.

/// Escape `s` as a JSON string literal, including the surrounding quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render an `f64` as a JSON number. JSON has no NaN/Infinity, so
/// non-finite values become `null` instead of producing an unparseable
/// document.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Builder for one JSON object. Fields are emitted in insertion order.
///
/// ```
/// use grover_obs::json::Obj;
/// let s = Obj::new().str("name", "mt").u64("loads", 42).finish();
/// assert_eq!(s, r#"{"name":"mt","loads":42}"#);
/// ```
#[derive(Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    /// Start an empty object.
    pub fn new() -> Obj {
        Obj::default()
    }

    fn key(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push_str(&escape(key));
        self.buf.push(':');
    }

    /// Add a string field (escaped).
    pub fn str(mut self, key: &str, v: &str) -> Obj {
        self.key(key);
        self.buf.push_str(&escape(v));
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(mut self, key: &str, v: u64) -> Obj {
        self.key(key);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Add a signed integer field.
    pub fn i64(mut self, key: &str, v: i64) -> Obj {
        self.key(key);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Add a float field (`null` when non-finite).
    pub fn f64(mut self, key: &str, v: f64) -> Obj {
        self.key(key);
        self.buf.push_str(&number(v));
        self
    }

    /// Add a boolean field.
    pub fn bool(mut self, key: &str, v: bool) -> Obj {
        self.key(key);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Add a `null` field.
    pub fn null(mut self, key: &str) -> Obj {
        self.key(key);
        self.buf.push_str("null");
        self
    }

    /// Add a field whose value is already-rendered JSON (an object, array
    /// or any literal). The caller is responsible for its validity.
    pub fn raw(mut self, key: &str, v: &str) -> Obj {
        self.key(key);
        self.buf.push_str(v);
        self
    }

    /// Finish the object, returning its JSON text.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Render a JSON array from already-rendered element texts.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let items: Vec<String> = items.into_iter().collect();
    format!("[{}]", items.join(","))
}

/// A parsed JSON value.
///
/// Numbers are kept as `f64` — the workspace's machine-readable surfaces
/// stay well below 2^53, where `f64` is exact for integers.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; fields keep document order, duplicate keys keep the last.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field by key (last duplicate wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as `bool`, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Convenience: string field of an object.
    pub fn str_of(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }

    /// Convenience: integer field of an object.
    pub fn u64_of(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Json::as_u64)
    }

    /// Convenience: float field of an object.
    pub fn f64_of(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Json::as_f64)
    }

    /// Convenience: boolean field of an object.
    pub fn bool_of(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(Json::as_bool)
    }
}

/// Parse one JSON document. Trailing non-whitespace is an error.
pub fn parse(s: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.arr(),
            Some(b'{') => self.obj(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.num(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over plain UTF-8 runs.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs: decode the low half if present.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let lo = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .and_then(|h| std::str::from_utf8(h).ok())
                                        .and_then(|h| u32::from_str_radix(h, 16).ok())
                                        .ok_or_else(|| "invalid surrogate pair".to_string())?;
                                    self.pos += 6;
                                    char::from_u32(0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00))
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| "invalid code point".to_string())?);
                        }
                        other => {
                            return Err(format!("unknown escape `\\{}`", other as char));
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos));
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn num(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{text}`"))
    }

    fn arr(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn obj(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b"), r#""a\"b""#);
        assert_eq!(escape("a\\b"), r#""a\\b""#);
        assert_eq!(escape("a\nb"), r#""a\nb""#);
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn object_builds_in_order() {
        let s = Obj::new()
            .str("a", "x")
            .u64("b", 1)
            .i64("c", -2)
            .f64("d", 1.5)
            .bool("e", true)
            .null("f")
            .raw("g", "[1,2]")
            .finish();
        assert_eq!(
            s,
            r#"{"a":"x","b":1,"c":-2,"d":1.5,"e":true,"f":null,"g":[1,2]}"#
        );
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(1.25), "1.25");
    }

    #[test]
    fn array_joins() {
        assert_eq!(array(vec!["1".to_string(), "2".to_string()]), "[1,2]");
        assert_eq!(array(Vec::<String>::new()), "[]");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Json::Str("a\nb".into()));
        assert_eq!(parse(r#""é""#).unwrap(), Json::Str("é".into()));
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":{"d":"x"},"a":3}"#).unwrap();
        // Duplicate keys: last wins.
        assert_eq!(v.u64_of("a"), Some(3));
        assert_eq!(v.get("c").and_then(|c| c.str_of("d")), Some("x"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", r#"{"a" 1}"#, "tru", "1 2", "\"\u{1}\""] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn writer_reader_roundtrip() {
        let doc = Obj::new()
            .str("s", "a\"b\\c\n")
            .u64("u", 42)
            .i64("i", -7)
            .f64("f", 1.25)
            .bool("b", true)
            .null("n")
            .raw("arr", &array(vec!["1".to_string(), "\"x\"".to_string()]))
            .finish();
        let v = parse(&doc).unwrap();
        assert_eq!(v.str_of("s"), Some("a\"b\\c\n"));
        assert_eq!(v.u64_of("u"), Some(42));
        assert_eq!(v.f64_of("i"), Some(-7.0));
        assert_eq!(v.f64_of("f"), Some(1.25));
        assert_eq!(v.bool_of("b"), Some(true));
        assert_eq!(v.get("n"), Some(&Json::Null));
        assert_eq!(
            v.get("arr").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn integers_extract_exactly() {
        assert_eq!(parse("9007199254740992").unwrap().as_u64(), Some(1 << 53));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }
}
