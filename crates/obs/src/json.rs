//! A tiny JSON writer shared by every machine-readable surface of the
//! workspace (the CLI's `--json` outputs, the bench bins and the JSONL
//! trace exporter), replacing the hand-rolled `format!` escaping each of
//! them used to carry.
//!
//! It only *writes* JSON — there is deliberately no parser, no DOM and no
//! derive machinery; the workspace stays dependency-free.

/// Escape `s` as a JSON string literal, including the surrounding quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render an `f64` as a JSON number. JSON has no NaN/Infinity, so
/// non-finite values become `null` instead of producing an unparseable
/// document.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Builder for one JSON object. Fields are emitted in insertion order.
///
/// ```
/// use grover_obs::json::Obj;
/// let s = Obj::new().str("name", "mt").u64("loads", 42).finish();
/// assert_eq!(s, r#"{"name":"mt","loads":42}"#);
/// ```
#[derive(Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    /// Start an empty object.
    pub fn new() -> Obj {
        Obj::default()
    }

    fn key(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push_str(&escape(key));
        self.buf.push(':');
    }

    /// Add a string field (escaped).
    pub fn str(mut self, key: &str, v: &str) -> Obj {
        self.key(key);
        self.buf.push_str(&escape(v));
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(mut self, key: &str, v: u64) -> Obj {
        self.key(key);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Add a signed integer field.
    pub fn i64(mut self, key: &str, v: i64) -> Obj {
        self.key(key);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Add a float field (`null` when non-finite).
    pub fn f64(mut self, key: &str, v: f64) -> Obj {
        self.key(key);
        self.buf.push_str(&number(v));
        self
    }

    /// Add a boolean field.
    pub fn bool(mut self, key: &str, v: bool) -> Obj {
        self.key(key);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Add a `null` field.
    pub fn null(mut self, key: &str) -> Obj {
        self.key(key);
        self.buf.push_str("null");
        self
    }

    /// Add a field whose value is already-rendered JSON (an object, array
    /// or any literal). The caller is responsible for its validity.
    pub fn raw(mut self, key: &str, v: &str) -> Obj {
        self.key(key);
        self.buf.push_str(v);
        self
    }

    /// Finish the object, returning its JSON text.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Render a JSON array from already-rendered element texts.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let items: Vec<String> = items.into_iter().collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b"), r#""a\"b""#);
        assert_eq!(escape("a\\b"), r#""a\\b""#);
        assert_eq!(escape("a\nb"), r#""a\nb""#);
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn object_builds_in_order() {
        let s = Obj::new()
            .str("a", "x")
            .u64("b", 1)
            .i64("c", -2)
            .f64("d", 1.5)
            .bool("e", true)
            .null("f")
            .raw("g", "[1,2]")
            .finish();
        assert_eq!(
            s,
            r#"{"a":"x","b":1,"c":-2,"d":1.5,"e":true,"f":null,"g":[1,2]}"#
        );
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(1.25), "1.25");
    }

    #[test]
    fn array_joins() {
        assert_eq!(array(vec!["1".to_string(), "2".to_string()]), "[1,2]");
        assert_eq!(array(Vec::<String>::new()), "[]");
    }
}
