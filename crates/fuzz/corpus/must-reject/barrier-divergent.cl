// The barrier only executes for work-items with lx < 4: under OpenCL rules
// this is undefined behaviour, and the pass must not reason about (or
// remove) a barrier it cannot prove uniform. Refused at candidate
// detection.
// fuzz: expect=reject kind=not_candidate reason=divergent control flow
__kernel void half_stage(__global float* in, __global float* out, int w) {
    __local float tile[8];
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    if (lx < 4) {
        tile[lx] = in[gx];
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    out[gx] = tile[0];
}
