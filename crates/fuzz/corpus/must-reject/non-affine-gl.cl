// The staged global index is quadratic in the work-item id. Rewriting the
// local load requires substituting solved ids into the GL index, which is
// only sound when that index is affine. The pass must decline.
// fuzz: expect=reject kind=declined reason=not affine in the work-item indices
__kernel void square_gather(__global float* in, __global float* out, int w) {
    __local float tile[8];
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    tile[lx] = in[gx * gx];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[gx] = tile[lx];
}
