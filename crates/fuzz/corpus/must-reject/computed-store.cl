// The local store writes an arithmetic result, not a raw global load:
// the tile is not a pure staging cache, so Grover must not touch it.
// fuzz: expect=reject kind=not_candidate reason=not a pure staging cache
__kernel void scale_stage(__global float* in, __global float* out, int w) {
    __local float tile[16];
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    tile[lx] = in[gx] * 0.5f + 1.0f;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[gx] = tile[15 - lx];
}
