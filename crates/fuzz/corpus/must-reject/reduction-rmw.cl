// A tree reduction updates the local buffer in place after staging: the
// stored values are no longer global loads, so removal would change the
// result. The pass must refuse.
// fuzz: expect=reject kind=not_candidate reason=not a pure staging cache
__kernel void tree_reduce(__global float* in, __global float* out, int w) {
    __local float acc[8];
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    acc[lx] = in[gx];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int s = 4; s > 0; s = s / 2) {
        if (lx < s) {
            acc[lx] = acc[lx] + acc[lx + s];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (lx == 0) {
        out[gx / 8] = acc[0];
    }
}
