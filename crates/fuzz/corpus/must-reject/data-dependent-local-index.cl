// The local store index is computed from loaded data, so the staging map
// is not a pure function of the work-item ids and the linear solver cannot
// invert it. The pass must decline.
// fuzz: expect=reject kind=declined reason=pure get_local_id
__kernel void gather_stage(__global float* in, __global float* out, int w) {
    __local float tile[8];
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    int slot = (int)in[gx + w];
    tile[slot % 8] = in[gx];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[gx] = tile[lx];
}
