// Regression: a loop whose trip count depends on the local id executes its
// barrier a different number of times per work-item. Early versions of the
// candidate filter accepted this shape; it must be refused as divergent.
// fuzz: expect=reject kind=not_candidate reason=divergent control flow
__kernel void ragged_loop(__global float* in, __global float* out, int w) {
    __local float lm[16];
    int lx = get_local_id(0);
    float s = 0.0f;
    for (int i = lx; i < 16; i++) {
        lm[lx] = in[i];
        barrier(CLK_LOCAL_MEM_FENCE);
        s += lm[0];
    }
    out[get_global_id(0)] = s;
}
