// Regression: 1-D sliding window over a two-strip halo stage. Each local
// load resolves against a different staged strip; both must rewrite to
// direct global loads. Kept as a must-transform conformance case.
// fuzz: expect=transform
// fuzz: nd=16/8
// fuzz: in=34 out=16 w=16
__kernel void fz(__global float* in, __global float* out, int w) {
    __local float lm0[16];
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    lm0[lx] = in[gx + 1];
    lm0[lx + 8] = in[gx + 9];
    barrier(CLK_LOCAL_MEM_FENCE);
    float acc = 0.0f;
    acc += lm0[lx];
    acc += lm0[lx + 3];
    out[gx] = acc;
}
