// Regression: transposed-and-mirrored read-back from an offset tile with a
// shifted global window. Exercises the solver's full unimodular map
// handling; kept as a must-transform conformance case.
// fuzz: expect=transform
// fuzz: nd=8x8/4x4
// fuzz: in=88 out=88 w=11
__kernel void fz(__global float* in, __global float* out, int w) {
    __local float lm0[6][5];
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    int ly = get_local_id(1);
    int gy = get_global_id(1);
    lm0[ly + 2][lx + 1] = in[gy * w + gx + 2];
    barrier(CLK_LOCAL_MEM_FENCE);
    float acc = 0.0f;
    acc += lm0[4 - 1 - lx + 2][4 - 1 - ly + 1];
    out[gy * w + gx] = acc;
}
