//! Deterministic case generator.
//!
//! SplitMix64 is the repo-wide source of test randomness: a tiny, seedable,
//! dependency-free PRNG with a full 2^64 period and good avalanche behaviour.
//! It originated in `tests/properties.rs` and now lives here so the fuzzer,
//! the property tests and any future randomized suite share one generator
//! (and therefore one reproducibility story: a `u64` seed names a case).

/// SplitMix64: a tiny deterministic case generator.
pub struct Gen(u64);

impl Gen {
    pub fn new(seed: u64) -> Gen {
        Gen(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn int(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    /// `true` with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }

    /// Uniformly pick one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[(self.next_u64() % items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a: Vec<u64> = {
            let mut g = Gen::new(42);
            (0..64).map(|_| g.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut g = Gen::new(42);
            (0..64).map(|_| g.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut g = Gen::new(43);
            (0..64).map(|_| g.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn int_stays_in_range() {
        let mut g = Gen::new(7);
        for _ in 0..1000 {
            let v = g.int(-5, 9);
            assert!((-5..9).contains(&v));
        }
    }

    #[test]
    fn chance_is_calibrated() {
        let mut g = Gen::new(11);
        let hits = (0..10_000).filter(|_| g.chance(1, 4)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
