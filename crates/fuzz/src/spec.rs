//! Structured kernel specifications.
//!
//! The fuzzer does not mutate raw source text. Each case is a small
//! [`KernelSpec`] value describing a kernel built around the software-cache
//! pattern Grover targets (global load → local store → barrier → local
//! load), and [`KernelSpec::render`] turns it into OpenCL-C. Working at the
//! spec level keeps every generated kernel well-formed, makes the expected
//! pass outcome computable, and gives the shrinker meaningful moves
//! (drop a buffer, drop a tap, zero an offset) instead of text surgery.

use crate::gen::Gen;
use std::fmt::Write;

/// How a local-load site indexes the staged tile relative to the store.
///
/// Every map is unimodular, so the pass's linear solver must be able to
/// invert it; `Swap*` maps require a square tile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadMap {
    /// Read back exactly what this work-item staged.
    Identity,
    /// Mirror along x: `lm[.., tx-1-lx]`.
    ReverseX,
    /// Mirror along y (2-D only): `lm[ty-1-ly, ..]`.
    ReverseY,
    /// Transpose (2-D only, square tile): `lm[lx, ly]`.
    Swap,
    /// Transpose of the mirror (2-D only, square tile): `lm[tx-1-lx, ty-1-ly]`.
    SwapReverse,
}

impl ReadMap {
    pub fn name(self) -> &'static str {
        match self {
            ReadMap::Identity => "identity",
            ReadMap::ReverseX => "reverse-x",
            ReadMap::ReverseY => "reverse-y",
            ReadMap::Swap => "swap",
            ReadMap::SwapReverse => "swap-reverse",
        }
    }
}

/// One `__local` staging buffer inside a generated kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BufSpec {
    /// Index map used by the primary read-back site.
    pub map: ReadMap,
    /// Constant offset added to the store's x index (shifts the tile).
    pub ox: i64,
    /// Constant offset added to the store's y index (2-D only).
    pub oy: i64,
    /// 1-D only: stage a second tile-wide strip (`lm[lx+tx] = in[gx+tx]`),
    /// enabling sliding-window reads.
    pub halo: bool,
    /// 1-D only, requires `halo`: extra read sites `lm[lx + dx]` per tap.
    pub taps: Vec<i64>,
    /// Add a uniform loop that reads every staged element (broadcast).
    pub loop_read: bool,
}

/// A deliberate violation of the software-cache pattern. Kernels carrying a
/// poison must be *refused* by the pass with a specific outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Poison {
    /// The local store writes an arithmetic result, not a raw global load.
    ComputedStore,
    /// The local buffer is updated in place after staging.
    ReadModifyWrite,
    /// The local store index is computed from loaded data.
    DataDependentIndex,
    /// The staged global index is quadratic in the work-item id.
    NonAffineGl,
    /// A barrier executes under work-item-divergent control flow.
    DivergentBarrier,
}

pub const ALL_POISONS: [Poison; 5] = [
    Poison::ComputedStore,
    Poison::ReadModifyWrite,
    Poison::DataDependentIndex,
    Poison::NonAffineGl,
    Poison::DivergentBarrier,
];

impl Poison {
    pub fn name(self) -> &'static str {
        match self {
            Poison::ComputedStore => "computed-store",
            Poison::ReadModifyWrite => "read-modify-write",
            Poison::DataDependentIndex => "data-dependent-index",
            Poison::NonAffineGl => "non-affine-gl",
            Poison::DivergentBarrier => "divergent-barrier",
        }
    }

    /// The `BufferOutcome::kind()` the pass must report.
    pub fn expected_kind(self) -> &'static str {
        match self {
            Poison::ComputedStore | Poison::ReadModifyWrite | Poison::DivergentBarrier => {
                "not_candidate"
            }
            Poison::DataDependentIndex | Poison::NonAffineGl => "declined",
        }
    }

    /// A substring the reported reason must contain.
    pub fn expected_reason(self) -> &'static str {
        match self {
            Poison::ComputedStore | Poison::ReadModifyWrite => "not a pure staging cache",
            Poison::DataDependentIndex => "pure get_local_id",
            Poison::NonAffineGl => "not affine in the work-item indices",
            Poison::DivergentBarrier => "divergent control flow",
        }
    }
}

/// Concrete launch geometry and buffer sizing for a spec.
#[derive(Clone, Copy, Debug)]
pub struct ExecShape {
    pub global: [usize; 2],
    pub local: [usize; 2],
    pub in_len: usize,
    pub out_len: usize,
    pub w: i64,
}

/// A complete generated kernel: geometry, staging buffers, optional poison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelSpec {
    /// 1 or 2 NDRange dimensions.
    pub dims: u8,
    /// Work-group (tile) size along x.
    pub tx: i64,
    /// Work-group (tile) size along y (1 when `dims == 1`).
    pub ty: i64,
    /// Work-group counts.
    pub gx_groups: i64,
    pub gy_groups: i64,
    /// Constant offset added to every global read along x.
    pub goff: i64,
    pub bufs: Vec<BufSpec>,
    pub poison: Option<Poison>,
}

impl KernelSpec {
    /// Draw a random spec. `poison == None` yields a must-transform kernel;
    /// otherwise a minimal kernel carrying that violation.
    pub fn random(g: &mut Gen, poison: Option<Poison>) -> KernelSpec {
        if let Some(p) = poison {
            // Poison kernels stay 1-D and minimal: the violation is the point.
            return KernelSpec {
                dims: 1,
                tx: *g.pick(&[2, 4, 8, 16]),
                ty: 1,
                gx_groups: g.int(1, 4),
                gy_groups: 1,
                goff: g.int(0, 4),
                bufs: vec![BufSpec {
                    map: ReadMap::Identity,
                    ox: 0,
                    oy: 0,
                    halo: false,
                    taps: Vec::new(),
                    loop_read: false,
                }],
                poison: Some(p),
            };
        }
        let dims = if g.chance(1, 2) { 1 } else { 2 };
        let (tx, ty) = if dims == 1 {
            (*g.pick(&[2, 4, 8, 16]), 1)
        } else {
            let tx = *g.pick(&[2, 4, 8]);
            // Square tiles keep transpose maps available; rectangular tiles
            // exercise the solver's dimension bookkeeping.
            let ty = if g.chance(1, 2) {
                tx
            } else {
                *g.pick(&[2, 4, 8])
            };
            (tx, ty)
        };
        let nbufs = if g.chance(1, 3) { 2 } else { 1 };
        let bufs = (0..nbufs)
            .map(|_| {
                let map = if dims == 1 {
                    *g.pick(&[ReadMap::Identity, ReadMap::ReverseX])
                } else if tx == ty {
                    *g.pick(&[
                        ReadMap::Identity,
                        ReadMap::ReverseX,
                        ReadMap::ReverseY,
                        ReadMap::Swap,
                        ReadMap::SwapReverse,
                    ])
                } else {
                    *g.pick(&[ReadMap::Identity, ReadMap::ReverseX, ReadMap::ReverseY])
                };
                let halo = dims == 1 && g.chance(1, 3);
                let taps = if halo {
                    let n = g.int(1, 3);
                    (0..n).map(|_| g.int(1, tx + 1)).collect()
                } else {
                    Vec::new()
                };
                BufSpec {
                    map,
                    ox: g.int(0, 3),
                    oy: if dims == 2 { g.int(0, 3) } else { 0 },
                    halo,
                    taps,
                    loop_read: g.chance(1, 4),
                }
            })
            .collect();
        KernelSpec {
            dims,
            tx,
            ty,
            gx_groups: g.int(1, 4),
            gy_groups: if dims == 2 { g.int(1, 4) } else { 1 },
            goff: g.int(0, 4),
            bufs,
            poison: None,
        }
    }

    /// Launch geometry plus exact buffer sizing. The interpreter bounds-checks
    /// every access, so `in_len`/`out_len` must cover all generated indices.
    pub fn exec_shape(&self) -> ExecShape {
        let gx = self.gx_groups * self.tx;
        let gy = self.gy_groups * self.ty;
        let nbufs = self.bufs.len() as i64;
        if self.dims == 1 {
            // Max read: gx-1 + goff + (nbufs-1) + tx (halo strip).
            let in_len = (gx + self.goff + nbufs + 2 * self.tx) as usize;
            ExecShape {
                global: [gx as usize, 1],
                local: [self.tx as usize, 1],
                in_len,
                out_len: gx as usize,
                w: gx,
            }
        } else {
            // Row stride leaves room for the x offsets so rows stay disjoint.
            let w = gx + self.goff + nbufs;
            ExecShape {
                global: [gx as usize, gy as usize],
                local: [self.tx as usize, self.ty as usize],
                in_len: (gy * w) as usize,
                out_len: (gy * w) as usize,
                w,
            }
        }
    }

    /// Local-buffer element count for buffer `b` (used for sizing checks).
    fn lm_len(&self, b: &BufSpec) -> i64 {
        if self.dims == 1 {
            b.ox + self.tx * if b.halo { 2 } else { 1 }
        } else {
            (self.ty + b.oy) * (self.tx + b.ox)
        }
    }

    /// Render the spec as OpenCL-C, prefixed with `// fuzz:` replay
    /// directives (the front-end strips comments, so they are inert).
    pub fn render(&self) -> String {
        let mut s = String::new();
        let shape = self.exec_shape();
        match self.poison {
            Some(p) => {
                let _ = writeln!(
                    s,
                    "// fuzz: expect=reject kind={} reason={}",
                    p.expected_kind(),
                    p.expected_reason()
                );
            }
            None => {
                let _ = writeln!(s, "// fuzz: expect=transform");
            }
        }
        if self.dims == 1 {
            let _ = writeln!(s, "// fuzz: nd={}/{}", shape.global[0], shape.local[0]);
        } else {
            let _ = writeln!(
                s,
                "// fuzz: nd={}x{}/{}x{}",
                shape.global[0], shape.global[1], shape.local[0], shape.local[1]
            );
        }
        let _ = writeln!(
            s,
            "// fuzz: in={} out={} w={}",
            shape.in_len, shape.out_len, shape.w
        );
        let _ = writeln!(
            s,
            "__kernel void fz(__global float* in, __global float* out, int w) {{"
        );
        match self.poison {
            Some(p) => self.render_poison_body(&mut s, p),
            None => self.render_positive_body(&mut s),
        }
        s.push_str("}\n");
        s
    }

    fn render_positive_body(&self, s: &mut String) {
        let (tx, ty) = (self.tx, self.ty);
        for (i, b) in self.bufs.iter().enumerate() {
            if self.dims == 1 {
                let _ = writeln!(s, "    __local float lm{i}[{}];", self.lm_len(b));
            } else {
                let _ = writeln!(s, "    __local float lm{i}[{}][{}];", ty + b.oy, tx + b.ox);
            }
        }
        let _ = writeln!(s, "    int lx = get_local_id(0);");
        let _ = writeln!(s, "    int gx = get_global_id(0);");
        if self.dims == 2 {
            let _ = writeln!(s, "    int ly = get_local_id(1);");
            let _ = writeln!(s, "    int gy = get_global_id(1);");
        }
        // Stage: every buffer holds raw global loads, one element per
        // work-item (plus an optional 1-D halo strip).
        for (i, b) in self.bufs.iter().enumerate() {
            let c = self.goff + i as i64;
            if self.dims == 1 {
                let _ = writeln!(s, "    lm{i}[{}] = in[{}];", idx1(b.ox), gidx1(c));
                if b.halo {
                    let _ = writeln!(s, "    lm{i}[{}] = in[{}];", idx1(b.ox + tx), gidx1(c + tx));
                }
            } else {
                let _ = writeln!(
                    s,
                    "    lm{i}[{}][{}] = in[gy * w + {}];",
                    off("ly", b.oy),
                    off("lx", b.ox),
                    gidx1(c)
                );
            }
        }
        let _ = writeln!(s, "    barrier(CLK_LOCAL_MEM_FENCE);");
        let _ = writeln!(s, "    float acc = 0.0f;");
        // Read back: a mapped primary site, optional sliding-window taps,
        // optional uniform broadcast loop.
        for (i, b) in self.bufs.iter().enumerate() {
            if self.dims == 1 {
                let x = match b.map {
                    ReadMap::Identity => "lx".to_string(),
                    _ => format!("{} - 1 - lx", tx),
                };
                let _ = writeln!(s, "    acc += lm{i}[{}];", off(&x, b.ox));
                for &dx in &b.taps {
                    let _ = writeln!(s, "    acc += lm{i}[{}];", idx1(b.ox + dx));
                }
                if b.loop_read {
                    let _ = writeln!(
                        s,
                        "    for (int k{i} = 0; k{i} < {tx}; k{i}++) {{ acc += lm{i}[{}]; }}",
                        off(&format!("k{i}"), b.ox)
                    );
                }
            } else {
                let (row, col) = match b.map {
                    ReadMap::Identity => ("ly".to_string(), "lx".to_string()),
                    ReadMap::ReverseX => ("ly".to_string(), format!("{} - 1 - lx", tx)),
                    ReadMap::ReverseY => (format!("{} - 1 - ly", ty), "lx".to_string()),
                    ReadMap::Swap => ("lx".to_string(), "ly".to_string()),
                    ReadMap::SwapReverse => {
                        (format!("{} - 1 - lx", tx), format!("{} - 1 - ly", ty))
                    }
                };
                let _ = writeln!(
                    s,
                    "    acc += lm{i}[{}][{}];",
                    off(&row, b.oy),
                    off(&col, b.ox)
                );
                if b.loop_read {
                    let _ = writeln!(
                        s,
                        "    for (int k{i} = 0; k{i} < {ty}; k{i}++) {{ acc += lm{i}[{}][{}]; }}",
                        off(&format!("k{i}"), b.oy),
                        off("lx", b.ox)
                    );
                }
            }
        }
        if self.dims == 1 {
            let _ = writeln!(s, "    out[gx] = acc;");
        } else {
            let _ = writeln!(s, "    out[gy * w + gx] = acc;");
        }
    }

    fn render_poison_body(&self, s: &mut String, p: Poison) {
        let tx = self.tx;
        let _ = writeln!(s, "    __local float lm0[{tx}];");
        let _ = writeln!(s, "    int lx = get_local_id(0);");
        let _ = writeln!(s, "    int gx = get_global_id(0);");
        match p {
            Poison::ComputedStore => {
                let _ = writeln!(s, "    lm0[lx] = in[{}] * 2.0f;", gidx1(self.goff));
                let _ = writeln!(s, "    barrier(CLK_LOCAL_MEM_FENCE);");
            }
            Poison::ReadModifyWrite => {
                let _ = writeln!(s, "    lm0[lx] = in[{}];", gidx1(self.goff));
                let _ = writeln!(s, "    barrier(CLK_LOCAL_MEM_FENCE);");
                let _ = writeln!(s, "    lm0[lx] = lm0[lx] + 1.0f;");
                let _ = writeln!(s, "    barrier(CLK_LOCAL_MEM_FENCE);");
            }
            Poison::DataDependentIndex => {
                let _ = writeln!(s, "    int t = (int)in[{}];", gidx1(self.goff));
                let _ = writeln!(s, "    lm0[t % {tx}] = in[gx];");
                let _ = writeln!(s, "    barrier(CLK_LOCAL_MEM_FENCE);");
            }
            Poison::NonAffineGl => {
                let _ = writeln!(s, "    lm0[lx] = in[gx * gx];");
                let _ = writeln!(s, "    barrier(CLK_LOCAL_MEM_FENCE);");
            }
            Poison::DivergentBarrier => {
                let _ = writeln!(s, "    if (lx < {}) {{", (tx / 2).max(1));
                let _ = writeln!(s, "        lm0[lx] = in[{}];", gidx1(self.goff));
                let _ = writeln!(s, "        barrier(CLK_LOCAL_MEM_FENCE);");
                let _ = writeln!(s, "    }}");
            }
        }
        let _ = writeln!(s, "    out[gx] = lm0[lx];");
    }
}

/// `"lx"`-style base plus constant offset, omitting `+ 0`.
fn off(base: &str, c: i64) -> String {
    if c == 0 {
        base.to_string()
    } else {
        format!("{base} + {c}")
    }
}

/// `lx + c` store-side index.
fn idx1(c: i64) -> String {
    off("lx", c)
}

/// `gx + c` global-read index.
fn gidx1(c: i64) -> String {
    off("gx", c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_deterministic() {
        let a = KernelSpec::random(&mut Gen::new(9), None);
        let b = KernelSpec::random(&mut Gen::new(9), None);
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn poison_specs_render_their_directive() {
        for p in ALL_POISONS {
            let spec = KernelSpec::random(&mut Gen::new(3), Some(p));
            let src = spec.render();
            assert!(src.contains("expect=reject"), "{src}");
            assert!(src.contains(p.expected_reason()), "{src}");
        }
    }

    #[test]
    fn every_generated_spec_compiles() {
        use grover_frontend::{compile, BuildOptions};
        for seed in 0..40u64 {
            let spec = KernelSpec::random(&mut Gen::new(seed), None);
            let src = spec.render();
            compile(&src, &BuildOptions::new())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
        for (i, p) in ALL_POISONS.iter().enumerate() {
            let spec = KernelSpec::random(&mut Gen::new(i as u64), Some(*p));
            let src = spec.render();
            compile(&src, &BuildOptions::new())
                .unwrap_or_else(|e| panic!("poison {}: {e}\n{src}", p.name()));
        }
    }
}
