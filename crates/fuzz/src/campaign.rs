//! Campaign driver: generate N cases, judge each with the oracle, shrink
//! failures and write standalone reproducers.
//!
//! Determinism contract: a campaign is fully determined by `(seed, cases)`.
//! One [`Gen`] stream drives every case in order and the oracle consumes no
//! randomness, so `--seed 42 --cases 500` replays the first 200 cases of
//! `--seed 42 --cases 200` exactly — extending a run never changes the
//! cases already seen.

use crate::gen::Gen;
use crate::oracle::{check_spec_seqs, random_sequence, FailureKind};
use crate::shrink::shrink;
use crate::spec::{KernelSpec, ALL_POISONS};
use grover_core::Sequence;
use grover_obs::json::{array, Obj};
use grover_obs::{Recorder, SpanGuard};
use grover_runtime::Backend;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignOptions {
    pub seed: u64,
    pub cases: u64,
    /// Where shrunk reproducers are written; `None` disables writing.
    pub out_dir: Option<PathBuf>,
    /// Execution backend the oracle runs kernels on.
    pub backend: Backend,
}

/// One failed case, after shrinking.
#[derive(Clone, Debug)]
pub struct CaseFailure {
    /// Campaign-relative case index.
    pub case: u64,
    pub kind: FailureKind,
    pub detail: String,
    /// Shrunk kernel source (with replay directives).
    pub source: String,
    /// Accepted shrink steps from the original failing spec.
    pub shrink_steps: usize,
    /// Reproducer path, if `out_dir` was set and the write succeeded.
    pub reproducer: Option<PathBuf>,
}

/// Campaign result counters plus the shrunk failures.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    pub seed: u64,
    pub cases: u64,
    /// Execution backend the campaign ran on.
    pub backend: Backend,
    /// Must-transform cases that verified bit-exactly.
    pub transformed: u64,
    /// Must-reject cases refused with the expected outcome.
    pub rejected: u64,
    /// Total random-sequence legs judged across all cases (each case
    /// draws 1–2 legal sequences on top of the default transform).
    pub sequences_raced: u64,
    pub failures: Vec<CaseFailure>,
}

impl Summary {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    fn count(&self, kind: FailureKind) -> u64 {
        self.failures.iter().filter(|f| f.kind == kind).count() as u64
    }

    /// Machine-readable summary (stable field set, no timestamps).
    pub fn to_json(&self) -> String {
        let regressions = array(self.failures.iter().map(|f| {
            let mut o = Obj::new()
                .u64("case", f.case)
                .str("kind", f.kind.name())
                .str("detail", &f.detail)
                .u64("shrink_steps", f.shrink_steps as u64)
                .u64("source_lines", f.source.lines().count() as u64);
            o = match &f.reproducer {
                Some(p) => o.str("reproducer", &p.display().to_string()),
                None => o.null("reproducer"),
            };
            o.finish()
        }));
        Obj::new()
            .u64("seed", self.seed)
            .u64("cases", self.cases)
            .str("backend", self.backend.name())
            .u64("transformed", self.transformed)
            .u64("rejected", self.rejected)
            .u64("failures", self.failures.len() as u64)
            .u64("mismatches", self.count(FailureKind::Mismatch))
            .u64("exec_errors", self.count(FailureKind::ExecError))
            .u64("compile_errors", self.count(FailureKind::CompileError))
            .u64("declines", self.count(FailureKind::Declined))
            .u64(
                "accepted_must_reject",
                self.count(FailureKind::AcceptedMustReject),
            )
            .u64("wrong_outcomes", self.count(FailureKind::WrongOutcome))
            .u64("ir_changes", self.count(FailureKind::IrChanged))
            .u64("sequences_raced", self.sequences_raced)
            .u64(
                "sequence_mismatches",
                self.count(FailureKind::SequenceMismatch),
            )
            .raw("regressions", &regressions)
            .finish()
    }

    /// Human-readable summary.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "fuzz: seed {} ({}) — {} cases: {} transformed, {} rejected, {} failed \
             ({} sequence legs)",
            self.seed,
            self.backend,
            self.cases,
            self.transformed,
            self.rejected,
            self.failures.len(),
            self.sequences_raced
        );
        for f in &self.failures {
            let _ = writeln!(s, "  case {}: {} — {}", f.case, f.kind.name(), f.detail);
            if let Some(p) = &f.reproducer {
                let _ = writeln!(s, "    reproducer: {}", p.display());
            }
        }
        s
    }
}

/// Draw the spec for campaign case `i`. Every fifth case carries a poison,
/// rotating through all five kinds, so reject coverage is guaranteed at any
/// case count ≥ 5.
fn draw_case(g: &mut Gen, i: u64) -> KernelSpec {
    let poison = if i % 5 == 4 {
        Some(ALL_POISONS[((i / 5) % ALL_POISONS.len() as u64) as usize])
    } else {
        None
    };
    KernelSpec::random(g, poison)
}

fn write_reproducer(dir: &Path, seed: u64, case: u64, source: &str) -> Option<PathBuf> {
    std::fs::create_dir_all(dir).ok()?;
    let path = dir.join(format!("case-{seed}-{case}.cl"));
    std::fs::write(&path, source).ok()?;
    Some(path)
}

/// Run a campaign. Emits one `fuzz.campaign` span with a `fuzz.case` child
/// per case on `rec` (free when the recorder is disabled).
pub fn run_campaign(opts: &CampaignOptions, rec: &dyn Recorder) -> Summary {
    let root = SpanGuard::open(rec, "fuzz.campaign", None);
    root.attr("seed", opts.seed);
    root.attr("cases", opts.cases);
    root.attr("backend", opts.backend.name());
    let mut g = Gen::new(opts.seed);
    let mut summary = Summary {
        seed: opts.seed,
        cases: opts.cases,
        backend: opts.backend,
        ..Summary::default()
    };
    for i in 0..opts.cases {
        let spec = draw_case(&mut g, i);
        // 1–2 random legal sequences ride along on every case, racing the
        // composable pipeline against the same interpreter baseline.
        let n_seqs = if g.chance(1, 2) { 2 } else { 1 };
        let seqs: Vec<Sequence> = (0..n_seqs).map(|_| random_sequence(&mut g)).collect();
        summary.sequences_raced += seqs.len() as u64;
        let span = SpanGuard::open(rec, "fuzz.case", Some(root.id()));
        span.attr("case", i);
        span.attr(
            "expect",
            match spec.poison {
                None => "transform",
                Some(p) => p.name(),
            },
        );
        span.attr(
            "sequences",
            seqs.iter()
                .map(|s| s.spec())
                .collect::<Vec<_>>()
                .join(";")
                .as_str(),
        );
        let outcome = check_spec_seqs(&spec, opts.backend, &seqs);
        match outcome.failure() {
            None => {
                if spec.poison.is_none() {
                    summary.transformed += 1;
                    span.attr("outcome", "transformed");
                } else {
                    summary.rejected += 1;
                    span.attr("outcome", "rejected");
                }
            }
            Some(f) => {
                // Minimize while the same failure kind reproduces, then
                // re-derive the detail from the minimized spec.
                let kind = f.kind;
                let (min, steps) = shrink(&spec, |s| {
                    check_spec_seqs(s, opts.backend, &seqs)
                        .failure()
                        .map(|f| f.kind)
                        == Some(kind)
                });
                let detail = check_spec_seqs(&min, opts.backend, &seqs)
                    .failure()
                    .map(|f| f.detail.clone())
                    .unwrap_or_else(|| f.detail.clone());
                // The reproducer records the raced sequences so a replay
                // re-runs the same legs (`// fuzz: passes=` directives).
                let mut source = min.render();
                if !source.ends_with('\n') {
                    source.push('\n');
                }
                for s in &seqs {
                    source.push_str(&format!("// fuzz: passes={}\n", s.spec()));
                }
                let reproducer = opts
                    .out_dir
                    .as_deref()
                    .and_then(|d| write_reproducer(d, opts.seed, i, &source));
                span.attr("outcome", kind.name());
                span.attr("shrink_steps", steps as u64);
                if let Some(p) = &reproducer {
                    span.attr("reproducer", p.display().to_string().as_str());
                }
                summary.failures.push(CaseFailure {
                    case: i,
                    kind,
                    detail,
                    source,
                    shrink_steps: steps,
                    reproducer,
                });
            }
        }
    }
    root.attr("failures", summary.failures.len() as u64);
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use grover_obs::{MemoryRecorder, NOOP};

    #[test]
    fn small_campaign_is_clean_and_deterministic() {
        let opts = CampaignOptions {
            seed: 7,
            cases: 20,
            out_dir: None,
            backend: Backend::Interp,
        };
        let a = run_campaign(&opts, &NOOP);
        assert!(a.ok(), "{}", a.to_text());
        assert_eq!(a.transformed + a.rejected, 20);
        assert_eq!(a.rejected, 4, "every 5th case is a must-reject");
        assert!(
            (20..=40).contains(&a.sequences_raced),
            "each case races 1-2 sequence legs: {}",
            a.sequences_raced
        );
        let b = run_campaign(&opts, &NOOP);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn small_campaign_is_clean_on_bytecode() {
        // Same cases as the interp campaign, judged three-way on the
        // bytecode backend — and the counters must agree exactly.
        let opts = CampaignOptions {
            seed: 7,
            cases: 20,
            out_dir: None,
            backend: Backend::Bytecode,
        };
        let s = run_campaign(&opts, &NOOP);
        assert!(s.ok(), "{}", s.to_text());
        assert_eq!((s.transformed, s.rejected), (16, 4));
        assert!(s.to_json().contains("\"backend\":\"bytecode\""));
    }

    #[test]
    fn prefix_stability_across_case_counts() {
        // Extending a campaign must not change the cases already drawn.
        let mut g1 = Gen::new(99);
        let mut g2 = Gen::new(99);
        let a: Vec<_> = (0..10).map(|i| draw_case(&mut g1, i)).collect();
        let b: Vec<_> = (0..30).map(|i| draw_case(&mut g2, i)).collect();
        assert_eq!(a[..], b[..10]);
    }

    #[test]
    fn campaign_emits_spans() {
        let rec = MemoryRecorder::new();
        let opts = CampaignOptions {
            seed: 3,
            cases: 5,
            out_dir: None,
            backend: Backend::Interp,
        };
        run_campaign(&opts, &rec);
        let snap = rec.snapshot();
        assert_eq!(
            snap.spans
                .iter()
                .filter(|s| s.name == "fuzz.campaign")
                .count(),
            1
        );
        assert_eq!(
            snap.spans.iter().filter(|s| s.name == "fuzz.case").count(),
            5
        );
    }

    #[test]
    fn json_summary_shape() {
        let s = run_campaign(
            &CampaignOptions {
                seed: 1,
                cases: 5,
                out_dir: None,
                backend: Backend::Interp,
            },
            &NOOP,
        );
        let j = s.to_json();
        for key in [
            "\"seed\":1",
            "\"cases\":5",
            "\"backend\":\"interp\"",
            "\"failures\":0",
            "\"mismatches\":0",
            "\"sequences_raced\":",
            "\"sequence_mismatches\":0",
            "\"regressions\":[]",
        ] {
            assert!(j.contains(key), "{key} missing in {j}");
        }
    }
}
