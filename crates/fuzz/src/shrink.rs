//! Spec-level shrinking.
//!
//! When a case fails, the campaign minimizes the *spec*, not the source
//! text: each step proposes a strictly simpler spec (drop a buffer, drop a
//! tap, disable a feature, zero an offset, halve the tile) and keeps it only
//! if the failure — same [`FailureKind`](crate::oracle::FailureKind) —
//! still reproduces. Working on specs guarantees every intermediate kernel
//! is well-formed, so the shrinker never wanders into syntax errors the way
//! text-level delta debugging does.

use crate::spec::{KernelSpec, ReadMap};

/// Well-founded complexity measure; every candidate strictly decreases it,
/// so shrinking terminates.
fn weight(s: &KernelSpec) -> u64 {
    let mut w = s.bufs.len() as u64 * 100;
    for b in &s.bufs {
        w += b.taps.len() as u64 * 10;
        w += if b.halo { 10 } else { 0 };
        w += if b.loop_read { 10 } else { 0 };
        w += if b.map != ReadMap::Identity { 5 } else { 0 };
        w += (b.ox + b.oy) as u64;
    }
    w += (s.dims as u64 - 1) * 50;
    w += s.goff as u64;
    w += (s.gx_groups + s.gy_groups) as u64;
    w += (s.tx + s.ty) as u64;
    w
}

/// One-step simplifications, most aggressive first.
fn candidates(s: &KernelSpec) -> Vec<KernelSpec> {
    let mut out = Vec::new();
    // Drop whole buffers.
    if s.bufs.len() > 1 {
        for i in 0..s.bufs.len() {
            let mut c = s.clone();
            c.bufs.remove(i);
            out.push(c);
        }
    }
    // Collapse 2-D to 1-D (keep only x-compatible maps).
    if s.dims == 2 {
        let mut c = s.clone();
        c.dims = 1;
        c.ty = 1;
        c.gy_groups = 1;
        for b in &mut c.bufs {
            b.oy = 0;
            if !matches!(b.map, ReadMap::Identity | ReadMap::ReverseX) {
                b.map = ReadMap::Identity;
            }
        }
        out.push(c);
    }
    // Per-buffer feature removal.
    for i in 0..s.bufs.len() {
        let b = &s.bufs[i];
        if !b.taps.is_empty() {
            let mut c = s.clone();
            c.bufs[i].taps.clear();
            out.push(c);
            if b.taps.len() > 1 {
                let mut c = s.clone();
                c.bufs[i].taps.pop();
                out.push(c);
            }
        }
        if b.loop_read {
            let mut c = s.clone();
            c.bufs[i].loop_read = false;
            out.push(c);
        }
        if b.halo && b.taps.is_empty() {
            let mut c = s.clone();
            c.bufs[i].halo = false;
            out.push(c);
        }
        if b.map != ReadMap::Identity {
            let mut c = s.clone();
            c.bufs[i].map = ReadMap::Identity;
            out.push(c);
        }
        if b.ox > 0 {
            let mut c = s.clone();
            c.bufs[i].ox = 0;
            out.push(c);
        }
        if b.oy > 0 {
            let mut c = s.clone();
            c.bufs[i].oy = 0;
            out.push(c);
        }
    }
    // Geometry.
    if s.gx_groups > 1 {
        let mut c = s.clone();
        c.gx_groups = 1;
        out.push(c);
    }
    if s.gy_groups > 1 {
        let mut c = s.clone();
        c.gy_groups = 1;
        out.push(c);
    }
    if s.goff > 0 {
        let mut c = s.clone();
        c.goff = 0;
        out.push(c);
    }
    // Halve the tile. Transpose maps need square tiles, so shrink both
    // dimensions together when one is present; taps must stay in range.
    let square = s
        .bufs
        .iter()
        .any(|b| matches!(b.map, ReadMap::Swap | ReadMap::SwapReverse));
    if s.tx >= 4 {
        let ntx = s.tx / 2;
        if s.bufs.iter().all(|b| b.taps.iter().all(|&d| d <= ntx)) {
            let mut c = s.clone();
            c.tx = ntx;
            if square && s.dims == 2 {
                c.ty = ntx; // ntx = tx/2 >= 2, so the tile stays legal
            }
            out.push(c);
        }
    }
    if s.dims == 2 && s.ty >= 4 && !square {
        let mut c = s.clone();
        c.ty /= 2;
        out.push(c);
    }
    debug_assert!(out.iter().all(|c| weight(c) < weight(s)));
    out
}

/// Greedily minimize `spec` while `still_fails` holds. Returns the shrunk
/// spec and the number of accepted steps.
pub fn shrink<F: Fn(&KernelSpec) -> bool>(
    spec: &KernelSpec,
    still_fails: F,
) -> (KernelSpec, usize) {
    let mut cur = spec.clone();
    let mut steps = 0usize;
    // `weight` strictly decreases on acceptance, so this terminates; the
    // cap is a belt-and-braces bound.
    while steps < 500 {
        let Some(next) = candidates(&cur).into_iter().find(|c| still_fails(c)) else {
            break;
        };
        cur = next;
        steps += 1;
    }
    (cur, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Gen;

    #[test]
    fn shrinks_to_minimal_when_anything_fails() {
        // With an always-true predicate the shrinker must bottom out at the
        // simplest possible spec.
        for seed in 0..20u64 {
            let spec = KernelSpec::random(&mut Gen::new(seed), None);
            let (min, _) = shrink(&spec, |_| true);
            assert_eq!(min.dims, 1);
            assert_eq!(min.bufs.len(), 1);
            assert_eq!(min.tx, 2);
            assert_eq!(min.gx_groups, 1);
            assert_eq!(min.goff, 0);
            let b = &min.bufs[0];
            assert!(b.taps.is_empty() && !b.halo && !b.loop_read);
            assert_eq!(b.map, ReadMap::Identity);
            assert_eq!((b.ox, b.oy), (0, 0));
        }
    }

    #[test]
    fn preserves_the_failing_property() {
        // Predicate: the kernel still stages a halo strip.
        let mut g = Gen::new(123);
        let mut spec = KernelSpec::random(&mut g, None);
        spec.dims = 1;
        spec.ty = 1;
        spec.gy_groups = 1;
        spec.bufs.truncate(1);
        spec.bufs[0].halo = true;
        let (min, _) = shrink(&spec, |s| s.bufs.iter().any(|b| b.halo));
        assert!(min.bufs[0].halo);
        assert!(min.bufs[0].taps.is_empty());
        assert_eq!(min.tx, 2);
    }
}
