//! Differential kernel fuzzing for the Grover pass.
//!
//! The paper's argument rests on one invariant: disabling local-memory
//! usage must be *semantically invisible* — a transformed kernel computes
//! bit-identical outputs under any schedule. This crate tests that
//! invariant generatively rather than by hand-picked examples:
//!
//! 1. [`spec`] describes randomized kernels built around the software-cache
//!    pattern (global load → local store → barrier → local load), with
//!    varying tile shapes, index maps, offsets, halo strips, broadcast
//!    loops and multiple local buffers — plus deliberately invalid
//!    "poison" variants the pass must refuse.
//! 2. [`oracle`] runs each kernel through frontend → pass → interpreter
//!    and bit-compares original vs transformed outputs across serial and
//!    parallel work-group schedules; must-reject kernels are checked for
//!    the exact [`BufferOutcome`](grover_core::BufferOutcome) kind and
//!    reason, and for untouched IR.
//! 3. [`shrink`] minimizes failing specs; [`campaign`] orchestrates a
//!    seeded run, writes shrunk reproducers as standalone `.cl` files, and
//!    emits a stable JSON summary.
//! 4. [`replay`] re-runs reproducers and the checked-in corpus from their
//!    embedded `// fuzz:` directives, so past failures become ordinary
//!    `cargo test` cases.
//!
//! Everything is deterministic and dependency-free: randomness comes from
//! the re-exported SplitMix64 [`Gen`], and a campaign is a pure function of
//! `(seed, cases)`.

pub mod campaign;
pub mod gen;
pub mod oracle;
pub mod replay;
pub mod shrink;
pub mod spec;

pub use campaign::{run_campaign, CampaignOptions, CaseFailure, Summary};
pub use gen::Gen;
pub use grover_runtime::Backend;
pub use oracle::{
    check_source, check_source_backend, check_source_seqs, check_spec, check_spec_backend,
    check_spec_seqs, random_sequence, CaseOutcome, Expectation, Failure, FailureKind,
};
pub use replay::{
    parse_directives, replay_dir, replay_dir_backend, replay_source, replay_source_backend,
    Directives,
};
pub use shrink::shrink;
pub use spec::{BufSpec, ExecShape, KernelSpec, Poison, ReadMap, ALL_POISONS};
