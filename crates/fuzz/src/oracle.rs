//! The differential oracle.
//!
//! For a must-transform kernel: run the Grover pass, demand every local
//! buffer is removed, then execute the original and the transformed kernel
//! under both the serial and the parallel work-group schedule and compare
//! the output buffers *bit for bit* (f32 bit patterns, not approximate
//! equality — the rewrite replaces loads, it must not perturb arithmetic).
//!
//! For a must-reject kernel: run the pass, demand the named buffer survives
//! with the expected [`BufferOutcome`] kind and reason, and demand the IR is
//! left byte-identical (a refusal must not half-rewrite the kernel). Reject
//! kernels are never executed — several are deliberately out-of-bounds or
//! UB under divergence.

use crate::gen::Gen;
use crate::spec::{ExecShape, KernelSpec};
use grover_core::{apply_sequence, Grover, GroverOptions, PassId, Sequence};
use grover_frontend::{compile, BuildOptions};
use grover_ir::printer::function_to_string;
use grover_ir::Function;
use grover_runtime::{
    enqueue_with_backend, ArgValue, Backend, Context, ExecPolicy, Limits, NdRange, NullSink,
};

/// What a kernel is expected to do under the pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expectation {
    /// All local buffers removed; original and transformed agree bit-exactly.
    Transform,
    /// The pass refuses with this `BufferOutcome::kind()` and a reason
    /// containing this substring.
    Reject { kind: String, reason: String },
}

/// Why a case failed. Each kind corresponds to a distinct broken invariant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The generated/replayed source did not compile (generator bug).
    CompileError,
    /// A must-transform kernel was not fully rewritten.
    Declined,
    /// Original and transformed outputs differ.
    Mismatch,
    /// Execution of either version failed.
    ExecError,
    /// A must-reject kernel was rewritten.
    AcceptedMustReject,
    /// A must-reject kernel was refused, but with the wrong kind/reason.
    WrongOutcome,
    /// A refusal modified the IR.
    IrChanged,
    /// A randomly drawn pass sequence produced output that differs from
    /// the interpreter baseline of the original kernel.
    SequenceMismatch,
}

impl FailureKind {
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::CompileError => "compile-error",
            FailureKind::Declined => "declined",
            FailureKind::Mismatch => "mismatch",
            FailureKind::ExecError => "exec-error",
            FailureKind::AcceptedMustReject => "accepted-must-reject",
            FailureKind::WrongOutcome => "wrong-outcome",
            FailureKind::IrChanged => "ir-changed",
            FailureKind::SequenceMismatch => "sequence-mismatch",
        }
    }
}

/// Draw one random *legal* pass sequence: `local-removal` first (the
/// legality root every cleanup pass declares as a precondition), then a
/// uniformly shuffled prefix of the cleanup passes. Covers all 16 legal
/// shapes, from bare `local-removal` to every 4-pass permutation.
pub fn random_sequence(g: &mut Gen) -> Sequence {
    let mut tail = [PassId::BarrierElim, PassId::IndexSimplify, PassId::Remap];
    for i in (1..tail.len()).rev() {
        let j = (g.next_u64() % (i as u64 + 1)) as usize;
        tail.swap(i, j);
    }
    let keep = g.int(0, tail.len() as i64 + 1) as usize;
    let mut ids = vec![PassId::LocalRemoval];
    ids.extend(tail.into_iter().take(keep));
    Sequence::new(ids).expect("local-removal-first sequences are legal")
}

/// A failed case: the broken invariant plus a human-readable detail line.
#[derive(Clone, Debug)]
pub struct Failure {
    pub kind: FailureKind,
    pub detail: String,
}

/// Result of running one kernel through the oracle.
#[derive(Clone, Debug)]
pub enum CaseOutcome {
    /// Transformed and verified bit-exact under both schedules.
    Transformed,
    /// Refused with the expected kind and reason, IR untouched.
    Rejected,
    Failed(Failure),
}

impl CaseOutcome {
    pub fn failure(&self) -> Option<&Failure> {
        match self {
            CaseOutcome::Failed(f) => Some(f),
            _ => None,
        }
    }
}

fn fail(kind: FailureKind, detail: impl Into<String>) -> CaseOutcome {
    CaseOutcome::Failed(Failure {
        kind,
        detail: detail.into(),
    })
}

/// Deterministic input: small non-negative integers, all exactly
/// representable in f32, so float sums are reproducible and casts to `int`
/// (used by poison kernels) are well-defined.
pub fn deterministic_input(len: usize) -> Vec<f32> {
    (0..len).map(|i| ((i * 13 + 7) % 61) as f32).collect()
}

fn nd_range(shape: &ExecShape) -> NdRange {
    if shape.global[1] <= 1 {
        NdRange::d1(shape.global[0] as u64, shape.local[0] as u64)
    } else {
        NdRange::d2(
            shape.global[0] as u64,
            shape.global[1] as u64,
            shape.local[0] as u64,
            shape.local[1] as u64,
        )
    }
}

/// Execute a kernel over the deterministic input; returns the output buffer.
pub fn run_kernel(
    kernel: &Function,
    shape: &ExecShape,
    policy: ExecPolicy,
) -> Result<Vec<f32>, String> {
    run_kernel_backend(kernel, shape, policy, Backend::Interp)
}

/// [`run_kernel`] on an explicit execution backend.
pub fn run_kernel_backend(
    kernel: &Function,
    shape: &ExecShape,
    policy: ExecPolicy,
    backend: Backend,
) -> Result<Vec<f32>, String> {
    let mut ctx = Context::new();
    let bi = ctx.buffer_f32(&deterministic_input(shape.in_len));
    let bo = ctx.zeros_f32(shape.out_len);
    enqueue_with_backend(
        &mut ctx,
        kernel,
        &[
            ArgValue::Buffer(bi),
            ArgValue::Buffer(bo),
            ArgValue::I32(shape.w as i32),
        ],
        &nd_range(shape),
        &mut NullSink,
        &Limits::default(),
        policy,
        backend,
    )
    .map_err(|e| e.to_string())?;
    Ok(ctx.read_f32(bo).to_vec())
}

fn first_bit_diff(a: &[f32], b: &[f32]) -> Option<usize> {
    if a.len() != b.len() {
        return Some(a.len().min(b.len()));
    }
    (0..a.len()).find(|&i| a[i].to_bits() != b[i].to_bits())
}

/// Run one kernel source through the full pipeline and judge it against
/// `expect`. `shape` is required for `Expectation::Transform`.
pub fn check_source(src: &str, expect: &Expectation, shape: Option<&ExecShape>) -> CaseOutcome {
    check_source_backend(src, expect, shape, Backend::Interp)
}

/// [`check_source`] with an execution backend. Under [`Backend::Interp`]
/// this is the classic two-way differential (original vs transformed, both
/// schedules). Under [`Backend::Bytecode`] it becomes a three-way check:
/// original-interp vs transformed-interp vs both kernels re-executed on the
/// bytecode backend, all bit-exact. Reject cases are backend-independent
/// (never executed).
pub fn check_source_backend(
    src: &str,
    expect: &Expectation,
    shape: Option<&ExecShape>,
    backend: Backend,
) -> CaseOutcome {
    check_source_seqs(src, expect, shape, backend, &[])
}

/// [`check_source_backend`] plus extra *sequence legs*: each sequence in
/// `seqs` is applied to a fresh copy of the original kernel and must agree
/// bit-exactly with the interpreter baseline under both schedules
/// (transform cases) or leave the IR byte-identical (reject cases — every
/// cleanup pass gates on a removal actually happening).
pub fn check_source_seqs(
    src: &str,
    expect: &Expectation,
    shape: Option<&ExecShape>,
    backend: Backend,
    seqs: &[Sequence],
) -> CaseOutcome {
    let module = match compile(src, &BuildOptions::new()) {
        Ok(m) => m,
        Err(e) => return fail(FailureKind::CompileError, e.to_string()),
    };
    let Some(original) = module.kernels.first() else {
        return fail(FailureKind::CompileError, "source defines no kernel");
    };
    let mut transformed = original.clone();
    let report = Grover::new().run_on(&mut transformed);

    match expect {
        Expectation::Reject { kind, reason } => {
            if report.all_removed() {
                return fail(
                    FailureKind::AcceptedMustReject,
                    format!(
                        "pass removed all buffers of a must-reject kernel:\n{}",
                        report.to_text()
                    ),
                );
            }
            let Some(buf) = report
                .buffers
                .iter()
                .find(|b| b.outcome.kind() != "removed")
            else {
                return fail(
                    FailureKind::WrongOutcome,
                    "no surviving buffer in report".to_string(),
                );
            };
            let got_kind = buf.outcome.kind();
            let got_reason = buf.outcome.reason().unwrap_or_default();
            if got_kind != kind || !got_reason.contains(reason.as_str()) {
                return fail(
                    FailureKind::WrongOutcome,
                    format!(
                        "buffer `{}`: expected kind `{kind}` with reason containing `{reason}`, \
                         got kind `{got_kind}` reason `{got_reason}`",
                        buf.buffer
                    ),
                );
            }
            // A refusal must leave the kernel byte-identical.
            if function_to_string(&transformed) != function_to_string(original) {
                return fail(
                    FailureKind::IrChanged,
                    format!("pass modified IR of a refused kernel (`{}`)", buf.buffer),
                );
            }
            // And so must every legal sequence: cleanup passes gate on a
            // removal having happened, so a refused kernel stays untouched
            // no matter which passes run after local-removal.
            for seq in seqs {
                let mut seq_kernel = original.clone();
                apply_sequence(&mut seq_kernel, seq, &GroverOptions::default());
                if function_to_string(&seq_kernel) != function_to_string(original) {
                    return fail(
                        FailureKind::IrChanged,
                        format!("sequence `{seq}` modified IR of a refused kernel"),
                    );
                }
            }
            CaseOutcome::Rejected
        }
        Expectation::Transform => {
            if !report.all_removed() {
                return fail(
                    FailureKind::Declined,
                    format!(
                        "pass declined a must-transform kernel:\n{}",
                        report.to_text()
                    ),
                );
            }
            let Some(shape) = shape else {
                return fail(
                    FailureKind::ExecError,
                    "transform expectation needs launch geometry".to_string(),
                );
            };
            let policies = [ExecPolicy::Serial, ExecPolicy::Parallel { threads: 2 }];
            let mut reference: Option<Vec<f32>> = None;
            for policy in policies {
                let orig = match run_kernel(original, shape, policy) {
                    Ok(v) => v,
                    Err(e) => {
                        return fail(
                            FailureKind::ExecError,
                            format!("original ({policy:?}): {e}"),
                        )
                    }
                };
                let trans = match run_kernel(&transformed, shape, policy) {
                    Ok(v) => v,
                    Err(e) => {
                        return fail(
                            FailureKind::ExecError,
                            format!("transformed ({policy:?}): {e}"),
                        )
                    }
                };
                if let Some(i) = first_bit_diff(&orig, &trans) {
                    return fail(
                        FailureKind::Mismatch,
                        format!(
                            "original vs transformed differ at [{i}] under {policy:?}: {} vs {}",
                            orig.get(i).copied().unwrap_or(f32::NAN),
                            trans.get(i).copied().unwrap_or(f32::NAN),
                        ),
                    );
                }
                // Schedules must agree with each other, too.
                match &reference {
                    None => reference = Some(orig),
                    Some(r) => {
                        if let Some(i) = first_bit_diff(r, &orig) {
                            return fail(
                                FailureKind::Mismatch,
                                format!("serial vs parallel schedules differ at [{i}]"),
                            );
                        }
                    }
                }
            }
            // Third leg: re-execute both kernels on the requested backend
            // and demand bit-identity with the interpreter reference.
            if backend != Backend::Interp {
                let reference = reference.as_deref().expect("policies is non-empty");
                for (which, kernel) in [("original", original), ("transformed", &transformed)] {
                    let alt = match run_kernel_backend(kernel, shape, ExecPolicy::Serial, backend) {
                        Ok(v) => v,
                        Err(e) => {
                            return fail(
                                FailureKind::ExecError,
                                format!("{which} ({backend}): {e}"),
                            )
                        }
                    };
                    if let Some(i) = first_bit_diff(reference, &alt) {
                        return fail(
                            FailureKind::Mismatch,
                            format!(
                                "backends differ: {which} interp vs {backend} at [{i}]: {} vs {}",
                                reference.get(i).copied().unwrap_or(f32::NAN),
                                alt.get(i).copied().unwrap_or(f32::NAN),
                            ),
                        );
                    }
                }
            }
            // Sequence legs: every drawn legal sequence must compute the
            // interpreter baseline bit-exactly under both schedules.
            let reference = reference.expect("policies is non-empty");
            for seq in seqs {
                let mut seq_kernel = original.clone();
                let pr = apply_sequence(&mut seq_kernel, seq, &GroverOptions::default());
                if !pr.report.all_removed() {
                    return fail(
                        FailureKind::Declined,
                        format!("sequence `{seq}` declined a must-transform kernel"),
                    );
                }
                for policy in policies {
                    let out = match run_kernel(&seq_kernel, shape, policy) {
                        Ok(v) => v,
                        Err(e) => {
                            return fail(
                                FailureKind::ExecError,
                                format!("sequence `{seq}` ({policy:?}): {e}"),
                            )
                        }
                    };
                    if let Some(i) = first_bit_diff(&reference, &out) {
                        return fail(
                            FailureKind::SequenceMismatch,
                            format!(
                                "sequence `{seq}` differs from baseline at [{i}] under \
                                 {policy:?}: {} vs {}",
                                reference.get(i).copied().unwrap_or(f32::NAN),
                                out.get(i).copied().unwrap_or(f32::NAN),
                            ),
                        );
                    }
                }
            }
            CaseOutcome::Transformed
        }
    }
}

/// Expectation implied by a spec's poison (or lack of one).
pub fn expectation_of(spec: &KernelSpec) -> Expectation {
    match spec.poison {
        None => Expectation::Transform,
        Some(p) => Expectation::Reject {
            kind: p.expected_kind().to_string(),
            reason: p.expected_reason().to_string(),
        },
    }
}

/// Render and judge a spec.
pub fn check_spec(spec: &KernelSpec) -> CaseOutcome {
    check_spec_backend(spec, Backend::Interp)
}

/// Render and judge a spec on an explicit execution backend.
pub fn check_spec_backend(spec: &KernelSpec, backend: Backend) -> CaseOutcome {
    check_spec_seqs(spec, backend, &[])
}

/// [`check_spec_backend`] with extra sequence legs (see
/// [`check_source_seqs`]).
pub fn check_spec_seqs(spec: &KernelSpec, backend: Backend, seqs: &[Sequence]) -> CaseOutcome {
    let shape = spec.exec_shape();
    check_source_seqs(
        &spec.render(),
        &expectation_of(spec),
        Some(&shape),
        backend,
        seqs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Gen;
    use crate::spec::{BufSpec, Poison, ReadMap, ALL_POISONS};

    fn base_spec() -> KernelSpec {
        KernelSpec {
            dims: 1,
            tx: 4,
            ty: 1,
            gx_groups: 2,
            gy_groups: 1,
            goff: 0,
            bufs: vec![BufSpec {
                map: ReadMap::Identity,
                ox: 0,
                oy: 0,
                halo: false,
                taps: Vec::new(),
                loop_read: false,
            }],
            poison: None,
        }
    }

    #[test]
    fn minimal_positive_case_transforms() {
        let spec = base_spec();
        assert!(
            matches!(check_spec(&spec), CaseOutcome::Transformed),
            "{:?}\n{}",
            check_spec(&spec),
            spec.render()
        );
    }

    #[test]
    fn feature_matrix_transforms() {
        // One spec per generator feature, so a regression names the feature.
        let mut specs = Vec::new();
        let mut s = base_spec();
        s.bufs[0].map = ReadMap::ReverseX;
        specs.push(("reverse-x", s));
        let mut s = base_spec();
        s.bufs[0].halo = true;
        s.bufs[0].taps = vec![1, 3];
        specs.push(("halo-taps", s));
        let mut s = base_spec();
        s.bufs[0].loop_read = true;
        specs.push(("loop-read", s));
        let mut s = base_spec();
        s.bufs[0].ox = 2;
        s.goff = 3;
        specs.push(("offsets", s));
        let mut s = base_spec();
        s.bufs.push(s.bufs[0].clone());
        specs.push(("two-buffers", s));
        // 2-D variants.
        for map in [
            ReadMap::Identity,
            ReadMap::ReverseX,
            ReadMap::ReverseY,
            ReadMap::Swap,
            ReadMap::SwapReverse,
        ] {
            let mut s = base_spec();
            s.dims = 2;
            s.ty = 4;
            s.gy_groups = 2;
            s.bufs[0].map = map;
            s.bufs[0].oy = 1;
            specs.push((map.name(), s));
        }
        let mut s = base_spec();
        s.dims = 2;
        s.ty = 2;
        s.bufs[0].loop_read = true;
        specs.push(("2d-loop-read", s));
        for (name, spec) in specs {
            let out = check_spec(&spec);
            assert!(
                matches!(out, CaseOutcome::Transformed),
                "{name}: {out:?}\n{}",
                spec.render()
            );
        }
    }

    #[test]
    fn every_poison_is_rejected_with_its_reason() {
        for p in ALL_POISONS {
            let spec = KernelSpec::random(&mut Gen::new(5), Some(p));
            let out = check_spec(&spec);
            assert!(
                matches!(out, CaseOutcome::Rejected),
                "{}: {out:?}\n{}",
                p.name(),
                spec.render()
            );
        }
    }

    #[test]
    fn random_sequences_are_legal_and_cover_lengths() {
        let mut g = Gen::new(17);
        let mut lengths = [0u32; 5];
        for _ in 0..200 {
            let seq = random_sequence(&mut g);
            assert_eq!(seq.passes()[0], grover_core::PassId::LocalRemoval);
            lengths[seq.passes().len()] += 1;
        }
        // Every legal length 1..=4 is drawn.
        assert!(lengths[1..].iter().all(|&c| c > 0), "{lengths:?}");
    }

    #[test]
    fn sequence_legs_agree_on_the_feature_spec() {
        // Every legal sequence leg must match the baseline on a healthy
        // kernel — exercised here with all four lengths at once.
        let spec = base_spec();
        let seqs: Vec<_> = [
            "local-removal",
            "local-removal,remap",
            "local-removal,index-simplify,barrier-elim",
            "local-removal,remap,barrier-elim,index-simplify",
        ]
        .iter()
        .map(|s| grover_core::Sequence::parse(s).unwrap())
        .collect();
        let out = check_spec_seqs(&spec, Backend::Interp, &seqs);
        assert!(matches!(out, CaseOutcome::Transformed), "{out:?}");
    }

    #[test]
    fn sequence_legs_leave_rejected_kernels_untouched() {
        let spec = KernelSpec::random(&mut Gen::new(5), Some(ALL_POISONS[0]));
        let seqs = vec![grover_core::Sequence::tuned_pipeline()];
        let out = check_spec_seqs(&spec, Backend::Interp, &seqs);
        assert!(matches!(out, CaseOutcome::Rejected), "{out:?}");
    }

    #[test]
    fn wrong_expectation_is_reported_not_masked() {
        // A healthy kernel judged as must-reject must fail loudly.
        let spec = base_spec();
        let out = check_source(
            &spec.render(),
            &Expectation::Reject {
                kind: "declined".into(),
                reason: "anything".into(),
            },
            None,
        );
        assert_eq!(
            out.failure().map(|f| f.kind),
            Some(FailureKind::AcceptedMustReject)
        );
        // And a poison judged as must-transform is a decline failure.
        let spec = KernelSpec::random(&mut Gen::new(1), Some(Poison::ComputedStore));
        let shape = spec.exec_shape();
        let out = check_source(&spec.render(), &Expectation::Transform, Some(&shape));
        assert_eq!(out.failure().map(|f| f.kind), Some(FailureKind::Declined));
    }
}
