//! Corpus replay.
//!
//! Every checked-in corpus kernel (and every reproducer the shrinker
//! writes) is a standalone `.cl` file carrying `// fuzz:` directives in its
//! header that encode the expected pass outcome and, for must-transform
//! kernels, the launch geometry:
//!
//! ```text
//! // fuzz: expect=transform
//! // fuzz: nd=16/8            (1-D: global/local; 2-D: 16x8/4x4)
//! // fuzz: in=64 out=32 w=16
//! ```
//!
//! ```text
//! // fuzz: expect=reject kind=declined reason=not affine in the work-item indices
//! ```
//!
//! The front-end strips comments, so directives never affect compilation.
//! Replaying a file runs the same oracle the campaign uses — corpus files
//! are ordinary fuzz cases that happen to live in git.

use crate::oracle::{check_source_seqs, CaseOutcome, Expectation};
use crate::spec::ExecShape;
use grover_core::Sequence;
use grover_runtime::Backend;
use std::path::Path;

/// Parsed `// fuzz:` header.
#[derive(Clone, Debug)]
pub struct Directives {
    pub expect: Expectation,
    /// Launch geometry; required when `expect` is `Transform`.
    pub shape: Option<ExecShape>,
    /// Pass sequences to race as extra legs (`// fuzz: passes=SPEC`, one
    /// directive per sequence). Empty for pre-pipeline corpus files.
    pub sequences: Vec<Sequence>,
}

fn parse_nd(v: &str) -> Result<([usize; 2], [usize; 2]), String> {
    let (g, l) = v
        .split_once('/')
        .ok_or_else(|| format!("nd `{v}`: expected GLOBAL/LOCAL"))?;
    let parse_pair = |s: &str| -> Result<[usize; 2], String> {
        match s.split_once('x') {
            Some((a, b)) => Ok([
                a.parse().map_err(|_| format!("bad nd component `{a}`"))?,
                b.parse().map_err(|_| format!("bad nd component `{b}`"))?,
            ]),
            None => Ok([s.parse().map_err(|_| format!("bad nd component `{s}`"))?, 1]),
        }
    };
    Ok((parse_pair(g)?, parse_pair(l)?))
}

/// Extract the directives from a corpus kernel's header comments.
pub fn parse_directives(src: &str) -> Result<Directives, String> {
    let mut expect: Option<Expectation> = None;
    let mut nd: Option<([usize; 2], [usize; 2])> = None;
    let mut sizes: Option<(usize, usize, i64)> = None;
    let mut sequences: Vec<Sequence> = Vec::new();
    for line in src.lines() {
        let Some(rest) = line.trim().strip_prefix("// fuzz:") else {
            continue;
        };
        let rest = rest.trim();
        if let Some(v) = rest.strip_prefix("expect=") {
            if v == "transform" {
                expect = Some(Expectation::Transform);
            } else if let Some(r) = v.strip_prefix("reject ") {
                let r = r.trim();
                let kv = r
                    .strip_prefix("kind=")
                    .ok_or_else(|| format!("reject directive `{r}`: missing kind="))?;
                let (kind, rest2) = kv
                    .split_once(' ')
                    .ok_or_else(|| format!("reject directive `{r}`: missing reason="))?;
                let reason = rest2
                    .trim()
                    .strip_prefix("reason=")
                    .ok_or_else(|| format!("reject directive `{r}`: missing reason="))?;
                expect = Some(Expectation::Reject {
                    kind: kind.to_string(),
                    reason: reason.to_string(),
                });
            } else {
                return Err(format!("unknown expect value `{v}`"));
            }
        } else if let Some(v) = rest.strip_prefix("nd=") {
            nd = Some(parse_nd(v.trim())?);
        } else if let Some(v) = rest.strip_prefix("passes=") {
            sequences.push(
                Sequence::parse(v.trim()).map_err(|e| format!("passes directive `{v}`: {e}"))?,
            );
        } else if rest.starts_with("in=") {
            let mut in_len = None;
            let mut out_len = None;
            let mut w = None;
            for tok in rest.split_whitespace() {
                if let Some(v) = tok.strip_prefix("in=") {
                    in_len = v.parse().ok();
                } else if let Some(v) = tok.strip_prefix("out=") {
                    out_len = v.parse().ok();
                } else if let Some(v) = tok.strip_prefix("w=") {
                    w = v.parse().ok();
                }
            }
            match (in_len, out_len, w) {
                (Some(i), Some(o), Some(w)) => sizes = Some((i, o, w)),
                _ => return Err(format!("bad sizes directive `{rest}`")),
            }
        }
    }
    let expect = expect.ok_or("missing `// fuzz: expect=` directive")?;
    let shape = match (nd, sizes) {
        (Some((global, local)), Some((in_len, out_len, w))) => Some(ExecShape {
            global,
            local,
            in_len,
            out_len,
            w,
        }),
        _ => None,
    };
    if matches!(expect, Expectation::Transform) && shape.is_none() {
        return Err("expect=transform needs `nd=` and `in=/out=/w=` directives".to_string());
    }
    Ok(Directives {
        expect,
        shape,
        sequences,
    })
}

/// Replay one corpus kernel source. `Err` carries the failure description.
pub fn replay_source(src: &str) -> Result<(), String> {
    replay_source_backend(src, Backend::Interp)
}

/// [`replay_source`] judging on an explicit execution backend.
pub fn replay_source_backend(src: &str, backend: Backend) -> Result<(), String> {
    let d = parse_directives(src)?;
    match check_source_seqs(src, &d.expect, d.shape.as_ref(), backend, &d.sequences) {
        CaseOutcome::Transformed | CaseOutcome::Rejected => Ok(()),
        CaseOutcome::Failed(f) => Err(format!("{}: {}", f.kind.name(), f.detail)),
    }
}

/// Replay every `.cl` file under `dir` (sorted by name for stable output).
/// Returns one `(file name, result)` row per file; an unreadable directory
/// yields an empty list.
pub fn replay_dir(dir: &Path) -> Vec<(String, Result<(), String>)> {
    replay_dir_backend(dir, Backend::Interp)
}

/// [`replay_dir`] judging on an explicit execution backend.
pub fn replay_dir_backend(dir: &Path, backend: Backend) -> Vec<(String, Result<(), String>)> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "cl"))
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let name = p
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let res = std::fs::read_to_string(&p)
                .map_err(|e| format!("read: {e}"))
                .and_then(|src| replay_source_backend(&src, backend));
            (name, res)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Gen;
    use crate::spec::KernelSpec;

    #[test]
    fn rendered_specs_replay_from_their_own_directives() {
        // The renderer's directive header and the parser must agree: any
        // generated kernel replays standalone, with no spec in sight.
        for seed in [0u64, 5, 9, 21] {
            let spec = KernelSpec::random(&mut Gen::new(seed), None);
            let src = spec.render();
            replay_source(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_directives("__kernel void k() {}").is_err());
        assert!(parse_directives("// fuzz: expect=transform\n").is_err()); // no nd
        assert!(parse_directives("// fuzz: expect=reject kind=declined\n").is_err());
    }

    #[test]
    fn passes_directives_parse_and_replay() {
        let spec = KernelSpec::random(&mut Gen::new(5), None);
        let mut src = spec.render();
        src.push_str("// fuzz: passes=local-removal,barrier-elim,remap\n");
        src.push_str("// fuzz: passes=local-removal\n");
        let d = parse_directives(&src).unwrap();
        assert_eq!(d.sequences.len(), 2);
        assert_eq!(d.sequences[0].spec(), "local-removal,barrier-elim,remap");
        replay_source(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        // An illegal sequence is a parse error, not a silent skip.
        let bad = format!("{src}// fuzz: passes=barrier-elim\n");
        assert!(parse_directives(&bad).is_err());
    }

    #[test]
    fn parse_2d_nd() {
        let src = "// fuzz: expect=transform\n// fuzz: nd=16x8/4x2\n// fuzz: in=256 out=256 w=16\n";
        let d = parse_directives(src).unwrap();
        let s = d.shape.unwrap();
        assert_eq!(s.global, [16, 8]);
        assert_eq!(s.local, [4, 2]);
        assert_eq!((s.in_len, s.out_len, s.w), (256, 256, 16));
    }

    #[test]
    fn reason_may_contain_spaces() {
        let src =
            "// fuzz: expect=reject kind=declined reason=not affine in the work-item indices\nx";
        match parse_directives(src).unwrap().expect {
            Expectation::Reject { kind, reason } => {
                assert_eq!(kind, "declined");
                assert_eq!(reason, "not affine in the work-item indices");
            }
            other => panic!("{other:?}"),
        }
    }
}
