//! The fuzzer must actually catch bugs: inject a deterministic
//! index-arithmetic fault into every transformed (local-memory-free)
//! kernel and demand the campaign (a) flags every positive case as a
//! mismatch, (b) shrinks each one to a small standalone reproducer, and
//! (c) the reproducer keeps failing while the bug exists and passes once
//! it is gone.
//!
//! Single-test file on purpose: the fault registry is process-global, so
//! this must not share a test binary with campaigns that expect clean runs.

use grover_fuzz::{replay_source, run_campaign, CampaignOptions, FailureKind};
use grover_obs::NOOP;
use grover_runtime::fault::{self, FaultKind, FaultPlan, FaultSite, FaultTarget};
use std::path::PathBuf;

#[test]
fn injected_index_offset_bug_is_caught_and_shrunk() {
    let out_dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("fuzz-fault-catch");
    let _ = std::fs::remove_dir_all(&out_dir);

    // Offset every global load of local-memory-free kernels by one element:
    // a stand-in for an off-by-one in the pass's index rewrite. Originals
    // still use local memory, so only the transformed side is hit.
    let guard = fault::inject(FaultPlan {
        target: FaultTarget::transformed("fz"),
        site: FaultSite::LaunchStart,
        kind: FaultKind::OffsetGlobalLoads(1),
        max_fires: 0,
    });

    let opts = CampaignOptions {
        seed: 42,
        cases: 25,
        out_dir: Some(out_dir.clone()),
        backend: grover_fuzz::Backend::Interp,
    };
    let summary = run_campaign(&opts, &NOOP);

    // All 20 positive cases mismatch; the 5 poison cases still reject fine
    // (they are never executed).
    assert_eq!(summary.failures.len(), 20, "{}", summary.to_text());
    assert_eq!(summary.rejected, 5);
    for f in &summary.failures {
        assert_eq!(
            f.kind,
            FailureKind::Mismatch,
            "case {}: {}",
            f.case,
            f.detail
        );
        let lines = f.source.lines().count();
        assert!(
            lines <= 25,
            "case {} reproducer not minimal: {lines} lines\n{}",
            f.case,
            f.source
        );
        let path = f.reproducer.as_ref().expect("reproducer written");
        assert!(path.exists());
    }

    // While the bug is installed, a written reproducer replays as failing…
    let repro = std::fs::read_to_string(summary.failures[0].reproducer.as_ref().unwrap()).unwrap();
    let err = replay_source(&repro).expect_err("reproducer must fail while the bug exists");
    assert!(err.contains("mismatch"), "{err}");

    // …and once the bug is fixed (guard dropped), the same file passes.
    drop(guard);
    replay_source(&repro).expect("reproducer passes after the fault is removed");
}
