//! Seeded end-to-end campaign: the conformance gate that runs on every
//! `cargo test`. A larger sweep (`--cases 500`) runs in CI via the CLI.

use grover_fuzz::{run_campaign, Backend, CampaignOptions};
use grover_obs::NOOP;

#[test]
fn campaign_seed_42_is_clean() {
    let summary = run_campaign(
        &CampaignOptions {
            seed: 42,
            cases: 100,
            out_dir: None,
            backend: Backend::Interp,
        },
        &NOOP,
    );
    assert!(summary.ok(), "{}", summary.to_text());
    assert_eq!(summary.transformed + summary.rejected, 100);
    assert_eq!(summary.rejected, 20, "every 5th case is a must-reject");
}
