//! Corpus replay as ordinary `cargo test` cases.
//!
//! `corpus/must-reject/` holds kernels the pass must refuse, each asserting
//! its exact `BufferOutcome` kind and reason; `corpus/regressions/` holds
//! shrunk reproducers and conformance cases from past fuzzing. Both replay
//! through the same oracle the campaign uses.

use grover_fuzz::{replay_dir_backend, Backend};
use std::path::PathBuf;

fn corpus(sub: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("corpus")
        .join(sub)
}

fn replay_all(sub: &str, min_files: usize, backend: Backend) {
    let rows = replay_dir_backend(&corpus(sub), backend);
    assert!(
        rows.len() >= min_files,
        "expected at least {min_files} corpus kernels under corpus/{sub}, found {}",
        rows.len()
    );
    let mut bad = Vec::new();
    for (file, res) in rows {
        if let Err(e) = res {
            bad.push(format!("{file}: {e}"));
        }
    }
    assert!(
        bad.is_empty(),
        "corpus/{sub} failures ({backend}):\n{}",
        bad.join("\n")
    );
}

#[test]
fn must_reject_corpus_is_refused_for_the_right_reasons() {
    replay_all("must-reject", 5, Backend::Interp);
}

#[test]
fn regression_corpus_replays_clean() {
    replay_all("regressions", 2, Backend::Interp);
}

#[test]
fn regression_corpus_replays_clean_on_bytecode() {
    // Past failures must stay fixed on the bytecode backend too: the
    // three-way oracle re-executes each transform case on bytecode and
    // demands bit-identity with the interpreter.
    replay_all("regressions", 2, Backend::Bytecode);
}
