//! A miniature C preprocessor: comment stripping, object-like `#define`
//! macros, `#undef`, `#ifdef`/`#ifndef`/`#else`/`#endif`, and build-option
//! definitions (the `-D NAME=value` strings OpenCL's `clBuildProgram`
//! accepts — how hosts parameterise tile sizes like `S`).

use std::collections::HashMap;

use crate::CompileError;

/// Build options, mirroring OpenCL's `-D` compile definitions.
#[derive(Clone, Debug, Default)]
pub struct BuildOptions {
    defines: Vec<(String, String)>,
}

impl BuildOptions {
    /// Empty option set.
    pub fn new() -> BuildOptions {
        BuildOptions::default()
    }

    /// Add `-D name=value`.
    pub fn define(mut self, name: &str, value: impl ToString) -> BuildOptions {
        self.defines.push((name.to_string(), value.to_string()));
        self
    }

    /// Parse an OpenCL-style option string: `-D A=1 -D B -DC=2`.
    pub fn parse(opts: &str) -> Result<BuildOptions, CompileError> {
        let mut b = BuildOptions::new();
        let mut it = opts.split_whitespace().peekable();
        while let Some(tok) = it.next() {
            let def = if tok == "-D" {
                it.next()
                    .ok_or_else(|| CompileError::new("-D requires an argument", 0))?
                    .to_string()
            } else if let Some(rest) = tok.strip_prefix("-D") {
                rest.to_string()
            } else {
                return Err(CompileError::new(
                    format!("unsupported build option `{tok}`"),
                    0,
                ));
            };
            match def.split_once('=') {
                Some((n, v)) => b.defines.push((n.to_string(), v.to_string())),
                None => b.defines.push((def, "1".to_string())),
            }
        }
        Ok(b)
    }

    /// The accumulated `(name, value)` definitions.
    pub fn defines(&self) -> &[(String, String)] {
        &self.defines
    }
}

/// Strip `//` and `/* */` comments, preserving line structure.
pub fn strip_comments(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
        } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            i += 2;
            while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                if bytes[i] == b'\n' {
                    out.push('\n');
                }
                i += 1;
            }
            i = (i + 2).min(bytes.len());
            out.push(' ');
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    out
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Substitute macros in one line of code (token-boundary aware, iterated so
/// macros can reference other macros, with a depth bound against cycles).
fn substitute(line: &str, macros: &HashMap<String, String>) -> String {
    let mut cur = line.to_string();
    for _ in 0..16 {
        let bytes = cur.as_bytes();
        let mut out = String::with_capacity(cur.len());
        let mut i = 0;
        let mut changed = false;
        while i < bytes.len() {
            if bytes[i].is_ascii_alphabetic() || bytes[i] == b'_' {
                let start = i;
                while i < bytes.len() && is_ident_char(bytes[i]) {
                    i += 1;
                }
                let word = &cur[start..i];
                match macros.get(word) {
                    Some(rep) => {
                        out.push_str(rep);
                        changed = true;
                    }
                    None => out.push_str(word),
                }
            } else {
                out.push(bytes[i] as char);
                i += 1;
            }
        }
        cur = out;
        if !changed {
            break;
        }
    }
    cur
}

/// Run the preprocessor. Produces source with the same number of lines (so
/// downstream error line numbers remain meaningful).
pub fn preprocess(src: &str, options: &BuildOptions) -> Result<String, CompileError> {
    let stripped = strip_comments(src);
    let mut macros: HashMap<String, String> = HashMap::new();
    for (n, v) in options.defines() {
        macros.insert(n.clone(), v.clone());
    }
    let mut out = String::with_capacity(stripped.len());
    // Conditional-inclusion stack: each entry = "is this branch active?".
    let mut active_stack: Vec<bool> = Vec::new();
    for (lineno, line) in stripped.lines().enumerate() {
        let lineno = lineno + 1;
        let trimmed = line.trim_start();
        let active = active_stack.iter().all(|&a| a);
        if let Some(rest) = trimmed.strip_prefix('#') {
            let rest = rest.trim_start();
            let (directive, args) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
            match directive {
                "define" if active => {
                    let args = args.trim();
                    let (name, value) = args.split_once(char::is_whitespace).unwrap_or((args, "1"));
                    if name.is_empty() || name.contains('(') {
                        return Err(CompileError::new(
                            "only object-like #define is supported",
                            lineno,
                        ));
                    }
                    macros.insert(name.to_string(), value.trim().to_string());
                }
                "undef" if active => {
                    macros.remove(args.trim());
                }
                "ifdef" => active_stack.push(macros.contains_key(args.trim())),
                "ifndef" => active_stack.push(!macros.contains_key(args.trim())),
                "else" => {
                    let top = active_stack
                        .last_mut()
                        .ok_or_else(|| CompileError::new("#else without #if", lineno))?;
                    *top = !*top;
                }
                "endif" => {
                    active_stack
                        .pop()
                        .ok_or_else(|| CompileError::new("#endif without #if", lineno))?;
                }
                "pragma" | "include" => {} // ignored
                "define" | "undef" => {}   // inactive branch
                other => {
                    return Err(CompileError::new(
                        format!("unsupported preprocessor directive #{other}"),
                        lineno,
                    ))
                }
            }
            out.push('\n'); // keep line count stable
        } else if active {
            out.push_str(&substitute(line, &macros));
            out.push('\n');
        } else {
            out.push('\n');
        }
    }
    if !active_stack.is_empty() {
        return Err(CompileError::new("unterminated #if block", 0));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let s = strip_comments("a // hi\nb /* x\ny */ c");
        assert_eq!(s, "a \nb \n  c");
    }

    #[test]
    fn define_substitutes_on_token_boundaries() {
        let src = "#define S 16\nint x = S; int y = S1 + AS;\n";
        let out = preprocess(src, &BuildOptions::new()).unwrap();
        assert!(out.contains("int x = 16;"));
        assert!(out.contains("S1 + AS")); // no partial substitution
    }

    #[test]
    fn build_options_override() {
        let src = "int x = TILE;\n";
        let opts = BuildOptions::new().define("TILE", 32);
        let out = preprocess(src, &opts).unwrap();
        assert!(out.contains("int x = 32;"));
    }

    #[test]
    fn parse_option_string() {
        let b = BuildOptions::parse("-D A=1 -DB=2 -D C").unwrap();
        assert_eq!(
            b.defines(),
            &[
                ("A".to_string(), "1".to_string()),
                ("B".to_string(), "2".to_string()),
                ("C".to_string(), "1".to_string())
            ]
        );
        assert!(BuildOptions::parse("--weird").is_err());
    }

    #[test]
    fn nested_macros_resolve() {
        let src = "#define A B\n#define B 7\nint x = A;\n";
        let out = preprocess(src, &BuildOptions::new()).unwrap();
        assert!(out.contains("int x = 7;"));
    }

    #[test]
    fn ifdef_blocks() {
        let src = "#define USE_LM 1\n#ifdef USE_LM\nint a;\n#else\nint b;\n#endif\n";
        let out = preprocess(src, &BuildOptions::new()).unwrap();
        assert!(out.contains("int a;"));
        assert!(!out.contains("int b;"));
    }

    #[test]
    fn ifndef_and_undef() {
        let src = "#define X 1\n#undef X\n#ifndef X\nint yes;\n#endif\n";
        let out = preprocess(src, &BuildOptions::new()).unwrap();
        assert!(out.contains("int yes;"));
    }

    #[test]
    fn unbalanced_endif_is_error() {
        assert!(preprocess("#endif\n", &BuildOptions::new()).is_err());
        assert!(preprocess("#ifdef A\n", &BuildOptions::new()).is_err());
    }

    #[test]
    fn function_like_define_rejected() {
        assert!(preprocess("#define F(x) x\n", &BuildOptions::new()).is_err());
    }

    #[test]
    fn line_numbers_preserved() {
        let src = "#define S 4\n\nint x = S;\n";
        let out = preprocess(src, &BuildOptions::new()).unwrap();
        assert_eq!(out.lines().count(), 3);
        assert_eq!(out.lines().nth(2).unwrap(), "int x = 4;");
    }
}
