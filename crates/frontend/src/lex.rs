//! Lexer for the OpenCL C subset.

use crate::CompileError;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)] // punctuation/operator variants name themselves
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (suffixes consumed).
    IntLit(i64),
    /// Float literal (`f` suffix consumed).
    FloatLit(f32),
    // punctuation / operators
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Question,
    Colon,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,
    PlusPlus,
    MinusMinus,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    NotEq,
    AndAnd,
    OrOr,
    /// End of input.
    Eof,
}

/// Token with its source line (1-based).
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
}

/// Tokenize preprocessed source.
pub fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'0'..=b'9' => {
                let (tok, len) = lex_number(&src[i..], line)?;
                toks.push(Token { tok, line });
                i += len;
            }
            b'.' if i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() => {
                let (tok, len) = lex_number(&src[i..], line)?;
                toks.push(Token { tok, line });
                i += len;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push(Token {
                    tok: Tok::Ident(src[start..i].to_string()),
                    line,
                });
            }
            _ => {
                let (tok, len) = lex_punct(&src[i..], line)?;
                toks.push(Token { tok, line });
                i += len;
            }
        }
    }
    toks.push(Token {
        tok: Tok::Eof,
        line,
    });
    Ok(toks)
}

fn lex_number(s: &str, line: usize) -> Result<(Tok, usize), CompileError> {
    let bytes = s.as_bytes();
    // Hex?
    if bytes.len() > 2 && bytes[0] == b'0' && (bytes[1] == b'x' || bytes[1] == b'X') {
        let mut j = 2;
        while j < bytes.len() && bytes[j].is_ascii_hexdigit() {
            j += 1;
        }
        let v = i64::from_str_radix(&s[2..j], 16)
            .map_err(|_| CompileError::new("bad hex literal", line))?;
        // Swallow integer suffixes.
        while j < bytes.len() && matches!(bytes[j], b'u' | b'U' | b'l' | b'L') {
            j += 1;
        }
        return Ok((Tok::IntLit(v), j));
    }
    let mut j = 0;
    let mut is_float = false;
    while j < bytes.len() && bytes[j].is_ascii_digit() {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'.' {
        is_float = true;
        j += 1;
        while j < bytes.len() && bytes[j].is_ascii_digit() {
            j += 1;
        }
    }
    if j < bytes.len() && (bytes[j] == b'e' || bytes[j] == b'E') {
        let mut k = j + 1;
        if k < bytes.len() && (bytes[k] == b'+' || bytes[k] == b'-') {
            k += 1;
        }
        if k < bytes.len() && bytes[k].is_ascii_digit() {
            is_float = true;
            j = k;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
        }
    }
    if is_float {
        let v: f32 = s[..j]
            .parse()
            .map_err(|_| CompileError::new("bad float literal", line))?;
        // f/F suffix
        let mut end = j;
        if end < bytes.len() && matches!(bytes[end], b'f' | b'F') {
            end += 1;
        }
        Ok((Tok::FloatLit(v), end))
    } else {
        let v: i64 = s[..j]
            .parse()
            .map_err(|_| CompileError::new("bad int literal", line))?;
        let mut end = j;
        if end < bytes.len() && matches!(bytes[end], b'f' | b'F') {
            // `1f` style float
            return Ok((Tok::FloatLit(v as f32), end + 1));
        }
        while end < bytes.len() && matches!(bytes[end], b'u' | b'U' | b'l' | b'L') {
            end += 1;
        }
        Ok((Tok::IntLit(v), end))
    }
}

fn lex_punct(s: &str, line: usize) -> Result<(Tok, usize), CompileError> {
    let b = s.as_bytes();
    let two = if b.len() >= 2 { &s[..2] } else { "" };
    let three = if b.len() >= 3 { &s[..3] } else { "" };
    let t = match three {
        "<<=" => return Ok((Tok::ShlAssign, 3)),
        ">>=" => return Ok((Tok::ShrAssign, 3)),
        _ => two,
    };
    let tok2 = match t {
        "+=" => Some(Tok::PlusAssign),
        "-=" => Some(Tok::MinusAssign),
        "*=" => Some(Tok::StarAssign),
        "/=" => Some(Tok::SlashAssign),
        "&=" => Some(Tok::AmpAssign),
        "|=" => Some(Tok::PipeAssign),
        "^=" => Some(Tok::CaretAssign),
        "++" => Some(Tok::PlusPlus),
        "--" => Some(Tok::MinusMinus),
        "<<" => Some(Tok::Shl),
        ">>" => Some(Tok::Shr),
        "<=" => Some(Tok::Le),
        ">=" => Some(Tok::Ge),
        "==" => Some(Tok::EqEq),
        "!=" => Some(Tok::NotEq),
        "&&" => Some(Tok::AndAnd),
        "||" => Some(Tok::OrOr),
        _ => None,
    };
    if let Some(t) = tok2 {
        return Ok((t, 2));
    }
    let tok1 = match b[0] {
        b'(' => Tok::LParen,
        b')' => Tok::RParen,
        b'{' => Tok::LBrace,
        b'}' => Tok::RBrace,
        b'[' => Tok::LBracket,
        b']' => Tok::RBracket,
        b';' => Tok::Semi,
        b',' => Tok::Comma,
        b'.' => Tok::Dot,
        b'+' => Tok::Plus,
        b'-' => Tok::Minus,
        b'*' => Tok::Star,
        b'/' => Tok::Slash,
        b'%' => Tok::Percent,
        b'&' => Tok::Amp,
        b'|' => Tok::Pipe,
        b'^' => Tok::Caret,
        b'~' => Tok::Tilde,
        b'!' => Tok::Bang,
        b'?' => Tok::Question,
        b':' => Tok::Colon,
        b'=' => Tok::Assign,
        b'<' => Tok::Lt,
        b'>' => Tok::Gt,
        other => {
            return Err(CompileError::new(
                format!("unexpected character `{}`", other as char),
                line,
            ))
        }
    };
    Ok((tok1, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("int x = 42;"),
            vec![
                Tok::Ident("int".into()),
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::IntLit(42),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn float_forms() {
        assert_eq!(kinds("1.5")[0], Tok::FloatLit(1.5));
        assert_eq!(kinds("1.5f")[0], Tok::FloatLit(1.5));
        assert_eq!(kinds(".25")[0], Tok::FloatLit(0.25));
        assert_eq!(kinds("2e3")[0], Tok::FloatLit(2000.0));
        assert_eq!(kinds("1e-2")[0], Tok::FloatLit(0.01));
        assert_eq!(kinds("3f")[0], Tok::FloatLit(3.0));
    }

    #[test]
    fn int_forms() {
        assert_eq!(kinds("0x10")[0], Tok::IntLit(16));
        assert_eq!(kinds("7u")[0], Tok::IntLit(7));
        assert_eq!(kinds("7UL")[0], Tok::IntLit(7));
    }

    #[test]
    fn compound_operators() {
        assert_eq!(
            kinds("a += b << 2 >= c && d")
                .into_iter()
                .filter(|t| !matches!(t, Tok::Ident(_) | Tok::IntLit(_) | Tok::Eof))
                .collect::<Vec<_>>(),
            vec![Tok::PlusAssign, Tok::Shl, Tok::Ge, Tok::AndAnd]
        );
        assert_eq!(kinds("x <<= 1")[1], Tok::ShlAssign);
    }

    #[test]
    fn member_access_vs_float() {
        // `v.x` must lex Dot, `1.x` would be weird but `v.s0` common.
        assert_eq!(
            kinds("v.x"),
            vec![
                Tok::Ident("v".into()),
                Tok::Dot,
                Tok::Ident("x".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = lex("a\nb\n  c").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("a $ b").is_err());
        assert!(lex("int x @").is_err());
    }
}
