#![warn(missing_docs)]
//! # grover-frontend
//!
//! A from-scratch front-end for the OpenCL C subset the Grover paper's
//! benchmarks use, standing in for Clang in the paper's pipeline
//! (OpenCL C → Clang → SPIR → Grover; here OpenCL C → `grover-frontend` →
//! [`grover_ir`] → `grover-core`).
//!
//! Pipeline: [`preprocess`] (comments, `#define`, `-D` options) →
//! [`lex`] → [`parse`] (recursive descent) → [`codegen`] (Braun-style SSA
//! construction straight into the IR).
//!
//! ```
//! use grover_frontend::{compile, BuildOptions};
//!
//! let module = compile(
//!     "__kernel void copy(__global float* in, __global float* out) {
//!          int i = get_global_id(0);
//!          out[i] = in[i];
//!      }",
//!     &BuildOptions::new(),
//! ).unwrap();
//! assert!(module.kernel("copy").is_some());
//! ```

pub mod ast;
pub mod codegen;
pub mod lex;
pub mod parse;
pub mod preprocess;
pub mod ssa;

pub use preprocess::BuildOptions;

use grover_ir::Module;

/// A compilation failure with a 1-based source line (0 = unknown).
#[derive(Debug, Clone)]
pub struct CompileError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line (0 = unknown).
    pub line: usize,
}

impl CompileError {
    /// Construct an error at a source line (0 = unknown).
    pub fn new(message: impl Into<String>, line: usize) -> CompileError {
        CompileError {
            message: message.into(),
            line,
        }
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for CompileError {}

/// Compile OpenCL C source into an IR [`Module`].
///
/// Every kernel in the translation unit is lowered and verified.
pub fn compile(source: &str, options: &BuildOptions) -> Result<Module, CompileError> {
    let pre = preprocess::preprocess(source, options)?;
    let tu = parse::parse(&pre)?;
    let mut module = Module::new();
    for k in &tu.kernels {
        let f = codegen::lower_kernel(k)?;
        if let Err(errs) = grover_ir::verify(&f) {
            return Err(CompileError::new(
                format!(
                    "internal: generated IR for `{}` failed verification: {:?}",
                    k.name, errs
                ),
                k.line,
            ));
        }
        module.add_kernel(f);
    }
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_compile() {
        let m = compile(
            "#define S 8\n\
             __kernel void k(__global float* in, __global float* out) {\n\
                 __local float lm[S][S];\n\
                 int lx = get_local_id(0);\n\
                 int ly = get_local_id(1);\n\
                 int gx = get_global_id(0);\n\
                 int gy = get_global_id(1);\n\
                 int w = get_global_size(0);\n\
                 lm[ly][lx] = in[gy * w + gx];\n\
                 barrier(CLK_LOCAL_MEM_FENCE);\n\
                 out[gy * w + gx] = lm[lx][ly];\n\
             }",
            &BuildOptions::new(),
        )
        .unwrap();
        let k = m.kernel("k").unwrap();
        assert_eq!(k.local_bufs()[0].dims, vec![8, 8]);
    }

    #[test]
    fn build_option_changes_tile() {
        let src = "__kernel void k() { __local float lm[S]; lm[0] = 0.0f; }";
        let m = compile(src, &BuildOptions::new().define("S", 32)).unwrap();
        assert_eq!(m.kernel("k").unwrap().local_bufs()[0].dims, vec![32]);
        assert!(compile(src, &BuildOptions::new()).is_err()); // S undefined
    }

    #[test]
    fn error_carries_line() {
        let err = compile(
            "__kernel void k(__global float* a) {\n a[0] = unknown_fn(); \n}",
            &BuildOptions::new(),
        )
        .unwrap_err();
        assert_eq!(err.line, 2);
    }
}
