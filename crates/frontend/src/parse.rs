//! Recursive-descent parser for the OpenCL C subset.

use grover_ir::AddressSpace;

use crate::ast::*;
use crate::lex::{lex, Tok, Token};
use crate::CompileError;

/// Parse preprocessed source into a translation unit.
pub fn parse(src: &str) -> Result<TranslationUnit, CompileError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.translation_unit()
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), CompileError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(CompileError::new(
                format!("expected {what}, found {:?}", self.peek()),
                self.line(),
            ))
        }
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(w) if w == word) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn peek_ident(&self) -> Option<&str> {
        match self.peek() {
            Tok::Ident(w) => Some(w),
            _ => None,
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, CompileError> {
        match self.bump() {
            Tok::Ident(w) => Ok(w),
            other => Err(CompileError::new(
                format!("expected {what}, found {other:?}"),
                self.line(),
            )),
        }
    }

    // ---- types -----------------------------------------------------------

    /// Try to parse an address-space qualifier.
    fn try_space(&mut self) -> Option<AddressSpace> {
        for (words, space) in [
            (&["__global", "global"][..], AddressSpace::Global),
            (&["__local", "local"][..], AddressSpace::Local),
            (&["__constant", "constant"][..], AddressSpace::Constant),
            (&["__private", "private"][..], AddressSpace::Private),
        ] {
            for w in words {
                if self.eat_ident(w) {
                    return Some(space);
                }
            }
        }
        None
    }

    /// Whether an identifier begins a type.
    fn is_type_word(w: &str) -> bool {
        Self::base_scalar(w).is_some()
            || Self::vector_type(w).is_some()
            || matches!(w, "unsigned" | "void")
    }

    fn base_scalar(w: &str) -> Option<CScalar> {
        match w {
            "bool" => Some(CScalar::Bool),
            "int" => Some(CScalar::Int),
            "uint" => Some(CScalar::UInt),
            "long" => Some(CScalar::Long),
            "ulong" | "size_t" => Some(CScalar::ULong),
            "float" => Some(CScalar::Float),
            _ => None,
        }
    }

    fn vector_type(w: &str) -> Option<(CScalar, u8)> {
        for (prefix, s) in [
            ("float", CScalar::Float),
            ("int", CScalar::Int),
            ("uint", CScalar::UInt),
            ("long", CScalar::Long),
        ] {
            if let Some(rest) = w.strip_prefix(prefix) {
                if let Ok(n) = rest.parse::<u8>() {
                    if matches!(n, 2 | 3 | 4 | 8 | 16) {
                        return Some((s, n));
                    }
                }
            }
        }
        None
    }

    /// Parse a type name (after qualifiers), plus optional `*`.
    fn parse_type(&mut self, space: Option<AddressSpace>) -> Result<CType, CompileError> {
        self.eat_ident("const");
        let w = self.expect_ident("type name")?;
        let base = if w == "unsigned" {
            match self.peek_ident() {
                Some("int") => {
                    self.bump();
                    CType::UINT
                }
                Some("long") => {
                    self.bump();
                    CType::ULONG
                }
                _ => CType::UINT,
            }
        } else if let Some((s, n)) = Self::vector_type(&w) {
            CType::vector(s, n)
        } else if let Some(s) = Self::base_scalar(&w) {
            CType::scalar(s)
        } else {
            return Err(CompileError::new(
                format!("unknown type `{w}`"),
                self.line(),
            ));
        };
        self.eat_ident("const");
        if self.eat(&Tok::Star) {
            self.eat_ident("restrict");
            self.eat_ident("const");
            let sp = space.unwrap_or(AddressSpace::Private);
            Ok(base.pointer_to(sp))
        } else {
            Ok(base)
        }
    }

    // ---- top level --------------------------------------------------------

    fn translation_unit(&mut self) -> Result<TranslationUnit, CompileError> {
        let mut tu = TranslationUnit::default();
        while self.peek() != &Tok::Eof {
            tu.kernels.push(self.kernel()?);
        }
        if tu.kernels.is_empty() {
            return Err(CompileError::new("no kernels in translation unit", 0));
        }
        Ok(tu)
    }

    fn kernel(&mut self) -> Result<KernelDef, CompileError> {
        let line = self.line();
        if !(self.eat_ident("__kernel") || self.eat_ident("kernel")) {
            return Err(CompileError::new(
                format!("expected `__kernel`, found {:?}", self.peek()),
                line,
            ));
        }
        // Ignore attributes like __attribute__((reqd_work_group_size(...)))
        if !self.eat_ident("void") {
            return Err(CompileError::new("kernels must return void", self.line()));
        }
        let name = self.expect_ident("kernel name")?;
        self.expect(&Tok::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                let pline = self.line();
                let space = self.try_space();
                let ty = self.parse_type(space)?;
                let pname = self.expect_ident("parameter name")?;
                params.push(KernelParam {
                    name: pname,
                    ty,
                    line: pline,
                });
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(&Tok::Comma, "`,`")?;
            }
        }
        let body = self.block()?;
        Ok(KernelDef {
            name,
            params,
            body,
            line,
        })
    }

    // ---- statements ------------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(&Tok::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if self.peek() == &Tok::Eof {
                return Err(CompileError::new(
                    "unexpected end of input in block",
                    self.line(),
                ));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        match self.peek().clone() {
            Tok::LBrace => Ok(Stmt::Block(self.block()?)),
            Tok::Semi => {
                self.bump();
                Ok(Stmt::Block(Vec::new()))
            }
            Tok::Ident(w) => match w.as_str() {
                "if" => self.if_stmt(),
                "for" => self.for_stmt(),
                "while" => self.while_stmt(),
                "do" => self.do_while_stmt(),
                "return" => {
                    self.bump();
                    self.expect(&Tok::Semi, "`;` after return")?;
                    Ok(Stmt::Return)
                }
                "break" => {
                    self.bump();
                    self.expect(&Tok::Semi, "`;`")?;
                    Ok(Stmt::Break)
                }
                "continue" => {
                    self.bump();
                    self.expect(&Tok::Semi, "`;`")?;
                    Ok(Stmt::Continue)
                }
                "barrier" => self.barrier_stmt(),
                _ if self.starts_decl() => self.decl_stmt(),
                _ => {
                    let e = self.expr()?;
                    self.expect(&Tok::Semi, "`;` after expression")?;
                    Ok(Stmt::Expr(e))
                }
            },
            _ => {
                let e = self.expr()?;
                self.expect(&Tok::Semi, "`;` after expression")?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    /// Lookahead: does the current position start a declaration?
    fn starts_decl(&self) -> bool {
        match self.peek() {
            Tok::Ident(w) => {
                if matches!(
                    w.as_str(),
                    "__global"
                        | "global"
                        | "__local"
                        | "local"
                        | "__constant"
                        | "constant"
                        | "__private"
                        | "private"
                        | "const"
                ) {
                    return true;
                }
                if Self::is_type_word(w) {
                    // `float x` vs `float4)(...` — a type word followed by an
                    // identifier (or `*`) is a declaration.
                    matches!(self.peek2(), Tok::Ident(_) | Tok::Star)
                } else {
                    false
                }
            }
            _ => false,
        }
    }

    fn decl_stmt(&mut self) -> Result<Stmt, CompileError> {
        let space = self.try_space();
        self.eat_ident("const");
        let base = self.parse_type(space)?;
        let mut decls = Vec::new();
        loop {
            let line = self.line();
            let name = self.expect_ident("variable name")?;
            let mut dims = Vec::new();
            while self.eat(&Tok::LBracket) {
                dims.push(self.expr()?);
                self.expect(&Tok::RBracket, "`]`")?;
            }
            let init = if self.eat(&Tok::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            decls.push(VarDecl {
                name,
                ty: base,
                space,
                dims,
                init,
                line,
            });
            if self.eat(&Tok::Semi) {
                break;
            }
            self.expect(&Tok::Comma, "`,` or `;` in declaration")?;
        }
        Ok(Stmt::Decl(decls))
    }

    fn if_stmt(&mut self) -> Result<Stmt, CompileError> {
        self.bump(); // if
        self.expect(&Tok::LParen, "`(`")?;
        let cond = self.expr()?;
        self.expect(&Tok::RParen, "`)`")?;
        let then_b = self.stmt_as_block()?;
        let else_b = if self.eat_ident("else") {
            self.stmt_as_block()?
        } else {
            Vec::new()
        };
        Ok(Stmt::If(cond, then_b, else_b))
    }

    fn stmt_as_block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        if self.peek() == &Tok::LBrace {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn for_stmt(&mut self) -> Result<Stmt, CompileError> {
        self.bump(); // for
        self.expect(&Tok::LParen, "`(`")?;
        let init = if self.eat(&Tok::Semi) {
            None
        } else if self.starts_decl() {
            Some(Box::new(self.decl_stmt()?))
        } else {
            let e = self.expr()?;
            self.expect(&Tok::Semi, "`;`")?;
            Some(Box::new(Stmt::Expr(e)))
        };
        let cond = if self.peek() == &Tok::Semi {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(&Tok::Semi, "`;`")?;
        let step = if self.peek() == &Tok::RParen {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(&Tok::RParen, "`)`")?;
        let body = self.stmt_as_block()?;
        Ok(Stmt::For(init, cond, step, body))
    }

    fn while_stmt(&mut self) -> Result<Stmt, CompileError> {
        self.bump();
        self.expect(&Tok::LParen, "`(`")?;
        let cond = self.expr()?;
        self.expect(&Tok::RParen, "`)`")?;
        let body = self.stmt_as_block()?;
        Ok(Stmt::While(cond, body))
    }

    fn do_while_stmt(&mut self) -> Result<Stmt, CompileError> {
        self.bump();
        let body = self.stmt_as_block()?;
        if !self.eat_ident("while") {
            return Err(CompileError::new(
                "expected `while` after do-body",
                self.line(),
            ));
        }
        self.expect(&Tok::LParen, "`(`")?;
        let cond = self.expr()?;
        self.expect(&Tok::RParen, "`)`")?;
        self.expect(&Tok::Semi, "`;`")?;
        Ok(Stmt::DoWhile(body, cond))
    }

    fn barrier_stmt(&mut self) -> Result<Stmt, CompileError> {
        self.bump(); // barrier
        self.expect(&Tok::LParen, "`(`")?;
        let mut local = false;
        let mut global = false;
        loop {
            let w = self.expect_ident("memory fence flag")?;
            match w.as_str() {
                "CLK_LOCAL_MEM_FENCE" => local = true,
                "CLK_GLOBAL_MEM_FENCE" => global = true,
                other => {
                    return Err(CompileError::new(
                        format!("unknown fence flag `{other}`"),
                        self.line(),
                    ))
                }
            }
            if !self.eat(&Tok::Pipe) {
                break;
            }
        }
        self.expect(&Tok::RParen, "`)`")?;
        self.expect(&Tok::Semi, "`;`")?;
        let scope = match (local, global) {
            (true, true) => grover_ir::BarrierScope::Both,
            (false, true) => grover_ir::BarrierScope::Global,
            _ => grover_ir::BarrierScope::Local,
        };
        Ok(Stmt::Barrier(scope))
    }

    // ---- expressions (Pratt) ----------------------------------------------

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        let lhs = self.ternary()?;
        let op = match self.peek() {
            Tok::Assign => None,
            Tok::PlusAssign => Some(CBinOp::Add),
            Tok::MinusAssign => Some(CBinOp::Sub),
            Tok::StarAssign => Some(CBinOp::Mul),
            Tok::SlashAssign => Some(CBinOp::Div),
            Tok::AmpAssign => Some(CBinOp::BitAnd),
            Tok::PipeAssign => Some(CBinOp::BitOr),
            Tok::CaretAssign => Some(CBinOp::BitXor),
            Tok::ShlAssign => Some(CBinOp::Shl),
            Tok::ShrAssign => Some(CBinOp::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.assignment()?;
        Ok(Expr::new(
            ExprKind::Assign(Box::new(lhs), op, Box::new(rhs)),
            line,
        ))
    }

    fn ternary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        let cond = self.binary(0)?;
        if self.eat(&Tok::Question) {
            let t = self.expr()?;
            self.expect(&Tok::Colon, "`:`")?;
            let e = self.ternary()?;
            Ok(Expr::new(
                ExprKind::Ternary(Box::new(cond), Box::new(t), Box::new(e)),
                line,
            ))
        } else {
            Ok(cond)
        }
    }

    fn bin_op_prec(t: &Tok) -> Option<(CBinOp, u8)> {
        Some(match t {
            Tok::OrOr => (CBinOp::LogOr, 1),
            Tok::AndAnd => (CBinOp::LogAnd, 2),
            Tok::Pipe => (CBinOp::BitOr, 3),
            Tok::Caret => (CBinOp::BitXor, 4),
            Tok::Amp => (CBinOp::BitAnd, 5),
            Tok::EqEq => (CBinOp::Eq, 6),
            Tok::NotEq => (CBinOp::Ne, 6),
            Tok::Lt => (CBinOp::Lt, 7),
            Tok::Le => (CBinOp::Le, 7),
            Tok::Gt => (CBinOp::Gt, 7),
            Tok::Ge => (CBinOp::Ge, 7),
            Tok::Shl => (CBinOp::Shl, 8),
            Tok::Shr => (CBinOp::Shr, 8),
            Tok::Plus => (CBinOp::Add, 9),
            Tok::Minus => (CBinOp::Sub, 9),
            Tok::Star => (CBinOp::Mul, 10),
            Tok::Slash => (CBinOp::Div, 10),
            Tok::Percent => (CBinOp::Rem, 10),
            _ => return None,
        })
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = Self::bin_op_prec(self.peek()) {
            if prec < min_prec {
                break;
            }
            let line = self.line();
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::new(ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)), line);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Minus => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::new(ExprKind::Un(CUnOp::Neg, Box::new(e)), line))
            }
            Tok::Plus => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::new(ExprKind::Un(CUnOp::Plus, Box::new(e)), line))
            }
            Tok::Bang => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::new(ExprKind::Un(CUnOp::Not, Box::new(e)), line))
            }
            Tok::Tilde => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::new(ExprKind::Un(CUnOp::BitNot, Box::new(e)), line))
            }
            Tok::PlusPlus => {
                self.bump();
                let e = self.unary()?;
                let one = Expr::new(ExprKind::IntLit(1), line);
                Ok(Expr::new(
                    ExprKind::Assign(Box::new(e), Some(CBinOp::Add), Box::new(one)),
                    line,
                ))
            }
            Tok::MinusMinus => {
                self.bump();
                let e = self.unary()?;
                let one = Expr::new(ExprKind::IntLit(1), line);
                Ok(Expr::new(
                    ExprKind::Assign(Box::new(e), Some(CBinOp::Sub), Box::new(one)),
                    line,
                ))
            }
            Tok::LParen => {
                // Cast or vector constructor or parenthesised expression.
                if let Tok::Ident(w) = self.peek2() {
                    if Self::is_type_word(w) {
                        return self.cast_or_ctor();
                    }
                }
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                self.postfix(e)
            }
            _ => {
                let p = self.primary()?;
                self.postfix(p)
            }
        }
    }

    fn cast_or_ctor(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        self.expect(&Tok::LParen, "`(`")?;
        let ty = self.parse_type(None)?;
        self.expect(&Tok::RParen, "`)` after cast type")?;
        if ty.is_vector() && self.peek() == &Tok::LParen {
            // (float4)(a, b, c, d)
            self.bump();
            let mut args = Vec::new();
            loop {
                args.push(self.expr()?);
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(&Tok::Comma, "`,`")?;
            }
            return self.postfix(Expr::new(ExprKind::VecCtor(ty, args), line));
        }
        let e = self.unary()?;
        Ok(Expr::new(ExprKind::Cast(ty, Box::new(e)), line))
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.bump() {
            Tok::IntLit(v) => Ok(Expr::new(ExprKind::IntLit(v), line)),
            Tok::FloatLit(v) => Ok(Expr::new(ExprKind::FloatLit(v), line)),
            Tok::Ident(w) => {
                if self.peek() == &Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&Tok::RParen) {
                                break;
                            }
                            self.expect(&Tok::Comma, "`,`")?;
                        }
                    }
                    Ok(Expr::new(ExprKind::Call(w, args), line))
                } else {
                    Ok(Expr::new(ExprKind::Ident(w), line))
                }
            }
            other => Err(CompileError::new(
                format!("expected expression, found {other:?}"),
                line,
            )),
        }
    }

    fn postfix(&mut self, mut e: Expr) -> Result<Expr, CompileError> {
        loop {
            let line = self.line();
            if self.eat(&Tok::LBracket) {
                let idx = self.expr()?;
                self.expect(&Tok::RBracket, "`]`")?;
                e = Expr::new(ExprKind::Index(Box::new(e), Box::new(idx)), line);
            } else if self.eat(&Tok::Dot) {
                let field = self.expect_ident("member name")?;
                e = Expr::new(ExprKind::Member(Box::new(e), field), line);
            } else if self.eat(&Tok::PlusPlus) {
                let one = Expr::new(ExprKind::IntLit(1), line);
                e = Expr::new(
                    ExprKind::Assign(Box::new(e), Some(CBinOp::Add), Box::new(one)),
                    line,
                );
            } else if self.eat(&Tok::MinusMinus) {
                let one = Expr::new(ExprKind::IntLit(1), line);
                e = Expr::new(
                    ExprKind::Assign(Box::new(e), Some(CBinOp::Sub), Box::new(one)),
                    line,
                );
            } else {
                return Ok(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> TranslationUnit {
        parse(src).unwrap_or_else(|e| panic!("parse failed: {e}"))
    }

    #[test]
    fn parses_minimal_kernel() {
        let tu = parse_ok("__kernel void k(__global float* out) { out[0] = 1.0f; }");
        assert_eq!(tu.kernels.len(), 1);
        let k = &tu.kernels[0];
        assert_eq!(k.name, "k");
        assert_eq!(k.params.len(), 1);
        assert_eq!(k.params[0].ty.ptr, Some(AddressSpace::Global));
    }

    #[test]
    fn parses_local_array_decl() {
        let tu = parse_ok("__kernel void k() { __local float lm[16][16]; lm[1][2] = 0.0f; }");
        match &tu.kernels[0].body[0] {
            Stmt::Decl(ds) => {
                assert_eq!(ds[0].name, "lm");
                assert_eq!(ds[0].space, Some(AddressSpace::Local));
                assert_eq!(ds[0].dims.len(), 2);
            }
            other => panic!("expected decl, got {other:?}"),
        }
    }

    #[test]
    fn parses_for_loop_with_increment() {
        let tu = parse_ok(
            "__kernel void k(__global int* a) { for (int i = 0; i < 10; i++) { a[i] = i; } }",
        );
        match &tu.kernels[0].body[0] {
            Stmt::For(init, cond, step, body) => {
                assert!(init.is_some());
                assert!(cond.is_some());
                assert!(step.is_some());
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn parses_barrier_flags() {
        let tu = parse_ok(
            "__kernel void k() { barrier(CLK_LOCAL_MEM_FENCE); barrier(CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE); }",
        );
        assert_eq!(
            tu.kernels[0].body[0],
            Stmt::Barrier(grover_ir::BarrierScope::Local)
        );
        assert_eq!(
            tu.kernels[0].body[1],
            Stmt::Barrier(grover_ir::BarrierScope::Both)
        );
    }

    #[test]
    fn precedence_mul_over_add() {
        let tu = parse_ok("__kernel void k(__global int* a) { a[0] = 1 + 2 * 3; }");
        let Stmt::Expr(e) = &tu.kernels[0].body[0] else {
            panic!()
        };
        let ExprKind::Assign(_, None, rhs) = &e.kind else {
            panic!()
        };
        let ExprKind::Bin(CBinOp::Add, l, r) = &rhs.kind else {
            panic!("{rhs:?}")
        };
        assert!(matches!(l.kind, ExprKind::IntLit(1)));
        assert!(matches!(r.kind, ExprKind::Bin(CBinOp::Mul, _, _)));
    }

    #[test]
    fn vector_ctor_and_swizzle() {
        let tu = parse_ok(
            "__kernel void k(__global float4* v) { float4 x = (float4)(1.0f, 2.0f, 3.0f, 4.0f); v[0] = x; float s = x.y; v[1].x = s; }",
        );
        let Stmt::Decl(ds) = &tu.kernels[0].body[0] else {
            panic!()
        };
        assert!(matches!(
            ds[0].init.as_ref().unwrap().kind,
            ExprKind::VecCtor(_, _)
        ));
    }

    #[test]
    fn cast_expression() {
        let tu =
            parse_ok("__kernel void k(__global float* a) { int i = (int)a[0]; a[1] = (float)i; }");
        let Stmt::Decl(ds) = &tu.kernels[0].body[0] else {
            panic!()
        };
        assert!(matches!(
            ds[0].init.as_ref().unwrap().kind,
            ExprKind::Cast(_, _)
        ));
    }

    #[test]
    fn ternary_and_logical() {
        parse_ok("__kernel void k(__global int* a) { a[0] = a[1] > 0 && a[2] < 5 ? 1 : 0; }");
    }

    #[test]
    fn compound_assignment() {
        let tu = parse_ok("__kernel void k(__global float* a) { a[0] += 2.0f; }");
        let Stmt::Expr(e) = &tu.kernels[0].body[0] else {
            panic!()
        };
        assert!(matches!(e.kind, ExprKind::Assign(_, Some(CBinOp::Add), _)));
    }

    #[test]
    fn while_and_do_while() {
        parse_ok("__kernel void k(__global int* a) { int i = 0; while (i < 4) { i++; } do { i--; } while (i > 0); }");
    }

    #[test]
    fn multiple_kernels() {
        let tu = parse_ok("__kernel void a() { } __kernel void b() { }");
        assert_eq!(tu.kernels.len(), 2);
    }

    #[test]
    fn unsigned_types() {
        let tu = parse_ok("__kernel void k(__global uint* a, unsigned int n) { a[0] = n; }");
        assert_eq!(tu.kernels[0].params[0].ty.scalar, CScalar::UInt);
        assert_eq!(tu.kernels[0].params[1].ty.scalar, CScalar::UInt);
    }

    #[test]
    fn size_t_maps_to_ulong() {
        let tu = parse_ok("__kernel void k() { size_t i = get_global_id(0); i = i; }");
        let Stmt::Decl(ds) = &tu.kernels[0].body[0] else {
            panic!()
        };
        assert_eq!(ds[0].ty.scalar, CScalar::ULong);
    }

    #[test]
    fn error_on_missing_semi() {
        assert!(parse("__kernel void k() { int x = 1 }").is_err());
    }

    #[test]
    fn error_on_unknown_fence() {
        assert!(parse("__kernel void k() { barrier(WHAT); }").is_err());
    }

    #[test]
    fn error_on_non_void_kernel() {
        assert!(parse("__kernel int k() { }").is_err());
    }

    #[test]
    fn if_else_chains() {
        parse_ok(
            "__kernel void k(__global int* a) { if (a[0] > 0) a[1] = 1; else if (a[0] < 0) a[1] = 2; else { a[1] = 3; } }",
        );
    }
}
