//! Abstract syntax tree and source-level types for the OpenCL C subset.

use grover_ir::AddressSpace;

/// Source-level scalar kinds. Signedness lives here (the IR folds both into
/// `i32`/`i64` and keeps unsignedness in the opcode choice).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CScalar {
    /// `bool`.
    Bool,
    /// `int`.
    Int,
    /// `uint` / `unsigned int`.
    UInt,
    /// `long`.
    Long,
    /// `ulong` / `size_t`.
    ULong,
    /// `float`.
    Float,
}

impl CScalar {
    /// Whether the kind is unsigned.
    pub fn is_unsigned(self) -> bool {
        matches!(self, CScalar::UInt | CScalar::ULong)
    }

    /// Whether the kind is floating point.
    pub fn is_float(self) -> bool {
        self == CScalar::Float
    }

    /// Whether the kind is an integer (including bool).
    pub fn is_integer(self) -> bool {
        !self.is_float()
    }

    /// Conversion rank for usual arithmetic conversions.
    pub fn rank(self) -> u8 {
        match self {
            CScalar::Bool => 0,
            CScalar::Int => 1,
            CScalar::UInt => 2,
            CScalar::Long => 3,
            CScalar::ULong => 4,
            CScalar::Float => 5,
        }
    }

    /// OpenCL source spelling.
    pub fn name(self) -> &'static str {
        match self {
            CScalar::Bool => "bool",
            CScalar::Int => "int",
            CScalar::UInt => "uint",
            CScalar::Long => "long",
            CScalar::ULong => "ulong",
            CScalar::Float => "float",
        }
    }
}

/// A source-level type: scalar, short vector, or pointer-to-(scalar|vector).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CType {
    /// Scalar element kind.
    pub scalar: CScalar,
    /// 1 for scalars; 2/3/4/8/16 for vectors.
    pub lanes: u8,
    /// `Some(space)` if this is a pointer to the (scalar, lanes) element.
    pub ptr: Option<AddressSpace>,
}

impl CType {
    /// A scalar type.
    pub fn scalar(s: CScalar) -> CType {
        CType {
            scalar: s,
            lanes: 1,
            ptr: None,
        }
    }

    /// A short-vector type.
    pub fn vector(s: CScalar, lanes: u8) -> CType {
        CType {
            scalar: s,
            lanes,
            ptr: None,
        }
    }

    /// Pointer to this element type in the given address space.
    pub fn pointer_to(self, space: AddressSpace) -> CType {
        CType {
            ptr: Some(space),
            ..self
        }
    }

    /// The element type a pointer refers to.
    pub fn deref(self) -> CType {
        CType { ptr: None, ..self }
    }

    /// `int`.
    pub const INT: CType = CType {
        scalar: CScalar::Int,
        lanes: 1,
        ptr: None,
    };
    /// `uint`.
    pub const UINT: CType = CType {
        scalar: CScalar::UInt,
        lanes: 1,
        ptr: None,
    };
    /// `long`.
    pub const LONG: CType = CType {
        scalar: CScalar::Long,
        lanes: 1,
        ptr: None,
    };
    /// `ulong`.
    pub const ULONG: CType = CType {
        scalar: CScalar::ULong,
        lanes: 1,
        ptr: None,
    };
    /// `float`.
    pub const FLOAT: CType = CType {
        scalar: CScalar::Float,
        lanes: 1,
        ptr: None,
    };
    /// `bool`.
    pub const BOOL: CType = CType {
        scalar: CScalar::Bool,
        lanes: 1,
        ptr: None,
    };

    /// Whether this is a pointer type.
    pub fn is_ptr(self) -> bool {
        self.ptr.is_some()
    }

    /// Whether this is a vector type.
    pub fn is_vector(self) -> bool {
        self.lanes > 1
    }
}

/// Binary operators at source level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)] // standard C operators name themselves
pub enum CBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    BitAnd,
    BitOr,
    BitXor,
    LogAnd,
    LogOr,
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CUnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Logical not `!x`.
    Not,
    /// Bitwise not `~x`.
    BitNot,
    /// Unary plus (no-op, kept for fidelity).
    Plus,
}

/// Expressions. Every node carries the 1-based source line.
#[derive(Clone, Debug, PartialEq)]
pub struct Expr {
    /// The expression's shape.
    pub kind: ExprKind,
    /// 1-based source line.
    pub line: usize,
}

/// The shapes an expression can take.
#[derive(Clone, Debug, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f32),
    /// Variable/parameter reference.
    Ident(String),
    /// Unary operation.
    Un(CUnOp, Box<Expr>),
    /// Binary operation.
    Bin(CBinOp, Box<Expr>, Box<Expr>),
    /// `lhs = rhs` or `lhs op= rhs`. Also used as the desugaring of `++`/`--`.
    Assign(Box<Expr>, Option<CBinOp>, Box<Expr>),
    /// `cond ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Function call (builtins only in this subset).
    Call(String, Vec<Expr>),
    /// `base[index]` — base is a pointer or an array variable.
    Index(Box<Expr>, Box<Expr>),
    /// `.x`/`.y`/`.z`/`.w`/`.sN` single-lane vector access.
    Member(Box<Expr>, String),
    /// `(type) expr`
    Cast(CType, Box<Expr>),
    /// `(float4)(a, b, c, d)` — also splat form with one argument.
    VecCtor(CType, Vec<Expr>),
}

impl Expr {
    /// Attach a source line to an expression node.
    pub fn new(kind: ExprKind, line: usize) -> Expr {
        Expr { kind, line }
    }
}

/// One declarator in a declaration statement.
#[derive(Clone, Debug, PartialEq)]
pub struct VarDecl {
    /// Declared name.
    pub name: String,
    /// Base type (element type for arrays).
    pub ty: CType,
    /// Address-space qualifier on the declaration (`__local float lm[..]`).
    pub space: Option<AddressSpace>,
    /// Array dimensions (must be constant expressions), outermost first.
    pub dims: Vec<Expr>,
    /// Optional initialiser expression.
    pub init: Option<Expr>,
    /// 1-based source line.
    pub line: usize,
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// One or more variable declarations.
    Decl(Vec<VarDecl>),
    /// Expression statement (assignments, calls).
    Expr(Expr),
    /// `if (cond) { then } else { else }`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `for (init; cond; step) { body }`.
    For(Option<Box<Stmt>>, Option<Expr>, Option<Expr>, Vec<Stmt>),
    /// `while (cond) { body }`.
    While(Expr, Vec<Stmt>),
    /// `do { body } while (cond);`.
    DoWhile(Vec<Stmt>, Expr),
    /// `return;` (kernels are void).
    Return,
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// A braced block with its own scope.
    Block(Vec<Stmt>),
    /// `barrier(CLK_LOCAL_MEM_FENCE | ...)`
    Barrier(grover_ir::BarrierScope),
}

/// A kernel parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelParam {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: CType,
    /// 1-based source line.
    pub line: usize,
}

/// A `__kernel` function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelDef {
    /// Kernel name.
    pub name: String,
    /// Parameters in declaration order.
    pub params: Vec<KernelParam>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// 1-based source line of the definition.
    pub line: usize,
}

/// A parsed translation unit (one or more kernels).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TranslationUnit {
    /// All kernels in the unit.
    pub kernels: Vec<KernelDef>,
}
