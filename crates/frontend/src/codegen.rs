//! AST → SSA IR code generation.

use std::collections::HashMap;

use grover_ir::{
    AddressSpace, BinOp, BlockId, Builder, Builtin, CastKind, CmpPred, ConstVal, Function, Inst,
    LocalBuf, Param, Scalar, Type, ValueId,
};

use crate::ast::*;
use crate::ssa::{SsaBuilder, VarId};
use crate::CompileError;

/// Lower one kernel definition to an IR function.
pub fn lower_kernel(def: &KernelDef) -> Result<Function, CompileError> {
    let params: Vec<Param> = def
        .params
        .iter()
        .map(|p| Param {
            name: p.name.clone(),
            ty: ir_type(p.ty),
        })
        .collect();
    let f = Function::new(def.name.clone(), params);
    let entry = f.entry;
    let mut cg = CodeGen {
        f,
        ssa: SsaBuilder::new(),
        scopes: vec![HashMap::new()],
        cur: entry,
        reachable: true,
        loops: Vec::new(),
        var_names: Vec::new(),
    };
    cg.ssa
        .seal(&mut cg.f, entry)
        .map_err(|_| CompileError::new("internal: entry seal", 0))?;
    // Bind parameters.
    for (i, p) in def.params.iter().enumerate() {
        let v = cg.f.param_value(i);
        if p.ty.is_ptr() {
            cg.bind(
                p.name.clone(),
                Binding::Ptr {
                    value: v,
                    cty: p.ty,
                },
            );
        } else {
            let var = cg.ssa.new_var(ir_type(p.ty));
            cg.var_names.push(p.name.clone());
            cg.ssa.write(var, entry, v);
            cg.bind(p.name.clone(), Binding::Var { var, cty: p.ty });
        }
    }
    cg.gen_stmts(&def.body)?;
    if cg.reachable {
        cg.f.append_inst(cg.cur, Inst::Ret, Type::Void);
    }
    // Name surviving phi nodes after the source variables they merge, so
    // diagnostics (Table III reports, IR dumps) read `i`/`k` rather than
    // `v42`. Duplicate names get a numeric suffix.
    let mut seen: std::collections::HashMap<String, u32> = std::collections::HashMap::new();
    // Reserve parameter names so a loop variable named like a parameter
    // gets a suffixed phi name instead of colliding.
    for p in def.params.iter() {
        seen.insert(p.name.clone(), 1);
    }
    let mut phi_names: Vec<(grover_ir::ValueId, String)> = cg
        .ssa
        .phi_vars()
        .filter(|(p, _)| cg.f.position_of(*p).is_some())
        .filter_map(|(p, var)| cg.var_names.get(var.0 as usize).map(|n| (p, n.clone())))
        .collect();
    // `phi_vars()` walks a HashMap; sort by value id so suffix assignment
    // (and therefore printed IR) is identical across processes.
    phi_names.sort_by_key(|(p, _)| p.0);
    for (p, base) in phi_names {
        let n = seen.entry(base.clone()).or_insert(0);
        let name = if *n == 0 {
            base.clone()
        } else {
            format!("{base}.{n}")
        };
        *n += 1;
        cg.f.set_name(p, name);
    }
    Ok(cg.f)
}

/// Map a source type to its IR type.
pub fn ir_type(ct: CType) -> Type {
    let s = ir_scalar(ct.scalar);
    match ct.ptr {
        Some(space) => Type::ptr(s, ct.lanes, space),
        None if ct.lanes > 1 => Type::Vector(s, ct.lanes),
        None => Type::Scalar(s),
    }
}

fn ir_scalar(cs: CScalar) -> Scalar {
    match cs {
        CScalar::Bool => Scalar::Bool,
        CScalar::Int | CScalar::UInt => Scalar::I32,
        CScalar::Long | CScalar::ULong => Scalar::I64,
        CScalar::Float => Scalar::F32,
    }
}

#[derive(Clone)]
enum Binding {
    /// SSA-converted mutable scalar/vector variable.
    Var { var: VarId, cty: CType },
    /// Pointer kernel argument.
    Ptr { value: ValueId, cty: CType },
    /// `__local` array (pointer to its first element plus shape).
    Array {
        ptr: ValueId,
        cty: CType,
        dims: Vec<i64>,
    },
}

struct CodeGen {
    f: Function,
    ssa: SsaBuilder,
    scopes: Vec<HashMap<String, Binding>>,
    cur: BlockId,
    reachable: bool,
    /// (continue target, break target)
    loops: Vec<(BlockId, BlockId)>,
    var_names: Vec<String>,
}

impl CodeGen {
    fn bind(&mut self, name: String, b: Binding) {
        self.scopes.last_mut().expect("scope").insert(name, b);
    }

    fn lookup(&self, name: &str, line: usize) -> Result<Binding, CompileError> {
        for s in self.scopes.iter().rev() {
            if let Some(b) = s.get(name) {
                return Ok(b.clone());
            }
        }
        Err(CompileError::new(
            format!("unknown identifier `{name}`"),
            line,
        ))
    }

    fn builder(&mut self) -> Builder<'_> {
        Builder::new(&mut self.f, self.cur)
    }

    fn seal(&mut self, b: BlockId) -> Result<(), CompileError> {
        self.ssa.seal(&mut self.f, b).map_err(|u| self.undef_err(u))
    }

    fn undef_err(&self, u: crate::ssa::UndefRead) -> CompileError {
        let name = self
            .var_names
            .get(u.0 .0 as usize)
            .cloned()
            .unwrap_or_else(|| format!("var{}", u.0 .0));
        CompileError::new(
            format!("variable `{name}` may be read before assignment"),
            0,
        )
    }

    fn read_var(&mut self, var: VarId) -> Result<ValueId, CompileError> {
        let cur = self.cur;
        self.ssa
            .read(&mut self.f, var, cur)
            .map_err(|u| self.undef_err(u))
    }

    // ---- statements -------------------------------------------------------

    fn gen_stmts(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        for s in stmts {
            if !self.reachable {
                break;
            }
            self.gen_stmt(s)?;
        }
        Ok(())
    }

    fn gen_stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::Block(stmts) => {
                self.scopes.push(HashMap::new());
                self.gen_stmts(stmts)?;
                self.scopes.pop();
                Ok(())
            }
            Stmt::Decl(decls) => {
                for d in decls {
                    self.gen_decl(d)?;
                }
                Ok(())
            }
            Stmt::Expr(e) => {
                self.gen_expr(e)?;
                Ok(())
            }
            Stmt::Return => {
                self.builder().ret();
                self.reachable = false;
                Ok(())
            }
            Stmt::Break => {
                let (_, brk) = *self
                    .loops
                    .last()
                    .ok_or_else(|| CompileError::new("break outside loop", 0))?;
                self.builder().br(brk);
                self.reachable = false;
                Ok(())
            }
            Stmt::Continue => {
                let (cont, _) = *self
                    .loops
                    .last()
                    .ok_or_else(|| CompileError::new("continue outside loop", 0))?;
                self.builder().br(cont);
                self.reachable = false;
                Ok(())
            }
            Stmt::Barrier(scope) => {
                self.builder().barrier(*scope);
                Ok(())
            }
            Stmt::If(cond, then_s, else_s) => self.gen_if(cond, then_s, else_s),
            Stmt::While(cond, body) => self.gen_while(cond, body),
            Stmt::DoWhile(body, cond) => self.gen_do_while(body, cond),
            Stmt::For(init, cond, step, body) => self.gen_for(init, cond, step, body),
        }
    }

    fn gen_decl(&mut self, d: &VarDecl) -> Result<(), CompileError> {
        if !d.dims.is_empty() {
            if d.space != Some(AddressSpace::Local) {
                return Err(CompileError::new(
                    "only __local arrays are supported (private arrays are not)",
                    d.line,
                ));
            }
            if d.init.is_some() {
                return Err(CompileError::new(
                    "__local arrays cannot have initialisers",
                    d.line,
                ));
            }
            let dims: Vec<i64> = d
                .dims
                .iter()
                .map(|e| {
                    const_eval(e).ok_or_else(|| {
                        CompileError::new("array dimensions must be constant", d.line)
                    })
                })
                .collect::<Result<_, _>>()?;
            if dims.iter().any(|&x| x <= 0) {
                return Err(CompileError::new(
                    "array dimensions must be positive",
                    d.line,
                ));
            }
            let buf = LocalBuf {
                name: d.name.clone(),
                elem: ir_scalar(d.ty.scalar),
                lanes: d.ty.lanes,
                dims: dims.iter().map(|&x| x as u64).collect(),
            };
            let ptr = self.f.add_local_buf(buf);
            self.bind(
                d.name.clone(),
                Binding::Array {
                    ptr,
                    cty: d.ty,
                    dims,
                },
            );
            return Ok(());
        }
        if d.space == Some(AddressSpace::Local) {
            return Err(CompileError::new(
                "scalar __local variables are not supported; use a 1-element array",
                d.line,
            ));
        }
        if d.ty.is_ptr() {
            // Pointer alias: `__global float* p = base;` — bind directly.
            let init = d.init.as_ref().ok_or_else(|| {
                CompileError::new("pointer variables must be initialised", d.line)
            })?;
            let (v, cty) = self.gen_expr(init)?;
            if !cty.is_ptr() {
                return Err(CompileError::new(
                    "pointer initialiser is not a pointer",
                    d.line,
                ));
            }
            self.bind(
                d.name.clone(),
                Binding::Ptr {
                    value: v,
                    cty: d.ty,
                },
            );
            return Ok(());
        }
        let var = self.ssa.new_var(ir_type(d.ty));
        self.var_names.push(d.name.clone());
        if let Some(init) = &d.init {
            let (v, cty) = self.gen_expr(init)?;
            let v = self.convert(v, cty, d.ty, d.line)?;
            let cur = self.cur;
            self.ssa.write(var, cur, v);
        }
        self.bind(d.name.clone(), Binding::Var { var, cty: d.ty });
        Ok(())
    }

    fn gen_if(
        &mut self,
        cond: &Expr,
        then_s: &[Stmt],
        else_s: &[Stmt],
    ) -> Result<(), CompileError> {
        let (cv, cty) = self.gen_expr(cond)?;
        let c = self.coerce_bool(cv, cty, cond.line)?;
        let then_b = self.f.add_block("if.then");
        let merge = self.f.add_block("if.end");
        let else_b = if else_s.is_empty() {
            merge
        } else {
            self.f.add_block("if.else")
        };
        self.builder().cond_br(c, then_b, else_b);
        self.seal(then_b)?;
        if else_b != merge {
            self.seal(else_b)?;
        }
        // then arm
        self.cur = then_b;
        self.reachable = true;
        self.scopes.push(HashMap::new());
        self.gen_stmts(then_s)?;
        self.scopes.pop();
        let then_reaches = self.reachable;
        if then_reaches {
            self.builder().br(merge);
        }
        // else arm
        if else_b != merge {
            self.cur = else_b;
            self.reachable = true;
            self.scopes.push(HashMap::new());
            self.gen_stmts(else_s)?;
            self.scopes.pop();
            if self.reachable {
                self.builder().br(merge);
            }
        }
        self.seal(merge)?;
        self.cur = merge;
        // merge is reachable if any arm reaches it (or the cond falls through).
        self.reachable = !self.f.predecessors()[merge.index()].is_empty();
        Ok(())
    }

    fn gen_while(&mut self, cond: &Expr, body: &[Stmt]) -> Result<(), CompileError> {
        let header = self.f.add_block("while.header");
        let body_b = self.f.add_block("while.body");
        let exit = self.f.add_block("while.exit");
        self.builder().br(header);
        self.cur = header; // header left unsealed until the latch exists
        let (cv, cty) = self.gen_expr(cond)?;
        let c = self.coerce_bool(cv, cty, cond.line)?;
        self.builder().cond_br(c, body_b, exit);
        self.seal(body_b)?;
        self.cur = body_b;
        self.reachable = true;
        self.loops.push((header, exit));
        self.scopes.push(HashMap::new());
        self.gen_stmts(body)?;
        self.scopes.pop();
        self.loops.pop();
        if self.reachable {
            self.builder().br(header);
        }
        self.seal(header)?;
        self.seal(exit)?;
        self.cur = exit;
        self.reachable = true;
        Ok(())
    }

    fn gen_do_while(&mut self, body: &[Stmt], cond: &Expr) -> Result<(), CompileError> {
        let body_b = self.f.add_block("do.body");
        let header = self.f.add_block("do.cond");
        let exit = self.f.add_block("do.exit");
        self.builder().br(body_b);
        self.cur = body_b; // unsealed: back edge from header
        self.reachable = true;
        self.loops.push((header, exit));
        self.scopes.push(HashMap::new());
        self.gen_stmts(body)?;
        self.scopes.pop();
        self.loops.pop();
        if self.reachable {
            self.builder().br(header);
        }
        self.seal(header)?;
        self.cur = header;
        let (cv, cty) = self.gen_expr(cond)?;
        let c = self.coerce_bool(cv, cty, cond.line)?;
        self.builder().cond_br(c, body_b, exit);
        self.seal(body_b)?;
        self.seal(exit)?;
        self.cur = exit;
        self.reachable = true;
        Ok(())
    }

    fn gen_for(
        &mut self,
        init: &Option<Box<Stmt>>,
        cond: &Option<Expr>,
        step: &Option<Expr>,
        body: &[Stmt],
    ) -> Result<(), CompileError> {
        self.scopes.push(HashMap::new()); // scope for the init declaration
        if let Some(i) = init {
            self.gen_stmt(i)?;
        }
        let header = self.f.add_block("for.header");
        let body_b = self.f.add_block("for.body");
        let step_b = self.f.add_block("for.step");
        let exit = self.f.add_block("for.exit");
        self.builder().br(header);
        self.cur = header; // unsealed until step block branches back
        match cond {
            Some(c) => {
                let (cv, cty) = self.gen_expr(c)?;
                let cb = self.coerce_bool(cv, cty, c.line)?;
                self.builder().cond_br(cb, body_b, exit);
            }
            None => {
                self.builder().br(body_b);
            }
        }
        self.seal(body_b)?;
        self.cur = body_b;
        self.reachable = true;
        self.loops.push((step_b, exit));
        self.scopes.push(HashMap::new());
        self.gen_stmts(body)?;
        self.scopes.pop();
        self.loops.pop();
        if self.reachable {
            self.builder().br(step_b);
        }
        self.seal(step_b)?;
        self.cur = step_b;
        self.reachable = true;
        if let Some(s) = step {
            self.gen_expr(s)?;
        }
        self.builder().br(header);
        self.seal(header)?;
        self.seal(exit)?;
        self.scopes.pop();
        self.cur = exit;
        self.reachable = true;
        Ok(())
    }

    // ---- expressions ------------------------------------------------------

    fn gen_expr(&mut self, e: &Expr) -> Result<(ValueId, CType), CompileError> {
        match &e.kind {
            ExprKind::IntLit(v) => {
                if *v >= i32::MIN as i64 && *v <= i32::MAX as i64 {
                    Ok((self.f.const_i32(*v as i32), CType::INT))
                } else {
                    Ok((self.f.const_i64(*v), CType::LONG))
                }
            }
            ExprKind::FloatLit(v) => Ok((self.f.const_f32(*v), CType::FLOAT)),
            ExprKind::Ident(name) => match self.lookup(name, e.line)? {
                Binding::Var { var, cty } => Ok((self.read_var(var)?, cty)),
                Binding::Ptr { value, cty } => Ok((value, cty)),
                Binding::Array { .. } => Err(CompileError::new(
                    format!("array `{name}` used without an index"),
                    e.line,
                )),
            },
            ExprKind::Un(op, inner) => self.gen_unary(*op, inner, e.line),
            ExprKind::Bin(op, l, r) => self.gen_binary(*op, l, r, e.line),
            ExprKind::Assign(lhs, op, rhs) => self.gen_assign(lhs, *op, rhs, e.line),
            ExprKind::Ternary(c, t, el) => {
                let (cv, cty) = self.gen_expr(c)?;
                let cb = self.coerce_bool(cv, cty, e.line)?;
                let (tv, tty) = self.gen_expr(t)?;
                let (ev, ety) = self.gen_expr(el)?;
                let common = usual_conversions(tty, ety, e.line)?;
                let tv = self.convert(tv, tty, common, e.line)?;
                let ev = self.convert(ev, ety, common, e.line)?;
                Ok((self.builder().select(cb, tv, ev), common))
            }
            ExprKind::Call(name, args) => self.gen_call(name, args, e.line),
            ExprKind::Index(..) => {
                let (ptr, elem) = self.gen_addr(e)?;
                Ok((self.builder().load(ptr), elem))
            }
            ExprKind::Member(base, field) => {
                let lane = lane_of(field, e.line)?;
                let (v, cty) = self.gen_expr(base)?;
                if !cty.is_vector() || lane >= cty.lanes {
                    return Err(CompileError::new(
                        format!("invalid vector member `.{field}`"),
                        e.line,
                    ));
                }
                let out = self.builder().extract_lane(v, lane);
                Ok((out, CType::scalar(cty.scalar)))
            }
            ExprKind::Cast(to, inner) => {
                let (v, from) = self.gen_expr(inner)?;
                let v = self.convert(v, from, *to, e.line)?;
                Ok((v, *to))
            }
            ExprKind::VecCtor(ty, args) => {
                let elem = CType::scalar(ty.scalar);
                let mut lanes = Vec::with_capacity(ty.lanes as usize);
                if args.len() == 1 {
                    let (v, f) = self.gen_expr(&args[0])?;
                    let v = self.convert(v, f, elem, e.line)?;
                    lanes = vec![v; ty.lanes as usize];
                } else if args.len() == ty.lanes as usize {
                    for a in args {
                        let (v, f) = self.gen_expr(a)?;
                        lanes.push(self.convert(v, f, elem, e.line)?);
                    }
                } else {
                    return Err(CompileError::new(
                        format!("vector constructor needs 1 or {} arguments", ty.lanes),
                        e.line,
                    ));
                }
                Ok((self.builder().build_vector(lanes), *ty))
            }
        }
    }

    fn gen_unary(
        &mut self,
        op: CUnOp,
        inner: &Expr,
        line: usize,
    ) -> Result<(ValueId, CType), CompileError> {
        let (v, cty) = self.gen_expr(inner)?;
        match op {
            CUnOp::Plus => Ok((v, cty)),
            CUnOp::Neg => {
                if cty.scalar.is_float() {
                    let zero = self.f.const_f32(0.0);
                    let zero = self.convert(zero, CType::FLOAT, cty, line)?;
                    Ok((self.builder().bin(BinOp::FSub, zero, v), cty))
                } else {
                    let zero = self.f.const_i32(0);
                    let zero = self.convert(zero, CType::INT, cty, line)?;
                    Ok((self.builder().bin(BinOp::Sub, zero, v), cty))
                }
            }
            CUnOp::Not => {
                let b = self.coerce_bool(v, cty, line)?;
                let t = self.f.const_bool(true);
                Ok((self.builder().bin(BinOp::Xor, b, t), CType::BOOL))
            }
            CUnOp::BitNot => {
                if !cty.scalar.is_integer() {
                    return Err(CompileError::new("~ on non-integer", line));
                }
                let m1 = self.f.const_i32(-1);
                let m1 = self.convert(m1, CType::INT, cty, line)?;
                Ok((self.builder().bin(BinOp::Xor, v, m1), cty))
            }
        }
    }

    fn gen_binary(
        &mut self,
        op: CBinOp,
        l: &Expr,
        r: &Expr,
        line: usize,
    ) -> Result<(ValueId, CType), CompileError> {
        // Pointer arithmetic: p + i
        if matches!(op, CBinOp::Add | CBinOp::Sub) {
            let (lv, lty) = self.gen_expr(l)?;
            if lty.is_ptr() {
                let (rv, rty) = self.gen_expr(r)?;
                if !rty.scalar.is_integer() || rty.is_ptr() {
                    return Err(CompileError::new("pointer offset must be an integer", line));
                }
                let idx = if op == CBinOp::Sub {
                    let zero = self.f.const_i32(0);
                    let zero = self.convert(zero, CType::INT, rty, line)?;
                    self.builder().bin(BinOp::Sub, zero, rv)
                } else {
                    rv
                };
                return Ok((self.builder().gep(lv, idx), lty));
            }
            // fall through with lv computed
            return self.gen_binary_with(op, lv, lty, r, line);
        }
        let (lv, lty) = self.gen_expr(l)?;
        self.gen_binary_with(op, lv, lty, r, line)
    }

    fn gen_binary_with(
        &mut self,
        op: CBinOp,
        lv: ValueId,
        lty: CType,
        r: &Expr,
        line: usize,
    ) -> Result<(ValueId, CType), CompileError> {
        let (rv, rty) = self.gen_expr(r)?;
        self.apply_bin(op, lv, lty, rv, rty, line)
    }

    fn apply_bin(
        &mut self,
        op: CBinOp,
        lv: ValueId,
        lty: CType,
        rv: ValueId,
        rty: CType,
        line: usize,
    ) -> Result<(ValueId, CType), CompileError> {
        use CBinOp::*;
        if matches!(op, LogAnd | LogOr) {
            let lb = self.coerce_bool(lv, lty, line)?;
            let rb = self.coerce_bool(rv, rty, line)?;
            let o = if op == LogAnd { BinOp::And } else { BinOp::Or };
            return Ok((self.builder().bin(o, lb, rb), CType::BOOL));
        }
        let common = usual_conversions(lty, rty, line)?;
        let lv = self.convert(lv, lty, common, line)?;
        let rv = self.convert(rv, rty, common, line)?;
        let is_f = common.scalar.is_float();
        let uns = common.scalar.is_unsigned();
        let cmp = |pred_s: CmpPred, pred_u: CmpPred, pred_f: CmpPred| {
            if is_f {
                pred_f
            } else if uns {
                pred_u
            } else {
                pred_s
            }
        };
        match op {
            Lt | Le | Gt | Ge | Eq | Ne => {
                let pred = match op {
                    Lt => cmp(CmpPred::Slt, CmpPred::Ult, CmpPred::FLt),
                    Le => cmp(CmpPred::Sle, CmpPred::Ule, CmpPred::FLe),
                    Gt => cmp(CmpPred::Sgt, CmpPred::Ugt, CmpPred::FGt),
                    Ge => cmp(CmpPred::Sge, CmpPred::Uge, CmpPred::FGe),
                    Eq => {
                        if is_f {
                            CmpPred::FEq
                        } else {
                            CmpPred::Eq
                        }
                    }
                    _ => {
                        if is_f {
                            CmpPred::FNe
                        } else {
                            CmpPred::Ne
                        }
                    }
                };
                let out = self.builder().cmp(pred, lv, rv);
                let ty = if common.lanes > 1 {
                    CType {
                        scalar: CScalar::Bool,
                        lanes: common.lanes,
                        ptr: None,
                    }
                } else {
                    CType::BOOL
                };
                Ok((out, ty))
            }
            _ => {
                let bop = match op {
                    Add => {
                        if is_f {
                            BinOp::FAdd
                        } else {
                            BinOp::Add
                        }
                    }
                    Sub => {
                        if is_f {
                            BinOp::FSub
                        } else {
                            BinOp::Sub
                        }
                    }
                    Mul => {
                        if is_f {
                            BinOp::FMul
                        } else {
                            BinOp::Mul
                        }
                    }
                    Div => {
                        if is_f {
                            BinOp::FDiv
                        } else if uns {
                            BinOp::UDiv
                        } else {
                            BinOp::SDiv
                        }
                    }
                    Rem => {
                        if is_f {
                            return Err(CompileError::new("% on floats is unsupported", line));
                        } else if uns {
                            BinOp::URem
                        } else {
                            BinOp::SRem
                        }
                    }
                    Shl => BinOp::Shl,
                    Shr => {
                        if uns {
                            BinOp::LShr
                        } else {
                            BinOp::AShr
                        }
                    }
                    BitAnd => BinOp::And,
                    BitOr => BinOp::Or,
                    BitXor => BinOp::Xor,
                    _ => unreachable!(),
                };
                if !is_f && common.scalar.is_float() {
                    unreachable!()
                }
                if matches!(
                    bop,
                    BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::LShr | BinOp::AShr
                ) && !common.scalar.is_integer()
                {
                    return Err(CompileError::new("bitwise op on non-integer", line));
                }
                Ok((self.builder().bin(bop, lv, rv), common))
            }
        }
    }

    fn gen_assign(
        &mut self,
        lhs: &Expr,
        op: Option<CBinOp>,
        rhs: &Expr,
        line: usize,
    ) -> Result<(ValueId, CType), CompileError> {
        match &lhs.kind {
            ExprKind::Ident(name) => {
                let binding = self.lookup(name, line)?;
                match binding {
                    Binding::Var { var, cty } => {
                        let newv = self.rhs_value(lhs, op, rhs, cty, line)?;
                        let cur = self.cur;
                        self.ssa.write(var, cur, newv);
                        Ok((newv, cty))
                    }
                    Binding::Ptr { .. } | Binding::Array { .. } => Err(CompileError::new(
                        format!("cannot assign to `{name}`"),
                        line,
                    )),
                }
            }
            ExprKind::Index(..) => {
                let (ptr, elem) = self.gen_addr(lhs)?;
                let newv = if let Some(bop) = op {
                    let old = self.builder().load(ptr);
                    let (rv, rty) = self.gen_expr(rhs)?;
                    let (v, vt) = self.apply_bin(bop, old, elem, rv, rty, line)?;
                    self.convert(v, vt, elem, line)?
                } else {
                    let (rv, rty) = self.gen_expr(rhs)?;
                    self.convert(rv, rty, elem, line)?
                };
                self.builder().store(ptr, newv);
                Ok((newv, elem))
            }
            ExprKind::Member(base, field) => {
                let lane = lane_of(field, line)?;
                match &base.kind {
                    ExprKind::Ident(name) => {
                        let binding = self.lookup(name, line)?;
                        let Binding::Var { var, cty } = binding else {
                            return Err(CompileError::new("swizzle store target invalid", line));
                        };
                        if !cty.is_vector() || lane >= cty.lanes {
                            return Err(CompileError::new("invalid swizzle store", line));
                        }
                        let elem = CType::scalar(cty.scalar);
                        let old_vec = self.read_var(var)?;
                        let newv = if let Some(bop) = op {
                            let old = self.builder().extract_lane(old_vec, lane);
                            let (rv, rty) = self.gen_expr(rhs)?;
                            let (v, vt) = self.apply_bin(bop, old, elem, rv, rty, line)?;
                            self.convert(v, vt, elem, line)?
                        } else {
                            let (rv, rty) = self.gen_expr(rhs)?;
                            self.convert(rv, rty, elem, line)?
                        };
                        let nv = self.builder().insert_lane(old_vec, lane, newv);
                        let cur = self.cur;
                        self.ssa.write(var, cur, nv);
                        Ok((newv, elem))
                    }
                    ExprKind::Index(..) => {
                        let (ptr, vty) = self.gen_addr(base)?;
                        if !vty.is_vector() || lane >= vty.lanes {
                            return Err(CompileError::new("invalid swizzle store", line));
                        }
                        let elem = CType::scalar(vty.scalar);
                        let old_vec = self.builder().load(ptr);
                        let newv = if let Some(bop) = op {
                            let old = self.builder().extract_lane(old_vec, lane);
                            let (rv, rty) = self.gen_expr(rhs)?;
                            let (v, vt) = self.apply_bin(bop, old, elem, rv, rty, line)?;
                            self.convert(v, vt, elem, line)?
                        } else {
                            let (rv, rty) = self.gen_expr(rhs)?;
                            self.convert(rv, rty, elem, line)?
                        };
                        let nv = self.builder().insert_lane(old_vec, lane, newv);
                        self.builder().store(ptr, nv);
                        Ok((newv, elem))
                    }
                    _ => Err(CompileError::new("unsupported swizzle store target", line)),
                }
            }
            _ => Err(CompileError::new("invalid assignment target", line)),
        }
    }

    /// RHS of an assignment to an lvalue of type `to`, honouring `op=`.
    fn rhs_value(
        &mut self,
        lhs: &Expr,
        op: Option<CBinOp>,
        rhs: &Expr,
        to: CType,
        line: usize,
    ) -> Result<ValueId, CompileError> {
        match op {
            None => {
                let (rv, rty) = self.gen_expr(rhs)?;
                self.convert(rv, rty, to, line)
            }
            Some(bop) => {
                let (ov, oty) = self.gen_expr(lhs)?;
                let (rv, rty) = self.gen_expr(rhs)?;
                let (v, vt) = self.apply_bin(bop, ov, oty, rv, rty, line)?;
                self.convert(v, vt, to, line)
            }
        }
    }

    /// Address of an indexed element: returns the element pointer and type.
    fn gen_addr(&mut self, e: &Expr) -> Result<(ValueId, CType), CompileError> {
        // Collect the index chain: lm[a][b] => root `lm`, indices [a, b].
        let mut indices: Vec<&Expr> = Vec::new();
        let mut root = e;
        while let ExprKind::Index(base, idx) = &root.kind {
            indices.push(idx);
            root = base;
        }
        indices.reverse();
        match &root.kind {
            ExprKind::Ident(name) => match self.lookup(name, e.line)? {
                Binding::Array { ptr, cty, dims } => {
                    if indices.len() != dims.len() {
                        return Err(CompileError::new(
                            format!(
                                "array `{name}` has {} dimensions, {} indices given",
                                dims.len(),
                                indices.len()
                            ),
                            e.line,
                        ));
                    }
                    let mut flat: Option<ValueId> = None;
                    for (k, idx) in indices.iter().enumerate() {
                        let (iv, ity) = self.gen_expr(idx)?;
                        let iv = self.convert(iv, ity, CType::INT, e.line)?;
                        flat = Some(match flat {
                            None => iv,
                            Some(acc) => {
                                let d = self.f.const_i32(dims[k] as i32);
                                let scaled = self.builder().mul(acc, d);
                                self.builder().add(scaled, iv)
                            }
                        });
                    }
                    let flat = flat.expect("at least one index");
                    Ok((self.builder().gep(ptr, flat), cty))
                }
                Binding::Ptr { value, cty } => {
                    if indices.len() != 1 {
                        return Err(CompileError::new(
                            "multi-dimensional indexing requires a __local array",
                            e.line,
                        ));
                    }
                    let (iv, ity) = self.gen_expr(indices[0])?;
                    if !ity.scalar.is_integer() {
                        return Err(CompileError::new("index must be an integer", e.line));
                    }
                    Ok((self.builder().gep(value, iv), cty.deref()))
                }
                Binding::Var { .. } => Err(CompileError::new(
                    format!("`{name}` is not indexable"),
                    e.line,
                )),
            },
            // (p + off)[i] style: evaluate root as a pointer expression.
            _ => {
                let (pv, pty) = self.gen_expr(root)?;
                if !pty.is_ptr() || indices.len() != 1 {
                    return Err(CompileError::new("invalid indexing expression", e.line));
                }
                let (iv, ity) = self.gen_expr(indices[0])?;
                if !ity.scalar.is_integer() {
                    return Err(CompileError::new("index must be an integer", e.line));
                }
                Ok((self.builder().gep(pv, iv), pty.deref()))
            }
        }
    }

    fn gen_call(
        &mut self,
        name: &str,
        args: &[Expr],
        line: usize,
    ) -> Result<(ValueId, CType), CompileError> {
        // Work-item queries.
        let wi = match name {
            "get_global_id" => Some(Builtin::GlobalId),
            "get_local_id" => Some(Builtin::LocalId),
            "get_group_id" => Some(Builtin::GroupId),
            "get_local_size" => Some(Builtin::LocalSize),
            "get_global_size" => Some(Builtin::GlobalSize),
            "get_num_groups" => Some(Builtin::NumGroups),
            _ => None,
        };
        if let Some(b) = wi {
            if args.len() != 1 {
                return Err(CompileError::new(
                    format!("{name} takes one argument"),
                    line,
                ));
            }
            let (d, dty) = self.gen_expr(&args[0])?;
            let d = self.convert(d, dty, CType::INT, line)?;
            let v = self.builder().call(b, vec![d]);
            return Ok((v, CType::ULONG));
        }
        // Unary float math.
        let fm = match name {
            "sqrt" | "native_sqrt" | "half_sqrt" => Some(Builtin::Sqrt),
            "rsqrt" | "native_rsqrt" => Some(Builtin::Rsqrt),
            "fabs" => Some(Builtin::Fabs),
            "exp" | "native_exp" => Some(Builtin::Exp),
            "log" | "native_log" => Some(Builtin::Log),
            "floor" => Some(Builtin::Floor),
            _ => None,
        };
        if let Some(b) = fm {
            if args.len() != 1 {
                return Err(CompileError::new(
                    format!("{name} takes one argument"),
                    line,
                ));
            }
            let (v, vt) = self.gen_expr(&args[0])?;
            let target = CType {
                scalar: CScalar::Float,
                lanes: vt.lanes,
                ptr: None,
            };
            let v = self.convert(v, vt, target, line)?;
            return Ok((self.builder().call(b, vec![v]), target));
        }
        match name {
            "min" | "max" | "fmin" | "fmax" => {
                if args.len() != 2 {
                    return Err(CompileError::new(
                        format!("{name} takes two arguments"),
                        line,
                    ));
                }
                let (a, at) = self.gen_expr(&args[0])?;
                let (b, bt) = self.gen_expr(&args[1])?;
                let common = usual_conversions(at, bt, line)?;
                let a = self.convert(a, at, common, line)?;
                let b = self.convert(b, bt, common, line)?;
                if common.scalar.is_float() || name.starts_with('f') {
                    let fcommon = CType {
                        scalar: CScalar::Float,
                        lanes: common.lanes,
                        ptr: None,
                    };
                    let a = self.convert(a, common, fcommon, line)?;
                    let b = self.convert(b, common, fcommon, line)?;
                    let op = if name.ends_with("in") {
                        BinOp::FMin
                    } else {
                        BinOp::FMax
                    };
                    Ok((self.builder().bin(op, a, b), fcommon))
                } else {
                    let b_ = if name == "min" {
                        Builtin::IMin
                    } else {
                        Builtin::IMax
                    };
                    Ok((self.builder().call(b_, vec![a, b]), common))
                }
            }
            "mad" => {
                if args.len() != 3 {
                    return Err(CompileError::new("mad takes three arguments", line));
                }
                let mut vs = Vec::new();
                let mut lanes = 1u8;
                let mut parts = Vec::new();
                for a in args {
                    let (v, t) = self.gen_expr(a)?;
                    lanes = lanes.max(t.lanes);
                    parts.push((v, t));
                }
                let target = CType {
                    scalar: CScalar::Float,
                    lanes,
                    ptr: None,
                };
                for (v, t) in parts {
                    vs.push(self.convert(v, t, target, line)?);
                }
                Ok((self.builder().call(Builtin::Mad, vs), target))
            }
            "clamp" => {
                if args.len() != 3 {
                    return Err(CompileError::new("clamp takes three arguments", line));
                }
                let (x, xt) = self.gen_expr(&args[0])?;
                let (lo, lot) = self.gen_expr(&args[1])?;
                let (hi, hit) = self.gen_expr(&args[2])?;
                let c1 = usual_conversions(xt, lot, line)?;
                let common = usual_conversions(c1, hit, line)?;
                let x = self.convert(x, xt, common, line)?;
                let lo = self.convert(lo, lot, common, line)?;
                let hi = self.convert(hi, hit, common, line)?;
                Ok((self.builder().call(Builtin::Clamp, vec![x, lo, hi]), common))
            }
            "dot" => {
                if args.len() != 2 {
                    return Err(CompileError::new("dot takes two arguments", line));
                }
                let (a, at) = self.gen_expr(&args[0])?;
                let (b, bt) = self.gen_expr(&args[1])?;
                if !at.is_vector() || at != bt {
                    return Err(CompileError::new("dot needs two equal vector types", line));
                }
                let v = self.builder().call(Builtin::Dot, vec![a, b]);
                Ok((v, CType::scalar(at.scalar)))
            }
            "mul24" => {
                if args.len() != 2 {
                    return Err(CompileError::new("mul24 takes two arguments", line));
                }
                let (a, at) = self.gen_expr(&args[0])?;
                let (b, bt) = self.gen_expr(&args[1])?;
                let common = usual_conversions(at, bt, line)?;
                let a = self.convert(a, at, common, line)?;
                let b = self.convert(b, bt, common, line)?;
                Ok((self.builder().mul(a, b), common))
            }
            "mad24" => {
                if args.len() != 3 {
                    return Err(CompileError::new("mad24 takes three arguments", line));
                }
                let (a, at) = self.gen_expr(&args[0])?;
                let (b, bt) = self.gen_expr(&args[1])?;
                let (c, ct) = self.gen_expr(&args[2])?;
                let common = usual_conversions(usual_conversions(at, bt, line)?, ct, line)?;
                let a = self.convert(a, at, common, line)?;
                let b = self.convert(b, bt, common, line)?;
                let c = self.convert(c, ct, common, line)?;
                let m = self.builder().mul(a, b);
                Ok((self.builder().add(m, c), common))
            }
            other => Err(CompileError::new(
                format!("unknown function `{other}`"),
                line,
            )),
        }
    }

    // ---- conversions ------------------------------------------------------

    fn coerce_bool(
        &mut self,
        v: ValueId,
        cty: CType,
        line: usize,
    ) -> Result<ValueId, CompileError> {
        if cty.is_ptr() || cty.is_vector() {
            return Err(CompileError::new("condition must be scalar", line));
        }
        match cty.scalar {
            CScalar::Bool => Ok(v),
            CScalar::Float => {
                let z = self.f.const_f32(0.0);
                Ok(self.builder().cmp(CmpPred::FNe, v, z))
            }
            CScalar::Long | CScalar::ULong => {
                let z = self.f.const_i64(0);
                Ok(self.builder().cmp(CmpPred::Ne, v, z))
            }
            _ => {
                let z = self.f.const_i32(0);
                Ok(self.builder().cmp(CmpPred::Ne, v, z))
            }
        }
    }

    /// Emit whatever casts are needed to turn `v: from` into a `to`.
    fn convert(
        &mut self,
        v: ValueId,
        from: CType,
        to: CType,
        line: usize,
    ) -> Result<ValueId, CompileError> {
        if from == to {
            return Ok(v);
        }
        if from.is_ptr() || to.is_ptr() {
            if from.is_ptr() && to.is_ptr() && from.scalar == to.scalar && from.lanes == to.lanes {
                return Ok(v); // address-space-compatible alias
            }
            return Err(CompileError::new("invalid pointer conversion", line));
        }
        // Scalar -> vector: convert the scalar kind, then splat.
        if from.lanes == 1 && to.lanes > 1 {
            let s = self.convert(v, from, CType::scalar(to.scalar), line)?;
            let lanes = vec![s; to.lanes as usize];
            return Ok(self.builder().build_vector(lanes));
        }
        if from.lanes != to.lanes {
            return Err(CompileError::new(
                format!(
                    "cannot convert {}-lane to {}-lane vector",
                    from.lanes, to.lanes
                ),
                line,
            ));
        }
        // Vector with different scalar kind: convert lane-wise.
        if from.lanes > 1 {
            let fs = CType::scalar(from.scalar);
            let ts = CType::scalar(to.scalar);
            let mut lanes = Vec::with_capacity(from.lanes as usize);
            for i in 0..from.lanes {
                let l = self.builder().extract_lane(v, i);
                lanes.push(self.convert(l, fs, ts, line)?);
            }
            return Ok(self.builder().build_vector(lanes));
        }
        // Scalar conversions.
        let fk = ir_scalar(from.scalar);
        let tk = ir_scalar(to.scalar);
        if fk == tk {
            return Ok(v); // signedness-only change
        }
        let target = Type::Scalar(tk);
        let out = match (fk, tk) {
            (Scalar::Bool, Scalar::I32) | (Scalar::Bool, Scalar::I64) => {
                self.builder().cast(CastKind::ZExt, v, target)
            }
            (Scalar::Bool, Scalar::F32) => {
                let i = self.builder().cast(CastKind::ZExt, v, Type::I32);
                self.builder().cast(CastKind::SiToFp, i, target)
            }
            (Scalar::I32, Scalar::I64) => {
                let kind = if from.scalar.is_unsigned() {
                    CastKind::ZExt
                } else {
                    CastKind::SExt
                };
                self.builder().cast(kind, v, target)
            }
            (Scalar::I64, Scalar::I32) => self.builder().cast(CastKind::Trunc, v, target),
            (Scalar::I32, Scalar::F32) | (Scalar::I64, Scalar::F32) => {
                self.builder().cast(CastKind::SiToFp, v, target)
            }
            (Scalar::F32, Scalar::I32) | (Scalar::F32, Scalar::I64) => {
                self.builder().cast(CastKind::FpToSi, v, target)
            }
            (Scalar::I32, Scalar::Bool) | (Scalar::I64, Scalar::Bool) => {
                let z = if fk == Scalar::I64 {
                    self.f.const_i64(0)
                } else {
                    self.f.const_i32(0)
                };
                self.builder().cmp(CmpPred::Ne, v, z)
            }
            (Scalar::F32, Scalar::Bool) => {
                let z = self.f.const_f32(0.0);
                self.builder().cmp(CmpPred::FNe, v, z)
            }
            _ => {
                return Err(CompileError::new(
                    format!(
                        "unsupported conversion {:?} -> {:?}",
                        from.scalar, to.scalar
                    ),
                    line,
                ))
            }
        };
        Ok(out)
    }
}

/// Usual arithmetic conversions: pick the common type of two operands.
fn usual_conversions(a: CType, b: CType, line: usize) -> Result<CType, CompileError> {
    if a.is_ptr() || b.is_ptr() {
        return Err(CompileError::new("pointer in arithmetic expression", line));
    }
    let lanes = match (a.lanes, b.lanes) {
        (x, y) if x == y => x,
        (1, y) => y,
        (x, 1) => x,
        _ => return Err(CompileError::new("vector lane count mismatch", line)),
    };
    let scalar = if a.scalar.rank() >= b.scalar.rank() {
        a.scalar
    } else {
        b.scalar
    };
    // Bool promotes to int in arithmetic.
    let scalar = if scalar == CScalar::Bool {
        CScalar::Int
    } else {
        scalar
    };
    Ok(CType {
        scalar,
        lanes,
        ptr: None,
    })
}

/// Evaluate a constant integer expression (array dimensions).
pub fn const_eval(e: &Expr) -> Option<i64> {
    match &e.kind {
        ExprKind::IntLit(v) => Some(*v),
        ExprKind::Un(CUnOp::Neg, x) => Some(-const_eval(x)?),
        ExprKind::Un(CUnOp::Plus, x) => const_eval(x),
        ExprKind::Bin(op, l, r) => {
            let l = const_eval(l)?;
            let r = const_eval(r)?;
            Some(match op {
                CBinOp::Add => l + r,
                CBinOp::Sub => l - r,
                CBinOp::Mul => l * r,
                CBinOp::Div => {
                    if r == 0 {
                        return None;
                    }
                    l / r
                }
                CBinOp::Shl => l << r,
                CBinOp::Shr => l >> r,
                _ => return None,
            })
        }
        _ => None,
    }
}

/// Lane index of a swizzle member name.
fn lane_of(field: &str, line: usize) -> Result<u8, CompileError> {
    match field {
        "x" => Ok(0),
        "y" => Ok(1),
        "z" => Ok(2),
        "w" => Ok(3),
        _ => {
            if let Some(rest) = field.strip_prefix('s') {
                if let Ok(n) = u8::from_str_radix(rest, 16) {
                    if n < 16 {
                        return Ok(n);
                    }
                }
            }
            Err(CompileError::new(
                format!("unknown vector member `.{field}`"),
                line,
            ))
        }
    }
}

/// Fold `x op= c` helpers used by `ConstVal` in tests.
#[allow(dead_code)]
fn _unused(_: ConstVal) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn lower(src: &str) -> Function {
        let tu = parse(src).unwrap_or_else(|e| panic!("parse: {e}"));
        let f = lower_kernel(&tu.kernels[0]).unwrap_or_else(|e| panic!("lower: {e}"));
        if let Err(errs) = grover_ir::verify(&f) {
            panic!(
                "IR verification failed: {errs:?}\n{}",
                grover_ir::printer::function_to_string(&f)
            );
        }
        f
    }

    #[test]
    fn lowers_copy_kernel() {
        let f = lower(
            "__kernel void copy(__global float* in, __global float* out) {
                 int i = get_global_id(0);
                 out[i] = in[i];
             }",
        );
        assert_eq!(f.name, "copy");
        // expect: call, trunc, gep, load, gep, store, ret (+ consts)
        assert!(f.num_insts() >= 6);
    }

    #[test]
    fn lowers_for_loop_with_phi() {
        let f = lower(
            "__kernel void sum(__global float* a, __global float* out, int n) {
                 float acc = 0.0f;
                 for (int i = 0; i < n; i++) { acc += a[i]; }
                 out[0] = acc;
             }",
        );
        let phis = f
            .iter_insts()
            .filter(|&(_, iv)| matches!(f.inst(iv), Some(Inst::Phi { .. })))
            .count();
        assert!(phis >= 2, "expected loop phis for acc and i, got {phis}");
    }

    #[test]
    fn lowers_local_array_and_barrier() {
        let f = lower(
            "__kernel void stage(__global float* in, __global float* out) {
                 __local float lm[16];
                 int l = get_local_id(0);
                 int g = get_global_id(0);
                 lm[l] = in[g];
                 barrier(CLK_LOCAL_MEM_FENCE);
                 out[g] = lm[15 - l];
             }",
        );
        assert_eq!(f.local_bufs().len(), 1);
        assert_eq!(f.local_mem_bytes(), 64);
        let barriers = f
            .iter_insts()
            .filter(|&(_, iv)| matches!(f.inst(iv), Some(Inst::Barrier { .. })))
            .count();
        assert_eq!(barriers, 1);
    }

    #[test]
    fn two_dim_local_array_flattens() {
        let f = lower(
            "__kernel void t(__global float* in) {
                 __local float lm[4][8];
                 int x = get_local_id(0);
                 int y = get_local_id(1);
                 lm[y][x] = in[0];
                 barrier(CLK_LOCAL_MEM_FENCE);
                 in[0] = lm[x][y];
             }",
        );
        assert_eq!(f.local_bufs()[0].dims, vec![4, 8]);
    }

    #[test]
    fn if_else_merges_values() {
        let f = lower(
            "__kernel void m(__global int* a) {
                 int x;
                 if (a[0] > 0) { x = 1; } else { x = 2; }
                 a[1] = x;
             }",
        );
        let phis = f
            .iter_insts()
            .filter(|&(_, iv)| matches!(f.inst(iv), Some(Inst::Phi { .. })))
            .count();
        assert_eq!(phis, 1);
    }

    #[test]
    fn while_and_break() {
        lower(
            "__kernel void w(__global int* a) {
                 int i = 0;
                 while (1) {
                     if (i >= 10) break;
                     a[i] = i;
                     i++;
                 }
             }",
        );
    }

    #[test]
    fn continue_in_for() {
        lower(
            "__kernel void c(__global int* a, int n) {
                 for (int i = 0; i < n; i++) {
                     if (a[i] < 0) continue;
                     a[i] = 2 * a[i];
                 }
             }",
        );
    }

    #[test]
    fn vector_kernel() {
        let f = lower(
            "__kernel void v(__global float4* in, __global float4* out) {
                 int i = get_global_id(0);
                 float4 x = in[i];
                 float4 y = x * 2.0f;
                 y.x = 0.0f;
                 out[i] = y;
             }",
        );
        assert!(f.num_insts() > 5);
    }

    #[test]
    fn uninitialised_read_rejected() {
        let tu = parse("__kernel void u(__global int* a) { int x; a[0] = x; }").unwrap();
        assert!(lower_kernel(&tu.kernels[0]).is_err());
    }

    #[test]
    fn private_array_rejected() {
        let tu = parse("__kernel void p() { float t[4]; t[0] = 1.0f; }").unwrap();
        assert!(lower_kernel(&tu.kernels[0]).is_err());
    }

    #[test]
    fn unknown_function_rejected() {
        let tu = parse("__kernel void q(__global float* a) { a[0] = frobnicate(1.0f); }").unwrap();
        assert!(lower_kernel(&tu.kernels[0]).is_err());
    }

    #[test]
    fn unsigned_division_uses_udiv() {
        let f = lower(
            "__kernel void d(__global uint* a) {
                 uint x = a[0];
                 a[1] = x / 3;
             }",
        );
        let has_udiv = f.iter_insts().any(|(_, iv)| {
            matches!(
                f.inst(iv),
                Some(Inst::Bin {
                    op: BinOp::UDiv,
                    ..
                })
            )
        });
        assert!(has_udiv);
    }

    #[test]
    fn signed_division_uses_sdiv() {
        let f = lower(
            "__kernel void d(__global int* a) {
                 int x = a[0];
                 a[1] = x / 3;
             }",
        );
        let has_sdiv = f.iter_insts().any(|(_, iv)| {
            matches!(
                f.inst(iv),
                Some(Inst::Bin {
                    op: BinOp::SDiv,
                    ..
                })
            )
        });
        assert!(has_sdiv);
    }

    #[test]
    fn ternary_becomes_select() {
        let f = lower("__kernel void t(__global int* a) { a[0] = a[1] > 0 ? 1 : 2; }");
        let has_select = f
            .iter_insts()
            .any(|(_, iv)| matches!(f.inst(iv), Some(Inst::Select { .. })));
        assert!(has_select);
    }

    #[test]
    fn nested_loops_verify() {
        lower(
            "__kernel void mm(__global float* a, __global float* b, __global float* c, int n) {
                 int row = get_global_id(1);
                 int col = get_global_id(0);
                 float acc = 0.0f;
                 for (int k = 0; k < n; k++) {
                     acc += a[row * n + k] * b[k * n + col];
                 }
                 c[row * n + col] = acc;
             }",
        );
    }

    #[test]
    fn do_while_lowering() {
        lower(
            "__kernel void dw(__global int* a) {
                 int i = 0;
                 do { a[i] = i; i++; } while (i < 4);
             }",
        );
    }

    #[test]
    fn const_eval_dims() {
        let e = |src: &str| {
            let tu = parse(&format!(
                "__kernel void k() {{ __local float x[{src}]; x[0]=0.0f; }}"
            ))
            .unwrap();
            let Stmt::Decl(d) = &tu.kernels[0].body[0] else {
                panic!()
            };
            const_eval(&d[0].dims[0])
        };
        assert_eq!(e("16"), Some(16));
        assert_eq!(e("4*4"), Some(16));
        assert_eq!(e("1 << 4"), Some(16));
    }
}
