//! SSA construction for structured control flow, following Braun et al.,
//! "Simple and Efficient Construction of Static Single Assignment Form"
//! (CC 2013): local value numbering per block, on-demand phi insertion with
//! *incomplete* phis in unsealed blocks, and trivial-phi elimination.

use std::collections::{HashMap, HashSet};

use grover_ir::{BlockId, Function, Inst, Type, ValueId};

/// A mutable source-level variable being converted to SSA.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VarId(pub u32);

/// Error raised when a variable is read before any write reaches it.
#[derive(Debug, Clone)]
pub struct UndefRead(pub VarId);

/// Braun-style SSA builder, layered over [`grover_ir::Function`].
#[derive(Default)]
pub struct SsaBuilder {
    defs: HashMap<(VarId, BlockId), ValueId>,
    incomplete: HashMap<BlockId, Vec<(VarId, ValueId)>>,
    sealed: HashSet<BlockId>,
    var_types: Vec<Type>,
    /// phi value -> var it merges (needed when completing incomplete phis).
    phi_vars: HashMap<ValueId, VarId>,
}

impl SsaBuilder {
    /// A fresh builder with no variables or sealed blocks.
    pub fn new() -> SsaBuilder {
        SsaBuilder::default()
    }

    /// Register a new variable of an IR type.
    pub fn new_var(&mut self, ty: Type) -> VarId {
        self.var_types.push(ty);
        VarId(self.var_types.len() as u32 - 1)
    }

    /// The IR type a variable was registered with.
    pub fn var_type(&self, v: VarId) -> Type {
        self.var_types[v.0 as usize]
    }

    /// Record that `var` now holds `value` at the end of `block`.
    pub fn write(&mut self, var: VarId, block: BlockId, value: ValueId) {
        self.defs.insert((var, block), value);
    }

    /// Current value of `var` when control reaches the end of `block`.
    pub fn read(
        &mut self,
        f: &mut Function,
        var: VarId,
        block: BlockId,
    ) -> Result<ValueId, UndefRead> {
        if let Some(&v) = self.defs.get(&(var, block)) {
            return Ok(v);
        }
        self.read_recursive(f, var, block)
    }

    fn read_recursive(
        &mut self,
        f: &mut Function,
        var: VarId,
        block: BlockId,
    ) -> Result<ValueId, UndefRead> {
        let val = if !self.sealed.contains(&block) {
            // Unknown predecessors: place an operandless phi to fill later.
            let phi = f.insert_inst(
                block,
                0,
                Inst::Phi {
                    incoming: Vec::new(),
                },
                self.var_type(var),
            );
            self.incomplete.entry(block).or_default().push((var, phi));
            self.phi_vars.insert(phi, var);
            phi
        } else {
            let preds = preds_of(f, block);
            match preds.len() {
                0 => return Err(UndefRead(var)),
                1 => self.read(f, var, preds[0])?,
                _ => {
                    // Break potential cycles: write the phi before filling it.
                    let phi = f.insert_inst(
                        block,
                        0,
                        Inst::Phi {
                            incoming: Vec::new(),
                        },
                        self.var_type(var),
                    );
                    self.phi_vars.insert(phi, var);
                    self.write(var, block, phi);
                    self.add_phi_operands(f, var, phi, block)?
                }
            }
        };
        self.write(var, block, val);
        Ok(val)
    }

    fn add_phi_operands(
        &mut self,
        f: &mut Function,
        var: VarId,
        phi: ValueId,
        block: BlockId,
    ) -> Result<ValueId, UndefRead> {
        let preds = preds_of(f, block);
        let mut incoming = Vec::with_capacity(preds.len());
        for p in preds {
            let v = self.read(f, var, p)?;
            incoming.push((p, v));
        }
        if let Some(Inst::Phi { incoming: slot }) = f.inst_mut(phi) {
            *slot = incoming;
        }
        Ok(self.try_remove_trivial_phi(f, phi))
    }

    /// If the phi merges only one distinct value (besides itself), replace it.
    fn try_remove_trivial_phi(&mut self, f: &mut Function, phi: ValueId) -> ValueId {
        let Some(Inst::Phi { incoming }) = f.inst(phi) else {
            return phi;
        };
        let mut same: Option<ValueId> = None;
        for &(_, v) in incoming {
            if v == phi || Some(v) == same {
                continue;
            }
            if same.is_some() {
                return phi; // merges at least two values: not trivial
            }
            same = Some(v);
        }
        let same = match same {
            Some(s) => s,
            None => return phi, // unreachable or self-referential only
        };
        // Collect phi users before rewriting.
        let users: Vec<ValueId> = f
            .uses_of(phi)
            .into_iter()
            .filter(|&u| u != phi && matches!(f.inst(u), Some(Inst::Phi { .. })))
            .collect();
        f.replace_all_uses(phi, same);
        f.remove_inst(phi);
        // Any def-map entry pointing at the removed phi must be redirected.
        for v in self.defs.values_mut() {
            if *v == phi {
                *v = same;
            }
        }
        // Removing this phi may make its phi users trivial in turn.
        for u in users {
            self.try_remove_trivial_phi(f, u);
        }
        same
    }

    /// Declare that all predecessors of `block` are now known.
    pub fn seal(&mut self, f: &mut Function, block: BlockId) -> Result<(), UndefRead> {
        if !self.sealed.insert(block) {
            return Ok(());
        }
        if let Some(pending) = self.incomplete.remove(&block) {
            for (var, phi) in pending {
                self.add_phi_operands(f, var, phi, block)?;
            }
        }
        Ok(())
    }

    /// Whether a block has been sealed.
    pub fn is_sealed(&self, block: BlockId) -> bool {
        self.sealed.contains(&block)
    }

    /// The phi nodes created during construction and the variable each one
    /// merges — used to give phis their source-level names.
    pub fn phi_vars(&self) -> impl Iterator<Item = (ValueId, VarId)> + '_ {
        self.phi_vars.iter().map(|(&p, &v)| (p, v))
    }
}

fn preds_of(f: &Function, block: BlockId) -> Vec<BlockId> {
    f.predecessors()[block.index()].clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use grover_ir::{Builder, CmpPred};

    #[test]
    fn straight_line_no_phi() {
        let mut f = Function::new("k", vec![]);
        let mut ssa = SsaBuilder::new();
        let e = f.entry;
        ssa.seal(&mut f, e).unwrap();
        let x = ssa.new_var(Type::I32);
        let c = f.const_i32(7);
        ssa.write(x, e, c);
        assert_eq!(ssa.read(&mut f, x, e).unwrap(), c);
        assert_eq!(f.num_insts(), 0);
    }

    #[test]
    fn diamond_inserts_phi() {
        let mut f = Function::new("k", vec![]);
        let t = f.add_block("t");
        let el = f.add_block("e");
        let j = f.add_block("j");
        let mut ssa = SsaBuilder::new();
        let e = f.entry;
        ssa.seal(&mut f, e).unwrap();
        let x = ssa.new_var(Type::I32);

        let mut b = Builder::at_entry(&mut f);
        let cond = b.bool(true);
        b.cond_br(cond, t, el);
        ssa.seal(&mut f, t).unwrap();
        ssa.seal(&mut f, el).unwrap();

        let one = f.const_i32(1);
        let two = f.const_i32(2);
        ssa.write(x, t, one);
        ssa.write(x, el, two);
        Builder::new(&mut f, t).br(j);
        Builder::new(&mut f, el).br(j);
        ssa.seal(&mut f, j).unwrap();
        let merged = ssa.read(&mut f, x, j).unwrap();
        assert!(matches!(f.inst(merged), Some(Inst::Phi { .. })));
        let Some(Inst::Phi { incoming }) = f.inst(merged) else {
            panic!()
        };
        assert_eq!(incoming.len(), 2);
    }

    #[test]
    fn same_value_on_both_arms_is_trivial() {
        let mut f = Function::new("k", vec![]);
        let t = f.add_block("t");
        let el = f.add_block("e");
        let j = f.add_block("j");
        let mut ssa = SsaBuilder::new();
        let e = f.entry;
        ssa.seal(&mut f, e).unwrap();
        let x = ssa.new_var(Type::I32);
        let seven = f.const_i32(7);
        ssa.write(x, e, seven);

        let mut b = Builder::at_entry(&mut f);
        let cond = b.bool(true);
        b.cond_br(cond, t, el);
        ssa.seal(&mut f, t).unwrap();
        ssa.seal(&mut f, el).unwrap();
        Builder::new(&mut f, t).br(j);
        Builder::new(&mut f, el).br(j);
        ssa.seal(&mut f, j).unwrap();
        // Not written on either arm: reading in j must give the entry value,
        // with the transient phi removed as trivial.
        assert_eq!(ssa.read(&mut f, x, j).unwrap(), seven);
        let phis = f
            .iter_insts()
            .filter(|&(_, iv)| matches!(f.inst(iv), Some(Inst::Phi { .. })))
            .count();
        assert_eq!(phis, 0);
    }

    #[test]
    fn loop_phi_via_incomplete() {
        // i = 0; while (i < 3) i = i + 1; read i afterwards.
        let mut f = Function::new("k", vec![]);
        let header = f.add_block("header");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        let mut ssa = SsaBuilder::new();
        let e = f.entry;
        ssa.seal(&mut f, e).unwrap();
        let i = ssa.new_var(Type::I32);
        let zero = f.const_i32(0);
        ssa.write(i, e, zero);
        Builder::at_entry(&mut f).br(header);

        // header is NOT sealed yet (latch unknown).
        let iv = ssa.read(&mut f, i, header).unwrap();
        let mut b = Builder::new(&mut f, header);
        let three = b.i32(3);
        let c = b.cmp(CmpPred::Slt, iv, three);
        b.cond_br(c, body, exit);
        ssa.seal(&mut f, body).unwrap();

        let iv_body = ssa.read(&mut f, i, body).unwrap();
        let mut b = Builder::new(&mut f, body);
        let one = b.i32(1);
        let next = b.add(iv_body, one);
        ssa.write(i, body, next);
        b.br(header);
        ssa.seal(&mut f, header).unwrap();
        ssa.seal(&mut f, exit).unwrap();
        Builder::new(&mut f, exit).ret();

        let after = ssa.read(&mut f, i, exit).unwrap();
        // The loop-carried variable must be a phi in the header.
        assert!(matches!(f.inst(after), Some(Inst::Phi { .. })));
        let Some(Inst::Phi { incoming }) = f.inst(after) else {
            panic!()
        };
        assert_eq!(incoming.len(), 2);
        assert!(grover_ir::verify(&f).is_ok(), "{:?}", grover_ir::verify(&f));
    }

    #[test]
    fn undef_read_is_error() {
        let mut f = Function::new("k", vec![]);
        let mut ssa = SsaBuilder::new();
        let e = f.entry;
        ssa.seal(&mut f, e).unwrap();
        let x = ssa.new_var(Type::I32);
        assert!(ssa.read(&mut f, x, e).is_err());
    }
}
