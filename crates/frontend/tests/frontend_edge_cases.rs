//! Edge-case coverage for the OpenCL C front-end: operator precedence,
//! scoping, preprocessor interactions, and diagnostics.

use grover_frontend::{compile, BuildOptions};

fn ok(src: &str) -> grover_ir::Module {
    compile(src, &BuildOptions::new()).unwrap_or_else(|e| panic!("{e}\n---\n{src}"))
}

fn err(src: &str) -> String {
    match compile(src, &BuildOptions::new()) {
        Ok(_) => panic!("expected a compile error:\n{src}"),
        Err(e) => e.to_string(),
    }
}

#[test]
fn shadowing_in_nested_scopes() {
    let m = ok("__kernel void s(__global int* a) {
             int x = 1;
             {
                 int x = 2;
                 a[0] = x;
             }
             a[1] = x;
         }");
    assert!(m.kernel("s").is_some());
}

#[test]
fn for_init_variable_scoped_to_loop() {
    err("__kernel void s(__global int* a) {
             for (int i = 0; i < 4; i++) { a[i] = i; }
             a[0] = i;
         }");
}

#[test]
fn full_precedence_chain() {
    // Must parse and verify: mixes every precedence level.
    ok("__kernel void p(__global int* a) {
             int x = a[0];
             a[1] = x + 2 * 3 - 4 / 2 % 3 << 1 >> 1 & 7 | 8 ^ 3;
             a[2] = x < 3 == 1 != 0;
             a[3] = x > 1 && x < 10 || x == 0;
         }");
}

#[test]
fn unary_chains() {
    ok("__kernel void u(__global int* a) {
             a[0] = - - a[1];
             a[2] = !!a[3] ? 1 : 0;
             a[4] = ~~a[5];
             a[6] = -~a[7];
         }");
}

#[test]
fn comments_inside_expressions() {
    ok("__kernel void c(__global int* a) {
             a[0] = /* left */ 1 + // right
                    2;
         }");
}

#[test]
fn define_inside_conditional_block() {
    let m = compile(
        "#ifdef FAST\n#define W 8\n#else\n#define W 4\n#endif\n\
         __kernel void k() { __local float lm[W]; lm[0] = 0.0f; }",
        &BuildOptions::new(),
    )
    .unwrap();
    assert_eq!(m.kernels[0].local_bufs()[0].dims, vec![4]);
    let m = compile(
        "#ifdef FAST\n#define W 8\n#else\n#define W 4\n#endif\n\
         __kernel void k() { __local float lm[W]; lm[0] = 0.0f; }",
        &BuildOptions::new().define("FAST", 1),
    )
    .unwrap();
    assert_eq!(m.kernels[0].local_bufs()[0].dims, vec![8]);
}

#[test]
fn nested_ifdef_blocks() {
    let m = compile(
        "#define A 1\n#ifdef A\n#ifdef B\n#define N 1\n#else\n#define N 2\n#endif\n#else\n#define N 3\n#endif\n\
         __kernel void k() { __local float lm[N]; lm[0] = 0.0f; }",
        &BuildOptions::new(),
    )
    .unwrap();
    assert_eq!(m.kernels[0].local_bufs()[0].dims, vec![2]);
}

#[test]
fn hex_and_suffixed_literals() {
    ok("__kernel void h(__global int* a) {
             a[0] = 0xFF;
             a[1] = 16u;
             a[2] = (int)4294967295u;
         }");
}

#[test]
fn assignment_is_right_associative() {
    let m = ok("__kernel void r(__global int* a) {
             int x;
             int y;
             x = y = 5;
             a[0] = x + y;
         }");
    let _ = m;
}

#[test]
fn chained_member_and_index() {
    ok("__kernel void m(__global float4* v, __global float* out) {
             out[0] = v[1].y + v[0].s2;
         }");
}

#[test]
fn error_messages_name_the_problem() {
    assert!(err("__kernel void k() { int x = ; }").contains("expression"));
    assert!(err("__kernel void k(__global floot* a) { }").contains("unknown type"));
    assert!(err("kernel_void k() { }").contains("__kernel"));
    assert!(err("__kernel void k() { barrier(); }").contains("fence"));
    assert!(err("__kernel void k(__global int* a) { a[zzz] = 1; }").contains("zzz"));
}

#[test]
fn break_outside_loop_rejected() {
    assert!(err("__kernel void k() { break; }").contains("break"));
    assert!(err("__kernel void k() { continue; }").contains("continue"));
}

#[test]
fn vector_lane_out_of_range_rejected() {
    assert!(
        err("__kernel void k(__global float4* v, __global float* o) { o[0] = v[0].s7; }")
            .contains("member")
    );
}

#[test]
fn assignment_to_parameter_pointer_rejected() {
    assert!(err("__kernel void k(__global int* a) { a = a; }").contains("assign"));
}

#[test]
fn float2_and_float8_types_parse() {
    ok("__kernel void v(__global float2* a, __global float* o) {
             float2 x = a[0];
             o[0] = x.x + x.y;
         }");
}

#[test]
fn empty_statements_and_blocks() {
    ok("__kernel void e(__global int* a) { ;; { } a[0] = 1; ; }");
}

#[test]
fn dangling_else_binds_to_nearest_if() {
    // if (a) if (b) x=1; else x=2;  — the else belongs to the inner if.
    let m = ok("__kernel void d(__global int* a) {
             int x = 0;
             if (a[0] > 0)
                 if (a[1] > 0) x = 1;
                 else x = 2;
             a[2] = x;
         }");
    let _ = m;
}

#[test]
fn line_numbers_in_errors_after_preprocessing() {
    let e = compile(
        "#define S 4\n\n\n__kernel void k(__global int* a) {\n a[0] = nope();\n}",
        &BuildOptions::new(),
    )
    .unwrap_err();
    assert_eq!(e.line, 5, "{e}");
}

#[test]
fn deeply_nested_control_flow_compiles_and_verifies() {
    ok("__kernel void deep(__global int* a, int n) {
             int acc = 0;
             for (int i = 0; i < n; i++) {
                 for (int j = 0; j < n; j++) {
                     if (i == j) {
                         for (int k = 0; k < 3; k++) {
                             while (acc < 100) {
                                 acc += k;
                                 if (acc % 7 == 0) { break; }
                             }
                         }
                     } else {
                         acc -= 1;
                     }
                 }
             }
             a[0] = acc;
         }");
}

#[test]
fn barrier_in_loop_compiles() {
    ok("__kernel void b(__global float* x) {
             __local float lm[8];
             int lx = get_local_id(0);
             for (int i = 0; i < 4; i++) {
                 lm[lx] = x[i * 8 + lx];
                 barrier(CLK_LOCAL_MEM_FENCE);
                 x[i * 8 + lx] = lm[7 - lx];
                 barrier(CLK_LOCAL_MEM_FENCE);
             }
         }");
}
