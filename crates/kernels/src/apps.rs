//! The benchmark applications: sources, datasets, launch configurations
//! and scalar reference implementations (paper Table I).

use grover_frontend::BuildOptions;
use grover_runtime::{ArgValue, Buffer, Context, NdRange};

/// Dataset scale.
///
/// The paper's datasets (Table I) run for minutes under an interpreter, so
/// the default experiments use `Small`; the shapes of the results are
/// scale-stable (see EXPERIMENTS.md). `Paper` approaches the paper's sizes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Tiny inputs for unit/integration tests.
    Test,
    /// Bench-harness default.
    Small,
    /// Close to the paper's Table I datasets.
    Paper,
}

/// Expected kernel output.
#[derive(Clone, Debug)]
pub enum Expected {
    /// Floating-point output with a relative tolerance.
    F32(Vec<f32>),
    /// Integer output compared exactly.
    I32(Vec<i32>),
}

/// A ready-to-launch workload.
pub struct Prepared {
    /// Context owning the input/output buffers.
    pub ctx: Context,
    /// Kernel arguments, in parameter order.
    pub args: Vec<ArgValue>,
    /// Launch geometry (the benchmark's default work-group size).
    pub nd: NdRange,
    /// The buffer holding the kernel's result.
    pub out: Buffer,
    /// Reference output for `out`.
    pub expected: Expected,
    /// Relative tolerance for float comparison.
    pub tolerance: f32,
}

/// One benchmark application (one row of Table I).
pub struct App {
    /// Paper ID (Table I).
    pub id: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Kernel function name inside `source`.
    pub kernel: &'static str,
    /// OpenCL C source.
    pub source: &'static str,
    /// Buffers Grover should disable (`None` = all). This is how the three
    /// NVD-MM variants share one kernel.
    pub disable: Option<&'static [&'static str]>,
    /// Human-readable dataset description for the given scale (Table I).
    pub dataset: fn(Scale) -> String,
    /// Build options (tile sizes) per scale.
    pub options: fn(Scale) -> BuildOptions,
    /// Build a fresh workload at a scale.
    pub prepare: fn(Scale) -> Prepared,
}

/// Deterministic SplitMix64 generator: every dataset is a pure function of
/// the fixed seed, so reference outputs and traces are reproducible across
/// runs and platforms without an external PRNG crate.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[lo, hi)`.
    fn gen_f32(&mut self, lo: f32, hi: f32) -> f32 {
        let unit = (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        lo + unit * (hi - lo)
    }

    /// Uniform integer in `[0, n)`.
    fn gen_below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

fn rng() -> Rng {
    Rng(0x9e3779b97f4a7c15)
}

fn randf(r: &mut Rng, n: usize) -> Vec<f32> {
    (0..n).map(|_| r.gen_f32(-1.0, 1.0)).collect()
}

// ===================== AMD-SS: StringSearch =====================

const AMD_SS_SRC: &str = r#"
__kernel void amd_ss(__global int* text, __global int* pattern,
                     __global int* out, int tlen) {
    __local int lpat[PL];
    int gx = get_global_id(0);
    int lx = get_local_id(0);
    if (lx < PL) {
        lpat[lx] = pattern[lx];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    int m = 1;
    for (int k = 0; k < PL; k++) {
        if (gx + k >= tlen) {
            m = 0;
        } else {
            if (text[gx + k] != lpat[k]) {
                m = 0;
            }
        }
    }
    out[gx] = m;
}
"#;

const SS_PL: usize = 16;

fn ss_tlen(s: Scale) -> usize {
    match s {
        Scale::Test => 256,
        Scale::Small => 8192,
        Scale::Paper => 65536,
    }
}

fn ss_prepare(s: Scale) -> Prepared {
    let tlen = ss_tlen(s);
    let mut r = rng();
    // Random text over a small alphabet, with the pattern planted a few times.
    let mut text: Vec<i32> = (0..tlen).map(|_| r.gen_below(4) as i32).collect();
    let pattern: Vec<i32> = (0..SS_PL).map(|_| r.gen_below(4) as i32).collect();
    for p in [tlen / 7, tlen / 3, tlen / 2] {
        text[p..p + SS_PL].copy_from_slice(&pattern);
    }
    let mut expected = vec![0i32; tlen];
    for i in 0..tlen {
        let m = (0..SS_PL).all(|k| i + k < tlen && text[i + k] == pattern[k]);
        expected[i] = m as i32;
    }
    let mut ctx = Context::new();
    let bt = ctx.buffer_i32(&text);
    let bp = ctx.buffer_i32(&pattern);
    let bo = ctx.zeros_i32(tlen);
    Prepared {
        ctx,
        args: vec![
            ArgValue::Buffer(bt),
            ArgValue::Buffer(bp),
            ArgValue::Buffer(bo),
            ArgValue::I32(tlen as i32),
        ],
        nd: NdRange::d1(tlen as u64, 64),
        out: bo,
        expected: Expected::I32(expected),
        tolerance: 0.0,
    }
}

// ===================== AMD-MT: MatrixTranspose (float4) =====================

const AMD_MT_SRC: &str = r#"
__kernel void amd_mt(__global float4* in, __global float* out, int w4, int h) {
    __local float4 tile[S][S];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int wy = get_group_id(1);
    tile[ly][lx] = in[(wy * S + ly) * w4 + (wx * S + lx)];
    barrier(CLK_LOCAL_MEM_FENCE);
    float4 v = tile[lx][ly];
    int row = wy * S + lx;
    int col4 = wx * S + ly;
    out[(4 * col4 + 0) * h + row] = v.x;
    out[(4 * col4 + 1) * h + row] = v.y;
    out[(4 * col4 + 2) * h + row] = v.z;
    out[(4 * col4 + 3) * h + row] = v.w;
}
"#;

fn amd_mt_n(s: Scale) -> usize {
    match s {
        Scale::Test => 32,
        Scale::Small => 256,
        Scale::Paper => 1024,
    }
}

fn amd_mt_s(s: Scale) -> usize {
    match s {
        Scale::Test => 4,
        Scale::Small => 8,
        Scale::Paper => 16,
    }
}

fn amd_mt_prepare(s: Scale) -> Prepared {
    let n = amd_mt_n(s); // matrix is n x n floats
    let w4 = n / 4;
    let mut r = rng();
    let input = randf(&mut r, n * n);
    // expected: out[c * n + r] = in[r * n + c]
    let mut expected = vec![0.0f32; n * n];
    for row in 0..n {
        for col in 0..n {
            expected[col * n + row] = input[row * n + col];
        }
    }
    let mut ctx = Context::new();
    let bi = ctx.buffer_f32(&input);
    let bo = ctx.zeros_f32(n * n);
    let tile = amd_mt_s(s) as u64;
    Prepared {
        ctx,
        args: vec![
            ArgValue::Buffer(bi),
            ArgValue::Buffer(bo),
            ArgValue::I32(w4 as i32),
            ArgValue::I32(n as i32),
        ],
        nd: NdRange::d2(w4 as u64, n as u64, tile, tile),
        out: bo,
        expected: Expected::F32(expected),
        tolerance: 0.0,
    }
}

// ===================== NVD-MT: MatrixTranspose (staging) =====================

const NVD_MT_SRC: &str = r#"
__kernel void nvd_mt(__global float* in, __global float* out, int w, int h) {
    __local float lm[S][S];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int wy = get_group_id(1);
    int gx = wx * S + lx;
    int gy = wy * S + ly;
    lm[ly][lx] = in[gy * w + gx];
    barrier(CLK_LOCAL_MEM_FENCE);
    int ox = wy * S + lx;
    int oy = wx * S + ly;
    out[oy * h + ox] = lm[lx][ly];
}
"#;

fn nvd_mt_n(s: Scale) -> usize {
    match s {
        Scale::Test => 32,
        Scale::Small => 256,
        Scale::Paper => 1024,
    }
}

fn nvd_mt_s(s: Scale) -> usize {
    match s {
        Scale::Test => 8,
        Scale::Small => 16,
        Scale::Paper => 16,
    }
}

fn nvd_mt_prepare(s: Scale) -> Prepared {
    let n = nvd_mt_n(s);
    let mut r = rng();
    let input = randf(&mut r, n * n);
    let mut expected = vec![0.0f32; n * n];
    for row in 0..n {
        for col in 0..n {
            expected[col * n + row] = input[row * n + col];
        }
    }
    let mut ctx = Context::new();
    let bi = ctx.buffer_f32(&input);
    let bo = ctx.zeros_f32(n * n);
    let tile = nvd_mt_s(s) as u64;
    Prepared {
        ctx,
        args: vec![
            ArgValue::Buffer(bi),
            ArgValue::Buffer(bo),
            ArgValue::I32(n as i32),
            ArgValue::I32(n as i32),
        ],
        nd: NdRange::d2(n as u64, n as u64, tile, tile),
        out: bo,
        expected: Expected::F32(expected),
        tolerance: 0.0,
    }
}

// ===================== AMD-RG: RecursiveGaussian =====================

const AMD_RG_SRC: &str = r#"
__kernel void amd_rg(__global float* in, __global float* out, int w) {
    __local float lm[S];
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int wy = get_group_id(1);
    lm[ly] = in[(wy * S + ly) * w + wx];
    barrier(CLK_LOCAL_MEM_FENCE);
    float a = lm[ly];
    out[(wy * S + ly) * w + wx] = a * 0.8f + fabs(a) * 0.1f + 0.05f;
}
"#;

fn rg_n(s: Scale) -> usize {
    match s {
        Scale::Test => 32,
        Scale::Small => 256,
        Scale::Paper => 1024,
    }
}

fn rg_s(s: Scale) -> usize {
    match s {
        Scale::Test => 8,
        Scale::Small => 64,
        Scale::Paper => 64,
    }
}

fn rg_prepare(s: Scale) -> Prepared {
    let n = rg_n(s);
    let mut r = rng();
    let input = randf(&mut r, n * n);
    let expected: Vec<f32> = input
        .iter()
        .map(|&a| a * 0.8 + a.abs() * 0.1 + 0.05)
        .collect();
    let mut ctx = Context::new();
    let bi = ctx.buffer_f32(&input);
    let bo = ctx.zeros_f32(n * n);
    let tile = rg_s(s) as u64;
    Prepared {
        ctx,
        args: vec![
            ArgValue::Buffer(bi),
            ArgValue::Buffer(bo),
            ArgValue::I32(n as i32),
        ],
        nd: NdRange::d2(n as u64, n as u64, 1, tile),
        out: bo,
        expected: Expected::F32(expected),
        tolerance: 1e-5,
    }
}

// ===================== AMD-MM: MatrixMultiplication =====================

const AMD_MM_SRC: &str = r#"
__kernel void amd_mm(__global float* a, __global float* b,
                     __global float* c, int n) {
    __local float bl[S][S];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int wy = get_group_id(1);
    int col = wx * S + ly;
    int row = wy * S + lx;
    float acc = 0.0f;
    for (int i = 0; i < n / S; i++) {
        bl[lx][ly] = b[(i * S + lx) * n + col];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int k = 0; k < S; k++) {
            acc += a[row * n + i * S + k] * bl[k][ly];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    c[row * n + col] = acc;
}
"#;

// ===================== NVD-MM: oclMatrixMul =====================

const NVD_MM_SRC: &str = r#"
__kernel void nvd_mm(__global float* a, __global float* b,
                     __global float* c, int n) {
    __local float ta[S][S];
    __local float tb[S][S];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int wy = get_group_id(1);
    int row = wy * S + ly;
    int col = wx * S + lx;
    float acc = 0.0f;
    for (int i = 0; i < n / S; i++) {
        ta[ly][lx] = a[row * n + i * S + lx];
        tb[ly][lx] = b[(i * S + ly) * n + col];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int k = 0; k < S; k++) {
            acc += ta[ly][k] * tb[k][lx];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    c[row * n + col] = acc;
}
"#;

fn mm_n(s: Scale) -> usize {
    match s {
        Scale::Test => 32,
        // 512 gives the 2 KiB column stride whose L1 set aliasing drives
        // the paper's AMD-MM / NVD-MM-B losses; only a 64-row slice of C is
        // computed to keep interpreter time reasonable.
        Scale::Small => 512,
        Scale::Paper => 1024,
    }
}

/// Rows of C actually computed (the launch covers a horizontal slice).
fn mm_rows(s: Scale) -> usize {
    match s {
        Scale::Test => 32,
        Scale::Small => 64,
        Scale::Paper => 1024,
    }
}

fn mm_s(s: Scale) -> usize {
    match s {
        Scale::Test => 8,
        Scale::Small => 16,
        Scale::Paper => 16,
    }
}

fn mm_prepare(s: Scale) -> Prepared {
    let n = mm_n(s);
    let rows = mm_rows(s);
    let mut r = rng();
    let a = randf(&mut r, n * n);
    let b = randf(&mut r, n * n);
    // Reference, accumulating in the same k-order as the kernels. Only the
    // launched row slice is computed; the rest of C stays zero.
    let mut expected = vec![0.0f32; n * n];
    for row in 0..rows {
        for col in 0..n {
            let mut acc = 0.0f32;
            for k in 0..n {
                acc += a[row * n + k] * b[k * n + col];
            }
            expected[row * n + col] = acc;
        }
    }
    let mut ctx = Context::new();
    let ba = ctx.buffer_f32(&a);
    let bb = ctx.buffer_f32(&b);
    let bc = ctx.zeros_f32(n * n);
    let tile = mm_s(s) as u64;
    Prepared {
        ctx,
        args: vec![
            ArgValue::Buffer(ba),
            ArgValue::Buffer(bb),
            ArgValue::Buffer(bc),
            ArgValue::I32(n as i32),
        ],
        nd: NdRange::d2(n as u64, rows as u64, tile, tile),
        out: bc,
        expected: Expected::F32(expected),
        tolerance: 1e-3,
    }
}

// ===================== NVD-NBody =====================

const NVD_NBODY_SRC: &str = r#"
__kernel void nvd_nbody(__global float4* pos, __global float4* acc, int n) {
    __local float4 tile[S];
    int gx = get_global_id(0);
    int lx = get_local_id(0);
    float4 p = pos[gx];
    float ax = 0.0f;
    float ay = 0.0f;
    float az = 0.0f;
    for (int i = 0; i < n / S; i++) {
        tile[lx] = pos[i * S + lx];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int k = 0; k < S; k++) {
            float4 q = tile[k];
            float dx = q.x - p.x;
            float dy = q.y - p.y;
            float dz = q.z - p.z;
            float inv = rsqrt(dx * dx + dy * dy + dz * dz + 0.01f);
            float s = q.w * inv * inv * inv;
            ax += dx * s;
            ay += dy * s;
            az += dz * s;
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    acc[gx] = (float4)(ax, ay, az, 0.0f);
}
"#;

fn nbody_n(s: Scale) -> usize {
    match s {
        Scale::Test => 64,
        Scale::Small => 1024,
        Scale::Paper => 8192,
    }
}

fn nbody_s(s: Scale) -> usize {
    match s {
        Scale::Test => 16,
        Scale::Small => 64,
        Scale::Paper => 64,
    }
}

fn nbody_prepare(s: Scale) -> Prepared {
    let n = nbody_n(s);
    let mut r = rng();
    // xyzm packed as float4.
    let pos: Vec<f32> = (0..n * 4)
        .map(|i| {
            if i % 4 == 3 {
                r.gen_f32(0.1, 1.0)
            } else {
                r.gen_f32(-1.0, 1.0)
            }
        })
        .collect();
    let mut expected = vec![0.0f32; n * 4];
    for i in 0..n {
        let (px, py, pz) = (pos[i * 4], pos[i * 4 + 1], pos[i * 4 + 2]);
        let (mut ax, mut ay, mut az) = (0.0f32, 0.0f32, 0.0f32);
        for k in 0..n {
            let dx = pos[k * 4] - px;
            let dy = pos[k * 4 + 1] - py;
            let dz = pos[k * 4 + 2] - pz;
            let inv = 1.0 / (dx * dx + dy * dy + dz * dz + 0.01).sqrt();
            let s = pos[k * 4 + 3] * inv * inv * inv;
            ax += dx * s;
            ay += dy * s;
            az += dz * s;
        }
        expected[i * 4] = ax;
        expected[i * 4 + 1] = ay;
        expected[i * 4 + 2] = az;
    }
    let mut ctx = Context::new();
    let bp = ctx.buffer_f32(&pos);
    let ba = ctx.zeros_f32(n * 4);
    Prepared {
        ctx,
        args: vec![
            ArgValue::Buffer(bp),
            ArgValue::Buffer(ba),
            ArgValue::I32(n as i32),
        ],
        nd: NdRange::d1(n as u64, nbody_s(s) as u64),
        out: ba,
        expected: Expected::F32(expected),
        tolerance: 2e-2,
    }
}

// ===================== PAB-ST: Stencil =====================

const PAB_ST_SRC: &str = r#"
__kernel void pab_st(__global float* in, __global float* out, int w) {
    __local float lm[S][S];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    lm[ly][lx] = in[gy * w + gx];
    barrier(CLK_LOCAL_MEM_FENCE);
    int xl = max(lx - 1, 0);
    int xr = min(lx + 1, S - 1);
    int yu = max(ly - 1, 0);
    int yd = min(ly + 1, S - 1);
    out[gy * w + gx] = 0.5f * lm[ly][lx]
        + 0.125f * lm[ly][xl] + 0.125f * lm[ly][xr]
        + 0.125f * lm[yu][lx] + 0.125f * lm[yd][lx];
}
"#;

fn st_n(s: Scale) -> usize {
    match s {
        Scale::Test => 32,
        Scale::Small => 128,
        Scale::Paper => 512,
    }
}

fn st_s(s: Scale) -> usize {
    match s {
        Scale::Test => 8,
        Scale::Small => 16,
        Scale::Paper => 16,
    }
}

fn st_prepare(s: Scale) -> Prepared {
    let n = st_n(s);
    let tile = st_s(s);
    let mut r = rng();
    let input = randf(&mut r, n * n);
    // Reference: neighbours clamped to the work-group tile (the kernel
    // reads only its own tile's staged data).
    let mut expected = vec![0.0f32; n * n];
    for gy in 0..n {
        for gx in 0..n {
            let ty0 = gy / tile * tile;
            let tx0 = gx / tile * tile;
            let cl =
                |v: isize, lo: usize, hi: usize| -> usize { (v.max(lo as isize) as usize).min(hi) };
            let xl = cl(gx as isize - 1, tx0, tx0 + tile - 1);
            let xr = cl(gx as isize + 1, tx0, tx0 + tile - 1);
            let yu = cl(gy as isize - 1, ty0, ty0 + tile - 1);
            let yd = cl(gy as isize + 1, ty0, ty0 + tile - 1);
            expected[gy * n + gx] = 0.5 * input[gy * n + gx]
                + 0.125 * input[gy * n + xl]
                + 0.125 * input[gy * n + xr]
                + 0.125 * input[yu * n + gx]
                + 0.125 * input[yd * n + gx];
        }
    }
    let mut ctx = Context::new();
    let bi = ctx.buffer_f32(&input);
    let bo = ctx.zeros_f32(n * n);
    Prepared {
        ctx,
        args: vec![
            ArgValue::Buffer(bi),
            ArgValue::Buffer(bo),
            ArgValue::I32(n as i32),
        ],
        nd: NdRange::d2(n as u64, n as u64, tile as u64, tile as u64),
        out: bo,
        expected: Expected::F32(expected),
        tolerance: 1e-5,
    }
}

// ===================== ROD-SC: StreamCluster =====================

const ROD_SC_SRC: &str = r#"
__kernel void rod_sc(__global float* pts, __global float* centers,
                     __global float* out, int stride) {
    __local float c[D];
    int gx = get_global_id(0);
    int lx = get_local_id(0);
    if (lx < D) {
        c[lx] = centers[lx * stride];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    float acc = 0.0f;
    for (int k = 0; k < D; k++) {
        float d = pts[gx * D + k] - c[k];
        acc += d * d;
    }
    out[gx] = acc;
}
"#;

const SC_D: usize = 16;

fn sc_n(s: Scale) -> usize {
    match s {
        Scale::Test => 128,
        Scale::Small => 2048,
        Scale::Paper => 16384,
    }
}

fn sc_prepare(s: Scale) -> Prepared {
    let n = sc_n(s);
    let stride = n; // centre coordinates live in a column of an n x D matrix
    let mut r = rng();
    let pts = randf(&mut r, n * SC_D);
    // centers buffer: D coordinates strided `stride` apart.
    let centers = randf(&mut r, SC_D * stride);
    let centre: Vec<f32> = (0..SC_D).map(|k| centers[k * stride]).collect();
    let expected: Vec<f32> = (0..n)
        .map(|i| {
            (0..SC_D)
                .map(|k| {
                    let d = pts[i * SC_D + k] - centre[k];
                    d * d
                })
                .sum()
        })
        .collect();
    let mut ctx = Context::new();
    let bp = ctx.buffer_f32(&pts);
    let bc = ctx.buffer_f32(&centers);
    let bo = ctx.zeros_f32(n);
    Prepared {
        ctx,
        args: vec![
            ArgValue::Buffer(bp),
            ArgValue::Buffer(bc),
            ArgValue::Buffer(bo),
            ArgValue::I32(stride as i32),
        ],
        nd: NdRange::d1(n as u64, 64),
        out: bo,
        expected: Expected::F32(expected),
        tolerance: 1e-4,
    }
}

// ===================== EXT-CONV: image convolution (extension) ==========

/// Extension benchmark (not in the paper's Table I): a 3×3 convolution with
/// *halo* staging — the multi-pass loading case §IV-A discusses ("there are
/// applications — such as image convolution — where multiple passes are
/// required to load data from global memory to local memory... using any of
/// the pairs leads to the same correspondence").
const EXT_CONV_SRC: &str = r#"
__kernel void conv3x3(__global float* in, __global float* out,
                      __constant float* filt, int n) {
    __local float lm[S + 2][S + 2];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int wy = get_group_id(1);
    int gx = wx * S + lx;
    int gy = wy * S + ly;
    int w = n + 2;
    lm[ly + 1][lx + 1] = in[(gy + 1) * w + (gx + 1)];
    if (lx == 0) { lm[ly + 1][0] = in[(gy + 1) * w + (wx * S)]; }
    if (lx == S - 1) { lm[ly + 1][S + 1] = in[(gy + 1) * w + (wx * S + S + 1)]; }
    if (ly == 0) { lm[0][lx + 1] = in[(wy * S) * w + (gx + 1)]; }
    if (ly == S - 1) { lm[S + 1][lx + 1] = in[(wy * S + S + 1) * w + (gx + 1)]; }
    if (lx == 0) { if (ly == 0) { lm[0][0] = in[(wy * S) * w + (wx * S)]; } }
    if (lx == S - 1) { if (ly == 0) { lm[0][S + 1] = in[(wy * S) * w + (wx * S + S + 1)]; } }
    if (lx == 0) { if (ly == S - 1) { lm[S + 1][0] = in[(wy * S + S + 1) * w + (wx * S)]; } }
    if (lx == S - 1) { if (ly == S - 1) { lm[S + 1][S + 1] = in[(wy * S + S + 1) * w + (wx * S + S + 1)]; } }
    barrier(CLK_LOCAL_MEM_FENCE);
    float acc = 0.0f;
    for (int dy = 0; dy < 3; dy++) {
        for (int dx = 0; dx < 3; dx++) {
            acc += filt[dy * 3 + dx] * lm[ly + dy][lx + dx];
        }
    }
    out[gy * n + gx] = acc;
}
"#;

fn conv_n(s: Scale) -> usize {
    match s {
        Scale::Test => 32,
        Scale::Small => 256,
        Scale::Paper => 1024,
    }
}

fn conv_s(s: Scale) -> usize {
    match s {
        Scale::Test => 8,
        Scale::Small => 16,
        Scale::Paper => 16,
    }
}

fn conv_prepare(s: Scale) -> Prepared {
    let n = conv_n(s);
    let w = n + 2;
    let mut r = rng();
    let padded = randf(&mut r, w * w);
    let filt: Vec<f32> = vec![0.05, 0.1, 0.05, 0.1, 0.4, 0.1, 0.05, 0.1, 0.05];
    let mut expected = vec![0.0f32; n * n];
    for gy in 0..n {
        for gx in 0..n {
            let mut acc = 0.0f32;
            for dy in 0..3 {
                for dx in 0..3 {
                    acc += filt[dy * 3 + dx] * padded[(gy + dy) * w + (gx + dx)];
                }
            }
            expected[gy * n + gx] = acc;
        }
    }
    let mut ctx = Context::new();
    let bi = ctx.buffer_f32(&padded);
    let bo = ctx.zeros_f32(n * n);
    let bf = ctx.buffer_f32(&filt);
    let tile = conv_s(s) as u64;
    Prepared {
        ctx,
        args: vec![
            ArgValue::Buffer(bi),
            ArgValue::Buffer(bo),
            ArgValue::Buffer(bf),
            ArgValue::I32(n as i32),
        ],
        nd: NdRange::d2(n as u64, n as u64, tile, tile),
        out: bo,
        expected: Expected::F32(expected),
        tolerance: 1e-4,
    }
}

/// Extension applications beyond the paper's Table I.
pub fn extension_apps() -> Vec<App> {
    vec![App {
        id: "EXT-CONV",
        description: "3x3 convolution with halo staging (multi-pass GL/LS, §IV-A)",
        kernel: "conv3x3",
        source: EXT_CONV_SRC,
        disable: None,
        dataset: |s| format!("{0}x{0} image (padded)", conv_n(s)),
        options: |s| BuildOptions::new().define("S", conv_s(s)),
        prepare: conv_prepare,
    }]
}

// ===================== registry =====================

/// All 11 test applications (Table I; `oclMatrixMul` appears as its three
/// disabling variants, as in the paper's Fig. 10).
pub fn all_apps() -> Vec<App> {
    vec![
        App {
            id: "AMD-SS",
            description: "StringSearch: match a 16-char pattern against text",
            kernel: "amd_ss",
            source: AMD_SS_SRC,
            disable: None,
            dataset: |s| format!("{} B text, 16 B pattern", ss_tlen(s)),
            options: |_| BuildOptions::new().define("PL", SS_PL),
            prepare: ss_prepare,
        },
        App {
            id: "AMD-MT",
            description: "MatrixTranspose with float4 tiles",
            kernel: "amd_mt",
            source: AMD_MT_SRC,
            disable: None,
            dataset: |s| format!("{0}x{0} matrix (float4)", amd_mt_n(s)),
            options: |s| BuildOptions::new().define("S", amd_mt_s(s)),
            prepare: amd_mt_prepare,
        },
        App {
            id: "NVD-MT",
            description: "MatrixTranspose, scalar staging (paper Fig. 1)",
            kernel: "nvd_mt",
            source: NVD_MT_SRC,
            disable: None,
            dataset: |s| format!("{0}x{0} matrix", nvd_mt_n(s)),
            options: |s| BuildOptions::new().define("S", nvd_mt_s(s)),
            prepare: nvd_mt_prepare,
        },
        App {
            id: "AMD-RG",
            description: "RecursiveGaussian column filter",
            kernel: "amd_rg",
            source: AMD_RG_SRC,
            disable: None,
            dataset: |s| format!("{0}x{0} image", rg_n(s)),
            options: |s| BuildOptions::new().define("S", rg_s(s)),
            prepare: rg_prepare,
        },
        App {
            id: "AMD-MM",
            description: "MatrixMultiplication, column-accessed B staged",
            kernel: "amd_mm",
            source: AMD_MM_SRC,
            disable: None,
            dataset: |s| format!("{0}x{0} matrices ({1}-row slice)", mm_n(s), mm_rows(s)),
            options: |s| BuildOptions::new().define("S", mm_s(s)),
            prepare: mm_prepare,
        },
        App {
            id: "NVD-MM-A",
            description: "oclMatrixMul with tile A de-localised",
            kernel: "nvd_mm",
            source: NVD_MM_SRC,
            disable: Some(&["ta"]),
            dataset: |s| format!("{0}x{0} matrices ({1}-row slice)", mm_n(s), mm_rows(s)),
            options: |s| BuildOptions::new().define("S", mm_s(s)),
            prepare: mm_prepare,
        },
        App {
            id: "NVD-MM-B",
            description: "oclMatrixMul with tile B de-localised",
            kernel: "nvd_mm",
            source: NVD_MM_SRC,
            disable: Some(&["tb"]),
            dataset: |s| format!("{0}x{0} matrices ({1}-row slice)", mm_n(s), mm_rows(s)),
            options: |s| BuildOptions::new().define("S", mm_s(s)),
            prepare: mm_prepare,
        },
        App {
            id: "NVD-MM-AB",
            description: "oclMatrixMul with both tiles de-localised",
            kernel: "nvd_mm",
            source: NVD_MM_SRC,
            disable: Some(&["ta", "tb"]),
            dataset: |s| format!("{0}x{0} matrices ({1}-row slice)", mm_n(s), mm_rows(s)),
            options: |s| BuildOptions::new().define("S", mm_s(s)),
            prepare: mm_prepare,
        },
        App {
            id: "NVD-NBody",
            description: "All-pairs N-body with body tiles staged",
            kernel: "nvd_nbody",
            source: NVD_NBODY_SRC,
            disable: None,
            dataset: |s| format!("{} bodies", nbody_n(s)),
            options: |s| BuildOptions::new().define("S", nbody_s(s)),
            prepare: nbody_prepare,
        },
        App {
            id: "PAB-ST",
            description: "5-point stencil, tile staged in local memory",
            kernel: "pab_st",
            source: PAB_ST_SRC,
            disable: None,
            dataset: |s| format!("{0}x{0} grid", st_n(s)),
            options: |s| BuildOptions::new().define("S", st_s(s)),
            prepare: st_prepare,
        },
        App {
            id: "ROD-SC",
            description: "StreamCluster distance kernel, shared centre staged",
            kernel: "rod_sc",
            source: ROD_SC_SRC,
            disable: None,
            dataset: |s| format!("{} points, {}-d", sc_n(s), SC_D),
            options: |_| BuildOptions::new().define("D", SC_D),
            prepare: sc_prepare,
        },
    ]
}

/// Look up an application by its paper ID.
pub fn app_by_id(id: &str) -> Option<App> {
    all_apps().into_iter().find(|a| a.id == id)
}
