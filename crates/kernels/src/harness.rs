//! Compile-transform-run-validate plumbing shared by tests, examples and
//! the benchmark harness.

use grover_core::{Grover, GroverReport};
use grover_frontend::compile;
use grover_ir::Function;
use grover_obs::{Recorder, SpanId};
use grover_runtime::{
    enqueue_observed_backend, enqueue_with_backend, Backend, Context, ExecPolicy, LaunchStats,
    Limits, TraceSink,
};

use crate::apps::{App, Expected, Prepared, Scale};

/// A benchmark's kernel in both versions.
pub struct KernelPair {
    /// The original kernel (with local memory).
    pub original: Function,
    /// The Grover-transformed kernel (local memory disabled).
    pub transformed: Function,
    /// What Grover did (symbolic indices, outcomes).
    pub report: GroverReport,
}

/// Compile an app and run Grover on it.
///
/// Both kernel versions are run through the standard optimisation pipeline
/// (GVN + LICM + cleanup) before being compared — the stand-in for the
/// vendor compiler's `-O` level in the paper's measurement pipeline, so
/// the np ratios compare optimised code against optimised code.
pub fn prepare_pair(app: &App, scale: Scale) -> Result<KernelPair, String> {
    let opts = (app.options)(scale);
    let module = compile(app.source, &opts).map_err(|e| format!("{}: compile: {e}", app.id))?;
    let mut original = module
        .kernel(app.kernel)
        .ok_or_else(|| format!("{}: kernel `{}` missing", app.id, app.kernel))?
        .clone();
    let mut transformed = original.clone();
    let grover = match app.disable {
        Some(bufs) => Grover::for_buffers(bufs),
        None => Grover::new(),
    };
    let report = grover.run_on(&mut transformed);
    if !report.all_removed() {
        return Err(format!(
            "{}: Grover declined:\n{}",
            app.id,
            report.to_text()
        ));
    }
    grover_ir::passes::PassManager::optimize_pipeline().run_to_fixpoint(&mut original, 8);
    grover_ir::passes::PassManager::optimize_pipeline().run_to_fixpoint(&mut transformed, 8);
    grover_ir::verify(&original)
        .map_err(|e| format!("{}: optimised original IR invalid: {e:?}", app.id))?;
    grover_ir::verify(&transformed)
        .map_err(|e| format!("{}: transformed IR invalid: {e:?}", app.id))?;
    Ok(KernelPair {
        original,
        transformed,
        report,
    })
}

/// Result of one run.
pub struct AppRun {
    /// Interpreter launch statistics.
    pub stats: LaunchStats,
    /// Maximum relative error against the reference output.
    pub max_rel_err: f32,
}

/// Launch a kernel on a freshly prepared workload, stream the trace to
/// `sink`, and compare the output buffer to the reference.
pub fn run_prepared(
    kernel: &Function,
    prepared: Prepared,
    sink: &mut dyn TraceSink,
) -> Result<AppRun, String> {
    run_prepared_with(kernel, prepared, sink, ExecPolicy::Serial)
}

/// [`run_prepared`] under an explicit work-group schedule.
pub fn run_prepared_with(
    kernel: &Function,
    prepared: Prepared,
    sink: &mut dyn TraceSink,
    policy: ExecPolicy,
) -> Result<AppRun, String> {
    run_prepared_backend(kernel, prepared, sink, policy, Backend::Interp)
}

/// [`run_prepared_with`] on an explicit execution [`Backend`].
pub fn run_prepared_backend(
    kernel: &Function,
    mut prepared: Prepared,
    sink: &mut dyn TraceSink,
    policy: ExecPolicy,
    backend: Backend,
) -> Result<AppRun, String> {
    let stats = enqueue_with_backend(
        &mut prepared.ctx,
        kernel,
        &prepared.args,
        &prepared.nd,
        sink,
        &Limits::default(),
        policy,
        backend,
    )
    .map_err(|e| format!("execution failed: {e}"))?;
    finish_run(prepared, stats)
}

/// [`run_prepared_with`] with telemetry: the launch records one `launch`
/// span on `recorder` (under `parent`, if given) carrying per-space access
/// counts, bytes and worker utilisation — see
/// [`grover_runtime::enqueue_observed`]. With a disabled recorder this is
/// exactly `run_prepared_with`.
pub fn run_prepared_observed(
    kernel: &Function,
    prepared: Prepared,
    sink: &mut dyn TraceSink,
    policy: ExecPolicy,
    recorder: &dyn Recorder,
    parent: Option<SpanId>,
) -> Result<AppRun, String> {
    run_prepared_observed_backend(
        kernel,
        prepared,
        sink,
        policy,
        Backend::Interp,
        recorder,
        parent,
    )
}

/// [`run_prepared_observed`] on an explicit execution [`Backend`]; the
/// launch span records the backend.
pub fn run_prepared_observed_backend(
    kernel: &Function,
    mut prepared: Prepared,
    sink: &mut dyn TraceSink,
    policy: ExecPolicy,
    backend: Backend,
    recorder: &dyn Recorder,
    parent: Option<SpanId>,
) -> Result<AppRun, String> {
    let stats = enqueue_observed_backend(
        &mut prepared.ctx,
        kernel,
        &prepared.args,
        &prepared.nd,
        sink,
        &Limits::default(),
        policy,
        backend,
        recorder,
        parent,
    )
    .map_err(|e| format!("execution failed: {e}"))?;
    finish_run(prepared, stats)
}

fn finish_run(prepared: Prepared, stats: LaunchStats) -> Result<AppRun, String> {
    let max_rel_err = compare(&prepared.ctx, &prepared)?;
    if max_rel_err > prepared.tolerance {
        return Err(format!(
            "output mismatch: max relative error {max_rel_err} > tolerance {}",
            prepared.tolerance
        ));
    }
    Ok(AppRun { stats, max_rel_err })
}

fn compare(ctx: &Context, p: &Prepared) -> Result<f32, String> {
    match &p.expected {
        Expected::I32(exp) => {
            let got = ctx.read_i32(p.out);
            if got.len() != exp.len() {
                return Err("output length mismatch".into());
            }
            for (i, (g, e)) in got.iter().zip(exp).enumerate() {
                if g != e {
                    return Err(format!("element {i}: got {g}, expected {e}"));
                }
            }
            Ok(0.0)
        }
        Expected::F32(exp) => {
            let got = ctx.read_f32(p.out);
            if got.len() != exp.len() {
                return Err("output length mismatch".into());
            }
            let mut worst = 0.0f32;
            for (i, (g, e)) in got.iter().zip(exp).enumerate() {
                let denom = e.abs().max(1.0);
                let rel = (g - e).abs() / denom;
                if !rel.is_finite() {
                    return Err(format!("element {i}: got {g}, expected {e}"));
                }
                worst = worst.max(rel);
            }
            Ok(worst)
        }
    }
}

/// Full validation of one app: both kernel versions must run and match the
/// scalar reference (the paper's correctness claim for Table III).
pub fn validate_app(app: &App, scale: Scale) -> Result<KernelPair, String> {
    let pair = prepare_pair(app, scale)?;
    let mut null = grover_runtime::NullSink;
    run_prepared(&pair.original, (app.prepare)(scale), &mut null)
        .map_err(|e| format!("{} original: {e}", app.id))?;
    run_prepared(&pair.transformed, (app.prepare)(scale), &mut null)
        .map_err(|e| format!("{} transformed: {e}", app.id))?;
    Ok(pair)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::all_apps;
    use grover_runtime::CountingSink;

    #[test]
    fn every_app_compiles_and_transforms() {
        for app in all_apps() {
            let pair = prepare_pair(&app, Scale::Test).unwrap_or_else(|e| panic!("{e}"));
            // The transformed version must not allocate selected local bufs.
            match app.disable {
                None => assert_eq!(
                    pair.transformed.local_mem_bytes(),
                    0,
                    "{}: local memory remains",
                    app.id
                ),
                Some(bufs) => {
                    for b in bufs {
                        let lb = pair
                            .transformed
                            .local_bufs()
                            .iter()
                            .find(|l| &l.name == b)
                            .unwrap();
                        assert_eq!(lb.len(), 0, "{}: buffer {b} remains", app.id);
                    }
                }
            }
        }
    }

    #[test]
    fn every_app_validates_both_versions() {
        for app in all_apps() {
            validate_app(&app, Scale::Test).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn transformed_versions_have_no_local_traffic() {
        for app in all_apps() {
            if app.disable.is_some() && app.id != "NVD-MM-AB" {
                continue; // partial variants legitimately keep local traffic
            }
            let pair = prepare_pair(&app, Scale::Test).unwrap();
            let mut sink = CountingSink::default();
            run_prepared(&pair.transformed, (app.prepare)(Scale::Test), &mut sink)
                .unwrap_or_else(|e| panic!("{}: {e}", app.id));
            assert_eq!(sink.local_loads, 0, "{}", app.id);
            assert_eq!(sink.local_stores, 0, "{}", app.id);
            assert_eq!(sink.barriers, 0, "{}: barriers remain", app.id);
        }
    }

    #[test]
    fn original_versions_do_use_local_memory() {
        for app in all_apps() {
            let pair = prepare_pair(&app, Scale::Test).unwrap();
            let mut sink = CountingSink::default();
            run_prepared(&pair.original, (app.prepare)(Scale::Test), &mut sink)
                .unwrap_or_else(|e| panic!("{}: {e}", app.id));
            assert!(sink.local_stores > 0, "{}: no local stores?", app.id);
            assert!(sink.local_loads > 0, "{}: no local loads?", app.id);
            assert!(sink.barriers > 0, "{}: no barriers?", app.id);
        }
    }

    #[test]
    fn partial_mm_variants_keep_other_tile() {
        let app = crate::apps::app_by_id("NVD-MM-A").unwrap();
        let pair = prepare_pair(&app, Scale::Test).unwrap();
        let mut sink = CountingSink::default();
        run_prepared(&pair.transformed, (app.prepare)(Scale::Test), &mut sink).unwrap();
        // tile B still staged -> local traffic and barriers remain.
        assert!(sink.local_stores > 0);
        assert!(sink.barriers > 0);
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use crate::apps::extension_apps;
    use grover_runtime::CountingSink;

    #[test]
    fn convolution_transforms_with_nine_loads() {
        let app = &extension_apps()[0];
        let pair = prepare_pair(app, Scale::Test).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(pair.transformed.local_mem_bytes(), 0);
        // 9 local loads rewired (the 3x3 window), all solved from the
        // interior staging pair despite 9 distinct (GL, LS) passes.
        assert_eq!(
            pair.report.buffers[0].ngl.len(),
            1,
            "one LL site in the loop nest"
        );
        assert_eq!(pair.report.buffers[0].solutions.len(), 1);
    }

    #[test]
    fn convolution_validates_both_versions() {
        let app = &extension_apps()[0];
        validate_app(app, Scale::Test).unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn convolution_transformed_has_no_local_traffic() {
        let app = &extension_apps()[0];
        let pair = prepare_pair(app, Scale::Test).unwrap();
        let mut sink = CountingSink::default();
        run_prepared(&pair.transformed, (app.prepare)(Scale::Test), &mut sink).unwrap();
        assert_eq!(sink.local_loads + sink.local_stores, 0);
        assert_eq!(sink.barriers, 0);
    }
}
