#![warn(missing_docs)]
//! # grover-kernels
//!
//! The 11 benchmark applications of the Grover paper (Table I), rewritten
//! in the OpenCL C subset of [`grover_frontend`], each with dataset
//! generators, launch configurations (default work-group sizes, §V-B) and
//! scalar reference implementations.
//!
//! | ID | Application | Origin |
//! |----|-------------|--------|
//! | AMD-SS | StringSearch | AMD SDK |
//! | AMD-MT | MatrixTranspose (float4 tiles) | AMD SDK |
//! | NVD-MT | MatrixTranspose (staging) | NVIDIA SDK |
//! | AMD-RG | RecursiveGaussian | AMD SDK |
//! | AMD-MM | MatrixMultiplication | AMD SDK |
//! | NVD-MM-A/B/AB | oclMatrixMul, tile A/B/both de-localised | NVIDIA SDK |
//! | NVD-NBody | N-body simulation | NVIDIA SDK |
//! | PAB-ST | Stencil | Parboil |
//! | ROD-SC | StreamCluster | Rodinia |
//!
//! All kernels use `__local` memory in their original form; the paper's
//! experiment compares them against the version Grover produces.

pub mod apps;
pub mod harness;

pub use apps::{all_apps, app_by_id, extension_apps, App, Expected, Prepared, Scale};
pub use harness::{
    prepare_pair, run_prepared, run_prepared_backend, run_prepared_observed,
    run_prepared_observed_backend, run_prepared_with, validate_app, AppRun, KernelPair,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_test_cases() {
        // 11 rows of Table I (MM variants count as three, matching the
        // paper's 11-application list where oclMatrixMul appears as
        // NVD-MM-A/B/AB and AMD-MM separately).
        assert_eq!(all_apps().len(), 11);
    }

    #[test]
    fn ids_are_unique() {
        let apps = all_apps();
        let mut ids: Vec<&str> = apps.iter().map(|a| a.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), apps.len());
    }

    #[test]
    fn lookup_by_id() {
        assert!(app_by_id("NVD-MT").is_some());
        assert!(app_by_id("NVD-MM-AB").is_some());
        assert!(app_by_id("XXX").is_none());
    }

    #[test]
    fn datasets_are_deterministic() {
        // Same scale => identical expected outputs (seeded RNG), so np
        // comparisons across versions see identical inputs.
        for app in all_apps() {
            let a = (app.prepare)(Scale::Test);
            let b = (app.prepare)(Scale::Test);
            match (&a.expected, &b.expected) {
                (Expected::F32(x), Expected::F32(y)) => assert_eq!(x, y, "{}", app.id),
                (Expected::I32(x), Expected::I32(y)) => assert_eq!(x, y, "{}", app.id),
                _ => panic!("{}: expected kinds differ", app.id),
            }
        }
    }

    #[test]
    fn launch_geometry_is_consistent() {
        for app in all_apps().iter().chain(&extension_apps()) {
            for scale in [Scale::Test, Scale::Small] {
                let p = (app.prepare)(scale);
                for d in 0..3 {
                    assert_eq!(
                        p.nd.global[d] % p.nd.local[d],
                        0,
                        "{} at {scale:?}: dim {d}",
                        app.id
                    );
                }
            }
        }
    }

    #[test]
    fn dataset_descriptions_mention_sizes() {
        for app in all_apps() {
            let d = (app.dataset)(Scale::Small);
            assert!(!d.is_empty(), "{}", app.id);
        }
    }

    #[test]
    fn extension_registry_is_separate() {
        let ext = extension_apps();
        assert_eq!(ext.len(), 1);
        assert_eq!(ext[0].id, "EXT-CONV");
        assert!(all_apps().iter().all(|a| a.id != "EXT-CONV"));
    }
}
