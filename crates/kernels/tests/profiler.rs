//! Determinism and reconciliation gate for the per-opcode bytecode
//! profiler: for every app and both kernel versions, op counts must be
//! bit-identical across Serial and Parallel schedules, and the profile's
//! total charge must equal the launch's instruction tally on both the
//! bytecode backend itself and the reference interpreter.

use grover_kernels::{all_apps, extension_apps, prepare_pair, App, Scale};
use grover_runtime::{Backend, ExecPolicy, NullSink, OpProfile};

fn suite() -> Vec<App> {
    let mut apps = all_apps();
    apps.extend(extension_apps());
    assert!(apps.len() >= 12, "expected the full 12-app suite");
    apps
}

fn profile_one(
    app: &App,
    kernel: &grover_ir::Function,
    policy: ExecPolicy,
    backend: Backend,
) -> (u64, Option<OpProfile>) {
    let p = (app.prepare)(Scale::Test);
    let mut ctx = p.ctx;
    let (stats, profile) = grover_runtime::enqueue_profiled(
        &mut ctx,
        kernel,
        &p.args,
        &p.nd,
        &mut NullSink,
        &grover_runtime::Limits::default(),
        policy,
        backend,
    )
    .unwrap_or_else(|e| panic!("{} [{}/{:?}]: {e}", app.id, backend, policy));
    (stats.instructions, profile)
}

#[test]
fn profile_identical_across_schedules_and_reconciles_with_stats() {
    for app in suite() {
        let pair = prepare_pair(&app, Scale::Test).unwrap_or_else(|e| panic!("{e}"));
        for (which, kernel) in [
            ("original", &pair.original),
            ("transformed", &pair.transformed),
        ] {
            let (insts_serial, prof_serial) =
                profile_one(&app, kernel, ExecPolicy::Serial, Backend::Bytecode);
            let (insts_par, prof_par) = profile_one(
                &app,
                kernel,
                ExecPolicy::Parallel { threads: 2 },
                Backend::Bytecode,
            );
            let prof_serial =
                prof_serial.unwrap_or_else(|| panic!("{} {which}: no serial profile", app.id));
            let prof_par =
                prof_par.unwrap_or_else(|| panic!("{} {which}: no parallel profile", app.id));

            // Bit-identical under any schedule: merging per-worker counters
            // is plain addition, so the work-group partition cannot show.
            assert_eq!(
                prof_serial, prof_par,
                "{} {which}: profile differs between Serial and Parallel",
                app.id
            );

            // Exact reconciliation with the launch's own instruction tally.
            assert_eq!(
                prof_serial.total_charged, insts_serial,
                "{} {which}: total_charged != LaunchStats.instructions (bytecode)",
                app.id
            );
            assert_eq!(insts_serial, insts_par, "{} {which}: stats differ", app.id);

            // ... and with the reference interpreter's tally, which counts
            // original IR instructions (fused ops charged twice, phis once).
            let (insts_interp, prof_interp) =
                profile_one(&app, kernel, ExecPolicy::Serial, Backend::Interp);
            assert_eq!(
                prof_serial.total_charged, insts_interp,
                "{} {which}: total_charged != interpreter instruction tally",
                app.id
            );
            assert!(
                prof_interp.is_none(),
                "{} {which}: interpreter backend must not produce a profile",
                app.id
            );

            // Internal consistency: rows sum to the totals, blocks too.
            assert_eq!(
                prof_serial.ops.iter().map(|o| o.count).sum::<u64>(),
                prof_serial.total_count,
                "{} {which}: op rows do not sum to total_count",
                app.id
            );
            assert_eq!(
                prof_serial.ops.iter().map(|o| o.charged).sum::<u64>(),
                prof_serial.total_charged,
                "{} {which}: op rows do not sum to total_charged",
                app.id
            );
            assert_eq!(
                prof_serial.blocks.iter().map(|b| b.charged).sum::<u64>(),
                prof_serial.total_charged,
                "{} {which}: block rows do not sum to total_charged",
                app.id
            );
            assert!(
                prof_serial.total_count > 0,
                "{} {which}: empty profile",
                app.id
            );
        }
    }
}
