//! Launch-telemetry acceptance tests: the metrics a launch span records
//! must be schedule-independent — bit-identical between `ExecPolicy::Serial`
//! and `ExecPolicy::Parallel` — for every bundled app, in both kernel
//! versions. Wall-time and utilisation attributes are the only ones allowed
//! to differ.

use grover_kernels::{all_apps, prepare_pair, run_prepared_observed, Scale};
use grover_obs::{MemoryRecorder, Snapshot};
use grover_runtime::{ExecPolicy, NullSink};

/// The deterministic launch-span metrics (everything except wall time,
/// worker count/utilisation and the policy tag).
const METRIC_KEYS: &[&str] = &[
    "instructions",
    "barriers",
    "global_loads",
    "global_stores",
    "local_loads",
    "local_stores",
    "constant_loads",
    "private_loads",
    "private_stores",
    "bytes_loaded",
    "bytes_stored",
    "global_bytes_loaded",
    "global_bytes_stored",
    "local_bytes_loaded",
    "local_bytes_stored",
    "constant_bytes_loaded",
    "work_items",
    "work_groups",
];

fn observed_snapshot(
    kernel: &grover_ir::Function,
    prepared: grover_kernels::Prepared,
    policy: ExecPolicy,
) -> Snapshot {
    let rec = MemoryRecorder::new();
    run_prepared_observed(kernel, prepared, &mut NullSink, policy, &rec, None)
        .unwrap_or_else(|e| panic!("{e}"));
    rec.snapshot()
}

fn launch_metrics(snap: &Snapshot) -> Vec<(&'static str, u64)> {
    let span = snap.span("launch").expect("launch span recorded");
    METRIC_KEYS
        .iter()
        .map(|&k| {
            (
                k,
                span.attr_u64(k)
                    .unwrap_or_else(|| panic!("metric `{k}` missing")),
            )
        })
        .collect()
}

#[test]
fn launch_metrics_are_schedule_independent() {
    for app in all_apps() {
        let pair = prepare_pair(&app, Scale::Test).unwrap_or_else(|e| panic!("{e}"));
        for (version, kernel) in [
            ("original", &pair.original),
            ("transformed", &pair.transformed),
        ] {
            let serial = observed_snapshot(kernel, (app.prepare)(Scale::Test), ExecPolicy::Serial);
            let parallel = observed_snapshot(
                kernel,
                (app.prepare)(Scale::Test),
                ExecPolicy::Parallel { threads: 2 },
            );
            assert_eq!(
                launch_metrics(&serial),
                launch_metrics(&parallel),
                "{} {version}: serial and parallel launch metrics differ",
                app.id
            );
        }
    }
}

#[test]
fn worker_events_cover_every_group() {
    let app = grover_kernels::app_by_id("NVD-MT").unwrap();
    let pair = prepare_pair(&app, Scale::Test).unwrap();
    let snap = observed_snapshot(
        &pair.original,
        (app.prepare)(Scale::Test),
        ExecPolicy::Parallel { threads: 2 },
    );
    let span = snap.span("launch").unwrap();
    let work_groups = span.attr_u64("work_groups").unwrap();
    let workers = snap.events_named("worker");
    assert!(!workers.is_empty());
    let claimed: u64 = workers
        .iter()
        .map(|w| {
            w.attr("groups")
                .and_then(grover_obs::Value::as_u64)
                .unwrap()
        })
        .sum();
    assert_eq!(claimed, work_groups);
    for w in &workers {
        assert_eq!(w.span, Some(span.id));
        assert!(w.attr("busy_us").is_some());
        assert!(w.attr("util").is_some());
    }
}

#[test]
fn launch_span_reconciles_per_space_totals() {
    let app = grover_kernels::app_by_id("AMD-MM").unwrap();
    let pair = prepare_pair(&app, Scale::Test).unwrap();
    let snap = observed_snapshot(
        &pair.original,
        (app.prepare)(Scale::Test),
        ExecPolicy::Serial,
    );
    let span = snap.span("launch").unwrap();
    let per_space_bytes_loaded = span.attr_u64("global_bytes_loaded").unwrap()
        + span.attr_u64("local_bytes_loaded").unwrap()
        + span.attr_u64("constant_bytes_loaded").unwrap();
    assert_eq!(
        per_space_bytes_loaded,
        span.attr_u64("bytes_loaded").unwrap()
    );
    assert!(span.attr_u64("local_loads").unwrap() > 0);
}
