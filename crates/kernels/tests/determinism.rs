//! Parallel work-group scheduling must be unobservable: for every bundled
//! app and both kernel versions, `ExecPolicy::Parallel` produces output
//! buffers, `LaunchStats` and a merged trace stream bit-identical to
//! `ExecPolicy::Serial`.

use grover_kernels::{all_apps, prepare_pair, Scale};
use grover_runtime::{
    enqueue_with_policy, BufferData, ExecPolicy, LaunchStats, Limits, NullSink, VecSink,
};

/// Output buffer as raw bits, so the comparison is bit-exact even for f32.
fn out_bits(p: &grover_kernels::Prepared) -> Vec<u64> {
    match p.ctx.data(p.out) {
        BufferData::F32(v) => v.iter().map(|x| x.to_bits() as u64).collect(),
        BufferData::I32(v) => v.iter().map(|&x| x as u32 as u64).collect(),
        BufferData::I64(v) => v.iter().map(|&x| x as u64).collect(),
    }
}

fn launch(
    kernel: &grover_ir::Function,
    app: &grover_kernels::App,
    policy: ExecPolicy,
) -> (LaunchStats, VecSink, Vec<u64>) {
    let mut prepared = (app.prepare)(Scale::Test);
    let mut sink = VecSink::default();
    let stats = enqueue_with_policy(
        &mut prepared.ctx,
        kernel,
        &prepared.args,
        &prepared.nd,
        &mut sink,
        &Limits::default(),
        policy,
    )
    .unwrap_or_else(|e| panic!("{} under {policy:?}: {e}", app.id));
    let bits = out_bits(&prepared);
    (stats, sink, bits)
}

#[test]
fn parallel_matches_serial_across_app_suite() {
    for app in all_apps() {
        let pair = prepare_pair(&app, Scale::Test).unwrap_or_else(|e| panic!("{e}"));
        for (version, kernel) in [
            ("original", &pair.original),
            ("transformed", &pair.transformed),
        ] {
            let (s_stats, s_sink, s_bits) = launch(kernel, &app, ExecPolicy::Serial);
            let (p_stats, p_sink, p_bits) =
                launch(kernel, &app, ExecPolicy::Parallel { threads: 4 });

            assert_eq!(s_stats, p_stats, "{} {version}: LaunchStats differ", app.id);
            assert_eq!(
                s_sink.barriers, p_sink.barriers,
                "{} {version}: barrier streams differ",
                app.id
            );
            assert_eq!(
                s_sink.events.len(),
                p_sink.events.len(),
                "{} {version}: event counts differ",
                app.id
            );
            for (i, (se, pe)) in s_sink.events.iter().zip(&p_sink.events).enumerate() {
                assert_eq!(se, pe, "{} {version}: trace event {i} differs", app.id);
            }
            assert_eq!(
                s_bits, p_bits,
                "{} {version}: output buffers differ",
                app.id
            );
        }
    }
}

#[test]
fn parallel_auto_and_single_worker_match_serial() {
    let app = grover_kernels::app_by_id("NVD-MT").unwrap();
    let pair = prepare_pair(&app, Scale::Test).unwrap();
    let (s_stats, s_sink, s_bits) = launch(&pair.original, &app, ExecPolicy::Serial);
    for policy in [
        ExecPolicy::parallel_auto(),
        ExecPolicy::Parallel { threads: 1 },
    ] {
        let (p_stats, p_sink, p_bits) = launch(&pair.original, &app, policy);
        assert_eq!(s_stats, p_stats, "{policy:?}");
        assert_eq!(s_sink.events, p_sink.events, "{policy:?}");
        assert_eq!(s_sink.barriers, p_sink.barriers, "{policy:?}");
        assert_eq!(s_bits, p_bits, "{policy:?}");
    }
}

#[test]
fn parallel_null_sink_still_produces_identical_outputs() {
    // NullSink opts out of event buffering (`wants_events`); the outputs
    // and stats must nevertheless match the serial run exactly.
    let app = grover_kernels::app_by_id("NVD-MM-AB").unwrap();
    let pair = prepare_pair(&app, Scale::Test).unwrap();

    let run = |policy| {
        let mut prepared = (app.prepare)(Scale::Test);
        let stats = enqueue_with_policy(
            &mut prepared.ctx,
            &pair.original,
            &prepared.args,
            &prepared.nd,
            &mut NullSink,
            &Limits::default(),
            policy,
        )
        .unwrap();
        (stats, out_bits(&prepared))
    };
    let (s_stats, s_bits) = run(ExecPolicy::Serial);
    let (p_stats, p_bits) = run(ExecPolicy::Parallel { threads: 3 });
    assert_eq!(s_stats, p_stats);
    assert_eq!(s_bits, p_bits);
}
