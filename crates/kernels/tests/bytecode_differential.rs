//! Differential gate for the bytecode backend: every app, both kernel
//! versions, both schedules, must produce bit-identical output buffers,
//! identical launch statistics and identical trace tallies on the
//! interpreter and the bytecode backend.

use grover_kernels::{
    all_apps, extension_apps, prepare_pair, run_prepared_backend, App, Expected, Prepared, Scale,
};
use grover_runtime::{Backend, CountingSink, ExecPolicy, LaunchStats};

/// Output buffer as raw bits, so float comparison is bit-exact rather than
/// tolerance-based.
enum Bits {
    I32(Vec<i32>),
    F32(Vec<u32>),
}

impl PartialEq for Bits {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Bits::I32(a), Bits::I32(b)) => a == b,
            (Bits::F32(a), Bits::F32(b)) => a == b,
            _ => false,
        }
    }
}

struct Observed {
    bits: Bits,
    stats: LaunchStats,
    counts: CountingSink,
}

fn run_one(
    app: &App,
    kernel: &grover_ir::Function,
    policy: ExecPolicy,
    backend: Backend,
) -> Observed {
    let prepared = (app.prepare)(Scale::Test);
    let mut sink = CountingSink::default();
    // Keep the prepared workload alive past the run so the output buffer
    // can be read back bit-for-bit: re-prepare and run manually.
    let Prepared {
        mut ctx,
        args,
        nd,
        out,
        expected,
        ..
    } = prepared;
    let stats = grover_runtime::enqueue_with_backend(
        &mut ctx,
        kernel,
        &args,
        &nd,
        &mut sink,
        &grover_runtime::Limits::default(),
        policy,
        backend,
    )
    .unwrap_or_else(|e| panic!("{} [{}/{:?}]: {e}", app.id, backend, policy));
    let bits = match expected {
        Expected::I32(_) => Bits::I32(ctx.read_i32(out).to_vec()),
        Expected::F32(_) => Bits::F32(ctx.read_f32(out).iter().map(|f| f.to_bits()).collect()),
    };
    Observed {
        bits,
        stats,
        counts: sink,
    }
}

fn assert_identical(app: &App, kernel: &grover_ir::Function, which: &str, policy: ExecPolicy) {
    let a = run_one(app, kernel, policy, Backend::Interp);
    let b = run_one(app, kernel, policy, Backend::Bytecode);
    assert!(
        a.bits == b.bits,
        "{} {which} {policy:?}: output bits differ between backends",
        app.id
    );
    assert_eq!(
        a.stats, b.stats,
        "{} {which} {policy:?}: launch stats differ",
        app.id
    );
    let (ca, cb) = (&a.counts, &b.counts);
    assert_eq!(
        (ca.instructions, ca.barriers),
        (cb.instructions, cb.barriers),
        "{} {which} {policy:?}: instruction/barrier tallies differ",
        app.id
    );
    assert_eq!(
        (
            ca.global_loads,
            ca.global_stores,
            ca.local_loads,
            ca.local_stores
        ),
        (
            cb.global_loads,
            cb.global_stores,
            cb.local_loads,
            cb.local_stores
        ),
        "{} {which} {policy:?}: access tallies differ",
        app.id
    );
    assert_eq!(
        (ca.bytes_loaded, ca.bytes_stored),
        (cb.bytes_loaded, cb.bytes_stored),
        "{} {which} {policy:?}: byte tallies differ",
        app.id
    );
}

fn suite() -> Vec<App> {
    let mut apps = all_apps();
    apps.extend(extension_apps());
    assert!(apps.len() >= 12, "expected the full 12-app suite");
    apps
}

#[test]
fn all_apps_bit_identical_serial() {
    for app in suite() {
        let pair = prepare_pair(&app, Scale::Test).unwrap_or_else(|e| panic!("{e}"));
        assert_identical(&app, &pair.original, "original", ExecPolicy::Serial);
        assert_identical(&app, &pair.transformed, "transformed", ExecPolicy::Serial);
    }
}

#[test]
fn all_apps_bit_identical_parallel() {
    let policy = ExecPolicy::Parallel { threads: 2 };
    for app in suite() {
        let pair = prepare_pair(&app, Scale::Test).unwrap_or_else(|e| panic!("{e}"));
        assert_identical(&app, &pair.original, "original", policy);
        assert_identical(&app, &pair.transformed, "transformed", policy);
    }
}

#[test]
fn bytecode_validates_against_reference() {
    // Beyond matching the interpreter, the bytecode backend must satisfy
    // the apps' own reference checks (exact for i32, tolerance for f32).
    for app in suite() {
        let pair = prepare_pair(&app, Scale::Test).unwrap_or_else(|e| panic!("{e}"));
        for kernel in [&pair.original, &pair.transformed] {
            let mut sink = grover_runtime::NullSink;
            run_prepared_backend(
                kernel,
                (app.prepare)(Scale::Test),
                &mut sink,
                ExecPolicy::Serial,
                Backend::Bytecode,
            )
            .unwrap_or_else(|e| panic!("{}: {e}", app.id));
        }
    }
}
