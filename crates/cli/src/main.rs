//! `grover` — command-line driver for the local-memory-removal toolchain.
//!
//! ```text
//! grover transform <kernel.cl> [-D NAME=VAL ...] [--kernel NAME] [--keep-barriers] [--passes SEQ]
//!     Compile, run the Grover pass, print the report and the before/after
//!     IR. `--passes` names an explicit comma-separated pass sequence
//!     (e.g. `local-removal,barrier-elim,remap`) run through the
//!     composable pipeline, with a per-pass report.
//!
//! grover autotune <app-id> [--device SNB|Nehalem|MIC|Fermi|Kepler|Tahiti] [--scale test|small|paper] [--threads N]
//!                 [--strict] [--json] [--no-verify] [--deadline-ms N] [--retries N] [--backoff-ms N]
//!                 [--passes SEQ[;SEQ...]] [--predict model.json] [--predict-threshold X]
//!     Tune a bundled benchmark on a device via the hardened pipeline: the
//!     original kernel races a device-seeded set of candidate pass
//!     sequences (or the `--passes` override, `;`-separated) under the
//!     measurement watchdog; transient failures are retried, and the
//!     winner's output buffers are bit-compared against the original. The
//!     decision records the winning sequence. A failing or divergent
//!     winner gracefully falls back to the original (exit 0) unless
//!     `--strict` is given (exit 8). `--threads N` runs work-groups on N
//!     host threads (0 = one per CPU); the simulated cycle counts are
//!     identical to a serial run.
//!
//! grover profile <app-id> [--scale test|small|paper] [--threads N] [--json] [--ops]
//!     Run both kernel versions of a bundled benchmark and print a
//!     side-by-side memory-traffic report (per-address-space load/store
//!     counts, bytes moved, barriers, instructions) with deltas — the
//!     paper's §VI-C reasons analysis — plus the per-buffer pass outcomes
//!     with structured reasons. With `--ops` (requires `--backend
//!     bytecode`) the report is instead the per-opcode execution profile
//!     of the compiled bytecode: executed-op counts and charged budget
//!     units per opcode kind and per basic block, reconciled exactly
//!     against the launch's instruction tally.
//!
//! grover fuzz [--seed N] [--cases N] [--json] [--out-dir DIR]
//!     Run a differential fuzzing campaign: generate randomized
//!     software-cache kernels (plus deliberate must-reject variants), run
//!     each through frontend → Grover pass → interpreter, and bit-compare
//!     original vs transformed outputs under serial and parallel
//!     schedules. Failures are shrunk to standalone reproducers under
//!     `--out-dir` (default `fuzz-regressions/`). Exit 9 if any case
//!     fails. A campaign is a pure function of `(seed, cases)`.
//!
//! grover serve [--addr HOST:PORT] [--cache-dir DIR] [--threads N] [--queue-depth N]
//!              [--breaker-threshold N] [--breaker-cooldown-ms MS]
//!              [--io-timeout-ms MS] [--compact-threshold N]
//!              [--cache-capacity N] [--max-deadline-ms N]
//!              [--flight-capacity N] [--profile-ops]
//!     Run the persistent tuning-cache service: an HTTP compile/tune API
//!     over the pipeline with a content-addressed decision cache that
//!     warm-starts from `--cache-dir` on boot. Every request is traced
//!     end to end (`x-grover-trace-id` honoured and echoed) and the last
//!     `--flight-capacity` spans/events are kept in an in-memory flight
//!     ring (`GET /debug/flight`), dumped to `flight-<ts>.jsonl` in the
//!     cache dir on panic or shutdown. `--profile-ops` attaches the
//!     per-opcode bytecode profile to tune spans (bytecode backend
//!     only). Runs until `POST /admin/shutdown`; shutdown flushes the
//!     cache and the trace recorder.
//!
//! grover predict <app-id> --model model.json [--device NAME] [--scale test|small|paper]
//!                [--predict-threshold X] [--threads N] [--json]
//!     Answer the tuning question for a bundled benchmark from a trained
//!     model using only static kernel features — zero launches on a
//!     confident prediction. Below the confidence threshold the tuner
//!     falls back to the measured race and reports whether the model's
//!     abstained guess agreed with the measurement.
//!
//! grover train --corpus FILE --out model.json [--iters N] [--l2 X] [--learning-rate X]
//!              [--threshold X] [--eval]
//!     Fit the interpretable per-device scorer (ridge regression on
//!     ln(np) + nearest-neighbour fallback) from a JSONL corpus produced
//!     by `grover corpus export`. The emitted model bakes in the feature
//!     schema hash and the pass-fingerprint epoch, so a stale model is
//!     observably rejected at load. `--eval` additionally runs a
//!     leave-one-kernel-out evaluation and prints the accuracy table.
//!
//! grover corpus export [--out FILE] [--cache-dir DIR] [--scale test|small|paper]
//!                      [--devices A,B,...] [--apps A,B,...] [--threads N] [--no-verify]
//!     Dump a JSONL training table of measured decisions joined with
//!     feature vectors. With `--cache-dir` the rows come from a serve
//!     journal (decisions persisted with their features); otherwise the
//!     bundled suite is raced on the spot — the fixture generator for
//!     the predict tests. Every row carries the schema hash + epoch.
//!
//! grover list
//!     List the bundled benchmark applications.
//! ```
//!
//! ## Global flags
//!
//! `--trace-out <file.jsonl>` (any position): stream telemetry — spans and
//! events from the pass, the runtime launch engine and the tuner — to the
//! given file, one JSON object per line. Without the flag the no-op
//! recorder is used and nothing is collected.
//!
//! `--backend interp|bytecode` (any position, default `interp`): execution
//! backend for every kernel launch the command performs — the tree-walking
//! interpreter or the compiled register-bytecode engine. Both are
//! bit-identical by construction (see the differential gate); `bytecode`
//! trades a one-off per-launch lowering for a much faster dispatch loop.
//! Recorded in `--json` output and on telemetry spans.
//!
//! ## Exit codes
//!
//! | code | meaning                                               |
//! |------|-------------------------------------------------------|
//! | 0    | success (including a graceful autotune fallback)      |
//! | 1    | internal error                                        |
//! | 2    | usage error                                           |
//! | 3    | compile / workload-preparation failure                |
//! | 4    | unknown application or device                         |
//! | 5    | execution error while measuring the original kernel   |
//! | 6    | isolated panic while measuring the original kernel    |
//! | 7    | wall-clock deadline exceeded on the original kernel   |
//! | 8    | `--strict` and the tuner fell back to the original    |
//! | 9    | fuzzing campaign found failures                       |

use std::io::BufWriter;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use grover_core::Grover;
use grover_frontend::{compile, BuildOptions};
use grover_ir::printer::function_to_string;
use grover_kernels::{
    all_apps, app_by_id, extension_apps, prepare_pair, run_prepared_observed_backend, App,
    KernelPair, Scale,
};
use grover_obs::json::{array, Obj};
use grover_obs::{JsonlRecorder, NoopRecorder, Recorder, Value};
use grover_predict::{
    evaluate_loo, parse_corpus, schema_hash, train_rows, CorpusRow, FeatureVector,
    Model as PredictModel, TrainConfig, Verdict,
};
use grover_runtime::{Backend, CountingSink, ExecPolicy, Limits};
use grover_tuner::{Choice, Decision, RetryPolicy, TuneError, Tuner, Workload};

const EXIT_USAGE: u8 = 2;
const EXIT_COMPILE: u8 = 3;
const EXIT_UNKNOWN_TARGET: u8 = 4;
const EXIT_EXEC: u8 = 5;
const EXIT_PANIC: u8 = 6;
const EXIT_DEADLINE: u8 = 7;
const EXIT_STRICT_FALLBACK: u8 = 8;
const EXIT_FUZZ: u8 = 9;

/// A command failure carrying its stable exit code (see module docs).
struct Failure {
    code: u8,
    message: String,
}

impl Failure {
    fn new(code: u8, message: impl Into<String>) -> Failure {
        Failure {
            code,
            message: message.into(),
        }
    }

    fn usage(message: impl Into<String>) -> Failure {
        Failure::new(EXIT_USAGE, message)
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let recorder = match extract_trace_out(&mut args) {
        Ok(None) => Arc::new(NoopRecorder) as Arc<dyn Recorder>,
        Ok(Some(path)) => match std::fs::File::create(&path) {
            Ok(f) => Arc::new(JsonlRecorder::new(BufWriter::new(f))) as Arc<dyn Recorder>,
            Err(e) => {
                eprintln!("error: cannot create trace file {path}: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        },
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let backend = match extract_backend(&mut args) {
        Ok(b) => b,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let result = match args.first().map(String::as_str) {
        Some("transform") => cmd_transform(&args[1..], &recorder),
        Some("autotune") => cmd_autotune(&args[1..], &recorder, backend),
        Some("profile") => cmd_profile(&args[1..], &recorder, backend),
        Some("classify") => cmd_classify(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..], &recorder, backend),
        Some("serve") => cmd_serve(&args[1..], &recorder, backend),
        Some("predict") => cmd_predict(&args[1..], &recorder, backend),
        Some("train") => cmd_train(&args[1..]),
        Some("corpus") => cmd_corpus(&args[1..], &recorder, backend),
        Some("list") => cmd_list(),
        _ => {
            eprintln!(
                "usage: grover <transform|autotune|profile|classify|fuzz|serve|predict|train|corpus|list> [--trace-out FILE] [--backend interp|bytecode] ..."
            );
            eprintln!("  grover transform <kernel.cl> [-D NAME=VAL ...] [--kernel NAME] [--keep-barriers] [--passes SEQ]");
            eprintln!(
                "  grover autotune <app-id> [--device NAME] [--scale test|small|paper] [--threads N]"
            );
            eprintln!("                  [--strict] [--json] [--no-verify] [--deadline-ms N] [--retries N] [--backoff-ms N] [--passes SEQ[;SEQ...]]");
            eprintln!(
                "  grover profile <app-id> [--scale test|small|paper] [--threads N] [--json] [--ops]"
            );
            eprintln!("  grover classify <kernel.cl> [-D NAME=VAL ...]");
            eprintln!("  grover fuzz [--seed N] [--cases N] [--json] [--out-dir DIR]");
            eprintln!("  grover serve [--addr HOST:PORT] [--cache-dir DIR] [--threads N] [--queue-depth N]");
            eprintln!("               [--breaker-threshold N] [--breaker-cooldown-ms MS] [--io-timeout-ms MS] [--compact-threshold N]");
            eprintln!("               [--cache-capacity N] [--max-deadline-ms N] [--flight-capacity N] [--profile-ops]");
            eprintln!("               [--model model.json] [--predict-threshold X]");
            eprintln!("  grover predict <app-id> --model model.json [--device NAME] [--scale test|small|paper] [--predict-threshold X] [--threads N] [--json]");
            eprintln!("  grover train --corpus FILE --out model.json [--iters N] [--l2 X] [--learning-rate X] [--threshold X] [--eval]");
            eprintln!("  grover corpus export [--out FILE] [--cache-dir DIR] [--scale test|small|paper] [--devices A,B] [--apps A,B] [--threads N] [--no-verify]");
            eprintln!("  grover list");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(f) => {
            eprintln!("error: {}", f.message);
            ExitCode::from(f.code)
        }
    }
}

/// Strip the global `--trace-out <path>` flag (any position) from `args`.
fn extract_trace_out(args: &mut Vec<String>) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == "--trace-out") {
        if i + 1 >= args.len() {
            return Err("--trace-out needs a file path".into());
        }
        let path = args.remove(i + 1);
        args.remove(i);
        return Ok(Some(path));
    }
    Ok(None)
}

/// Strip the global `--backend <name>` flag (any position) from `args`;
/// defaults to the interpreter.
fn extract_backend(args: &mut Vec<String>) -> Result<Backend, String> {
    if let Some(i) = args.iter().position(|a| a == "--backend") {
        if i + 1 >= args.len() {
            return Err("--backend needs `interp` or `bytecode`".into());
        }
        let name = args.remove(i + 1);
        args.remove(i);
        return Backend::parse(&name)
            .ok_or_else(|| format!("unknown backend `{name}` (expected `interp` or `bytecode`)"));
    }
    Ok(Backend::Interp)
}

fn cmd_transform(args: &[String], recorder: &Arc<dyn Recorder>) -> Result<(), Failure> {
    let mut path = None;
    let mut opts = BuildOptions::new();
    let mut kernel_name: Option<String> = None;
    let mut keep_barriers = false;
    let mut passes: Option<grover_core::Sequence> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-D" => {
                let d = it
                    .next()
                    .ok_or_else(|| Failure::usage("-D needs an argument"))?;
                let (n, v) = d.split_once('=').unwrap_or((d.as_str(), "1"));
                opts = opts.define(n, v);
            }
            "--kernel" => {
                kernel_name = Some(
                    it.next()
                        .ok_or_else(|| Failure::usage("--kernel needs a name"))?
                        .clone(),
                )
            }
            "--keep-barriers" => keep_barriers = true,
            "--passes" => {
                let spec = it
                    .next()
                    .ok_or_else(|| Failure::usage("--passes needs a comma-separated sequence"))?;
                passes = Some(
                    grover_core::Sequence::parse(spec)
                        .map_err(|e| Failure::usage(format!("--passes: {e}")))?,
                );
            }
            other if other.starts_with("-D") => {
                let d = &other[2..];
                let (n, v) = d.split_once('=').unwrap_or((d, "1"));
                opts = opts.define(n, v);
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => return Err(Failure::usage(format!("unexpected argument `{other}`"))),
        }
    }
    let path = path.ok_or_else(|| Failure::usage("no input file"))?;
    let source = std::fs::read_to_string(&path)
        .map_err(|e| Failure::new(EXIT_COMPILE, format!("cannot read {path}: {e}")))?;
    let module =
        compile(&source, &opts).map_err(|e| Failure::new(EXIT_COMPILE, format!("{path}: {e}")))?;

    for kernel in &module.kernels {
        if let Some(only) = &kernel_name {
            if &kernel.name != only {
                continue;
            }
        }
        println!("==== original: {} ====", kernel.name);
        println!("{}", function_to_string(kernel));
        let mut transformed = kernel.clone();
        let options = grover_core::GroverOptions {
            buffers: None,
            keep_barriers,
        };
        let report = match &passes {
            // An explicit sequence runs the composable pipeline directly
            // and reports per pass.
            Some(seq) => {
                let pr = grover_core::PassManager::new(seq.clone(), options).run(&mut transformed);
                println!("==== pipeline: {} ====", pr.sequence);
                for p in &pr.passes {
                    println!("  {:<16} {}", p.pass.name(), p.detail);
                }
                pr.report
            }
            None => {
                let grover = Grover::with_options(options);
                grover.run_on_observed(&mut transformed, &**recorder, None)
            }
        };
        println!("==== grover report ====");
        print!("{}", report.to_text());
        println!("==== transformed: {} ====", transformed.name);
        println!("{}", function_to_string(&transformed));
    }
    Ok(())
}

fn parse_u64(it: &mut std::slice::Iter<String>, flag: &str) -> Result<u64, Failure> {
    it.next()
        .ok_or_else(|| Failure::usage(format!("{flag} needs a value")))?
        .parse()
        .map_err(|_| Failure::usage(format!("{flag} needs an integer")))
}

fn parse_f64(it: &mut std::slice::Iter<String>, flag: &str) -> Result<f64, Failure> {
    it.next()
        .ok_or_else(|| Failure::usage(format!("{flag} needs a value")))?
        .parse()
        .map_err(|_| Failure::usage(format!("{flag} needs a number")))
}

/// Load and validate a trained predict model against this binary's
/// feature schema and pass-fingerprint epoch. A stale model is a hard
/// error here — the CLI asked for it explicitly (the server, by
/// contrast, degrades to always-abstain).
fn load_model(path: &str) -> Result<PredictModel, Failure> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| Failure::new(EXIT_COMPILE, format!("cannot read model {path}: {e}")))?;
    PredictModel::load(&text, &grover_core::pass_fingerprint())
        .map_err(|e| Failure::new(EXIT_COMPILE, format!("model {path} rejected: {e}")))
}

/// Look up an app across the full 12-app suite (the 11 paper apps plus
/// the extension apps).
fn suite_app_by_id(id: &str) -> Option<App> {
    app_by_id(id).or_else(|| extension_apps().into_iter().find(|a| a.id == id))
}

/// The full 12-app suite in deterministic order.
fn suite_apps() -> Vec<App> {
    let mut apps = all_apps();
    apps.extend(extension_apps());
    apps
}

fn cmd_autotune(
    args: &[String],
    recorder: &Arc<dyn Recorder>,
    backend: Backend,
) -> Result<(), Failure> {
    let mut app_id = None;
    let mut device = "SNB".to_string();
    let mut scale = Scale::Small;
    let mut policy = ExecPolicy::Serial;
    let mut strict = false;
    let mut json = false;
    let mut verify = true;
    let mut deadline: Option<Duration> = None;
    let mut retries: Option<u32> = None;
    let mut backoff = Duration::ZERO;
    let mut sequences: Option<Vec<String>> = None;
    let mut model_path: Option<String> = None;
    let mut predict_threshold: Option<f64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--predict" => {
                model_path = Some(
                    it.next()
                        .ok_or_else(|| Failure::usage("--predict needs a model.json path"))?
                        .clone(),
                )
            }
            "--predict-threshold" => {
                predict_threshold = Some(parse_f64(&mut it, "--predict-threshold")?)
            }
            "--passes" => {
                // `;`-separated list of candidate sequence specs; each spec
                // is validated up front so a typo is a usage error, not a
                // mid-race failure.
                let raw = it
                    .next()
                    .ok_or_else(|| Failure::usage("--passes needs sequence spec(s)"))?;
                let mut specs = Vec::new();
                for part in raw.split(';').filter(|s| !s.trim().is_empty()) {
                    let seq = grover_core::Sequence::parse(part)
                        .map_err(|e| Failure::usage(format!("--passes: {e}")))?;
                    specs.push(seq.spec());
                }
                if specs.is_empty() {
                    return Err(Failure::usage("--passes needs at least one sequence"));
                }
                sequences = Some(specs);
            }
            "--device" => {
                device = it
                    .next()
                    .ok_or_else(|| Failure::usage("--device needs a name"))?
                    .clone()
            }
            "--scale" => {
                scale = match it
                    .next()
                    .ok_or_else(|| Failure::usage("--scale needs a value"))?
                    .as_str()
                {
                    "test" => Scale::Test,
                    "small" => Scale::Small,
                    "paper" => Scale::Paper,
                    other => return Err(Failure::usage(format!("unknown scale `{other}`"))),
                }
            }
            "--threads" => {
                let n = parse_u64(&mut it, "--threads")? as usize;
                policy = ExecPolicy::Parallel { threads: n };
            }
            "--strict" => strict = true,
            "--json" => json = true,
            "--no-verify" => verify = false,
            "--deadline-ms" => {
                deadline = Some(Duration::from_millis(parse_u64(&mut it, "--deadline-ms")?))
            }
            "--retries" => retries = Some(parse_u64(&mut it, "--retries")? as u32),
            "--backoff-ms" => backoff = Duration::from_millis(parse_u64(&mut it, "--backoff-ms")?),
            other if app_id.is_none() => app_id = Some(other.to_string()),
            other => return Err(Failure::usage(format!("unexpected argument `{other}`"))),
        }
    }
    let app_id = app_id.ok_or_else(|| Failure::usage("no application id (try `grover list`)"))?;
    let app = app_by_id(&app_id).ok_or_else(|| {
        Failure::new(
            EXIT_UNKNOWN_TARGET,
            format!("unknown app `{app_id}` (try `grover list`)"),
        )
    })?;

    if !json {
        println!("auto-tuning {} on {device} (scale {scale:?})", app.id);
    }
    let pair = prepare_pair(&app, scale).map_err(|e| Failure::new(EXIT_COMPILE, e))?;
    let prepare = app.prepare;
    let workload = Workload::new(move || {
        let p = prepare(scale);
        (p.ctx, p.args, p.nd)
    });

    let mut tuner = Tuner::with_policy(policy);
    tuner.backend = backend;
    tuner.recorder = recorder.clone();
    tuner.limits = Limits {
        deadline,
        ..Limits::default()
    };
    tuner.retry = RetryPolicy {
        // `--retries N` = N retries after the first attempt.
        max_attempts: retries.map_or(RetryPolicy::default().max_attempts, |r| r + 1),
        backoff,
    };
    tuner.verify_outputs = verify;
    tuner.sequences = sequences;
    // `--predict`: consult the trained model first and race only when it
    // abstains below the confidence threshold.
    if let Some(path) = &model_path {
        tuner.predictor = Some(Arc::new(load_model(path)?));
        tuner.predict_first = true;
        if let Some(t) = predict_threshold {
            tuner.predict_threshold = t;
        }
    }

    // `tune` races the original against every candidate sequence — the
    // device-seeded set, or the `--passes` override.
    let d = tuner
        .tune(&pair.original, &device, &workload)
        .map_err(tune_failure)?;

    if json {
        println!("{}", decision_json(&app_id, scale, backend, &d));
    } else {
        print_decision(&d);
    }
    if strict {
        if let Some(reason) = &d.fallback {
            return Err(Failure::new(
                EXIT_STRICT_FALLBACK,
                format!("tuning fell back to the original kernel: {reason}"),
            ));
        }
    }
    Ok(())
}

/// Map a tuner error (a failure of the *original* kernel or the tuner
/// itself — transformed-kernel failures are graceful fallbacks, not errors)
/// to its stable exit code.
fn tune_failure(e: TuneError) -> Failure {
    let code = match &e {
        TuneError::UnknownDevice(_) => EXIT_UNKNOWN_TARGET,
        TuneError::InvalidSequence(_) => EXIT_USAGE,
        TuneError::NothingToDisable(_) => EXIT_COMPILE,
        TuneError::Execution(_) => EXIT_EXEC,
        TuneError::Panicked(_) => EXIT_PANIC,
        TuneError::Deadline => EXIT_DEADLINE,
        TuneError::Internal(_) => 1,
    };
    Failure::new(code, e.to_string())
}

fn print_decision(d: &Decision) {
    if let Some(conf) = d.predicted {
        println!("  predicted by model (confidence {conf:.3}); np is the model's estimate — zero launches");
    }
    println!("  with local memory   : {:>12} cycles", d.cycles_with);
    if d.cycles_without > 0 {
        println!("  without local memory: {:>12} cycles", d.cycles_without);
    } else {
        println!("  without local memory:   (no completed measurement)");
    }
    println!("  normalized performance np = {:.3}", d.np);
    println!("  winning sequence: {}", d.sequence);
    if let Some(reason) = &d.fallback {
        println!("  fallback: {reason}");
        println!("  verdict: keep the ORIGINAL kernel (graceful fallback)");
        return;
    }
    match d.choice {
        Choice::WithoutLocalMemory => {
            println!("  verdict: use the GROVER-TRANSFORMED kernel (local memory disabled)")
        }
        Choice::WithLocalMemory => {
            println!("  verdict: keep the ORIGINAL kernel (local memory enabled)")
        }
        Choice::Similar => println!("  verdict: both versions perform similarly (within 5%)"),
    }
}

/// `grover profile <app-id>`: run both kernel versions on the same
/// workload, tally per-address-space traffic with a [`CountingSink`], and
/// report the side-by-side deltas — what the transform eliminated (local
/// traffic, barriers) and what it added (direct global loads), the
/// paper's §VI-C reasons analysis — plus the pass's per-buffer outcomes.
fn cmd_profile(
    args: &[String],
    recorder: &Arc<dyn Recorder>,
    backend: Backend,
) -> Result<(), Failure> {
    let mut app_id = None;
    let mut scale = Scale::Small;
    let mut policy = ExecPolicy::Serial;
    let mut json = false;
    let mut ops = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = match it
                    .next()
                    .ok_or_else(|| Failure::usage("--scale needs a value"))?
                    .as_str()
                {
                    "test" => Scale::Test,
                    "small" => Scale::Small,
                    "paper" => Scale::Paper,
                    other => return Err(Failure::usage(format!("unknown scale `{other}`"))),
                }
            }
            "--threads" => {
                let n = parse_u64(&mut it, "--threads")? as usize;
                policy = ExecPolicy::Parallel { threads: n };
            }
            "--json" => json = true,
            "--ops" => ops = true,
            other if app_id.is_none() => app_id = Some(other.to_string()),
            other => return Err(Failure::usage(format!("unexpected argument `{other}`"))),
        }
    }
    let app_id = app_id.ok_or_else(|| Failure::usage("no application id (try `grover list`)"))?;
    let app = app_by_id(&app_id).ok_or_else(|| {
        Failure::new(
            EXIT_UNKNOWN_TARGET,
            format!("unknown app `{app_id}` (try `grover list`)"),
        )
    })?;
    let pair = prepare_pair(&app, scale).map_err(|e| Failure::new(EXIT_COMPILE, e))?;
    if ops {
        if backend != Backend::Bytecode {
            return Err(Failure::usage(
                "--ops profiles the compiled bytecode; pass `--backend bytecode`",
            ));
        }
        return cmd_profile_ops(&app_id, &app, scale, policy, json, &pair);
    }

    let rec = &**recorder;
    let span = rec.enabled().then(|| rec.span_start("profile", None));
    if let Some(span) = span {
        rec.span_attr(span, "app", Value::from(app_id.as_str()));
        rec.span_attr(span, "scale", Value::from(scale_name(scale)));
    }
    let run = |kernel, version: &str| -> Result<CountingSink, Failure> {
        let mut sink = CountingSink::default();
        run_prepared_observed_backend(
            kernel,
            (app.prepare)(scale),
            &mut sink,
            policy,
            backend,
            rec,
            span,
        )
        .map_err(|e| Failure::new(EXIT_EXEC, format!("{version} kernel: {e}")))?;
        Ok(sink)
    };
    let original = run(&pair.original, "original");
    let transformed = original
        .as_ref()
        .ok()
        .map(|_| run(&pair.transformed, "transformed"));
    if let Some(span) = span {
        rec.span_end(span);
    }
    let original = original?;
    let transformed = transformed.expect("transformed runs when the original succeeded")?;

    if json {
        println!(
            "{}",
            profile_json(&app_id, scale, backend, &pair, &original, &transformed)
        );
    } else {
        print_profile(&app_id, scale, policy, &pair, &original, &transformed);
    }
    Ok(())
}

/// The `--ops` arm of `grover profile`: run both kernel versions on the
/// bytecode backend with the per-opcode profiler enabled and print the
/// executed-op counts and charge units per opcode kind and per basic
/// block. Each version's `total_charged` is checked against the launch's
/// `LaunchStats::instructions` — a mismatch is an internal error, so the
/// report is reconciled by construction.
fn cmd_profile_ops(
    app_id: &str,
    app: &grover_kernels::App,
    scale: Scale,
    policy: ExecPolicy,
    json: bool,
    pair: &KernelPair,
) -> Result<(), Failure> {
    let run = |kernel, version: &str| -> Result<(u64, grover_runtime::OpProfile), Failure> {
        let mut p = (app.prepare)(scale);
        let (stats, profile) = grover_runtime::enqueue_profiled(
            &mut p.ctx,
            kernel,
            &p.args,
            &p.nd,
            &mut grover_runtime::NullSink,
            &Limits::default(),
            policy,
            Backend::Bytecode,
        )
        .map_err(|e| Failure::new(EXIT_EXEC, format!("{version} kernel: {e}")))?;
        let profile = profile.ok_or_else(|| {
            Failure::new(
                1,
                format!("{version} kernel: bytecode launch produced no profile"),
            )
        })?;
        if profile.total_charged != stats.instructions {
            return Err(Failure::new(
                1,
                format!(
                    "{version} kernel: profile does not reconcile: {} charge units != {} instructions",
                    profile.total_charged, stats.instructions
                ),
            ));
        }
        Ok((stats.instructions, profile))
    };
    let (o_insts, o) = run(&pair.original, "original")?;
    let (t_insts, t) = run(&pair.transformed, "transformed")?;

    if json {
        println!(
            "{}",
            Obj::new()
                .str("app", app_id)
                .str("scale", scale_name(scale))
                .str("backend", "bytecode")
                .str("kernel", &pair.original.name)
                .str("pass_fingerprint", &grover_core::pass_fingerprint())
                .raw("original", &op_profile_json(o_insts, &o))
                .raw("transformed", &op_profile_json(t_insts, &t))
                .finish()
        );
        return Ok(());
    }

    println!(
        "profile {app_id} --ops (scale {}, {} work-group schedule, bytecode backend)",
        scale_name(scale),
        match policy {
            ExecPolicy::Serial => "serial".to_string(),
            ExecPolicy::Parallel { .. } => format!("parallel x{}", policy.worker_count()),
        }
    );
    println!("  kernel {}", pair.original.name);
    println!(
        "  {:<10}{:>12}{:>12} |{:>12}{:>12} |{:>12}",
        "opcode", "count", "charged", "count", "charged", "delta"
    );
    println!(
        "  {:<10}{:>12}{:>12} |{:>12}{:>12} |",
        "", "original", "original", "transformed", "transformed"
    );
    let charged_of = |p: &grover_runtime::OpProfile, kind: &str| {
        p.ops
            .iter()
            .find(|r| r.kind == kind)
            .map(|r| (r.count, r.charged))
            .unwrap_or((0, 0))
    };
    let mut kinds: Vec<&'static str> = o.ops.iter().map(|r| r.kind).collect();
    for r in &t.ops {
        if !kinds.contains(&r.kind) {
            kinds.push(r.kind);
        }
    }
    for kind in kinds {
        let (oc, och) = charged_of(&o, kind);
        let (tc, tch) = charged_of(&t, kind);
        println!(
            "  {:<10}{:>12}{:>12} |{:>12}{:>12} |{:>+12}",
            kind,
            oc,
            och,
            tc,
            tch,
            delta(och, tch)
        );
    }
    println!(
        "  {:<10}{:>12}{:>12} |{:>12}{:>12} |{:>+12}",
        "total",
        o.total_count,
        o.total_charged,
        t.total_count,
        t.total_charged,
        delta(o.total_charged, t.total_charged)
    );
    for (version, insts, p) in [("original", o_insts, &o), ("transformed", t_insts, &t)] {
        println!(
            "  {version}: {} ops executed, {} charge units == {insts} instructions (reconciled)",
            p.total_count, p.total_charged
        );
        for b in &p.blocks {
            let label = match b.first_value {
                Some(v) => format!("block {} (v{})", b.block, v),
                None => format!("block {}", b.block),
            };
            println!("    {:<16}{:>12}{:>12}", label, b.count, b.charged);
        }
    }
    Ok(())
}

/// One version's per-opcode profile as JSON — the schema the CI
/// `obs-smoke` job validates: `instructions`, `total_count`,
/// `total_charged`, `ops: [{kind, count, charged}]`,
/// `blocks: [{block, first_value, count, charged}]`.
fn op_profile_json(instructions: u64, p: &grover_runtime::OpProfile) -> String {
    let ops = array(p.ops.iter().map(|r| {
        Obj::new()
            .str("kind", r.kind)
            .u64("count", r.count)
            .u64("charged", r.charged)
            .finish()
    }));
    let blocks = array(p.blocks.iter().map(|b| {
        let obj = Obj::new().u64("block", b.block as u64);
        let obj = match b.first_value {
            Some(v) => obj.u64("first_value", v as u64),
            None => obj.null("first_value"),
        };
        obj.u64("count", b.count).u64("charged", b.charged).finish()
    }));
    Obj::new()
        .u64("instructions", instructions)
        .u64("total_count", p.total_count)
        .u64("total_charged", p.total_charged)
        .raw("ops", &ops)
        .raw("blocks", &blocks)
        .finish()
}

/// `transformed - original`, signed.
fn delta(original: u64, transformed: u64) -> i64 {
    transformed as i64 - original as i64
}

/// The side-by-side traffic rows of the profile report.
fn profile_rows(o: &CountingSink, t: &CountingSink) -> Vec<(&'static str, u64, u64)> {
    vec![
        ("global loads", o.global_loads, t.global_loads),
        ("global stores", o.global_stores, t.global_stores),
        ("local loads", o.local_loads, t.local_loads),
        ("local stores", o.local_stores, t.local_stores),
        ("constant loads", o.constant_loads, t.constant_loads),
        ("private loads", o.private_loads, t.private_loads),
        ("private stores", o.private_stores, t.private_stores),
        ("barriers", o.barriers, t.barriers),
        ("instructions", o.instructions, t.instructions),
        ("bytes loaded", o.bytes_loaded, t.bytes_loaded),
        ("bytes stored", o.bytes_stored, t.bytes_stored),
        (
            "global bytes loaded",
            o.global_bytes.loaded,
            t.global_bytes.loaded,
        ),
        (
            "global bytes stored",
            o.global_bytes.stored,
            t.global_bytes.stored,
        ),
        (
            "local bytes loaded",
            o.local_bytes.loaded,
            t.local_bytes.loaded,
        ),
        (
            "local bytes stored",
            o.local_bytes.stored,
            t.local_bytes.stored,
        ),
    ]
}

fn print_profile(
    app_id: &str,
    scale: Scale,
    policy: ExecPolicy,
    pair: &KernelPair,
    o: &CountingSink,
    t: &CountingSink,
) {
    println!(
        "profile {app_id} (scale {}, {} work-group schedule)",
        scale_name(scale),
        match policy {
            ExecPolicy::Serial => "serial".to_string(),
            ExecPolicy::Parallel { .. } => format!("parallel x{}", policy.worker_count()),
        }
    );
    println!(
        "  {:<22}{:>14}{:>14}{:>14}",
        "metric", "original", "transformed", "delta"
    );
    for (label, ov, tv) in profile_rows(o, t) {
        println!("  {:<22}{:>14}{:>14}{:>+14}", label, ov, tv, delta(ov, tv));
    }
    println!("  reasons (paper §VI-C):");
    println!(
        "    local loads eliminated : {}",
        o.local_loads.saturating_sub(t.local_loads)
    );
    println!(
        "    local stores eliminated: {}",
        o.local_stores.saturating_sub(t.local_stores)
    );
    println!(
        "    global loads added     : {:+}",
        delta(o.global_loads, t.global_loads)
    );
    println!(
        "    barriers removed       : {}",
        o.barriers.saturating_sub(t.barriers)
    );
    println!(
        "  pass: {} barrier(s), {} instruction(s) removed statically (sequence {})",
        pair.report.barriers_removed,
        pair.report.insts_removed,
        grover_core::Sequence::default_pipeline()
    );
    println!("  buffers:");
    for b in &pair.report.buffers {
        let reason = b
            .outcome
            .reason()
            .map(|r| format!(" ({r})"))
            .unwrap_or_default();
        let solutions = if b.solutions.is_empty() {
            String::new()
        } else {
            format!("  solve {}", b.solutions.join("; "))
        };
        println!(
            "    __local {}: {}{reason}{solutions}",
            b.buffer,
            b.outcome.kind()
        );
    }
}

fn space_json(loaded: u64, stored: u64) -> String {
    Obj::new()
        .u64("loaded", loaded)
        .u64("stored", stored)
        .finish()
}

fn counts_json(c: &CountingSink) -> String {
    Obj::new()
        .u64("global_loads", c.global_loads)
        .u64("global_stores", c.global_stores)
        .u64("local_loads", c.local_loads)
        .u64("local_stores", c.local_stores)
        .u64("constant_loads", c.constant_loads)
        .u64("private_loads", c.private_loads)
        .u64("private_stores", c.private_stores)
        .u64("barriers", c.barriers)
        .u64("instructions", c.instructions)
        .u64("bytes_loaded", c.bytes_loaded)
        .u64("bytes_stored", c.bytes_stored)
        .raw(
            "global_bytes",
            &space_json(c.global_bytes.loaded, c.global_bytes.stored),
        )
        .raw(
            "local_bytes",
            &space_json(c.local_bytes.loaded, c.local_bytes.stored),
        )
        .raw(
            "constant_bytes",
            &space_json(c.constant_bytes.loaded, c.constant_bytes.stored),
        )
        .finish()
}

fn profile_json(
    app_id: &str,
    scale: Scale,
    backend: Backend,
    pair: &KernelPair,
    o: &CountingSink,
    t: &CountingSink,
) -> String {
    let delta_obj = Obj::new()
        .i64("local_loads_removed", delta(t.local_loads, o.local_loads))
        .i64(
            "local_stores_removed",
            delta(t.local_stores, o.local_stores),
        )
        .i64("global_loads_added", delta(o.global_loads, t.global_loads))
        .i64(
            "global_stores_added",
            delta(o.global_stores, t.global_stores),
        )
        .i64("barriers_removed", delta(t.barriers, o.barriers))
        .i64("instructions", delta(o.instructions, t.instructions))
        .i64("bytes_loaded", delta(o.bytes_loaded, t.bytes_loaded))
        .i64("bytes_stored", delta(o.bytes_stored, t.bytes_stored))
        .i64(
            "global_bytes_loaded",
            delta(o.global_bytes.loaded, t.global_bytes.loaded),
        )
        .i64(
            "local_bytes_loaded",
            delta(o.local_bytes.loaded, t.local_bytes.loaded),
        )
        .finish();
    let buffers = array(pair.report.buffers.iter().map(|b| {
        let obj = Obj::new()
            .str("buffer", &b.buffer)
            .str("outcome", b.outcome.kind());
        let obj = match b.outcome.reason() {
            Some(r) => obj.str("reason", &r),
            None => obj.null("reason"),
        };
        obj.raw(
            "solutions",
            &array(b.solutions.iter().map(|s| grover_obs::json::escape(s))),
        )
        .finish()
    }));
    let pass = Obj::new()
        .u64("barriers_removed", pair.report.barriers_removed as u64)
        .u64("insts_removed", pair.report.insts_removed as u64)
        .bool("all_removed", pair.report.all_removed())
        .finish();
    Obj::new()
        .str("app", app_id)
        .str("scale", scale_name(scale))
        .str("backend", backend.name())
        .str("kernel", &pair.original.name)
        .str("pass_fingerprint", &grover_core::pass_fingerprint())
        // `prepare_pair` applies the default pipeline; record it so the
        // profile names the sequence the deltas belong to.
        .str(
            "sequence",
            &grover_core::Sequence::default_pipeline().spec(),
        )
        .raw("original", &counts_json(o))
        .raw("transformed", &counts_json(t))
        .raw("delta", &delta_obj)
        .raw("buffers", &buffers)
        .raw("pass", &pass)
        .finish()
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Small => "small",
        Scale::Paper => "paper",
    }
}

fn decision_json(app_id: &str, scale: Scale, backend: Backend, d: &Decision) -> String {
    let fallback = match &d.fallback {
        None => "null".to_string(),
        Some(reason) => Obj::new()
            .str("kind", reason.kind())
            .str("detail", &reason.to_string())
            .finish(),
    };
    let obj = Obj::new()
        .str("app", app_id)
        .str("device", &d.device)
        .str("scale", scale_name(scale))
        .str("backend", backend.name())
        .str("pass_fingerprint", &grover_core::pass_fingerprint())
        .u64("cycles_with", d.cycles_with)
        .u64("cycles_without", d.cycles_without)
        .f64("np", d.np)
        .str("choice", d.choice.kind())
        .str("sequence", &d.sequence)
        .raw("fallback", &fallback);
    let obj = match d.predicted {
        Some(conf) => obj.bool("predicted", true).f64("confidence", conf),
        None => obj.bool("predicted", false).null("confidence"),
    };
    obj.finish()
}

fn cmd_classify(args: &[String]) -> Result<(), Failure> {
    let mut path = None;
    let mut opts = BuildOptions::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-D" => {
                let d = it
                    .next()
                    .ok_or_else(|| Failure::usage("-D needs an argument"))?;
                let (n, v) = d.split_once('=').unwrap_or((d.as_str(), "1"));
                opts = opts.define(n, v);
            }
            other if other.starts_with("-D") => {
                let d = &other[2..];
                let (n, v) = d.split_once('=').unwrap_or((d, "1"));
                opts = opts.define(n, v);
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => return Err(Failure::usage(format!("unexpected argument `{other}`"))),
        }
    }
    let path = path.ok_or_else(|| Failure::usage("no input file"))?;
    let source = std::fs::read_to_string(&path)
        .map_err(|e| Failure::new(EXIT_COMPILE, format!("cannot read {path}: {e}")))?;
    let module =
        compile(&source, &opts).map_err(|e| Failure::new(EXIT_COMPILE, format!("{path}: {e}")))?;
    for kernel in &module.kernels {
        println!("kernel {}:", kernel.name);
        let classes = grover_core::classify(kernel);
        if classes.is_empty() {
            println!("  (no __local buffers)");
        }
        for c in classes {
            println!(
                "  __local {:<12} {:<22?} {} loads, {} stores, {}  — {}",
                c.buffer,
                c.pattern,
                c.loads,
                c.stores,
                if c.synchronised {
                    "synchronised"
                } else {
                    "NOT synchronised"
                },
                c.pattern.describe()
            );
        }
    }
    Ok(())
}

fn cmd_fuzz(
    args: &[String],
    recorder: &Arc<dyn Recorder>,
    backend: Backend,
) -> Result<(), Failure> {
    let mut seed = 42u64;
    let mut cases = 200u64;
    let mut json = false;
    let mut out_dir = "fuzz-regressions".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = parse_u64(&mut it, "--seed")?,
            "--cases" => cases = parse_u64(&mut it, "--cases")?,
            "--json" => json = true,
            "--out-dir" => {
                out_dir = it
                    .next()
                    .ok_or_else(|| Failure::usage("--out-dir needs a path"))?
                    .clone()
            }
            other => return Err(Failure::usage(format!("unexpected argument `{other}`"))),
        }
    }
    let opts = grover_fuzz::CampaignOptions {
        seed,
        cases,
        out_dir: Some(out_dir.clone().into()),
        backend,
    };
    let summary = grover_fuzz::run_campaign(&opts, recorder.as_ref());
    if json {
        println!("{}", summary.to_json());
    } else {
        print!("{}", summary.to_text());
    }
    if summary.ok() {
        Ok(())
    } else {
        Err(Failure::new(
            EXIT_FUZZ,
            format!(
                "{} of {} fuzz cases failed; shrunk reproducers under {out_dir}/",
                summary.failures.len(),
                cases
            ),
        ))
    }
}

/// `grover predict <app-id>`: answer the tuning question from a trained
/// model. Runs the tuner in predict-first mode — a confident prediction
/// is served with zero launches; an abstention falls back to the
/// measured race and the decision reports whether the model agreed.
fn cmd_predict(
    args: &[String],
    recorder: &Arc<dyn Recorder>,
    backend: Backend,
) -> Result<(), Failure> {
    let mut app_id = None;
    let mut device = "SNB".to_string();
    let mut scale = Scale::Small;
    let mut policy = ExecPolicy::Serial;
    let mut model_path: Option<String> = None;
    let mut threshold: Option<f64> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--model" => {
                model_path = Some(
                    it.next()
                        .ok_or_else(|| Failure::usage("--model needs a model.json path"))?
                        .clone(),
                )
            }
            "--device" => {
                device = it
                    .next()
                    .ok_or_else(|| Failure::usage("--device needs a name"))?
                    .clone()
            }
            "--scale" => scale = parse_scale(&mut it)?,
            "--predict-threshold" => threshold = Some(parse_f64(&mut it, "--predict-threshold")?),
            "--threads" => {
                let n = parse_u64(&mut it, "--threads")? as usize;
                policy = ExecPolicy::Parallel { threads: n };
            }
            "--json" => json = true,
            other if app_id.is_none() => app_id = Some(other.to_string()),
            other => return Err(Failure::usage(format!("unexpected argument `{other}`"))),
        }
    }
    let app_id = app_id.ok_or_else(|| Failure::usage("no application id (try `grover list`)"))?;
    let model_path = model_path.ok_or_else(|| Failure::usage("--model is required"))?;
    let app = suite_app_by_id(&app_id).ok_or_else(|| {
        Failure::new(
            EXIT_UNKNOWN_TARGET,
            format!("unknown app `{app_id}` (try `grover list`)"),
        )
    })?;
    let model = load_model(&model_path)?;
    let pair = prepare_pair(&app, scale).map_err(|e| Failure::new(EXIT_COMPILE, e))?;
    let prepare = app.prepare;
    let workload = Workload::new(move || {
        let p = prepare(scale);
        (p.ctx, p.args, p.nd)
    });

    let mut tuner = Tuner::with_policy(policy);
    tuner.backend = backend;
    tuner.recorder = recorder.clone();
    tuner.predictor = Some(Arc::new(model));
    tuner.predict_first = true;
    if let Some(t) = threshold {
        tuner.predict_threshold = t;
    }
    let d = tuner
        .tune(&pair.original, &device, &workload)
        .map_err(tune_failure)?;

    if json {
        println!("{}", decision_json(&app_id, scale, backend, &d));
    } else {
        if d.predicted.is_none() {
            println!(
                "model abstained below threshold {:.3}; fell back to the measured race ({} launch(es))",
                tuner.predict_threshold,
                tuner.launches_run()
            );
        }
        print_decision(&d);
    }
    Ok(())
}

fn parse_scale(it: &mut std::slice::Iter<String>) -> Result<Scale, Failure> {
    match it
        .next()
        .ok_or_else(|| Failure::usage("--scale needs a value"))?
        .as_str()
    {
        "test" => Ok(Scale::Test),
        "small" => Ok(Scale::Small),
        "paper" => Ok(Scale::Paper),
        other => Err(Failure::usage(format!("unknown scale `{other}`"))),
    }
}

/// `grover train`: fit the per-device scorer from a JSONL corpus and
/// write the versioned `model.json`.
fn cmd_train(args: &[String]) -> Result<(), Failure> {
    let mut corpus_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut cfg = TrainConfig::default();
    let mut eval = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--corpus" => {
                corpus_path = Some(
                    it.next()
                        .ok_or_else(|| Failure::usage("--corpus needs a file"))?
                        .clone(),
                )
            }
            "--out" => {
                out_path = Some(
                    it.next()
                        .ok_or_else(|| Failure::usage("--out needs a file"))?
                        .clone(),
                )
            }
            "--iters" => cfg.iterations = parse_u64(&mut it, "--iters")? as u32,
            "--l2" => cfg.l2 = parse_f64(&mut it, "--l2")?,
            "--learning-rate" => cfg.learning_rate = parse_f64(&mut it, "--learning-rate")?,
            "--threshold" => cfg.threshold = parse_f64(&mut it, "--threshold")?,
            "--eval" => eval = true,
            other => return Err(Failure::usage(format!("unexpected argument `{other}`"))),
        }
    }
    let corpus_path = corpus_path.ok_or_else(|| Failure::usage("--corpus is required"))?;
    let out_path = out_path.ok_or_else(|| Failure::usage("--out is required"))?;
    let epoch = grover_core::pass_fingerprint();
    let text = std::fs::read_to_string(&corpus_path)
        .map_err(|e| Failure::new(EXIT_COMPILE, format!("cannot read {corpus_path}: {e}")))?;
    let rows = parse_corpus(&text, &epoch)
        .map_err(|e| Failure::new(EXIT_COMPILE, format!("{corpus_path}: {e}")))?;
    if rows.is_empty() {
        return Err(Failure::new(EXIT_COMPILE, "corpus contains no rows"));
    }
    let training = train_rows(&rows);
    let model = PredictModel::train(&training, &epoch, &cfg);
    std::fs::write(&out_path, model.to_json() + "\n")
        .map_err(|e| Failure::new(1, format!("cannot write {out_path}: {e}")))?;
    println!(
        "trained {} device model(s) from {} rows -> {out_path}",
        model.devices.len(),
        rows.len()
    );
    println!(
        "  feature schema: v{} {}",
        model.schema_version, model.schema_hash
    );
    println!("  pass fingerprint epoch: {}", model.epoch);
    for (dev, dm) in &model.devices {
        println!("  {dev}: {} training rows", dm.training_rows());
    }
    if eval {
        let report = evaluate_loo(&training, &epoch, &cfg);
        println!("leave-one-kernel-out evaluation:");
        println!(
            "  {:<10}{:>8}{:>8}{:>10}",
            "device", "agree", "total", "accuracy"
        );
        for (dev, agree, total) in report.by_device() {
            let acc = if total == 0 {
                1.0
            } else {
                agree as f64 / total as f64
            };
            println!("  {:<10}{:>8}{:>8}{:>10.3}", dev, agree, total, acc);
        }
        println!(
            "  overall accuracy {:.3} over {} cases; max wrong-case confidence {:.3}",
            report.accuracy(),
            report.cases.len(),
            report.max_wrong_confidence()
        );
    }
    Ok(())
}

/// `grover corpus export`: dump the JSONL training table — from a serve
/// journal (`--cache-dir`) or by racing the bundled suite on the spot.
fn cmd_corpus(
    args: &[String],
    recorder: &Arc<dyn Recorder>,
    backend: Backend,
) -> Result<(), Failure> {
    let Some(("export", rest)) = args.split_first().map(|(a, r)| (a.as_str(), r)) else {
        return Err(Failure::usage(
            "usage: grover corpus export [--out FILE] ...",
        ));
    };
    let mut out_path: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut scale = Scale::Test;
    let mut policy = ExecPolicy::Serial;
    let mut verify = true;
    let mut devices: Option<Vec<String>> = None;
    let mut apps_filter: Option<Vec<String>> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out_path = Some(
                    it.next()
                        .ok_or_else(|| Failure::usage("--out needs a file"))?
                        .clone(),
                )
            }
            "--cache-dir" => {
                cache_dir = Some(
                    it.next()
                        .ok_or_else(|| Failure::usage("--cache-dir needs a path"))?
                        .clone(),
                )
            }
            "--scale" => scale = parse_scale(&mut it)?,
            "--threads" => {
                let n = parse_u64(&mut it, "--threads")? as usize;
                policy = ExecPolicy::Parallel { threads: n };
            }
            "--no-verify" => verify = false,
            "--devices" => {
                devices = Some(
                    it.next()
                        .ok_or_else(|| Failure::usage("--devices needs a comma-separated list"))?
                        .split(',')
                        .filter(|s| !s.trim().is_empty())
                        .map(str::to_string)
                        .collect(),
                )
            }
            "--apps" => {
                apps_filter = Some(
                    it.next()
                        .ok_or_else(|| Failure::usage("--apps needs a comma-separated list"))?
                        .split(',')
                        .filter(|s| !s.trim().is_empty())
                        .map(str::to_string)
                        .collect(),
                )
            }
            other => return Err(Failure::usage(format!("unexpected argument `{other}`"))),
        }
    }
    let epoch = grover_core::pass_fingerprint();
    let lines = match cache_dir {
        Some(dir) => export_journal_corpus(&dir, &epoch)?,
        None => export_suite_corpus(
            recorder,
            backend,
            scale,
            policy,
            verify,
            devices.as_deref(),
            apps_filter.as_deref(),
            &epoch,
        )?,
    };
    if lines.is_empty() {
        return Err(Failure::new(EXIT_COMPILE, "corpus export produced no rows"));
    }
    let text = lines.join("\n") + "\n";
    match out_path {
        Some(path) => {
            std::fs::write(&path, &text)
                .map_err(|e| Failure::new(1, format!("cannot write {path}: {e}")))?;
            eprintln!("wrote {} corpus row(s) to {path}", lines.len());
        }
        None => print!("{text}"),
    }
    Ok(())
}

/// Journal mode: every live record that carries a feature vector under
/// this binary's schema becomes a corpus row (app = the tune-key
/// fingerprint). Rows persisted before predictive tuning, or under a
/// different schema, are skipped and counted.
fn export_journal_corpus(dir: &str, epoch: &str) -> Result<Vec<String>, Failure> {
    // A compact threshold of usize::MAX guarantees the export never
    // rewrites the journal it is reading.
    let (store, _stats) = grover_serve::DecisionStore::open(dir.as_ref(), epoch, usize::MAX)
        .map_err(|e| Failure::new(1, format!("cannot open journal in {dir}: {e}")))?;
    let ours = schema_hash();
    let mut lines = Vec::new();
    let mut skipped = 0usize;
    for rec in store.live_records() {
        let row = match (&rec.feature_schema_hash, &rec.features) {
            (Some(hash), Some(values)) if *hash == ours => {
                match (
                    Verdict::parse(&rec.choice),
                    FeatureVector::from_values(values.clone()),
                ) {
                    (Some(choice), Ok(features)) => Some(CorpusRow {
                        app: rec.fingerprint.clone(),
                        kernel: rec.kernel.clone(),
                        device: rec.device.clone(),
                        choice,
                        np: rec.np,
                        cycles_with: rec.cycles_with,
                        cycles_without: rec.cycles_without,
                        features,
                    }),
                    _ => None,
                }
            }
            _ => None,
        };
        match row {
            Some(r) => lines.push(r.to_json(epoch)),
            None => skipped += 1,
        }
    }
    if skipped > 0 {
        eprintln!("skipped {skipped} journal record(s) without a matching feature vector");
    }
    Ok(lines)
}

/// Suite mode: race every requested app × device pair and join the
/// measured decision with the original kernel's static features — the
/// fixture generator for the predict tests.
#[allow(clippy::too_many_arguments)]
fn export_suite_corpus(
    recorder: &Arc<dyn Recorder>,
    backend: Backend,
    scale: Scale,
    policy: ExecPolicy,
    verify: bool,
    devices: Option<&[String]>,
    apps_filter: Option<&[String]>,
    epoch: &str,
) -> Result<Vec<String>, Failure> {
    let device_names: Vec<String> = match devices {
        Some(list) => list.to_vec(),
        None => grover_predict::known_devices()
            .iter()
            .map(|d| d.to_string())
            .collect(),
    };
    let apps: Vec<App> = match apps_filter {
        Some(ids) => ids
            .iter()
            .map(|id| {
                suite_app_by_id(id)
                    .ok_or_else(|| Failure::new(EXIT_UNKNOWN_TARGET, format!("unknown app `{id}`")))
            })
            .collect::<Result<_, _>>()?,
        None => suite_apps(),
    };
    let mut lines = Vec::new();
    for app in &apps {
        let pair = prepare_pair(app, scale)
            .map_err(|e| Failure::new(EXIT_COMPILE, format!("{}: {e}", app.id)))?;
        let nd = (app.prepare)(scale).nd;
        let features = FeatureVector::extract(&pair.original, nd.global, nd.local);
        for device in &device_names {
            let prepare = app.prepare;
            let workload = Workload::new(move || {
                let p = prepare(scale);
                (p.ctx, p.args, p.nd)
            });
            let mut tuner = Tuner::with_policy(policy);
            tuner.backend = backend;
            tuner.recorder = recorder.clone();
            tuner.verify_outputs = verify;
            let d = tuner
                .tune(&pair.original, device, &workload)
                .map_err(tune_failure)?;
            let choice = Verdict::parse(d.choice.kind())
                .expect("tuner choice tags and predict verdict tags coincide");
            let row = CorpusRow {
                app: app.id.to_string(),
                kernel: pair.original.name.clone(),
                device: device.clone(),
                choice,
                np: d.np,
                cycles_with: d.cycles_with,
                cycles_without: d.cycles_without,
                features: features.clone(),
            };
            lines.push(row.to_json(epoch));
        }
    }
    Ok(lines)
}

/// `grover serve`: run the tuning-cache service until a graceful
/// shutdown is requested over HTTP.
fn cmd_serve(
    args: &[String],
    recorder: &Arc<dyn Recorder>,
    backend: Backend,
) -> Result<(), Failure> {
    let mut config = grover_serve::ServeConfig {
        addr: "127.0.0.1:7171".to_string(),
        backend,
        ..grover_serve::ServeConfig::default()
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                config.addr = it
                    .next()
                    .ok_or_else(|| Failure::usage("--addr needs HOST:PORT"))?
                    .clone()
            }
            "--cache-dir" => {
                config.cache_dir = it
                    .next()
                    .ok_or_else(|| Failure::usage("--cache-dir needs a path"))?
                    .into()
            }
            "--threads" => config.workers = parse_u64(&mut it, "--threads")? as usize,
            "--queue-depth" => config.queue_depth = parse_u64(&mut it, "--queue-depth")? as usize,
            "--cache-capacity" => {
                config.cache_capacity = parse_u64(&mut it, "--cache-capacity")? as usize
            }
            "--max-deadline-ms" => {
                config.max_deadline = Some(Duration::from_millis(parse_u64(
                    &mut it,
                    "--max-deadline-ms",
                )?))
            }
            "--breaker-threshold" => {
                config.breaker_threshold = parse_u64(&mut it, "--breaker-threshold")? as u32
            }
            "--breaker-cooldown-ms" => {
                config.breaker_cooldown =
                    Duration::from_millis(parse_u64(&mut it, "--breaker-cooldown-ms")?)
            }
            "--io-timeout-ms" => {
                let ms = parse_u64(&mut it, "--io-timeout-ms")?;
                config.io_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--compact-threshold" => {
                config.compact_threshold = parse_u64(&mut it, "--compact-threshold")? as usize
            }
            "--flight-capacity" => {
                config.flight_capacity = parse_u64(&mut it, "--flight-capacity")? as usize
            }
            "--profile-ops" => config.profile_ops = true,
            "--model" => {
                config.model_path = Some(
                    it.next()
                        .ok_or_else(|| Failure::usage("--model needs a model.json path"))?
                        .into(),
                )
            }
            "--predict-threshold" => {
                config.predict_threshold = parse_f64(&mut it, "--predict-threshold")?
            }
            other => return Err(Failure::usage(format!("unexpected argument `{other}`"))),
        }
    }
    let server = grover_serve::Server::start(config, recorder.clone())
        .map_err(|e| Failure::new(1, format!("cannot start server: {e}")))?;
    println!("grover-serve listening on {}", server.addr());
    println!("  pass fingerprint: {}", grover_core::pass_fingerprint());
    println!(
        "  stop with: curl -X POST http://{}/admin/shutdown",
        server.addr()
    );
    server.wait();
    println!("grover-serve stopped");
    Ok(())
}

fn cmd_list() -> Result<(), Failure> {
    println!("{:<11} description", "ID");
    for app in all_apps() {
        println!("{:<11} {}", app.id, app.description);
    }
    Ok(())
}
