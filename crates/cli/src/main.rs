//! `grover` — command-line driver for the local-memory-removal toolchain.
//!
//! ```text
//! grover transform <kernel.cl> [-D NAME=VAL ...] [--kernel NAME] [--keep-barriers]
//!     Compile, run the Grover pass, print the report and the before/after IR.
//!
//! grover autotune <app-id> [--device SNB|Nehalem|MIC|Fermi|Kepler|Tahiti] [--scale test|small|paper] [--threads N]
//!                 [--strict] [--json] [--no-verify] [--deadline-ms N] [--retries N] [--backoff-ms N]
//!     Tune a bundled benchmark on a device via the hardened pipeline: both
//!     kernel versions race under the measurement watchdog, transient
//!     failures are retried, and output buffers are bit-compared. A failing
//!     or divergent transformed kernel gracefully falls back to the
//!     original (exit 0) unless `--strict` is given (exit 8). `--threads N`
//!     runs work-groups on N host threads (0 = one per CPU); the simulated
//!     cycle counts are identical to a serial run.
//!
//! grover list
//!     List the bundled benchmark applications.
//! ```
//!
//! ## Exit codes
//!
//! | code | meaning                                               |
//! |------|-------------------------------------------------------|
//! | 0    | success (including a graceful autotune fallback)      |
//! | 1    | internal error                                        |
//! | 2    | usage error                                           |
//! | 3    | compile / workload-preparation failure                |
//! | 4    | unknown application or device                         |
//! | 5    | execution error while measuring the original kernel   |
//! | 6    | isolated panic while measuring the original kernel    |
//! | 7    | wall-clock deadline exceeded on the original kernel   |
//! | 8    | `--strict` and the tuner fell back to the original    |

use std::process::ExitCode;
use std::time::Duration;

use grover_core::Grover;
use grover_frontend::{compile, BuildOptions};
use grover_ir::printer::function_to_string;
use grover_kernels::{all_apps, app_by_id, prepare_pair, Scale};
use grover_runtime::{ExecPolicy, Limits};
use grover_tuner::{Choice, Decision, RetryPolicy, TuneError, Tuner, Workload};

const EXIT_USAGE: u8 = 2;
const EXIT_COMPILE: u8 = 3;
const EXIT_UNKNOWN_TARGET: u8 = 4;
const EXIT_EXEC: u8 = 5;
const EXIT_PANIC: u8 = 6;
const EXIT_DEADLINE: u8 = 7;
const EXIT_STRICT_FALLBACK: u8 = 8;

/// A command failure carrying its stable exit code (see module docs).
struct Failure {
    code: u8,
    message: String,
}

impl Failure {
    fn new(code: u8, message: impl Into<String>) -> Failure {
        Failure {
            code,
            message: message.into(),
        }
    }

    fn usage(message: impl Into<String>) -> Failure {
        Failure::new(EXIT_USAGE, message)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("transform") => cmd_transform(&args[1..]),
        Some("autotune") => cmd_autotune(&args[1..]),
        Some("classify") => cmd_classify(&args[1..]),
        Some("list") => cmd_list(),
        _ => {
            eprintln!("usage: grover <transform|autotune|classify|list> ...");
            eprintln!("  grover transform <kernel.cl> [-D NAME=VAL ...] [--kernel NAME] [--keep-barriers]");
            eprintln!(
                "  grover autotune <app-id> [--device NAME] [--scale test|small|paper] [--threads N]"
            );
            eprintln!("                  [--strict] [--json] [--no-verify] [--deadline-ms N] [--retries N] [--backoff-ms N]");
            eprintln!("  grover classify <kernel.cl> [-D NAME=VAL ...]");
            eprintln!("  grover list");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(f) => {
            eprintln!("error: {}", f.message);
            ExitCode::from(f.code)
        }
    }
}

fn cmd_transform(args: &[String]) -> Result<(), Failure> {
    let mut path = None;
    let mut opts = BuildOptions::new();
    let mut kernel_name: Option<String> = None;
    let mut keep_barriers = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-D" => {
                let d = it
                    .next()
                    .ok_or_else(|| Failure::usage("-D needs an argument"))?;
                let (n, v) = d.split_once('=').unwrap_or((d.as_str(), "1"));
                opts = opts.define(n, v);
            }
            "--kernel" => {
                kernel_name = Some(
                    it.next()
                        .ok_or_else(|| Failure::usage("--kernel needs a name"))?
                        .clone(),
                )
            }
            "--keep-barriers" => keep_barriers = true,
            other if other.starts_with("-D") => {
                let d = &other[2..];
                let (n, v) = d.split_once('=').unwrap_or((d, "1"));
                opts = opts.define(n, v);
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => return Err(Failure::usage(format!("unexpected argument `{other}`"))),
        }
    }
    let path = path.ok_or_else(|| Failure::usage("no input file"))?;
    let source = std::fs::read_to_string(&path)
        .map_err(|e| Failure::new(EXIT_COMPILE, format!("cannot read {path}: {e}")))?;
    let module =
        compile(&source, &opts).map_err(|e| Failure::new(EXIT_COMPILE, format!("{path}: {e}")))?;

    for kernel in &module.kernels {
        if let Some(only) = &kernel_name {
            if &kernel.name != only {
                continue;
            }
        }
        println!("==== original: {} ====", kernel.name);
        println!("{}", function_to_string(kernel));
        let mut transformed = kernel.clone();
        let grover = Grover::with_options(grover_core::GroverOptions {
            buffers: None,
            keep_barriers,
        });
        let report = grover.run_on(&mut transformed);
        println!("==== grover report ====");
        print!("{}", report.to_text());
        println!("==== transformed: {} ====", transformed.name);
        println!("{}", function_to_string(&transformed));
    }
    Ok(())
}

fn parse_u64(it: &mut std::slice::Iter<String>, flag: &str) -> Result<u64, Failure> {
    it.next()
        .ok_or_else(|| Failure::usage(format!("{flag} needs a value")))?
        .parse()
        .map_err(|_| Failure::usage(format!("{flag} needs an integer")))
}

fn cmd_autotune(args: &[String]) -> Result<(), Failure> {
    let mut app_id = None;
    let mut device = "SNB".to_string();
    let mut scale = Scale::Small;
    let mut policy = ExecPolicy::Serial;
    let mut strict = false;
    let mut json = false;
    let mut verify = true;
    let mut deadline: Option<Duration> = None;
    let mut retries: Option<u32> = None;
    let mut backoff = Duration::ZERO;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--device" => {
                device = it
                    .next()
                    .ok_or_else(|| Failure::usage("--device needs a name"))?
                    .clone()
            }
            "--scale" => {
                scale = match it
                    .next()
                    .ok_or_else(|| Failure::usage("--scale needs a value"))?
                    .as_str()
                {
                    "test" => Scale::Test,
                    "small" => Scale::Small,
                    "paper" => Scale::Paper,
                    other => return Err(Failure::usage(format!("unknown scale `{other}`"))),
                }
            }
            "--threads" => {
                let n = parse_u64(&mut it, "--threads")? as usize;
                policy = ExecPolicy::Parallel { threads: n };
            }
            "--strict" => strict = true,
            "--json" => json = true,
            "--no-verify" => verify = false,
            "--deadline-ms" => {
                deadline = Some(Duration::from_millis(parse_u64(&mut it, "--deadline-ms")?))
            }
            "--retries" => retries = Some(parse_u64(&mut it, "--retries")? as u32),
            "--backoff-ms" => backoff = Duration::from_millis(parse_u64(&mut it, "--backoff-ms")?),
            other if app_id.is_none() => app_id = Some(other.to_string()),
            other => return Err(Failure::usage(format!("unexpected argument `{other}`"))),
        }
    }
    let app_id = app_id.ok_or_else(|| Failure::usage("no application id (try `grover list`)"))?;
    let app = app_by_id(&app_id).ok_or_else(|| {
        Failure::new(
            EXIT_UNKNOWN_TARGET,
            format!("unknown app `{app_id}` (try `grover list`)"),
        )
    })?;

    if !json {
        println!("auto-tuning {} on {device} (scale {scale:?})", app.id);
    }
    let pair = prepare_pair(&app, scale).map_err(|e| Failure::new(EXIT_COMPILE, e))?;
    let prepare = app.prepare;
    let workload = Workload::new(move || {
        let p = prepare(scale);
        (p.ctx, p.args, p.nd)
    });

    let mut tuner = Tuner::with_policy(policy);
    tuner.limits = Limits {
        deadline,
        ..Limits::default()
    };
    tuner.retry = RetryPolicy {
        // `--retries N` = N retries after the first attempt.
        max_attempts: retries.map_or(RetryPolicy::default().max_attempts, |r| r + 1),
        backoff,
    };
    tuner.verify_outputs = verify;

    let d = tuner
        .tune_pair(
            &pair.original,
            &pair.transformed,
            pair.report,
            &device,
            &workload,
        )
        .map_err(tune_failure)?;

    if json {
        println!("{}", decision_json(&app_id, scale, &d));
    } else {
        print_decision(&d);
    }
    if strict {
        if let Some(reason) = &d.fallback {
            return Err(Failure::new(
                EXIT_STRICT_FALLBACK,
                format!("tuning fell back to the original kernel: {reason}"),
            ));
        }
    }
    Ok(())
}

/// Map a tuner error (a failure of the *original* kernel or the tuner
/// itself — transformed-kernel failures are graceful fallbacks, not errors)
/// to its stable exit code.
fn tune_failure(e: TuneError) -> Failure {
    let code = match &e {
        TuneError::UnknownDevice(_) => EXIT_UNKNOWN_TARGET,
        TuneError::NothingToDisable(_) => EXIT_COMPILE,
        TuneError::Execution(_) => EXIT_EXEC,
        TuneError::Panicked(_) => EXIT_PANIC,
        TuneError::Deadline => EXIT_DEADLINE,
        TuneError::Internal(_) => 1,
    };
    Failure::new(code, e.to_string())
}

fn print_decision(d: &Decision) {
    println!("  with local memory   : {:>12} cycles", d.cycles_with);
    if d.cycles_without > 0 {
        println!("  without local memory: {:>12} cycles", d.cycles_without);
    } else {
        println!("  without local memory:   (no completed measurement)");
    }
    println!("  normalized performance np = {:.3}", d.np);
    if let Some(reason) = &d.fallback {
        println!("  fallback: {reason}");
        println!("  verdict: keep the ORIGINAL kernel (graceful fallback)");
        return;
    }
    match d.choice {
        Choice::WithoutLocalMemory => {
            println!("  verdict: use the GROVER-TRANSFORMED kernel (local memory disabled)")
        }
        Choice::WithLocalMemory => {
            println!("  verdict: keep the ORIGINAL kernel (local memory enabled)")
        }
        Choice::Similar => println!("  verdict: both versions perform similarly (within 5%)"),
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn decision_json(app_id: &str, scale: Scale, d: &Decision) -> String {
    let scale = match scale {
        Scale::Test => "test",
        Scale::Small => "small",
        Scale::Paper => "paper",
    };
    let choice = match d.choice {
        Choice::WithLocalMemory => "with_local_memory",
        Choice::WithoutLocalMemory => "without_local_memory",
        Choice::Similar => "similar",
    };
    let fallback = match &d.fallback {
        None => "null".to_string(),
        Some(reason) => format!(
            "{{\"kind\":{},\"detail\":{}}}",
            json_str(reason.kind()),
            json_str(&reason.to_string())
        ),
    };
    format!(
        "{{\"app\":{},\"device\":{},\"scale\":{},\"cycles_with\":{},\"cycles_without\":{},\"np\":{},\"choice\":{},\"fallback\":{}}}",
        json_str(app_id),
        json_str(&d.device),
        json_str(scale),
        d.cycles_with,
        d.cycles_without,
        d.np,
        json_str(choice),
        fallback
    )
}

fn cmd_classify(args: &[String]) -> Result<(), Failure> {
    let mut path = None;
    let mut opts = BuildOptions::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-D" => {
                let d = it
                    .next()
                    .ok_or_else(|| Failure::usage("-D needs an argument"))?;
                let (n, v) = d.split_once('=').unwrap_or((d.as_str(), "1"));
                opts = opts.define(n, v);
            }
            other if other.starts_with("-D") => {
                let d = &other[2..];
                let (n, v) = d.split_once('=').unwrap_or((d, "1"));
                opts = opts.define(n, v);
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => return Err(Failure::usage(format!("unexpected argument `{other}`"))),
        }
    }
    let path = path.ok_or_else(|| Failure::usage("no input file"))?;
    let source = std::fs::read_to_string(&path)
        .map_err(|e| Failure::new(EXIT_COMPILE, format!("cannot read {path}: {e}")))?;
    let module =
        compile(&source, &opts).map_err(|e| Failure::new(EXIT_COMPILE, format!("{path}: {e}")))?;
    for kernel in &module.kernels {
        println!("kernel {}:", kernel.name);
        let classes = grover_core::classify(kernel);
        if classes.is_empty() {
            println!("  (no __local buffers)");
        }
        for c in classes {
            println!(
                "  __local {:<12} {:<22?} {} loads, {} stores, {}  — {}",
                c.buffer,
                c.pattern,
                c.loads,
                c.stores,
                if c.synchronised {
                    "synchronised"
                } else {
                    "NOT synchronised"
                },
                c.pattern.describe()
            );
        }
    }
    Ok(())
}

fn cmd_list() -> Result<(), Failure> {
    println!("{:<11} description", "ID");
    for app in all_apps() {
        println!("{:<11} {}", app.id, app.description);
    }
    Ok(())
}
