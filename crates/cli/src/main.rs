//! `grover` — command-line driver for the local-memory-removal toolchain.
//!
//! ```text
//! grover transform <kernel.cl> [-D NAME=VAL ...] [--kernel NAME] [--keep-barriers]
//!     Compile, run the Grover pass, print the report and the before/after IR.
//!
//! grover autotune <app-id> [--device SNB|Nehalem|MIC|Fermi|Kepler|Tahiti] [--scale test|small|paper] [--threads N]
//!     Simulate both kernel versions of a bundled benchmark on a device and
//!     report which one wins (the paper's auto-tuning step). `--threads N`
//!     runs work-groups on N host threads (0 = one per CPU); the simulated
//!     cycle counts are identical to a serial run.
//!
//! grover list
//!     List the bundled benchmark applications.
//! ```

use std::process::ExitCode;

use grover_core::Grover;
use grover_devsim::Device;
use grover_frontend::{compile, BuildOptions};
use grover_ir::printer::function_to_string;
use grover_kernels::{all_apps, app_by_id, prepare_pair, run_prepared_with, Scale};
use grover_runtime::ExecPolicy;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("transform") => cmd_transform(&args[1..]),
        Some("autotune") => cmd_autotune(&args[1..]),
        Some("classify") => cmd_classify(&args[1..]),
        Some("list") => cmd_list(),
        _ => {
            eprintln!("usage: grover <transform|autotune|classify|list> ...");
            eprintln!("  grover transform <kernel.cl> [-D NAME=VAL ...] [--kernel NAME] [--keep-barriers]");
            eprintln!(
                "  grover autotune <app-id> [--device NAME] [--scale test|small|paper] [--threads N]"
            );
            eprintln!("  grover classify <kernel.cl> [-D NAME=VAL ...]");
            eprintln!("  grover list");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_transform(args: &[String]) -> Result<(), String> {
    let mut path = None;
    let mut opts = BuildOptions::new();
    let mut kernel_name: Option<String> = None;
    let mut keep_barriers = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-D" => {
                let d = it.next().ok_or("-D needs an argument")?;
                let (n, v) = d.split_once('=').unwrap_or((d.as_str(), "1"));
                opts = opts.define(n, v);
            }
            "--kernel" => kernel_name = Some(it.next().ok_or("--kernel needs a name")?.clone()),
            "--keep-barriers" => keep_barriers = true,
            other if other.starts_with("-D") => {
                let d = &other[2..];
                let (n, v) = d.split_once('=').unwrap_or((d, "1"));
                opts = opts.define(n, v);
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let path = path.ok_or("no input file")?;
    let source = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let module = compile(&source, &opts).map_err(|e| format!("{path}: {e}"))?;

    for kernel in &module.kernels {
        if let Some(only) = &kernel_name {
            if &kernel.name != only {
                continue;
            }
        }
        println!("==== original: {} ====", kernel.name);
        println!("{}", function_to_string(kernel));
        let mut transformed = kernel.clone();
        let grover = Grover::with_options(grover_core::GroverOptions {
            buffers: None,
            keep_barriers,
        });
        let report = grover.run_on(&mut transformed);
        println!("==== grover report ====");
        print!("{}", report.to_text());
        println!("==== transformed: {} ====", transformed.name);
        println!("{}", function_to_string(&transformed));
    }
    Ok(())
}

fn cmd_autotune(args: &[String]) -> Result<(), String> {
    let mut app_id = None;
    let mut device = "SNB".to_string();
    let mut scale = Scale::Small;
    let mut policy = ExecPolicy::Serial;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--device" => device = it.next().ok_or("--device needs a name")?.clone(),
            "--scale" => {
                scale = match it.next().ok_or("--scale needs a value")?.as_str() {
                    "test" => Scale::Test,
                    "small" => Scale::Small,
                    "paper" => Scale::Paper,
                    other => return Err(format!("unknown scale `{other}`")),
                }
            }
            "--threads" => {
                let n: usize = it
                    .next()
                    .ok_or("--threads needs a count")?
                    .parse()
                    .map_err(|_| "--threads needs an integer".to_string())?;
                policy = ExecPolicy::Parallel { threads: n };
            }
            other if app_id.is_none() => app_id = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let app_id = app_id.ok_or("no application id (try `grover list`)")?;
    let app = app_by_id(&app_id).ok_or_else(|| format!("unknown app `{app_id}`"))?;

    println!("auto-tuning {} on {device} (scale {scale:?})", app.id);
    let pair = prepare_pair(&app, scale)?;
    let mut d = Device::by_name(&device).ok_or_else(|| format!("unknown device `{device}`"))?;
    run_prepared_with(&pair.original, (app.prepare)(scale), &mut d, policy)?;
    let with_lm = d.finish();
    let mut d = Device::by_name(&device).expect("checked");
    run_prepared_with(&pair.transformed, (app.prepare)(scale), &mut d, policy)?;
    let without_lm = d.finish();

    let np = with_lm.cycles as f64 / without_lm.cycles.max(1) as f64;
    println!("  with local memory   : {:>12} cycles", with_lm.cycles);
    println!("  without local memory: {:>12} cycles", without_lm.cycles);
    println!("  normalized performance np = {np:.3}");
    if np > 1.05 {
        println!("  verdict: use the GROVER-TRANSFORMED kernel (local memory disabled)");
    } else if np < 0.95 {
        println!("  verdict: keep the ORIGINAL kernel (local memory enabled)");
    } else {
        println!("  verdict: both versions perform similarly (within 5%)");
    }
    Ok(())
}

fn cmd_classify(args: &[String]) -> Result<(), String> {
    let mut path = None;
    let mut opts = BuildOptions::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-D" => {
                let d = it.next().ok_or("-D needs an argument")?;
                let (n, v) = d.split_once('=').unwrap_or((d.as_str(), "1"));
                opts = opts.define(n, v);
            }
            other if other.starts_with("-D") => {
                let d = &other[2..];
                let (n, v) = d.split_once('=').unwrap_or((d, "1"));
                opts = opts.define(n, v);
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let path = path.ok_or("no input file")?;
    let source = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let module = compile(&source, &opts).map_err(|e| format!("{path}: {e}"))?;
    for kernel in &module.kernels {
        println!("kernel {}:", kernel.name);
        let classes = grover_core::classify(kernel);
        if classes.is_empty() {
            println!("  (no __local buffers)");
        }
        for c in classes {
            println!(
                "  __local {:<12} {:<22?} {} loads, {} stores, {}  — {}",
                c.buffer,
                c.pattern,
                c.loads,
                c.stores,
                if c.synchronised {
                    "synchronised"
                } else {
                    "NOT synchronised"
                },
                c.pattern.describe()
            );
        }
    }
    Ok(())
}

fn cmd_list() -> Result<(), String> {
    println!("{:<11} description", "ID");
    for app in all_apps() {
        println!("{:<11} {}", app.id, app.description);
    }
    Ok(())
}
