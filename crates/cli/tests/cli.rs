//! End-to-end tests of the `grover` binary.

use std::io::Write;
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_grover");

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("grover-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

const MT: &str = r#"
#define S 8
__kernel void mt(__global float* in, __global float* out, int w) {
    __local float lm[S][S];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int wy = get_group_id(1);
    lm[ly][lx] = in[(wy * S + ly) * w + (wx * S + lx)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[(wx * S + lx) * w + (wy * S + ly)] = lm[lx][ly];
}
"#;

#[test]
fn transform_prints_report_and_both_versions() {
    let path = write_temp("mt.cl", MT);
    let out = Command::new(BIN)
        .args(["transform", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("original: mt"), "{stdout}");
    assert!(stdout.contains("transformed: mt"), "{stdout}");
    assert!(stdout.contains("(lx, ly) = (ly, lx)"), "{stdout}");
    assert!(stdout.contains("removed 1 barrier"), "{stdout}");
    // The transformed listing must not declare the local buffer.
    let transformed = stdout.split("transformed: mt").nth(1).unwrap();
    assert!(!transformed.contains("local @lm"), "{transformed}");
}

#[test]
fn transform_with_define_option() {
    let src = MT.replace("#define S 8\n", "");
    let path = write_temp("mt_nodefine.cl", &src);
    // Without -D S it must fail...
    let out = Command::new(BIN)
        .args(["transform", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    // ...with it, succeed.
    let out = Command::new(BIN)
        .args(["transform", path.to_str().unwrap(), "-D", "S=16"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("16"));
}

#[test]
fn keep_barriers_flag() {
    let path = write_temp("mt_kb.cl", MT);
    let out = Command::new(BIN)
        .args(["transform", path.to_str().unwrap(), "--keep-barriers"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let transformed = stdout.split("transformed: mt").nth(1).unwrap();
    assert!(transformed.contains("barrier"), "{transformed}");
}

#[test]
fn classify_reports_patterns() {
    let src = r#"
__kernel void red(__global float* in, __global float* out) {
    __local float acc[8];
    int lx = get_local_id(0);
    acc[lx] = in[lx];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int s = 4; s > 0; s = s / 2) {
        if (lx < s) { acc[lx] = acc[lx] + acc[lx + s]; }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (lx == 0) { out[0] = acc[0]; }
}
"#;
    let path = write_temp("red.cl", src);
    let out = Command::new(BIN)
        .args(["classify", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ReadWriteTemporary"), "{stdout}");
}

#[test]
fn list_names_all_apps() {
    let out = Command::new(BIN).arg("list").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for id in [
        "AMD-SS",
        "AMD-MT",
        "NVD-MT",
        "AMD-RG",
        "AMD-MM",
        "NVD-MM-A",
        "NVD-MM-B",
        "NVD-MM-AB",
        "NVD-NBody",
        "PAB-ST",
        "ROD-SC",
    ] {
        assert!(stdout.contains(id), "missing {id}: {stdout}");
    }
}

#[test]
fn autotune_runs_at_test_scale() {
    let out = Command::new(BIN)
        .args(["autotune", "NVD-MT", "--device", "SNB", "--scale", "test"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("normalized performance"), "{stdout}");
    assert!(stdout.contains("verdict"), "{stdout}");
}

#[test]
fn bad_usage_exits_nonzero() {
    assert!(!Command::new(BIN).output().unwrap().status.success());
    assert!(!Command::new(BIN)
        .args(["autotune", "NOPE", "--scale", "test"])
        .output()
        .unwrap()
        .status
        .success());
    assert!(!Command::new(BIN)
        .args(["transform", "/nonexistent/file.cl"])
        .output()
        .unwrap()
        .status
        .success());
}

fn exit_code(args: &[&str]) -> i32 {
    Command::new(BIN)
        .args(args)
        .output()
        .unwrap()
        .status
        .code()
        .expect("terminated by signal")
}

/// Exit codes are a stable part of the interface (scripts key off them).
#[test]
fn stable_exit_codes() {
    // 0: success, including a clean tuning run.
    assert_eq!(exit_code(&["list"]), 0);
    // 2: usage errors.
    assert_eq!(exit_code(&[]), 2);
    assert_eq!(exit_code(&["autotune"]), 2);
    assert_eq!(exit_code(&["autotune", "NVD-MT", "--bogus-flag"]), 2);
    assert_eq!(exit_code(&["autotune", "NVD-MT", "--retries", "x"]), 2);
    // 3: compile/prepare failures.
    assert_eq!(exit_code(&["transform", "/nonexistent/file.cl"]), 3);
    // 4: unknown application or device.
    assert_eq!(exit_code(&["autotune", "NOPE", "--scale", "test"]), 4);
    assert_eq!(
        exit_code(&["autotune", "NVD-MT", "--device", "TPU", "--scale", "test"]),
        4
    );
}

#[test]
fn autotune_strict_succeeds_on_healthy_app() {
    // No fault injected: the transformed kernel measures and verifies, so
    // --strict must not change the exit status.
    let out = Command::new(BIN)
        .args([
            "autotune", "NVD-MT", "--device", "SNB", "--scale", "test", "--strict",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn autotune_json_output() {
    let out = Command::new(BIN)
        .args([
            "autotune", "NVD-MT", "--device", "SNB", "--scale", "test", "--json",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout.trim();
    // One JSON object, nothing else.
    assert!(line.starts_with('{') && line.ends_with('}'), "{stdout}");
    for key in [
        "\"app\":\"NVD-MT\"",
        "\"device\":\"SNB\"",
        "\"scale\":\"test\"",
        "\"pass_fingerprint\":\"grover-",
        "\"cycles_with\":",
        "\"cycles_without\":",
        "\"np\":",
        "\"choice\":",
        "\"fallback\":",
    ] {
        assert!(line.contains(key), "missing {key}: {line}");
    }
}

#[test]
fn profile_prints_traffic_table() {
    let out = Command::new(BIN)
        .args(["profile", "NVD-MT", "--scale", "test"])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "original",
        "transformed",
        "local loads",
        "global loads",
        "barriers",
        "local loads eliminated",
        "global loads added",
        "barriers removed",
        "buffers:",
        "removed",
    ] {
        assert!(stdout.contains(needle), "missing `{needle}`: {stdout}");
    }
}

#[test]
fn profile_json_schema() {
    for app in ["NVD-MT", "AMD-MM"] {
        let out = Command::new(BIN)
            .args(["profile", app, "--scale", "test", "--json"])
            .output()
            .unwrap();
        assert_eq!(
            out.status.code(),
            Some(0),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        let line = stdout.trim();
        assert!(line.starts_with('{') && line.ends_with('}'), "{stdout}");
        assert!(!line.contains('\n'), "one line only: {stdout}");
        for key in [
            "\"app\":",
            "\"scale\":\"test\"",
            "\"kernel\":",
            "\"pass_fingerprint\":\"grover-",
            "\"original\":{",
            "\"transformed\":{",
            "\"delta\":{",
            "\"local_loads\":",
            "\"local_stores\":",
            "\"global_loads\":",
            "\"private_loads\":",
            "\"bytes_loaded\":",
            "\"global_bytes\":{\"loaded\":",
            "\"local_loads_removed\":",
            "\"global_loads_added\":",
            "\"barriers_removed\":",
            "\"buffers\":[",
            "\"outcome\":",
            "\"pass\":{",
        ] {
            assert!(line.contains(key), "{app}: missing {key}: {line}");
        }
    }
}

#[test]
fn profile_exit_codes() {
    // 4: unknown app; 2: usage.
    assert_eq!(exit_code(&["profile", "NOPE"]), 4);
    assert_eq!(exit_code(&["profile"]), 2);
    assert_eq!(exit_code(&["profile", "NVD-MT", "--bogus"]), 2);
    assert_eq!(exit_code(&["profile", "NVD-MT", "--scale", "huge"]), 2);
}

#[test]
fn trace_out_writes_parseable_jsonl() {
    let dir = std::env::temp_dir().join("grover-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace-profile.jsonl");
    let _ = std::fs::remove_file(&trace);
    let out = Command::new(BIN)
        .args([
            "--trace-out",
            trace.to_str().unwrap(),
            "profile",
            "NVD-MT",
            "--scale",
            "test",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&trace).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 3, "expected spans + events: {text}");
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"type\":"), "{line}");
        assert!(line.contains("\"name\":"), "{line}");
        assert!(line.contains("\"attrs\":{"), "{line}");
    }
    // The profile span and both nested launch spans must be present.
    assert!(text.contains("\"name\":\"profile\""), "{text}");
    assert_eq!(text.matches("\"name\":\"launch\"").count(), 2, "{text}");
    // --trace-out with a missing value is a usage error.
    assert_eq!(exit_code(&["--trace-out"]), 2);
}

#[test]
fn trace_out_captures_tuning_decision() {
    let dir = std::env::temp_dir().join("grover-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace-autotune.jsonl");
    let _ = std::fs::remove_file(&trace);
    let out = Command::new(BIN)
        .args([
            "--trace-out",
            trace.to_str().unwrap(),
            "autotune",
            "NVD-MT",
            "--device",
            "SNB",
            "--scale",
            "test",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&trace).unwrap();
    assert!(text.contains("\"name\":\"tune\""), "{text}");
    assert!(text.contains("\"name\":\"decision\""), "{text}");
    assert!(text.contains("\"name\":\"measure\""), "{text}");
}

#[test]
fn autotune_accepts_hardening_flags() {
    // The watchdog/retry knobs parse and a generous deadline doesn't trip.
    let out = Command::new(BIN)
        .args([
            "autotune",
            "NVD-MT",
            "--device",
            "SNB",
            "--scale",
            "test",
            "--deadline-ms",
            "60000",
            "--retries",
            "1",
            "--backoff-ms",
            "0",
            "--no-verify",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("verdict"));
}

#[test]
fn fuzz_json_summary_is_clean_and_deterministic() {
    let out_dir = std::env::temp_dir()
        .join("grover-cli-tests")
        .join("fuzz-out");
    let _ = std::fs::remove_dir_all(&out_dir);
    let run = || {
        Command::new(BIN)
            .args([
                "fuzz",
                "--seed",
                "7",
                "--cases",
                "25",
                "--json",
                "--out-dir",
                out_dir.to_str().unwrap(),
            ])
            .output()
            .unwrap()
    };
    let out = run();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    for key in [
        "\"seed\":7",
        "\"cases\":25",
        "\"failures\":0",
        "\"mismatches\":0",
    ] {
        assert!(stdout.contains(key), "{key} missing in {stdout}");
    }
    // A clean campaign writes no reproducers, so the directory never appears.
    assert!(!out_dir.exists());
    // Same seed, same cases — byte-identical summary.
    assert_eq!(stdout, String::from_utf8_lossy(&run().stdout));
}

#[test]
fn fuzz_human_summary_and_usage_errors() {
    let out = Command::new(BIN)
        .args(["fuzz", "--seed", "3", "--cases", "10"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("seed 3"), "{stdout}");
    assert!(stdout.contains("10 cases"), "{stdout}");

    let out = Command::new(BIN)
        .args(["fuzz", "--bogus"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    let out = Command::new(BIN)
        .args(["fuzz", "--seed", "notanumber"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn fuzz_streams_campaign_telemetry() {
    let trace = std::env::temp_dir()
        .join("grover-cli-tests")
        .join("fuzz-trace.jsonl");
    let _ = std::fs::remove_file(&trace);
    std::fs::create_dir_all(trace.parent().unwrap()).unwrap();
    let out = Command::new(BIN)
        .args([
            "--trace-out",
            trace.to_str().unwrap(),
            "fuzz",
            "--seed",
            "1",
            "--cases",
            "5",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = std::fs::read_to_string(&trace).unwrap();
    assert!(body.contains("fuzz.campaign"), "{body}");
    assert_eq!(body.matches("fuzz.case").count() % 5, 0, "{body}");
}

#[test]
fn backend_flag_is_global_and_validated() {
    // Unknown backend value is a usage error, wherever the flag sits.
    assert_eq!(exit_code(&["--backend", "jit", "list"]), 2);
    assert_eq!(exit_code(&["profile", "NVD-MT", "--backend"]), 2);
}

#[test]
fn autotune_json_records_backend() {
    let run = |backend: &str| {
        let out = Command::new(BIN)
            .args([
                "autotune",
                "NVD-MT",
                "--device",
                "SNB",
                "--scale",
                "test",
                "--json",
                "--backend",
                backend,
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).trim().to_string()
    };
    let interp = run("interp");
    let bytecode = run("bytecode");
    assert!(interp.contains("\"backend\":\"interp\""), "{interp}");
    assert!(bytecode.contains("\"backend\":\"bytecode\""), "{bytecode}");
    // The backends must reach the same decision on the same measurements.
    assert_eq!(
        interp.replace("\"backend\":\"interp\"", ""),
        bytecode.replace("\"backend\":\"bytecode\"", "")
    );
}

#[test]
fn profile_json_identical_across_backends() {
    let run = |backend: &str| {
        let out = Command::new(BIN)
            .args([
                "--backend",
                backend,
                "profile",
                "NVD-MT",
                "--scale",
                "test",
                "--json",
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).trim().to_string()
    };
    let interp = run("interp");
    let bytecode = run("bytecode");
    assert!(bytecode.contains("\"backend\":\"bytecode\""), "{bytecode}");
    // Same kernels, same workload: every traffic counter must agree.
    assert_eq!(
        interp.replace("\"backend\":\"interp\"", ""),
        bytecode.replace("\"backend\":\"bytecode\"", "")
    );
}

#[test]
fn fuzz_campaign_runs_on_bytecode_backend() {
    let out = Command::new(BIN)
        .args([
            "fuzz",
            "--seed",
            "11",
            "--cases",
            "15",
            "--json",
            "--backend",
            "bytecode",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"backend\":\"bytecode\""), "{stdout}");
    assert!(stdout.contains("\"failures\":0"), "{stdout}");
}
