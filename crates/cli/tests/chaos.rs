//! Process-level crash test for `grover serve`: a real child process is
//! SIGKILLed mid-campaign (no graceful shutdown, no flush-on-exit) and a
//! restart over the same cache directory must warm-start every decision
//! the dead process had acknowledged with a 200 — the "zero
//! accepted-then-lost decisions" contract, proven across an actual
//! process boundary rather than in-process fault injection.

use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};

use grover_obs::json::{self, Json};
use grover_serve::http_request;

const BIN: &str = env!("CARGO_BIN_EXE_grover");

const STAGE: &str = "__kernel void stage(__global float* in, __global float* out) {
    __local float lm[64];
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    lm[lx] = in[gx];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[gx] = lm[63 - lx];
}";

fn tune_body(global: u64) -> String {
    format!(
        "{{\"source\": {}, \"device\": \"SNB\", \"global\": [{global}], \"local\": [64]}}",
        json::escape(STAGE)
    )
}

/// Spawn `grover serve` on an ephemeral port and parse the bound address
/// from its startup banner.
fn spawn_serve(cache_dir: &std::path::Path) -> (Child, SocketAddr) {
    let mut child = Command::new(BIN)
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--cache-dir",
            cache_dir.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve child spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve prints its banner before exiting")
            .expect("readable stdout");
        if let Some(rest) = line.strip_prefix("grover-serve listening on ") {
            break rest.trim().parse().expect("banner address parses");
        }
    };
    // Drain the rest of the banner in the background so the child never
    // blocks on a full stdout pipe.
    std::thread::spawn(move || for _ in lines.by_ref() {});
    (child, addr)
}

fn metric(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("metric {name} missing"))
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("metric {name} is not an integer"))
}

#[test]
fn sigkill_mid_campaign_loses_no_acknowledged_decision() {
    let dir = std::env::temp_dir().join(format!("grover-cli-chaos-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let (mut child, addr) = spawn_serve(&dir);

    // Campaign: tune distinct keys and record every acknowledged (200)
    // decision. The process is killed right after — no graceful path.
    let mut acked: HashMap<String, String> = HashMap::new();
    for i in 0..6u64 {
        let body = tune_body(64 * (i + 1));
        let (status, text) =
            http_request(addr, "POST", "/v1/tune", Some(&body)).expect("tune request");
        assert_eq!(status, 200, "{text}");
        let resp = json::parse(&text).unwrap_or(Json::Null);
        acked.insert(
            resp.str_of("fingerprint").expect("fingerprint").to_string(),
            resp.str_of("choice").expect("choice").to_string(),
        );
    }
    assert_eq!(acked.len(), 6, "distinct geometries give distinct keys");

    // SIGKILL: the child gets no chance to flush, compact, or shut down.
    child.kill().expect("kill serve child");
    child.wait().expect("reap serve child");

    // Restart over the same cache directory: every acknowledged decision
    // must come back as a cache hit with the identical choice.
    let (mut revived, addr2) = spawn_serve(&dir);
    let (_, metrics) = http_request(addr2, "GET", "/metrics", None).expect("metrics");
    assert_eq!(
        metric(&metrics, "grover_serve_journal_recovered_total"),
        6,
        "all acknowledged decisions recovered:\n{metrics}"
    );
    assert_eq!(metric(&metrics, "grover_serve_journal_corrupt_total"), 0);
    assert_eq!(metric(&metrics, "grover_serve_journal_torn_total"), 0);

    for i in 0..6u64 {
        let body = tune_body(64 * (i + 1));
        let (status, text) =
            http_request(addr2, "POST", "/v1/tune", Some(&body)).expect("tune request");
        assert_eq!(status, 200, "{text}");
        let resp = json::parse(&text).unwrap_or(Json::Null);
        assert_eq!(
            resp.bool_of("cached"),
            Some(true),
            "acknowledged decision was lost by the crash: {text}"
        );
        let fp = resp.str_of("fingerprint").expect("fingerprint");
        assert_eq!(
            acked.get(fp).map(String::as_str),
            resp.str_of("choice"),
            "recovered decision differs from the acknowledged one"
        );
    }
    let (_, metrics) = http_request(addr2, "GET", "/metrics", None).expect("metrics");
    assert_eq!(
        metric(&metrics, "grover_serve_tune_races_total"),
        0,
        "warm-start must serve every key without re-tuning"
    );

    let (status, _) =
        http_request(addr2, "POST", "/admin/shutdown", None).expect("shutdown request");
    assert_eq!(status, 200);
    revived.wait().expect("graceful exit");
    std::fs::remove_dir_all(&dir).ok();
}
