//! Set-associative cache model with true-LRU replacement and write-back /
//! write-allocate policy.

/// Static cache parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Cache-line size in bytes.
    pub line_bytes: u64,
    /// Associativity.
    pub ways: u64,
    /// Hit latency in cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Construct a configuration.
    pub fn new(size_bytes: u64, line_bytes: u64, ways: u64, latency: u64) -> CacheConfig {
        CacheConfig {
            size_bytes,
            line_bytes,
            ways,
            latency,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> u64 {
        (self.size_bytes / self.line_bytes / self.ways).max(1)
    }
}

/// Hit/miss statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses served by this level.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Valid lines displaced.
    pub evictions: u64,
    /// Dirty lines displaced.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses (hits + misses).
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction (0 when never accessed).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU timestamp (higher = more recent).
    stamp: u64,
}

/// A single cache level.
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
    /// Running statistics.
    pub stats: CacheStats,
}

/// Result of probing a cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Probe {
    /// The line was present.
    Hit,
    /// Miss; `writeback` says whether a dirty line was evicted.
    Miss {
        /// A dirty victim was displaced.
        writeback: bool,
    },
}

impl Cache {
    /// An empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Cache {
        let sets = (0..config.num_sets())
            .map(|_| {
                vec![
                    Line {
                        tag: 0,
                        valid: false,
                        dirty: false,
                        stamp: 0
                    };
                    config.ways as usize
                ]
            })
            .collect();
        Cache {
            config,
            sets,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Access one byte address. Accesses spanning multiple lines should be
    /// split by the caller (see [`Cache::access_range`]).
    pub fn access(&mut self, addr: u64, is_write: bool) -> Probe {
        self.clock += 1;
        let line_addr = addr / self.config.line_bytes;
        let set_idx = (line_addr % self.config.num_sets()) as usize;
        let tag = line_addr / self.config.num_sets();
        let set = &mut self.sets[set_idx];

        if let Some(l) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            l.stamp = self.clock;
            l.dirty |= is_write;
            self.stats.hits += 1;
            return Probe::Hit;
        }
        self.stats.misses += 1;
        // Victim: invalid line if any, else LRU.
        let victim = match set.iter().position(|l| !l.valid) {
            Some(i) => i,
            None => {
                self.stats.evictions += 1;
                set.iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.stamp)
                    .map(|(i, _)| i)
                    .expect("nonempty set")
            }
        };
        let writeback = set[victim].valid && set[victim].dirty;
        if writeback {
            self.stats.writebacks += 1;
        }
        set[victim] = Line {
            tag,
            valid: true,
            dirty: is_write,
            stamp: self.clock,
        };
        Probe::Miss { writeback }
    }

    /// Access `[addr, addr+bytes)`, splitting across lines. Returns the
    /// number of line-level misses.
    pub fn access_range(&mut self, addr: u64, bytes: u64, is_write: bool) -> u64 {
        let lb = self.config.line_bytes;
        let first = addr / lb;
        let last = (addr + bytes.max(1) - 1) / lb;
        let mut misses = 0;
        for line in first..=last {
            if matches!(self.access(line * lb, is_write), Probe::Miss { .. }) {
                misses += 1;
            }
        }
        misses
    }

    /// Drop all contents (e.g. between benchmark repetitions).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for l in set {
                l.valid = false;
                l.dirty = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 16B lines = 128 B
        Cache::new(CacheConfig::new(128, 16, 2, 1))
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.config().num_sets(), 4);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(matches!(c.access(0x40, false), Probe::Miss { .. }));
        assert_eq!(c.access(0x44, false), Probe::Hit); // same line
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn lru_replacement() {
        let mut c = tiny();
        // Three lines mapping to the same set (stride = num_sets * line = 64).
        c.access(0, false);
        c.access(64, false);
        c.access(0, false); // touch 0 -> 64 is LRU
        c.access(128, false); // evicts 64
        assert_eq!(c.access(0, false), Probe::Hit);
        assert!(matches!(c.access(64, false), Probe::Miss { .. }));
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = tiny();
        c.access(0, true); // dirty
        c.access(64, false);
        c.access(128, false); // evicts line 0 (LRU), dirty -> writeback
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn range_access_spans_lines() {
        let mut c = tiny();
        // 16-byte vector at offset 8 touches two lines.
        let misses = c.access_range(8, 16, false);
        assert_eq!(misses, 2);
        assert_eq!(c.access_range(8, 16, false), 0);
    }

    #[test]
    fn hit_plus_miss_equals_accesses() {
        let mut c = tiny();
        for i in 0..1000u64 {
            c.access(i * 8, i % 3 == 0);
        }
        assert_eq!(c.stats.hits + c.stats.misses, c.stats.accesses());
        assert_eq!(c.stats.accesses(), 1000);
    }

    #[test]
    fn flush_empties() {
        let mut c = tiny();
        c.access(0, false);
        assert_eq!(c.access(0, false), Probe::Hit);
        c.flush();
        assert!(matches!(c.access(0, false), Probe::Miss { .. }));
    }

    #[test]
    fn sequential_stream_mostly_hits() {
        // 4-byte sequential accesses over 16-byte lines: 1 miss + 3 hits.
        let mut c = Cache::new(CacheConfig::new(1 << 16, 16, 4, 1));
        for i in 0..256u64 {
            c.access(i * 4, false);
        }
        assert_eq!(c.stats.misses, 64);
        assert_eq!(c.stats.hits, 192);
    }

    #[test]
    fn strided_stream_misses() {
        // Stride 256 over a 1 KiB direct-ish cache: every access misses
        // after warmup wraps.
        let mut c = Cache::new(CacheConfig::new(1024, 64, 2, 1));
        let mut misses = 0;
        for rep in 0..4u64 {
            for i in 0..64u64 {
                if matches!(c.access(i * 256, false), Probe::Miss { .. }) {
                    misses += 1;
                }
            }
            let _ = rep;
        }
        // 64 distinct lines, only 16 fit: high miss count.
        assert!(misses > 200, "misses = {misses}");
    }
}
