//! Implicit-SIMD CPU runtime model.
//!
//! Intel's OpenCL CPU runtime (the paper's measurement platform, §V-A)
//! does not execute work-items one by one: its implicit vectorization
//! module fuses `simd_width` consecutive work-items into one vectorised
//! iteration. Memory accesses issued by the *same instruction* across the
//! fused work-items become:
//!
//! * a **vector** access when the lanes touch consecutive addresses,
//! * a **broadcast** when all lanes touch the same address,
//! * a **gather/scatter** otherwise (one probe per lane plus overhead).
//!
//! Barriers become loop fission instead of per-item context switches, so
//! their cost is divided by the vector width.
//!
//! This model exists alongside the scalar [`crate::cpu::CpuModel`] to
//! quantify how much the runtime's execution style changes the
//! with/without-local-memory verdicts (the `ablations` binary compares
//! them). It shares the cache hierarchy, so differences come purely from
//! access fusion.

use std::collections::HashMap;

use grover_ir::AddressSpace;
use grover_runtime::{AccessEvent, TraceOp, TraceSink};

use crate::hierarchy::CoreMemory;
use crate::profiles::CpuProfile;
use crate::PerfReport;

/// Extra cycles per lane of a gather/scatter beyond the cache probes.
const GATHER_LANE_OVERHEAD: u64 = 2;

/// Classification of one fused access group.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessClass {
    /// Lanes touch consecutive addresses: one wide access.
    Vector,
    /// All lanes touch the same address: one access.
    Broadcast,
    /// Lanes scatter: one probe per lane plus overhead.
    Gather,
}

/// Classify the per-lane addresses of one instruction across a SIMD group.
pub fn classify(addrs: &[(u64, u32)]) -> AccessClass {
    if addrs.len() <= 1 {
        return AccessClass::Vector;
    }
    let first = addrs[0].0;
    if addrs.iter().all(|&(a, _)| a == first) {
        return AccessClass::Broadcast;
    }
    let elem = addrs[0].1 as u64;
    let consecutive = addrs
        .windows(2)
        .all(|w| w[1].0 == w[0].0 + elem && w[1].1 == w[0].1);
    if consecutive {
        AccessClass::Vector
    } else {
        AccessClass::Gather
    }
}

/// Per-lane `(addr, bytes, is_store)` accesses of one fused SIMD slot,
/// in lane order.
type LaneAccesses = Vec<(u64, u32, bool)>;

#[derive(Default)]
struct GroupAccum {
    /// (local, pc) -> how many accesses this work-item issued at this pc.
    counters: HashMap<(u32, u32), u32>,
    /// (pc, occurrence, simd_group) -> fused per-lane accesses.
    fused: HashMap<(u32, u32, u32), LaneAccesses>,
    instructions: u64,
    barriers: u64,
}

/// Trace-driven CPU model with implicit work-item vectorisation.
pub struct SimdCpuModel {
    mem: CoreMemory,
    cycles: Vec<u64>,
    mem_cycles: u64,
    compute_cycles: u64,
    barrier_cycles: u64,
    /// Fused groups classified as vector.
    pub vector_accesses: u64,
    /// Fused groups classified as broadcast.
    pub broadcast_accesses: u64,
    /// Fused groups classified as gather.
    pub gather_accesses: u64,
    pending: HashMap<u32, GroupAccum>,
}

impl SimdCpuModel {
    /// A fresh model for one device profile.
    pub fn new(profile: CpuProfile) -> SimdCpuModel {
        let cores = profile.cores;
        SimdCpuModel {
            mem: CoreMemory::new(profile),
            cycles: vec![0; cores],
            mem_cycles: 0,
            compute_cycles: 0,
            barrier_cycles: 0,
            vector_accesses: 0,
            broadcast_accesses: 0,
            gather_accesses: 0,
            pending: HashMap::new(),
        }
    }

    fn core_of(&self, group: u32) -> usize {
        group as usize % self.mem.profile().cores
    }

    fn retire_group(&mut self, group: u32) {
        let Some(acc) = self.pending.remove(&group) else {
            return;
        };
        let core = self.core_of(group);
        let p = self.mem.profile().clone();
        let mut cycles = 0u64;

        for lanes in acc.fused.values() {
            let addrs: Vec<(u64, u32)> = lanes.iter().map(|&(a, b, _)| (a, b)).collect();
            let is_store = lanes.iter().any(|&(_, _, s)| s);
            let clock = self.cycles[core] + cycles;
            let cost = match classify(&addrs) {
                AccessClass::Vector => {
                    self.vector_accesses += 1;
                    let start = addrs[0].0;
                    let total: u64 = addrs.iter().map(|&(_, b)| b as u64).sum();
                    self.mem.access_cost(core, start, total, is_store, clock)
                }
                AccessClass::Broadcast => {
                    self.broadcast_accesses += 1;
                    self.mem
                        .access_cost(core, addrs[0].0, addrs[0].1 as u64, is_store, clock)
                }
                AccessClass::Gather => {
                    self.gather_accesses += 1;
                    let mut c = 0;
                    for &(a, b) in &addrs {
                        c += self.mem.access_cost(core, a, b as u64, is_store, clock)
                            / 2 // lanes overlap in the memory pipeline
                            + GATHER_LANE_OVERHEAD;
                    }
                    c
                }
            };
            cycles += cost;
        }
        self.mem_cycles += cycles;

        // Vectorised compute: one instruction covers simd_width items.
        let comp = (acc.instructions as f64 * p.cpi / p.simd_width as f64) as u64;
        self.compute_cycles += comp;
        cycles += comp;

        // Barriers via loop fission: per-item switching divided by width.
        let bar = acc.barriers * p.barrier_switch_cycles / p.simd_width as u64;
        self.barrier_cycles += bar;
        cycles += bar;

        self.cycles[core] += cycles;
    }

    /// Finish the simulation (retiring pending groups) and report.
    pub fn finish(&mut self) -> PerfReport {
        let groups: Vec<u32> = self.pending.keys().copied().collect();
        for g in groups {
            self.retire_group(g);
        }
        PerfReport {
            device: self.mem.profile().name.to_string(),
            cycles: self.cycles.iter().copied().max().unwrap_or(0),
            core_cycles: self.cycles.clone(),
            compute_cycles: self.compute_cycles,
            mem_cycles: self.mem_cycles,
            barrier_cycles: self.barrier_cycles,
            l1: self.mem.l1_stats(),
            l2: self.mem.l2_stats(),
            llc: self.mem.llc_stats(),
            dram_accesses: self.mem.dram_accesses,
            transactions: 0,
        }
    }
}

impl TraceSink for SimdCpuModel {
    fn access(&mut self, ev: &AccessEvent) {
        let core = self.core_of(ev.group);
        let addr = match ev.space {
            AddressSpace::Local => self.mem.phys(core, ev.space, ev.addr),
            _ => ev.addr,
        };
        let width = self.mem.profile().simd_width;
        let acc = self.pending.entry(ev.group).or_default();
        let occ = {
            let c = acc.counters.entry((ev.local, ev.pc)).or_insert(0);
            let v = *c;
            *c += 1;
            v
        };
        let sgroup = ev.local / width;
        acc.fused.entry((ev.pc, occ, sgroup)).or_default().push((
            addr,
            ev.bytes,
            ev.op == TraceOp::Store,
        ));
    }

    fn barrier(&mut self, group: u32, items: u32) {
        let acc = self.pending.entry(group).or_default();
        acc.barriers += items as u64;
    }

    fn workitem_done(&mut self, group: u32, _local: u32, instructions: u64) {
        let acc = self.pending.entry(group).or_default();
        acc.instructions += instructions;
    }

    fn workgroup_done(&mut self, group: u32) {
        self.retire_group(group);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::snb;

    fn ev(addr: u64, local: u32, pc: u32) -> AccessEvent {
        AccessEvent {
            op: TraceOp::Load,
            space: AddressSpace::Global,
            addr,
            bytes: 4,
            group: 0,
            local,
            pc,
        }
    }

    #[test]
    fn classify_shapes() {
        assert_eq!(
            classify(&[(0, 4), (4, 4), (8, 4), (12, 4)]),
            AccessClass::Vector
        );
        assert_eq!(
            classify(&[(100, 4), (100, 4), (100, 4)]),
            AccessClass::Broadcast
        );
        assert_eq!(
            classify(&[(0, 4), (1024, 4), (2048, 4)]),
            AccessClass::Gather
        );
        assert_eq!(classify(&[(0, 4)]), AccessClass::Vector);
    }

    #[test]
    fn consecutive_lanes_fuse_to_vector() {
        let mut m = SimdCpuModel::new(snb());
        for lane in 0..8 {
            m.access(&ev(lane as u64 * 4, lane, 1));
        }
        m.workgroup_done(0);
        let r = m.finish();
        assert_eq!(m.vector_accesses, 1);
        assert_eq!(m.gather_accesses, 0);
        assert!(r.cycles > 0);
    }

    #[test]
    fn uniform_lanes_fuse_to_broadcast() {
        let mut m = SimdCpuModel::new(snb());
        for lane in 0..8 {
            m.access(&ev(0x400, lane, 1));
        }
        m.workgroup_done(0);
        let _ = m.finish();
        assert_eq!(m.broadcast_accesses, 1);
    }

    #[test]
    fn strided_lanes_become_gathers_and_cost_more() {
        let mut a = SimdCpuModel::new(snb());
        let mut b = SimdCpuModel::new(snb());
        for lane in 0..8 {
            a.access(&ev(lane as u64 * 4, lane, 1)); // vector
            b.access(&ev(lane as u64 * 4096, lane, 1)); // gather
        }
        a.workgroup_done(0);
        b.workgroup_done(0);
        let ra = a.finish();
        let rb = b.finish();
        assert_eq!(b.gather_accesses, 1);
        assert!(rb.cycles > ra.cycles, "{} vs {}", rb.cycles, ra.cycles);
    }

    #[test]
    fn compute_is_divided_by_width() {
        let mut m = SimdCpuModel::new(snb());
        m.workitem_done(0, 0, 800);
        m.workgroup_done(0);
        let r = m.finish();
        // 800 insts * cpi 0.7 / width 8 = 70
        assert_eq!(r.compute_cycles, 70);
    }

    #[test]
    fn barriers_are_cheap_under_fission() {
        let mut simd = SimdCpuModel::new(snb());
        simd.barrier(0, 256);
        simd.workgroup_done(0);
        let rs = simd.finish();
        let mut scalar = crate::cpu::CpuModel::new(snb());
        scalar.barrier(0, 256);
        let rc = scalar.finish();
        assert!(rs.barrier_cycles < rc.barrier_cycles);
    }

    #[test]
    fn different_pcs_do_not_fuse() {
        let mut m = SimdCpuModel::new(snb());
        m.access(&ev(0, 0, 1));
        m.access(&ev(4, 1, 2));
        m.workgroup_done(0);
        let _ = m.finish();
        assert_eq!(
            m.vector_accesses + m.broadcast_accesses + m.gather_accesses,
            2
        );
    }
}
