//! First-order analytic CPU performance model (paper §VIII future work:
//! *"using Grover, we want to model the performance benefits/losses due to
//! local memory usage on CPUs"*).
//!
//! The model predicts a kernel's CPU time from *operation counts alone* —
//! no cache simulation — so it can be evaluated against the trace-driven
//! simulator. It deliberately captures only the effects one can know
//! without an address trace:
//!
//! * instruction work (`cpi`),
//! * memory operations at an assumed average latency,
//! * barrier work-item switching.
//!
//! What it *cannot* see is data layout: cache-line utilisation, set
//! conflicts, strided-column thrash. Comparing its predictions against the
//! simulator (`model_check` binary) reproduces the paper's own conclusion:
//! counts predict the staging-overhead cases (NVD-MT, PAB-ST) but miss the
//! layout cases (AMD-MM), which is precisely why empirical auto-tuning
//! beats modelling (§VI-C).

use crate::profiles::CpuProfile;

/// Trace-free operation counts for one kernel launch (obtainable from
/// [`grover_runtime::CountingSink`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct OpCounts {
    /// IR instructions executed.
    pub instructions: u64,
    /// `__global` loads.
    pub global_loads: u64,
    /// `__global` stores.
    pub global_stores: u64,
    /// `__local` loads.
    pub local_loads: u64,
    /// `__local` stores.
    pub local_stores: u64,
    /// Number of barrier rendezvous × work-items per group.
    pub barrier_item_crossings: u64,
}

impl OpCounts {
    /// Build from a counting sink and the launch's items-per-group.
    pub fn from_counts(c: &grover_runtime::CountingSink, items_per_group: u64) -> OpCounts {
        OpCounts {
            instructions: c.instructions,
            global_loads: c.global_loads,
            global_stores: c.global_stores,
            local_loads: c.local_loads,
            local_stores: c.local_stores,
            barrier_item_crossings: c.barriers * items_per_group,
        }
    }
}

/// Model parameters derived from a device profile.
#[derive(Clone, Copy, Debug)]
pub struct AnalyticCpuModel {
    /// Cycles per instruction.
    pub cpi: f64,
    /// Assumed average latency of a global access (cycles). Global data is
    /// streamed once in these kernels, so the average sits between L1 and
    /// L2 depending on line utilisation — the model uses a fixed blend.
    pub global_latency: f64,
    /// Assumed latency of a local access (always cache-hot on CPUs).
    pub local_latency: f64,
    /// Cycles per work-item barrier crossing.
    pub barrier_switch: f64,
}

impl AnalyticCpuModel {
    /// Derive model parameters from a simulated profile.
    pub fn from_profile(p: &CpuProfile) -> AnalyticCpuModel {
        AnalyticCpuModel {
            cpi: p.cpi,
            // Sequential streams hit L1 ~3/4 of the time (16 floats per
            // 64 B line, one miss per line served by L2-or-beyond).
            global_latency: 0.75 * p.l1.latency as f64 + 0.25 * p.l2.latency as f64,
            local_latency: p.l1.latency as f64,
            barrier_switch: p.barrier_switch_cycles as f64,
        }
    }

    /// Predicted cycles (up to the parallel-core divisor, which cancels in
    /// np ratios).
    pub fn predict_cycles(&self, c: &OpCounts) -> f64 {
        c.instructions as f64 * self.cpi
            + (c.global_loads + c.global_stores) as f64 * self.global_latency
            + (c.local_loads + c.local_stores) as f64 * self.local_latency
            + c.barrier_item_crossings as f64 * self.barrier_switch
    }

    /// Predicted normalized performance `np = t_with / t_without`.
    pub fn predict_np(&self, with_lm: &OpCounts, without_lm: &OpCounts) -> f64 {
        self.predict_cycles(with_lm) / self.predict_cycles(without_lm).max(1.0)
    }
}

/// How well a prediction matched a measurement, at the paper's 5 %
/// gain/loss threshold.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Agreement {
    /// Same verdict (gain/loss/similar).
    Exact,
    /// One side says similar, the other gain or loss.
    Near,
    /// Opposite verdicts (one gain, one loss).
    Opposite,
}

/// Classify agreement between predicted and measured np.
pub fn agreement(predicted: f64, measured: f64, threshold: f64) -> Agreement {
    let v = |np: f64| {
        if np > 1.0 + threshold {
            1i8
        } else if np < 1.0 - threshold {
            -1
        } else {
            0
        }
    };
    let (p, m) = (v(predicted), v(measured));
    if p == m {
        Agreement::Exact
    } else if p == 0 || m == 0 {
        Agreement::Near
    } else {
        Agreement::Opposite
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::snb;

    fn counts(insts: u64, gl: u64, ll: u64, ls: u64, barrier: u64) -> OpCounts {
        OpCounts {
            instructions: insts,
            global_loads: gl,
            global_stores: gl / 2,
            local_loads: ll,
            local_stores: ls,
            barrier_item_crossings: barrier,
        }
    }

    #[test]
    fn removing_staging_predicts_gain() {
        let m = AnalyticCpuModel::from_profile(&snb());
        // with: staging adds local traffic + barrier crossings + insts
        let with_lm = counts(1000, 100, 100, 100, 256);
        let without = counts(800, 100, 0, 0, 0);
        let np = m.predict_np(&with_lm, &without);
        assert!(np > 1.0, "np = {np}");
    }

    #[test]
    fn identical_counts_predict_similar() {
        let m = AnalyticCpuModel::from_profile(&snb());
        let c = counts(1000, 100, 0, 0, 0);
        let np = m.predict_np(&c, &c);
        assert!((np - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_global_traffic_predicts_loss() {
        let m = AnalyticCpuModel::from_profile(&snb());
        let with_lm = counts(1000, 100, 50, 50, 0);
        let without = counts(1000, 400, 0, 0, 0); // staging removal tripled gl
        let np = m.predict_np(&with_lm, &without);
        assert!(np < 1.0, "np = {np}");
    }

    #[test]
    fn agreement_classification() {
        assert_eq!(agreement(1.2, 1.3, 0.05), Agreement::Exact);
        assert_eq!(agreement(0.9, 0.8, 0.05), Agreement::Exact);
        assert_eq!(agreement(1.0, 1.02, 0.05), Agreement::Exact);
        assert_eq!(agreement(1.2, 1.0, 0.05), Agreement::Near);
        assert_eq!(agreement(1.0, 0.9, 0.05), Agreement::Near);
        assert_eq!(agreement(1.2, 0.8, 0.05), Agreement::Opposite);
    }

    #[test]
    fn from_counts_helper() {
        let c = grover_runtime::CountingSink {
            instructions: 10,
            global_loads: 3,
            barriers: 2,
            ..Default::default()
        };
        let o = OpCounts::from_counts(&c, 64);
        assert_eq!(o.instructions, 10);
        assert_eq!(o.global_loads, 3);
        assert_eq!(o.barrier_item_crossings, 128);
    }
}
