//! Device profiles for the six platforms of the paper's evaluation
//! (Table II: SNB, Nehalem, MIC — Fig. 2 additionally: Fermi, Kepler,
//! Tahiti).
//!
//! Parameters are first-order approximations of the published
//! microarchitectures. Absolute cycle counts are not meant to match real
//! silicon; what matters for the reproduction is the *relative* cost
//! structure: cache geometry, DRAM distance, work-item switch cost on CPUs,
//! SPM vs coalesced/uncoalesced global access on GPUs, and MIC's
//! distributed last-level cache.

use crate::cache::CacheConfig;

/// A cache-only CPU (or MIC) device description.
#[derive(Clone, Debug)]
pub struct CpuProfile {
    /// Device name (paper spelling).
    pub name: &'static str,
    /// Hardware cores the runtime spreads work-groups over.
    pub cores: usize,
    /// Average cycles per (scalar IR) instruction.
    pub cpi: f64,
    /// Private first-level cache.
    pub l1: CacheConfig,
    /// Private second-level cache.
    pub l2: CacheConfig,
    /// Last-level cache (or the ring of remote L2s on MIC).
    pub llc: CacheConfig,
    /// `true` = one LLC slice per core, address-interleaved, with a remote
    /// penalty (MIC's ring of L2s); `false` = one unified LLC (SNB/Nehalem).
    pub llc_distributed: bool,
    /// Extra cycles to reach a remote LLC slice.
    pub remote_llc_penalty: u64,
    /// DRAM access latency in cycles.
    pub dram_latency: u64,
    /// Cost of switching between work-item fibers at a barrier, per
    /// work-item (CPU OpenCL runtimes serialise the group; each barrier
    /// forces a context save/restore per item).
    pub barrier_switch_cycles: u64,
    /// Stride-prefetcher stream table size (0 disables prefetching).
    pub prefetch_streams: usize,
    /// Lines prefetched ahead once a stream locks.
    pub prefetch_degree: u64,
    /// Work-items fused per vector instruction by the implicit-SIMD
    /// runtime model ([`crate::cpu_simd::SimdCpuModel`]); the scalar model
    /// ignores this.
    pub simd_width: u32,
}

/// A GPU device description.
#[derive(Clone, Debug)]
pub struct GpuProfile {
    /// Device name (paper spelling).
    pub name: &'static str,
    /// Compute units (SMs / CUs).
    pub sms: usize,
    /// Warp / wavefront width: accesses from this many consecutive
    /// work-items coalesce into transactions.
    pub warp_width: u32,
    /// Bytes per memory transaction (coalescing segment size).
    pub transaction_bytes: u64,
    /// Cycles per scratch-pad (local memory) access per warp.
    pub spm_latency: u64,
    /// Shared L2 cache.
    pub l2: CacheConfig,
    /// L2-hit transaction latency.
    pub l2_latency: u64,
    /// DRAM transaction latency.
    pub dram_latency: u64,
    /// Effective cycles per instruction per warp (throughput-normalised).
    pub cpi_warp: f64,
    /// Cycles lost at each barrier per warp.
    pub barrier_cycles: u64,
    /// Memory-level parallelism: how many outstanding transactions the SM
    /// overlaps (divides memory stall time).
    pub mlp: f64,
}

/// Sandy Bridge-class Xeon (paper's SNB: dual E5-2620, 2.0 GHz).
pub fn snb() -> CpuProfile {
    CpuProfile {
        name: "SNB",
        cores: 12,
        cpi: 0.7,
        l1: CacheConfig::new(32 * 1024, 64, 8, 4),
        l2: CacheConfig::new(256 * 1024, 64, 8, 12),
        llc: CacheConfig::new(15 * 1024 * 1024, 64, 20, 35),
        llc_distributed: false,
        remote_llc_penalty: 0,
        dram_latency: 200,
        barrier_switch_cycles: 30,
        prefetch_streams: 4,
        prefetch_degree: 1,
        simd_width: 8, // AVX: 8 f32 lanes
    }
}

/// Nehalem-class Xeon (paper's Nehalem: dual E5620, 2.4 GHz).
pub fn nehalem() -> CpuProfile {
    CpuProfile {
        name: "Nehalem",
        cores: 8,
        cpi: 0.9,
        l1: CacheConfig::new(32 * 1024, 64, 8, 4),
        l2: CacheConfig::new(256 * 1024, 64, 8, 11),
        llc: CacheConfig::new(12 * 1024 * 1024, 64, 16, 40),
        llc_distributed: false,
        remote_llc_penalty: 0,
        dram_latency: 240,
        barrier_switch_cycles: 45,
        prefetch_streams: 4,
        prefetch_degree: 1,
        simd_width: 4, // SSE: 4 f32 lanes
    }
}

/// Xeon Phi / Knights Corner (paper's MIC: 5110P, 60 cores).
///
/// KNC has no shared LLC; the per-core 512 KiB L2s form a coherent ring, so
/// a miss in the local L2 may be served by a *remote* L2 slice at a latency
/// comparable to memory. The in-order cores give a much higher base CPI.
pub fn mic() -> CpuProfile {
    CpuProfile {
        name: "MIC",
        cores: 60,
        cpi: 3.2,
        l1: CacheConfig::new(32 * 1024, 64, 8, 3),
        l2: CacheConfig::new(512 * 1024, 64, 8, 23),
        llc: CacheConfig::new(30 * 1024 * 1024, 64, 8, 120),
        llc_distributed: true,
        remote_llc_penalty: 130,
        dram_latency: 300,
        barrier_switch_cycles: 20,
        // KNC's aggressive L2 streamer: 16 streams, deep prefetch — the
        // feature that flattens MIC's with/without-LM gap (paper §VI-C).
        prefetch_streams: 16,
        prefetch_degree: 4,
        simd_width: 16, // 512-bit vectors
    }
}

/// NVIDIA Fermi-class (GTX 580 era).
pub fn fermi() -> GpuProfile {
    GpuProfile {
        name: "Fermi",
        sms: 16,
        warp_width: 32,
        transaction_bytes: 128,
        spm_latency: 2,
        l2: CacheConfig::new(768 * 1024, 128, 16, 1),
        l2_latency: 60,
        dram_latency: 400,
        cpi_warp: 1.2,
        barrier_cycles: 30,
        mlp: 8.0,
    }
}

/// NVIDIA Kepler-class (K20).
pub fn kepler() -> GpuProfile {
    GpuProfile {
        name: "Kepler",
        sms: 13,
        warp_width: 32,
        transaction_bytes: 128,
        spm_latency: 2,
        l2: CacheConfig::new(1536 * 1024, 128, 16, 1),
        l2_latency: 65,
        dram_latency: 380,
        cpi_warp: 0.9,
        barrier_cycles: 25,
        mlp: 10.0,
    }
}

/// AMD Tahiti-class (HD 7970). Wavefront of 64; GCN's vector caches make
/// strided access less catastrophic than on Fermi, and its larger register
/// file yields more memory-level parallelism.
pub fn tahiti() -> GpuProfile {
    GpuProfile {
        name: "Tahiti",
        sms: 32,
        warp_width: 64,
        transaction_bytes: 64,
        spm_latency: 2,
        l2: CacheConfig::new(768 * 1024, 64, 16, 1),
        l2_latency: 70,
        dram_latency: 350,
        cpi_warp: 1.0,
        barrier_cycles: 25,
        mlp: 12.0,
    }
}

/// Look up any of the six devices by paper name.
pub fn cpu_by_name(name: &str) -> Option<CpuProfile> {
    match name {
        "SNB" => Some(snb()),
        "Nehalem" => Some(nehalem()),
        "MIC" => Some(mic()),
        _ => None,
    }
}

/// Look up a GPU profile by paper name.
pub fn gpu_by_name(name: &str) -> Option<GpuProfile> {
    match name {
        "Fermi" => Some(fermi()),
        "Kepler" => Some(kepler()),
        "Tahiti" => Some(tahiti()),
        _ => None,
    }
}

/// All CPU device names of Fig. 10.
pub const CPU_DEVICES: [&str; 3] = ["SNB", "Nehalem", "MIC"];
/// All six devices of Fig. 2.
pub const ALL_DEVICES: [&str; 6] = ["Fermi", "Kepler", "Tahiti", "SNB", "Nehalem", "MIC"];

/// Candidate pass sequences raced by the tuner on CPU devices.
///
/// CPUs pay a heavy per-work-item fiber switch at every barrier
/// (`barrier_switch_cycles`), so all three candidates eliminate barriers;
/// they differ in how much post-removal rewriting they do. The third skips
/// the standalone cleanup fixpoint and goes straight to the remapping
/// fixpoint (which subsumes cleanup plus GVN/LICM) — on in-order cores
/// like MIC, hoisting the nGL address arithmetic out of loops is the lever
/// that matters.
const CPU_SEQUENCES: [&str; 3] = [
    "local-removal,barrier-elim,index-simplify",
    "local-removal,barrier-elim,index-simplify,remap",
    "local-removal,barrier-elim,remap",
];

/// Candidate pass sequences raced by the tuner on GPU devices.
///
/// GPU barriers are cheap (`barrier_cycles` per warp, hidden by the warp
/// scheduler), so the search also explores *keeping* them: the third
/// candidate leaves barriers in place and spends the budget on the
/// coalescing-friendly remap instead — testing whether barrier removal
/// matters at all once local traffic is gone.
const GPU_SEQUENCES: [&str; 3] = [
    "local-removal,barrier-elim,index-simplify",
    "local-removal,barrier-elim,index-simplify,remap",
    "local-removal,index-simplify,remap",
];

/// The candidate pass-sequence set seeded for a device profile.
///
/// Returned as spec strings (the `--passes` vocabulary) so `devsim` stays
/// dependency-free; `grover-core` parses and validates them. Unknown
/// devices get an empty set — the tuner rejects them before sequence
/// selection anyway.
pub fn candidate_sequences(device: &str) -> &'static [&'static str] {
    if cpu_by_name(device).is_some() {
        &CPU_SEQUENCES
    } else if gpu_by_name(device).is_some() {
        &GPU_SEQUENCES
    } else {
        &[]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups() {
        assert_eq!(cpu_by_name("SNB").unwrap().name, "SNB");
        assert_eq!(cpu_by_name("MIC").unwrap().cores, 60);
        assert!(cpu_by_name("Fermi").is_none());
        assert_eq!(gpu_by_name("Tahiti").unwrap().warp_width, 64);
        assert!(gpu_by_name("SNB").is_none());
    }

    #[test]
    fn mic_is_distributed() {
        assert!(mic().llc_distributed);
        assert!(!snb().llc_distributed);
        assert!(!nehalem().llc_distributed);
    }

    #[test]
    fn every_device_has_candidate_sequences() {
        for d in ALL_DEVICES {
            let seqs = candidate_sequences(d);
            assert!(!seqs.is_empty(), "{d} has no candidate sequences");
            // The default pipeline is always candidate 0, so the search can
            // only improve on the fixed transform.
            assert_eq!(seqs[0], "local-removal,barrier-elim,index-simplify");
            // Every candidate starts with local-removal (the legality root).
            for s in seqs {
                assert!(s.starts_with("local-removal"), "{d}: {s}");
            }
        }
        assert!(candidate_sequences("GTX9000").is_empty());
    }

    #[test]
    fn cache_geometry_sane() {
        for p in [snb(), nehalem(), mic()] {
            assert!(p.l1.size_bytes < p.l2.size_bytes);
            assert!(p.l2.size_bytes < p.llc.size_bytes);
            assert!(p.l1.latency < p.l2.latency);
            assert!(p.l2.latency < p.llc.latency);
            assert!(p.llc.latency < p.dram_latency);
        }
    }
}
