#![warn(missing_docs)]
//! # grover-devsim
//!
//! Trace-driven device performance models standing in for the paper's real
//! hardware (SNB, Nehalem, MIC, Fermi, Kepler, Tahiti — paper Table II and
//! Fig. 2). The [`grover_runtime`] interpreter streams every memory access
//! into a model implementing [`grover_runtime::TraceSink`]; the model
//! replays it through set-associative caches (CPU) or a coalescer + SPM +
//! shared L2 (GPU) and reports estimated cycles.
//!
//! The models capture the first-order effects the paper attributes its
//! results to:
//!
//! * CPUs map `__local` onto ordinary cached memory, so staging data
//!   through it costs real loads/stores plus per-barrier work-item
//!   switching (§VI-C's 1.67× NVD-MT win comes from removing exactly this).
//! * Column-major global access patterns thrash CPU caches unless the
//!   kernel stages/transposes tiles through local memory first (the AMD-MM
//!   44 % loss when Grover removes it).
//! * MIC's distributed last-level cache flattens the difference between
//!   versions (§VI-C).
//! * GPUs coalesce per-warp accesses into transactions; local memory is an
//!   on-chip scratch-pad, so de-staging uncoalesced patterns is ruinous
//!   there (Fig. 2's MT losses on Fermi/Kepler/Tahiti).

pub mod cache;
pub mod cpu;
pub mod cpu_simd;
pub mod gpu;
pub mod hierarchy;
pub mod model;
pub mod profiles;

pub use cache::{Cache, CacheConfig, CacheStats, Probe};
pub use cpu::CpuModel;
pub use cpu_simd::SimdCpuModel;
pub use gpu::GpuModel;
pub use model::{agreement, Agreement, AnalyticCpuModel, OpCounts};
pub use profiles::{candidate_sequences, CpuProfile, GpuProfile, ALL_DEVICES, CPU_DEVICES};

use grover_runtime::{AccessEvent, TraceSink};

/// Estimated performance of one kernel launch on one device.
#[derive(Clone, Debug, Default)]
pub struct PerfReport {
    /// Device name the report describes.
    pub device: String,
    /// Estimated wall cycles: the maximum over cores/SMs.
    pub cycles: u64,
    /// Per-core (CPU) or per-SM (GPU) cycle totals.
    pub core_cycles: Vec<u64>,
    /// Cycles attributed to instruction execution.
    pub compute_cycles: u64,
    /// Cycles attributed to memory accesses.
    pub mem_cycles: u64,
    /// Cycles attributed to barrier handling.
    pub barrier_cycles: u64,
    /// Aggregated cache statistics (CPU: across private caches; GPU: `l2`).
    pub l1: CacheStats,
    /// Second-level / GPU-shared-L2 statistics.
    pub l2: CacheStats,
    /// Last-level statistics (CPU only).
    pub llc: CacheStats,
    /// Accesses served by DRAM.
    pub dram_accesses: u64,
    /// Global memory transactions after coalescing (GPU only).
    pub transactions: u64,
}

/// Any simulated device.
pub enum Device {
    /// A cache-only processor (scalar runtime model).
    Cpu(CpuModel),
    /// A GPU.
    Gpu(GpuModel),
}

impl Device {
    /// Instantiate a device by its paper name
    /// (`SNB`, `Nehalem`, `MIC`, `Fermi`, `Kepler`, `Tahiti`).
    pub fn by_name(name: &str) -> Option<Device> {
        if let Some(p) = profiles::cpu_by_name(name) {
            return Some(Device::Cpu(CpuModel::new(p)));
        }
        profiles::gpu_by_name(name).map(|p| Device::Gpu(GpuModel::new(p)))
    }

    /// Whether this is a cache-only (CPU-class) device.
    pub fn is_cpu(&self) -> bool {
        matches!(self, Device::Cpu(_))
    }

    /// Finish simulation and report.
    pub fn finish(&mut self) -> PerfReport {
        match self {
            Device::Cpu(m) => m.finish(),
            Device::Gpu(m) => m.finish(),
        }
    }
}

impl TraceSink for Device {
    fn access(&mut self, ev: &AccessEvent) {
        match self {
            Device::Cpu(m) => m.access(ev),
            Device::Gpu(m) => m.access(ev),
        }
    }

    fn barrier(&mut self, group: u32, items: u32) {
        match self {
            Device::Cpu(m) => m.barrier(group, items),
            Device::Gpu(m) => m.barrier(group, items),
        }
    }

    fn workitem_done(&mut self, group: u32, local: u32, instructions: u64) {
        match self {
            Device::Cpu(m) => m.workitem_done(group, local, instructions),
            Device::Gpu(m) => m.workitem_done(group, local, instructions),
        }
    }

    fn workgroup_done(&mut self, group: u32) {
        match self {
            Device::Cpu(m) => m.workgroup_done(group),
            Device::Gpu(m) => m.workgroup_done(group),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_lookup() {
        for n in ALL_DEVICES {
            assert!(Device::by_name(n).is_some(), "{n}");
        }
        assert!(Device::by_name("TPU").is_none());
        assert!(Device::by_name("SNB").unwrap().is_cpu());
        assert!(!Device::by_name("Fermi").unwrap().is_cpu());
    }

    #[test]
    fn finish_produces_named_report() {
        let mut d = Device::by_name("Nehalem").unwrap();
        d.workitem_done(0, 0, 10);
        let r = d.finish();
        assert_eq!(r.device, "Nehalem");
        assert!(r.cycles > 0);
    }
}
