//! Trace-driven CPU model (SNB / Nehalem / MIC), scalar work-item
//! execution.
//!
//! Work-groups are assigned round-robin to cores, as OpenCL CPU runtimes
//! do; the work-items of a group run serially on that core (which is also
//! the order the interpreter emits their accesses). Each core has private
//! L1/L2; the last level is either unified (SNB, Nehalem) or distributed
//! into address-interleaved per-core slices with a remote-hop penalty
//! (MIC). `__local` buffers are ordinary cached memory placed in a per-core
//! scratch region — the crux of the paper: on cache-only processors local
//! memory is *not* special, so staging through it is pure extra traffic
//! plus barrier scheduling overhead.
//!
//! See [`crate::cpu_simd`] for the alternative implicit-SIMD runtime model
//! and the ablation comparing the two.

use grover_runtime::{AccessEvent, TraceSink};

use crate::hierarchy::CoreMemory;
use crate::profiles::CpuProfile;
use crate::PerfReport;

/// Scalar-execution CPU performance model.
pub struct CpuModel {
    mem: CoreMemory,
    cycles: Vec<u64>,
    mem_cycles: u64,
    compute_cycles: u64,
    barrier_cycles: u64,
}

impl CpuModel {
    /// A fresh model for one device profile.
    pub fn new(profile: CpuProfile) -> CpuModel {
        let cores = profile.cores;
        CpuModel {
            mem: CoreMemory::new(profile),
            cycles: vec![0; cores],
            mem_cycles: 0,
            compute_cycles: 0,
            barrier_cycles: 0,
        }
    }

    fn core_of(&self, group: u32) -> usize {
        group as usize % self.mem.profile().cores
    }

    /// Finish the simulation and produce the report.
    pub fn finish(&mut self) -> PerfReport {
        PerfReport {
            device: self.mem.profile().name.to_string(),
            cycles: self.cycles.iter().copied().max().unwrap_or(0),
            core_cycles: self.cycles.clone(),
            compute_cycles: self.compute_cycles,
            mem_cycles: self.mem_cycles,
            barrier_cycles: self.barrier_cycles,
            l1: self.mem.l1_stats(),
            l2: self.mem.l2_stats(),
            llc: self.mem.llc_stats(),
            dram_accesses: self.mem.dram_accesses,
            transactions: 0,
        }
    }
}

impl TraceSink for CpuModel {
    fn access(&mut self, ev: &AccessEvent) {
        let core = self.core_of(ev.group);
        let addr = self.mem.phys(core, ev.space, ev.addr);
        let clock = self.cycles[core];
        let cost = self.mem.access_cost(
            core,
            addr,
            ev.bytes as u64,
            ev.op == grover_runtime::TraceOp::Store,
            clock,
        );
        self.cycles[core] += cost;
        self.mem_cycles += cost;
    }

    fn barrier(&mut self, group: u32, items: u32) {
        let core = self.core_of(group);
        let cost = self.mem.profile().barrier_switch_cycles * items as u64;
        self.cycles[core] += cost;
        self.barrier_cycles += cost;
    }

    fn workitem_done(&mut self, group: u32, _local: u32, instructions: u64) {
        let core = self.core_of(group);
        let cost = (instructions as f64 * self.mem.profile().cpi) as u64;
        self.cycles[core] += cost;
        self.compute_cycles += cost;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{mic, nehalem, snb, CpuProfile};
    use grover_ir::AddressSpace;
    use grover_runtime::TraceOp;

    fn ev(space: AddressSpace, addr: u64, group: u32) -> AccessEvent {
        AccessEvent {
            op: TraceOp::Load,
            space,
            addr,
            bytes: 4,
            group,
            local: 0,
            pc: 0,
        }
    }

    #[test]
    fn repeated_access_hits_l1() {
        let mut m = CpuModel::new(snb());
        m.access(&ev(AddressSpace::Global, 0x1000, 0));
        let after_first = m.cycles[0];
        m.access(&ev(AddressSpace::Global, 0x1000, 0));
        let delta = m.cycles[0] - after_first;
        assert_eq!(delta, snb().l1.latency);
        assert!(after_first >= snb().dram_latency);
    }

    #[test]
    fn groups_spread_across_cores() {
        let mut m = CpuModel::new(snb());
        m.access(&ev(AddressSpace::Global, 0x1000, 0));
        m.access(&ev(AddressSpace::Global, 0x2000, 1));
        assert!(m.cycles[0] > 0);
        assert!(m.cycles[1] > 0);
        let r = m.finish();
        assert_eq!(r.core_cycles.len(), snb().cores);
    }

    #[test]
    fn local_regions_are_per_core() {
        let mut m = CpuModel::new(snb());
        // Same local offset from two different groups on different cores
        // must not alias.
        m.access(&ev(AddressSpace::Local, 0, 0));
        m.access(&ev(AddressSpace::Local, 0, 1));
        let r = m.finish();
        assert_eq!(r.l1.misses, 2); // both cold — no aliasing
    }

    #[test]
    fn local_region_stays_hot_across_groups_on_same_core() {
        let p = snb();
        let cores = p.cores as u32;
        let mut m = CpuModel::new(p);
        m.access(&ev(AddressSpace::Local, 0, 0));
        // Next group on the same core (group = cores) reuses the region.
        m.access(&ev(AddressSpace::Local, 0, cores));
        let r = m.finish();
        assert_eq!(r.l1.misses, 1);
        assert_eq!(r.l1.hits, 1);
    }

    #[test]
    fn barrier_costs_scale_with_items() {
        let mut m = CpuModel::new(nehalem());
        m.barrier(0, 64);
        assert_eq!(m.cycles[0], nehalem().barrier_switch_cycles * 64);
    }

    #[test]
    fn mic_strided_sweep_completes() {
        let p = mic();
        let lb = p.llc.line_bytes;
        let mut m = CpuModel::new(p);
        let n = 100_000u64;
        for i in 0..n {
            m.access(&ev(AddressSpace::Global, i * lb * 7, 0));
        }
        let r = m.finish();
        assert!(r.dram_accesses > 0);
        assert!(r.cycles > 0);
    }

    #[test]
    fn prefetcher_hides_constant_stride() {
        // MIC's streamer: after the stride locks, the strided sweep should
        // hit L2 on prefetched lines instead of paying the ring/DRAM.
        let p = mic();
        let mut with_pf = CpuModel::new(p.clone());
        let mut without_pf = CpuModel::new(CpuProfile {
            prefetch_streams: 0,
            ..p
        });
        // Stride of 2 KiB over 4 MiB: thrashes L1, constant L2-miss stride.
        for m in [&mut with_pf, &mut without_pf] {
            for i in 0..2048u64 {
                m.access(&ev(AddressSpace::Global, 0x40_0000 + i * 2048, 0));
            }
        }
        let rw = with_pf.finish();
        let ro = without_pf.finish();
        assert!(
            rw.cycles < ro.cycles,
            "prefetching should reduce cycles: {} vs {}",
            rw.cycles,
            ro.cycles
        );
        assert!(rw.l2.hits > ro.l2.hits);
    }

    #[test]
    fn prefetcher_ignores_random_streams() {
        let p = snb();
        let mut m = CpuModel::new(p);
        // Pseudo-random addresses: no stream should lock meaningfully, and
        // the model must stay correct (counts consistent).
        let mut x = 0x12345u64;
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            m.access(&ev(AddressSpace::Global, ((x >> 20) & 0xff_ffff) & !63, 0));
        }
        let r = m.finish();
        assert_eq!(r.l1.accesses(), 500);
    }

    #[test]
    fn compute_cycles_use_cpi() {
        let mut m = CpuModel::new(mic());
        m.workitem_done(0, 0, 1000);
        assert_eq!(m.cycles[0], 3200);
    }

    #[test]
    fn report_cycles_is_max_core() {
        let mut m = CpuModel::new(snb());
        m.workitem_done(0, 0, 100);
        m.workitem_done(1, 0, 1000);
        let r = m.finish();
        assert_eq!(r.cycles, r.core_cycles.iter().copied().max().unwrap());
        assert_eq!(r.cycles, (1000.0 * snb().cpi) as u64);
    }
}
