//! The per-core memory hierarchy shared by both CPU runtime models
//! (scalar work-item execution and implicit-SIMD execution): private
//! L1/L2, a unified or distributed last level, and per-core stride
//! prefetchers.

use crate::cache::{Cache, CacheStats, Probe};
use crate::profiles::CpuProfile;

/// Base of the per-core local-memory scratch regions in the simulated
/// physical address space (far above any global buffer).
pub const LOCAL_REGION_BASE: u64 = 1 << 44;
/// Stride between consecutive cores' scratch regions.
pub const LOCAL_REGION_STRIDE: u64 = 1 << 24;

/// A per-core stride-detecting stream prefetcher sitting at the L2.
///
/// On an L2 miss it matches the address against its stream table; two
/// consecutive misses at a constant stride lock a stream, after which the
/// next `degree` lines along the stride are installed into the L2 for free
/// (their DRAM/ring latency is assumed to overlap with compute).
pub(crate) struct StridePrefetcher {
    streams: Vec<Stream>,
    max_streams: usize,
    degree: u64,
}

#[derive(Clone, Copy)]
struct Stream {
    last: u64,
    stride: i64,
    confirmed: bool,
    age: u64,
}

impl StridePrefetcher {
    pub(crate) fn new(max_streams: usize, degree: u64) -> StridePrefetcher {
        StridePrefetcher {
            streams: Vec::new(),
            max_streams,
            degree,
        }
    }

    /// Record an L2 miss; return prefetch addresses to install.
    pub(crate) fn miss(&mut self, addr: u64, clock: u64) -> Vec<u64> {
        if self.max_streams == 0 {
            return Vec::new();
        }
        // Find a stream whose next expected address matches.
        for st in &mut self.streams {
            let delta = addr as i64 - st.last as i64;
            if delta != 0 && delta == st.stride {
                st.last = addr;
                st.confirmed = true;
                st.age = clock;
                let stride = st.stride;
                let degree = self.degree;
                return (1..=degree)
                    .map(|k| (addr as i64 + stride * k as i64) as u64)
                    .collect();
            }
        }
        // Try to pair with the *closest* unconfirmed stream (establish the
        // stride). A tight window keeps interleaved streams from distinct
        // buffers (e.g. a load stream and a store stream) from
        // cross-pairing and corrupting each other.
        const PAIR_WINDOW: u64 = 64 * 1024;
        let mut best: Option<(usize, i64)> = None;
        for (i, st) in self.streams.iter().enumerate() {
            if !st.confirmed {
                let delta = addr as i64 - st.last as i64;
                if delta != 0
                    && delta.unsigned_abs() <= PAIR_WINDOW
                    && best.is_none_or(|(_, d)| delta.abs() < d.abs())
                {
                    best = Some((i, delta));
                }
            }
        }
        if let Some((i, delta)) = best {
            let st = &mut self.streams[i];
            st.stride = delta;
            st.last = addr;
            st.confirmed = true;
            st.age = clock;
            return Vec::new();
        }
        // Allocate a new stream (evict the oldest).
        let st = Stream {
            last: addr,
            stride: 0,
            confirmed: false,
            age: clock,
        };
        if self.streams.len() < self.max_streams {
            self.streams.push(st);
        } else if let Some(old) = self.streams.iter_mut().min_by_key(|s| s.age) {
            *old = st;
        }
        Vec::new()
    }
}

/// Private L1/L2 per core, unified or distributed last level, prefetchers.
pub struct CoreMemory {
    profile: CpuProfile,
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    llc: Vec<Cache>,
    prefetchers: Vec<StridePrefetcher>,
    /// Accesses that reached DRAM.
    pub dram_accesses: u64,
    /// Prefetch lines installed into L2.
    pub prefetch_issued: u64,
}

impl CoreMemory {
    /// Fresh caches and prefetchers for one device profile.
    pub fn new(profile: CpuProfile) -> CoreMemory {
        let l1 = (0..profile.cores).map(|_| Cache::new(profile.l1)).collect();
        let l2 = (0..profile.cores).map(|_| Cache::new(profile.l2)).collect();
        let llc = if profile.llc_distributed {
            let mut slice = profile.llc;
            slice.size_bytes =
                (slice.size_bytes / profile.cores as u64).max(slice.line_bytes * slice.ways);
            (0..profile.cores).map(|_| Cache::new(slice)).collect()
        } else {
            vec![Cache::new(profile.llc)]
        };
        let prefetchers = (0..profile.cores)
            .map(|_| StridePrefetcher::new(profile.prefetch_streams, profile.prefetch_degree))
            .collect();
        CoreMemory {
            profile,
            l1,
            l2,
            llc,
            prefetchers,
            dram_accesses: 0,
            prefetch_issued: 0,
        }
    }

    /// The device profile the hierarchy was built from.
    pub fn profile(&self) -> &CpuProfile {
        &self.profile
    }

    /// Physical address for an access: local offsets map into the core's
    /// private scratch region.
    pub fn phys(&self, core: usize, space: grover_ir::AddressSpace, addr: u64) -> u64 {
        match space {
            grover_ir::AddressSpace::Local => {
                LOCAL_REGION_BASE + core as u64 * LOCAL_REGION_STRIDE + addr
            }
            _ => addr,
        }
    }

    /// Cost of one line-granular access through the hierarchy. `clock` is
    /// used only to age prefetch streams.
    pub fn line_cost(&mut self, core: usize, addr: u64, is_write: bool, clock: u64) -> u64 {
        let p = &self.profile;
        if self.l1[core].access(addr, is_write) == Probe::Hit {
            return p.l1.latency;
        }
        if self.l2[core].access(addr, is_write) == Probe::Hit {
            return p.l2.latency;
        }
        // L2 miss: consult the stream prefetcher and install predictions.
        for pf_addr in self.prefetchers[core].miss(addr, clock) {
            self.l2[core].access(pf_addr, false);
            self.prefetch_issued += 1;
        }
        let (slice, remote) = if p.llc_distributed {
            let s = ((addr / p.llc.line_bytes) as usize) % self.llc.len();
            (s, s != core)
        } else {
            (0, false)
        };
        if self.llc[slice].access(addr, is_write) == Probe::Hit {
            return p.llc.latency + if remote { p.remote_llc_penalty } else { 0 };
        }
        self.dram_accesses += 1;
        p.dram_latency
    }

    /// Cost of an access of `bytes` bytes at `addr`: spans lines, pays the
    /// max per-line cost (overlapped fills).
    pub fn access_cost(
        &mut self,
        core: usize,
        addr: u64,
        bytes: u64,
        is_write: bool,
        clock: u64,
    ) -> u64 {
        let lb = self.profile.l1.line_bytes;
        let first = addr / lb;
        let last = (addr + bytes.max(1) - 1) / lb;
        let mut cost = 0;
        for line in first..=last {
            cost = cost.max(self.line_cost(core, line * lb, is_write, clock));
        }
        cost
    }

    /// Aggregated L1 statistics across cores.
    pub fn l1_stats(&self) -> CacheStats {
        agg(&self.l1)
    }

    /// Aggregated L2 statistics across cores.
    pub fn l2_stats(&self) -> CacheStats {
        agg(&self.l2)
    }

    /// Aggregated last-level statistics across slices.
    pub fn llc_stats(&self) -> CacheStats {
        agg(&self.llc)
    }
}

fn agg(cs: &[Cache]) -> CacheStats {
    let mut s = CacheStats::default();
    for c in cs {
        s.hits += c.stats.hits;
        s.misses += c.stats.misses;
        s.evictions += c.stats.evictions;
        s.writebacks += c.stats.writebacks;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::snb;
    use grover_ir::AddressSpace;

    #[test]
    fn l1_hit_after_miss() {
        let mut m = CoreMemory::new(snb());
        let c1 = m.line_cost(0, 0x1000, false, 0);
        let c2 = m.line_cost(0, 0x1000, false, 1);
        assert!(c1 > c2);
        assert_eq!(c2, snb().l1.latency);
    }

    #[test]
    fn local_regions_disjoint_per_core() {
        let m = CoreMemory::new(snb());
        let a = m.phys(0, AddressSpace::Local, 0);
        let b = m.phys(1, AddressSpace::Local, 0);
        assert_ne!(a, b);
        assert_eq!(m.phys(0, AddressSpace::Global, 42), 42);
    }

    #[test]
    fn spanning_access_costs_max_not_sum() {
        let mut m = CoreMemory::new(snb());
        // 16 bytes straddling two cold lines: still one DRAM latency.
        let c = m.access_cost(0, 60, 16, false, 0);
        assert_eq!(c, snb().dram_latency);
    }

    #[test]
    fn prefetcher_counts_issued() {
        let p = crate::profiles::mic();
        let mut m = CoreMemory::new(p);
        for i in 0..64u64 {
            m.line_cost(0, 0x10_0000 + i * 4096, false, i);
        }
        assert!(m.prefetch_issued > 0);
    }
}
