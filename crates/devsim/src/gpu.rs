//! Trace-driven GPU model (Fermi / Kepler / Tahiti).
//!
//! Work-groups are assigned round-robin to SMs. Within a group, accesses
//! issued by the *same instruction* (`pc`) across the work-items of one
//! warp coalesce: the warp pays one memory transaction per distinct
//! `transaction_bytes`-aligned segment the lanes touch (NVIDIA/AMD
//! coalescing rules, first order). `__local` accesses go to the on-chip
//! scratch-pad at a couple of cycles per warp — the reason staging pays off
//! on GPUs. Global transactions probe a shared L2 and then DRAM; latency is
//! divided by the profile's memory-level parallelism (warps in flight).

use std::collections::HashMap;

use grover_ir::AddressSpace;
use grover_runtime::{AccessEvent, TraceSink};

use crate::cache::{Cache, CacheStats, Probe};
use crate::profiles::GpuProfile;
use crate::PerfReport;

/// GPU performance model (coalescer + SPM + shared L2).
pub struct GpuModel {
    profile: GpuProfile,
    l2: Cache,
    sm_cycles: Vec<u64>,
    mem_cycles: u64,
    compute_cycles: u64,
    barrier_cycles: u64,
    dram_accesses: u64,
    transactions: u64,
    // Per-group buffered state (one group in flight at a time from the
    // serial interpreter, but keep a map for safety).
    pending: HashMap<u32, GroupAccum>,
}

#[derive(Default)]
struct GroupAccum {
    /// (pc, warp) -> occurrence counter -> handled inline via counters map.
    /// counters[(local, pc)] = how many accesses this work-item has issued
    /// at this pc so far.
    counters: HashMap<(u32, u32), u32>,
    /// (pc, occurrence, warp) -> distinct transaction segments.
    segments: HashMap<(u32, u32, u32), Vec<u64>>,
    spm_accesses: u64,
    instructions: u64,
    barriers: u64,
    items: u64,
}

impl GpuModel {
    /// A fresh model for one device profile.
    pub fn new(profile: GpuProfile) -> GpuModel {
        GpuModel {
            l2: Cache::new(profile.l2),
            sm_cycles: vec![0; profile.sms],
            profile,
            mem_cycles: 0,
            compute_cycles: 0,
            barrier_cycles: 0,
            dram_accesses: 0,
            transactions: 0,
            pending: HashMap::new(),
        }
    }

    fn sm_of(&self, group: u32) -> usize {
        group as usize % self.profile.sms
    }

    /// Finish and report. Any still-pending groups are flushed.
    pub fn finish(&mut self) -> PerfReport {
        let groups: Vec<u32> = self.pending.keys().copied().collect();
        for g in groups {
            self.retire_group(g);
        }
        PerfReport {
            device: self.profile.name.to_string(),
            cycles: self.sm_cycles.iter().copied().max().unwrap_or(0),
            core_cycles: self.sm_cycles.clone(),
            compute_cycles: self.compute_cycles,
            mem_cycles: self.mem_cycles,
            barrier_cycles: self.barrier_cycles,
            l1: CacheStats::default(),
            l2: self.l2.stats,
            llc: CacheStats::default(),
            dram_accesses: self.dram_accesses,
            transactions: self.transactions,
        }
    }

    fn retire_group(&mut self, group: u32) {
        let Some(acc) = self.pending.remove(&group) else {
            return;
        };
        let p = &self.profile;
        let sm = self.sm_of(group);
        let mut cycles = 0u64;

        // Global transactions through L2/DRAM.
        let mut mem = 0u64;
        for segs in acc.segments.values() {
            for &seg in segs {
                self.transactions += 1;
                let lat = if self.l2.access(seg * p.transaction_bytes, false) == Probe::Hit {
                    p.l2_latency
                } else {
                    self.dram_accesses += 1;
                    p.dram_latency
                };
                mem += lat;
            }
        }
        let mem = (mem as f64 / p.mlp) as u64;
        self.mem_cycles += mem;
        cycles += mem;

        // Scratch-pad traffic: warp-parallel lanes.
        let spm = acc.spm_accesses * p.spm_latency / p.warp_width as u64;
        self.mem_cycles += spm;
        cycles += spm;

        // Compute throughput.
        let comp = (acc.instructions as f64 * p.cpi_warp / p.warp_width as f64) as u64;
        self.compute_cycles += comp;
        cycles += comp;

        // Barriers.
        let warps = acc.items.div_ceil(p.warp_width as u64).max(1);
        let bar = acc.barriers * p.barrier_cycles * warps;
        self.barrier_cycles += bar;
        cycles += bar;

        self.sm_cycles[sm] += cycles;
    }
}

impl TraceSink for GpuModel {
    fn access(&mut self, ev: &AccessEvent) {
        let p_warp = self.profile.warp_width;
        let tb = self.profile.transaction_bytes;
        let acc = self.pending.entry(ev.group).or_default();
        match ev.space {
            AddressSpace::Local => acc.spm_accesses += 1,
            _ => {
                let warp = ev.local / p_warp;
                let occ = {
                    let c = acc.counters.entry((ev.local, ev.pc)).or_insert(0);
                    let v = *c;
                    *c += 1;
                    v
                };
                let segs = acc.segments.entry((ev.pc, occ, warp)).or_default();
                let first = ev.addr / tb;
                let last = (ev.addr + ev.bytes.max(1) as u64 - 1) / tb;
                for s in first..=last {
                    if !segs.contains(&s) {
                        segs.push(s);
                    }
                }
            }
        }
    }

    fn barrier(&mut self, group: u32, items: u32) {
        let acc = self.pending.entry(group).or_default();
        acc.barriers += 1;
        acc.items = acc.items.max(items as u64);
    }

    fn workitem_done(&mut self, group: u32, _local: u32, instructions: u64) {
        let acc = self.pending.entry(group).or_default();
        acc.instructions += instructions;
        acc.items += 1;
    }

    fn workgroup_done(&mut self, group: u32) {
        self.retire_group(group);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{fermi, tahiti};
    use grover_runtime::TraceOp;

    fn ev(addr: u64, local: u32, pc: u32) -> AccessEvent {
        AccessEvent {
            op: TraceOp::Load,
            space: AddressSpace::Global,
            addr,
            bytes: 4,
            group: 0,
            local,
            pc,
        }
    }

    #[test]
    fn coalesced_warp_is_one_transaction() {
        let mut m = GpuModel::new(fermi());
        // 32 lanes reading consecutive floats: one 128 B transaction.
        for lane in 0..32 {
            m.access(&ev(lane as u64 * 4, lane, 7));
        }
        m.workgroup_done(0);
        let r = m.finish();
        assert_eq!(r.transactions, 1);
    }

    #[test]
    fn strided_warp_explodes_transactions() {
        let mut m = GpuModel::new(fermi());
        // 32 lanes striding 1 KiB apart (column access): 32 transactions.
        for lane in 0..32 {
            m.access(&ev(lane as u64 * 1024, lane, 7));
        }
        m.workgroup_done(0);
        let r = m.finish();
        assert_eq!(r.transactions, 32);
    }

    #[test]
    fn occurrences_do_not_merge() {
        let mut m = GpuModel::new(fermi());
        // Same pc executed twice by the same lane at different addrs:
        // two occurrences -> two transactions even though same warp.
        m.access(&ev(0, 0, 7));
        m.access(&ev(4096, 0, 7));
        m.workgroup_done(0);
        let r = m.finish();
        assert_eq!(r.transactions, 2);
    }

    #[test]
    fn spm_traffic_is_cheap() {
        let mut a = GpuModel::new(fermi());
        for lane in 0..32 {
            a.access(&AccessEvent {
                op: TraceOp::Load,
                space: AddressSpace::Local,
                addr: lane as u64 * 4,
                bytes: 4,
                group: 0,
                local: lane,
                pc: 3,
            });
        }
        a.workgroup_done(0);
        let ra = a.finish();

        let mut b = GpuModel::new(fermi());
        for lane in 0..32 {
            b.access(&ev(lane as u64 * 1024, lane, 3));
        }
        b.workgroup_done(0);
        let rb = b.finish();
        assert!(
            ra.cycles < rb.cycles,
            "spm {} vs strided global {}",
            ra.cycles,
            rb.cycles
        );
    }

    #[test]
    fn l2_reuse_hits() {
        let mut m = GpuModel::new(tahiti());
        // Two groups touching the same segment: second goes to L2.
        m.access(&ev(0, 0, 1));
        m.workgroup_done(0);
        m.access(&AccessEvent {
            group: 1,
            ..ev(0, 0, 1)
        });
        m.workgroup_done(1);
        let r = m.finish();
        assert_eq!(r.transactions, 2);
        assert_eq!(r.dram_accesses, 1);
        assert_eq!(r.l2.hits, 1);
    }

    #[test]
    fn groups_round_robin_sms() {
        let mut m = GpuModel::new(fermi());
        for g in 0..4u32 {
            m.access(&AccessEvent {
                group: g,
                ..ev(g as u64 * 4096, 0, 1)
            });
            m.workgroup_done(g);
        }
        let r = m.finish();
        assert!(r.core_cycles[0] > 0);
        assert!(r.core_cycles[1] > 0);
    }

    #[test]
    fn vector_access_spanning_segments_counts_two() {
        let mut m = GpuModel::new(tahiti()); // 64-byte segments
                                             // One 16-byte access straddling a segment boundary.
        m.access(&AccessEvent {
            op: TraceOp::Load,
            space: AddressSpace::Global,
            addr: 56,
            bytes: 16,
            group: 0,
            local: 0,
            pc: 1,
        });
        m.workgroup_done(0);
        let r = m.finish();
        assert_eq!(r.transactions, 2);
    }

    #[test]
    fn float4_warp_still_coalesces() {
        let mut m = GpuModel::new(fermi());
        // 32 lanes of float4 (16 B each) = 512 B = four 128 B transactions.
        for lane in 0..32 {
            m.access(&AccessEvent {
                op: TraceOp::Load,
                space: AddressSpace::Global,
                addr: lane as u64 * 16,
                bytes: 16,
                group: 0,
                local: lane,
                pc: 2,
            });
        }
        m.workgroup_done(0);
        let r = m.finish();
        assert_eq!(r.transactions, 4);
    }

    #[test]
    fn different_pcs_do_not_coalesce_together() {
        let mut m = GpuModel::new(fermi());
        m.access(&ev(0, 0, 1));
        m.access(&ev(4, 1, 2)); // adjacent address, different instruction
        m.workgroup_done(0);
        let r = m.finish();
        assert_eq!(r.transactions, 2);
    }

    #[test]
    fn barrier_and_compute_counted() {
        let mut m = GpuModel::new(fermi());
        m.barrier(0, 64);
        m.workitem_done(0, 0, 320);
        m.workgroup_done(0);
        let r = m.finish();
        assert!(r.barrier_cycles > 0);
        assert!(r.compute_cycles > 0);
    }
}
