//! Observed kernel launches: [`enqueue_observed`] wraps the launch engine
//! with a [`grover_obs::Recorder`] span carrying the launch's aggregate
//! metrics — instructions, per-address-space access counts and bytes,
//! geometry, wall time — plus one event per worker with its utilisation.
//!
//! With the recorder disabled (the default [`grover_obs::NoopRecorder`])
//! the call forwards straight to the unobserved engine: no tee sink, no
//! clock reads, no per-group timing — production pays nothing.

use std::time::Instant;

use grover_ir::Function;
use grover_obs::{Recorder, SpanId, Value};

use crate::buffer::Context;
use crate::bytecode::{Backend, OpProfile};
use crate::interp::{enqueue_impl, ArgValue, ExecPolicy, LaunchStats, Limits, NdRange, WorkerStat};
use crate::trace::{AccessEvent, CountingSink, TraceSink};
use crate::ExecError;

/// Forwards every callback to the wrapped sink while tallying counts for
/// the launch span, so observation composes with whatever sink the caller
/// brought (a device model, a [`crate::VecSink`], ...).
struct TeeSink<'a> {
    inner: &'a mut dyn TraceSink,
    counts: CountingSink,
}

impl TraceSink for TeeSink<'_> {
    fn access(&mut self, ev: &AccessEvent) {
        self.counts.access(ev);
        self.inner.access(ev);
    }

    fn barrier(&mut self, group: u32, items: u32) {
        self.counts.barrier(group, items);
        self.inner.barrier(group, items);
    }

    fn workitem_done(&mut self, group: u32, local: u32, instructions: u64) {
        self.counts.workitem_done(group, local, instructions);
        self.inner.workitem_done(group, local, instructions);
    }

    fn workgroup_done(&mut self, group: u32) {
        self.inner.workgroup_done(group);
    }

    // The tee itself always consumes accesses (it counts them), regardless
    // of what the inner sink wants.
    fn wants_events(&self) -> bool {
        true
    }
}

/// Launch a kernel like [`crate::enqueue_with_policy`], recording one
/// `launch` span (under `parent`, if given) on `recorder`.
///
/// Span attributes on success: `kernel`, `policy`, `workers`, the geometry
/// (`work_groups`, `work_items`), `instructions`, `barriers`, per-space
/// access counts (`global_loads`, `local_stores`, ...), per-space byte
/// tallies (`global_bytes_loaded`, ...), totals (`bytes_loaded`,
/// `bytes_stored`) and `wall_us`. On failure the metrics observed up to
/// the error are still recorded, plus `error`. Each worker additionally
/// emits one `worker` event with `groups`, `busy_us`, `max_group_us` and
/// `util` (busy time over launch wall time).
#[allow(clippy::too_many_arguments)]
pub fn enqueue_observed(
    ctx: &mut Context,
    kernel: &Function,
    args: &[ArgValue],
    nd: &NdRange,
    sink: &mut dyn TraceSink,
    limits: &Limits,
    policy: ExecPolicy,
    recorder: &dyn Recorder,
    parent: Option<SpanId>,
) -> Result<LaunchStats, ExecError> {
    enqueue_observed_backend(
        ctx,
        kernel,
        args,
        nd,
        sink,
        limits,
        policy,
        Backend::Interp,
        recorder,
        parent,
    )
}

/// [`enqueue_observed`] with an explicit execution [`Backend`]; the launch
/// span additionally records a `backend` attribute.
#[allow(clippy::too_many_arguments)]
pub fn enqueue_observed_backend(
    ctx: &mut Context,
    kernel: &Function,
    args: &[ArgValue],
    nd: &NdRange,
    sink: &mut dyn TraceSink,
    limits: &Limits,
    policy: ExecPolicy,
    backend: Backend,
    recorder: &dyn Recorder,
    parent: Option<SpanId>,
) -> Result<LaunchStats, ExecError> {
    enqueue_observed_profiled(
        ctx, kernel, args, nd, sink, limits, policy, backend, recorder, parent, None,
    )
}

/// [`enqueue_observed_backend`] with optional per-opcode profiling.
///
/// When `profile_out` is `Some` and the backend is [`Backend::Bytecode`],
/// a successful launch writes its [`OpProfile`] through `profile_out` and
/// (when the recorder is enabled) emits one `profile` event on the launch
/// span with `total_count`/`total_charged` plus `count.<kind>` and
/// `charged.<kind>` attributes per executed opcode kind — the `profile`
/// section tune spans carry. With the interpreter backend, or on a failed
/// launch, `profile_out` is left as it was.
#[allow(clippy::too_many_arguments)]
pub fn enqueue_observed_profiled(
    ctx: &mut Context,
    kernel: &Function,
    args: &[ArgValue],
    nd: &NdRange,
    sink: &mut dyn TraceSink,
    limits: &Limits,
    policy: ExecPolicy,
    backend: Backend,
    recorder: &dyn Recorder,
    parent: Option<SpanId>,
    profile_out: Option<&mut Option<OpProfile>>,
) -> Result<LaunchStats, ExecError> {
    if !recorder.enabled() {
        return enqueue_impl(
            ctx,
            kernel,
            args,
            nd,
            sink,
            limits,
            policy,
            backend,
            None,
            profile_out,
        );
    }

    let span = recorder.span_start("launch", parent);
    recorder.span_attr(span, "kernel", Value::from(kernel.name.as_str()));
    let (policy_name, workers) = match policy {
        ExecPolicy::Serial => ("serial", 1),
        ExecPolicy::Parallel { .. } => ("parallel", policy.worker_count()),
    };
    recorder.span_attr(span, "policy", Value::from(policy_name));
    recorder.span_attr(span, "workers", Value::from(workers));
    recorder.span_attr(span, "backend", Value::from(backend.name()));

    let mut tee = TeeSink {
        inner: sink,
        counts: CountingSink::default(),
    };
    let mut worker_stats: Vec<WorkerStat> = Vec::new();
    let mut profile: Option<OpProfile> = None;
    let t0 = Instant::now();
    let result = enqueue_impl(
        ctx,
        kernel,
        args,
        nd,
        &mut tee,
        limits,
        policy,
        backend,
        Some(&mut worker_stats),
        profile_out.is_some().then_some(&mut profile),
    );
    let wall = t0.elapsed();

    let c = &tee.counts;
    recorder.span_attr(span, "instructions", Value::from(c.instructions));
    recorder.span_attr(span, "barriers", Value::from(c.barriers));
    recorder.span_attr(span, "global_loads", Value::from(c.global_loads));
    recorder.span_attr(span, "global_stores", Value::from(c.global_stores));
    recorder.span_attr(span, "local_loads", Value::from(c.local_loads));
    recorder.span_attr(span, "local_stores", Value::from(c.local_stores));
    recorder.span_attr(span, "constant_loads", Value::from(c.constant_loads));
    recorder.span_attr(span, "private_loads", Value::from(c.private_loads));
    recorder.span_attr(span, "private_stores", Value::from(c.private_stores));
    recorder.span_attr(span, "bytes_loaded", Value::from(c.bytes_loaded));
    recorder.span_attr(span, "bytes_stored", Value::from(c.bytes_stored));
    recorder.span_attr(
        span,
        "global_bytes_loaded",
        Value::from(c.global_bytes.loaded),
    );
    recorder.span_attr(
        span,
        "global_bytes_stored",
        Value::from(c.global_bytes.stored),
    );
    recorder.span_attr(
        span,
        "local_bytes_loaded",
        Value::from(c.local_bytes.loaded),
    );
    recorder.span_attr(
        span,
        "local_bytes_stored",
        Value::from(c.local_bytes.stored),
    );
    recorder.span_attr(
        span,
        "constant_bytes_loaded",
        Value::from(c.constant_bytes.loaded),
    );
    recorder.span_attr(span, "wall_us", Value::from(wall.as_micros() as u64));
    match &result {
        Ok(stats) => {
            recorder.span_attr(span, "ok", Value::from(true));
            recorder.span_attr(span, "work_items", Value::from(stats.work_items));
            recorder.span_attr(span, "work_groups", Value::from(stats.work_groups));
        }
        Err(e) => {
            recorder.span_attr(span, "ok", Value::from(false));
            recorder.span_attr(span, "error", Value::from(e.to_string()));
        }
    }

    let wall_us = wall.as_micros().max(1) as f64;
    for (i, w) in worker_stats.iter().enumerate() {
        let busy_us = w.busy.as_micros() as u64;
        recorder.event(
            "worker",
            Some(span),
            &[
                ("worker", Value::from(i)),
                ("groups", Value::from(w.groups)),
                ("busy_us", Value::from(busy_us)),
                ("max_group_us", Value::from(w.max_group.as_micros() as u64)),
                ("util", Value::from(busy_us as f64 / wall_us)),
            ],
        );
    }
    if let Some(p) = &profile {
        let mut attrs: Vec<(String, Value)> = vec![
            ("total_count".to_string(), Value::from(p.total_count)),
            ("total_charged".to_string(), Value::from(p.total_charged)),
        ];
        for row in &p.ops {
            attrs.push((format!("count.{}", row.kind), Value::from(row.count)));
            attrs.push((format!("charged.{}", row.kind), Value::from(row.charged)));
        }
        let borrowed: Vec<(&str, Value)> =
            attrs.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        recorder.event("profile", Some(span), &borrowed);
    }
    if let (Some(out), Some(p)) = (profile_out, profile) {
        *out = Some(p);
    }
    recorder.span_end(span);
    result
}
