#![warn(missing_docs)]
//! # grover-runtime
//!
//! An OpenCL-like host API and NDRange interpreter for [`grover_ir`]
//! kernels — the stand-in for the vendor OpenCL runtimes of the Grover
//! paper's experimental pipeline (paper §V-A).
//!
//! * [`Context`] owns device buffers (`clCreateBuffer`-style).
//! * [`enqueue`] launches a kernel over an [`NdRange`] with full work-group
//!   semantics: work-items of a group execute serially between barriers and
//!   rendezvous at each [`grover_ir::value::Inst::Barrier`].
//! * [`enqueue_with_policy`] additionally chooses a work-group schedule
//!   ([`ExecPolicy`]): serial, or partitioned across a pool of worker
//!   threads with deterministic (group-linear) trace replay.
//! * Every memory access streams an [`AccessEvent`] into a [`TraceSink`];
//!   the device simulator (`grover-devsim`) replays these events against
//!   cache/scratch-pad models to estimate per-device performance.
//!
//! ```
//! use grover_frontend::{compile, BuildOptions};
//! use grover_runtime::{enqueue, ArgValue, Context, Limits, NdRange, NullSink};
//!
//! let module = compile(
//!     "__kernel void scale(__global float* a, float s) {
//!          int i = get_global_id(0);
//!          a[i] = a[i] * s;
//!      }",
//!     &BuildOptions::new(),
//! ).unwrap();
//! let kernel = module.kernel("scale").unwrap();
//!
//! let mut ctx = Context::new();
//! let buf = ctx.buffer_f32(&[1.0, 2.0, 3.0, 4.0]);
//! enqueue(
//!     &mut ctx,
//!     kernel,
//!     &[ArgValue::Buffer(buf), ArgValue::F32(2.0)],
//!     &NdRange::d1(4, 2),
//!     &mut NullSink,
//!     &Limits::default(),
//! ).unwrap();
//! assert_eq!(ctx.read_f32(buf), &[2.0, 4.0, 6.0, 8.0]);
//! ```

pub mod buffer;
pub mod bytecode;
#[cfg(feature = "fault-injection")]
pub mod fault;
pub mod interp;
pub mod obs;
pub mod trace;
pub mod val;

pub use buffer::{Buffer, BufferData, Context};
pub use bytecode::{disassemble, Backend, BlockProfile, OpKindProfile, OpProfile};
pub use interp::{
    enqueue, enqueue_profiled, enqueue_with_backend, enqueue_with_policy, ArgValue, ExecPolicy,
    LaunchStats, Limits, NdRange, WorkerStat,
};
pub use obs::{enqueue_observed, enqueue_observed_backend, enqueue_observed_profiled};
pub use trace::{AccessEvent, CountingSink, NullSink, SpaceBytes, TraceOp, TraceSink, VecSink};
pub use val::{PtrVal, Val};

/// Execution failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// Wrong number of kernel arguments.
    ArgCount {
        /// Parameters the kernel declares.
        expected: usize,
        /// Arguments supplied.
        got: usize,
    },
    /// Argument/operation type mismatch.
    TypeMismatch(String),
    /// Memory access outside a buffer.
    OutOfBounds {
        /// Buffer index (`u32::MAX` = a local buffer).
        buffer: u32,
        /// Offending element index.
        index: usize,
        /// Buffer length in elements.
        len: usize,
    },
    /// Misaligned or negative address.
    BadAddress(i64),
    /// Integer division by zero.
    DivisionByZero,
    /// Work-items of one group reached different barriers (or some returned
    /// while others wait) — undefined behaviour in OpenCL, an error here.
    BarrierDivergence,
    /// The launch exceeded [`Limits::max_instructions`].
    InstructionLimit,
    /// The launch exceeded [`Limits::deadline`] (wall clock). The watchdog
    /// drains the shared instruction budget, so every worker stops within
    /// one budget chunk of the deadline being noticed.
    DeadlineExceeded,
    /// Invalid NDRange geometry.
    BadNdRange(String),
    /// A construct the interpreter does not support.
    Unsupported(String),
    /// A panic while executing a work-group (in the interpreter, a trace
    /// sink, or an injected fault) was caught and converted instead of
    /// unwinding through — or aborting — the process.
    WorkerPanic {
        /// Linear id of the group being executed (`u32::MAX` = the panic
        /// escaped per-group isolation; provably unreachable short of a
        /// bug in the launch machinery itself).
        group: u32,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// Interpreter invariant violation (a bug).
    Internal(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::ArgCount { expected, got } => {
                write!(f, "kernel expects {expected} arguments, got {got}")
            }
            ExecError::TypeMismatch(s) => write!(f, "type mismatch: {s}"),
            ExecError::OutOfBounds { buffer, index, len } => {
                write!(
                    f,
                    "out-of-bounds access: buffer {buffer}, element {index}, length {len}"
                )
            }
            ExecError::BadAddress(a) => write!(f, "misaligned or negative address {a}"),
            ExecError::DivisionByZero => f.write_str("integer division by zero"),
            ExecError::BarrierDivergence => {
                f.write_str("work-items reached different barriers (divergent barrier)")
            }
            ExecError::InstructionLimit => f.write_str("instruction limit exceeded"),
            ExecError::DeadlineExceeded => f.write_str("launch exceeded its wall-clock deadline"),
            ExecError::BadNdRange(s) => write!(f, "invalid NDRange: {s}"),
            ExecError::Unsupported(s) => write!(f, "unsupported: {s}"),
            ExecError::WorkerPanic { group, message } => {
                if *group == u32::MAX {
                    write!(f, "worker panicked: {message}")
                } else {
                    write!(f, "worker panicked in work-group {group}: {message}")
                }
            }
            ExecError::Internal(s) => write!(f, "internal interpreter error: {s}"),
        }
    }
}

impl std::error::Error for ExecError {}
