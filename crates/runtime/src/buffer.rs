//! Host-side buffer management (the `clCreateBuffer` / `clEnqueueRead…`
//! corner of the OpenCL host API).

use grover_ir::Scalar;

use crate::val::Val;
use crate::ExecError;

/// Handle to a device buffer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Buffer(pub(crate) u32);

/// Typed buffer storage.
#[derive(Clone, Debug)]
pub enum BufferData {
    /// 32-bit floats.
    F32(Vec<f32>),
    /// 32-bit integers.
    I32(Vec<i32>),
    /// 64-bit integers.
    I64(Vec<i64>),
}

impl BufferData {
    /// Element scalar kind.
    pub fn scalar(&self) -> Scalar {
        match self {
            BufferData::F32(_) => Scalar::F32,
            BufferData::I32(_) => Scalar::I32,
            BufferData::I64(_) => Scalar::I64,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            BufferData::F32(v) => v.len(),
            BufferData::I32(v) => v.len(),
            BufferData::I64(v) => v.len(),
        }
    }

    /// Whether the buffer has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.len() as u64 * self.scalar().size_bytes()
    }
}

/// An execution context owning device buffers, with a flat device address
/// layout used by the memory trace.
#[derive(Clone, Debug, Default)]
pub struct Context {
    buffers: Vec<BufferData>,
    bases: Vec<u64>,
    next_base: u64,
}

const FIRST_BASE: u64 = 0x10_000;
const ALIGN: u64 = 4096;

impl Context {
    /// An empty context with no buffers.
    pub fn new() -> Context {
        Context {
            buffers: Vec::new(),
            bases: Vec::new(),
            next_base: FIRST_BASE,
        }
    }

    fn push(&mut self, data: BufferData) -> Buffer {
        let size = data.size_bytes();
        let base = self.next_base;
        self.next_base = (base + size).div_ceil(ALIGN) * ALIGN;
        self.bases.push(base);
        self.buffers.push(data);
        Buffer(self.buffers.len() as u32 - 1)
    }

    /// Create an `f32` buffer initialised from `data`.
    pub fn buffer_f32(&mut self, data: &[f32]) -> Buffer {
        self.push(BufferData::F32(data.to_vec()))
    }

    /// Create an `i32` buffer initialised from `data`.
    pub fn buffer_i32(&mut self, data: &[i32]) -> Buffer {
        self.push(BufferData::I32(data.to_vec()))
    }

    /// Create an `i64` buffer initialised from `data`.
    pub fn buffer_i64(&mut self, data: &[i64]) -> Buffer {
        self.push(BufferData::I64(data.to_vec()))
    }

    /// Create a zero-filled `f32` buffer.
    pub fn zeros_f32(&mut self, len: usize) -> Buffer {
        self.push(BufferData::F32(vec![0.0; len]))
    }

    /// Create a zero-filled `i32` buffer.
    pub fn zeros_i32(&mut self, len: usize) -> Buffer {
        self.push(BufferData::I32(vec![0; len]))
    }

    /// Read back an `f32` buffer (panics on kind mismatch).
    ///
    /// The panic is the documented contract of this host-side convenience:
    /// passing the wrong handle is a programming error in the *caller*,
    /// not a recoverable kernel-execution failure. Use [`Context::try_read_f32`]
    /// where a `None` is preferable.
    pub fn read_f32(&self, b: Buffer) -> &[f32] {
        match &self.buffers[b.0 as usize] {
            BufferData::F32(v) => v,
            other => panic!("buffer is {:?}, not f32", other.scalar()),
        }
    }

    /// Read back an `i32` buffer (panics on kind mismatch; see
    /// [`Context::read_f32`] for the rationale).
    pub fn read_i32(&self, b: Buffer) -> &[i32] {
        match &self.buffers[b.0 as usize] {
            BufferData::I32(v) => v,
            other => panic!("buffer is {:?}, not i32", other.scalar()),
        }
    }

    /// Read back an `f32` buffer, or `None` on kind mismatch.
    pub fn try_read_f32(&self, b: Buffer) -> Option<&[f32]> {
        match self.buffers.get(b.0 as usize)? {
            BufferData::F32(v) => Some(v),
            _ => None,
        }
    }

    /// Read back an `i32` buffer, or `None` on kind mismatch.
    pub fn try_read_i32(&self, b: Buffer) -> Option<&[i32]> {
        match self.buffers.get(b.0 as usize)? {
            BufferData::I32(v) => Some(v),
            _ => None,
        }
    }

    /// Every buffer in creation order (index `i` is the storage of the
    /// `i`-th created [`Buffer`]). This is what the tuner's
    /// differential-output guard bit-compares across two runs.
    pub fn buffers(&self) -> &[BufferData] {
        &self.buffers
    }

    /// Raw typed storage of a buffer.
    pub fn data(&self, b: Buffer) -> &BufferData {
        &self.buffers[b.0 as usize]
    }

    /// Device base address of a buffer (trace address space).
    pub fn base_addr(&self, b: Buffer) -> u64 {
        self.bases[b.0 as usize]
    }

    /// Number of buffers created in this context.
    pub fn num_buffers(&self) -> usize {
        self.buffers.len()
    }

    /// A [`GlobalMem`] view over every buffer, for the launch engine. The
    /// view borrows the context mutably for its whole lifetime, so no
    /// buffer can be created, read back or resized while a launch is in
    /// flight.
    pub(crate) fn global_mem(&mut self) -> GlobalMem<'_> {
        let bufs = self
            .buffers
            .iter_mut()
            .map(|d| match d {
                BufferData::F32(v) => RawBuf::F32(v.as_mut_ptr(), v.len()),
                BufferData::I32(v) => RawBuf::I32(v.as_mut_ptr(), v.len()),
                BufferData::I64(v) => RawBuf::I64(v.as_mut_ptr(), v.len()),
            })
            .collect();
        GlobalMem {
            bufs,
            bases: self.bases.clone(),
            _ctx: std::marker::PhantomData,
        }
    }

    pub(crate) fn scalar_of(&self, b: Buffer) -> Scalar {
        self.buffers[b.0 as usize].scalar()
    }
}

/// Raw typed pointer to one buffer's storage.
enum RawBuf {
    F32(*mut f32, usize),
    I32(*mut i32, usize),
    I64(*mut i64, usize),
}

impl RawBuf {
    fn scalar(&self) -> Scalar {
        match self {
            RawBuf::F32(..) => Scalar::F32,
            RawBuf::I32(..) => Scalar::I32,
            RawBuf::I64(..) => Scalar::I64,
        }
    }

    fn len(&self) -> usize {
        match *self {
            RawBuf::F32(_, n) | RawBuf::I32(_, n) | RawBuf::I64(_, n) => n,
        }
    }
}

/// A shareable view of a [`Context`]'s global buffers used by the NDRange
/// engine: work-group workers on different threads load and store device
/// memory through it concurrently.
///
/// # Safety / OpenCL memory model
///
/// The view holds raw pointers and is (unsafely) `Sync`. This matches
/// OpenCL's relaxed global-memory model: work-groups of one launch may
/// write global memory concurrently, and a kernel in which two work-items
/// of *different* groups touch the same location without synchronisation
/// (at least one writing) is already undefined behaviour in the source
/// program — such kernels were equally racy on a real device, so the
/// engine does not attempt to serialise them. Every access is still
/// bounds- and type-checked; the borrow on the `Context` guarantees the
/// storage itself cannot move or be freed while a launch is in flight.
pub(crate) struct GlobalMem<'a> {
    bufs: Vec<RawBuf>,
    bases: Vec<u64>,
    _ctx: std::marker::PhantomData<&'a mut Context>,
}

unsafe impl Send for GlobalMem<'_> {}
unsafe impl Sync for GlobalMem<'_> {}

impl GlobalMem<'_> {
    /// Device base address of a buffer (0 for an unknown id, matching the
    /// trace's historical behaviour).
    pub(crate) fn base(&self, buf: u32) -> u64 {
        self.bases.get(buf as usize).copied().unwrap_or(0)
    }

    /// Load `lanes` elements starting at byte `offset`.
    pub(crate) fn load(&self, buf: u32, offset: i64, lanes: u8) -> Result<Val, ExecError> {
        let data = &self.bufs[buf as usize];
        let esz = data.scalar().size_bytes() as i64;
        if offset < 0 || offset % esz != 0 {
            return Err(ExecError::BadAddress(offset));
        }
        let idx = (offset / esz) as usize;
        let n = lanes as usize;
        if idx + n > data.len() {
            return Err(ExecError::OutOfBounds {
                buffer: buf,
                index: idx + n - 1,
                len: data.len(),
            });
        }
        Ok(match *data {
            RawBuf::F32(p, _) => {
                if n == 1 {
                    Val::F32(unsafe { p.add(idx).read() })
                } else {
                    let mut a = [0.0f32; 4];
                    for (i, slot) in a[..n].iter_mut().enumerate() {
                        *slot = unsafe { p.add(idx + i).read() };
                    }
                    Val::VF32(a, lanes)
                }
            }
            RawBuf::I32(p, _) => {
                if n == 1 {
                    Val::I32(unsafe { p.add(idx).read() })
                } else {
                    let mut a = [0i32; 4];
                    for (i, slot) in a[..n].iter_mut().enumerate() {
                        *slot = unsafe { p.add(idx + i).read() };
                    }
                    Val::VI32(a, lanes)
                }
            }
            RawBuf::I64(p, _) => {
                if n == 1 {
                    Val::I64(unsafe { p.add(idx).read() })
                } else {
                    return Err(ExecError::Unsupported("vector i64 load".into()));
                }
            }
        })
    }

    /// Store a value at byte `offset`.
    pub(crate) fn store(&self, buf: u32, offset: i64, val: Val) -> Result<(), ExecError> {
        let data = &self.bufs[buf as usize];
        let esz = data.scalar().size_bytes() as i64;
        if offset < 0 || offset % esz != 0 {
            return Err(ExecError::BadAddress(offset));
        }
        let idx = (offset / esz) as usize;
        let n = val.lanes() as usize;
        if idx + n > data.len() {
            return Err(ExecError::OutOfBounds {
                buffer: buf,
                index: idx + n - 1,
                len: data.len(),
            });
        }
        match (data, val) {
            (&RawBuf::F32(p, _), Val::F32(x)) => unsafe { p.add(idx).write(x) },
            (&RawBuf::F32(p, _), Val::VF32(a, l)) => {
                for (i, &x) in a[..l as usize].iter().enumerate() {
                    unsafe { p.add(idx + i).write(x) }
                }
            }
            (&RawBuf::I32(p, _), Val::I32(x)) => unsafe { p.add(idx).write(x) },
            (&RawBuf::I32(p, _), Val::Bool(x)) => unsafe { p.add(idx).write(x as i32) },
            (&RawBuf::I32(p, _), Val::VI32(a, l)) => {
                for (i, &x) in a[..l as usize].iter().enumerate() {
                    unsafe { p.add(idx + i).write(x) }
                }
            }
            (&RawBuf::I64(p, _), Val::I64(x)) => unsafe { p.add(idx).write(x) },
            (d, v) => {
                return Err(ExecError::TypeMismatch(format!(
                    "store {:?} into {:?} buffer",
                    v.ty(),
                    d.scalar()
                )))
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_read() {
        let mut ctx = Context::new();
        let b = ctx.buffer_f32(&[1.0, 2.0, 3.0]);
        assert_eq!(ctx.read_f32(b), &[1.0, 2.0, 3.0]);
        let z = ctx.zeros_i32(4);
        assert_eq!(ctx.read_i32(z), &[0; 4]);
    }

    #[test]
    fn bases_are_disjoint_and_aligned() {
        let mut ctx = Context::new();
        let a = ctx.zeros_f32(1000);
        let b = ctx.zeros_f32(10);
        let (ba, bb) = (ctx.base_addr(a), ctx.base_addr(b));
        assert!(bb >= ba + 4000);
        assert_eq!(ba % 4096, 0);
        assert_eq!(bb % 4096, 0);
    }

    #[test]
    fn load_store_roundtrip() {
        let mut ctx = Context::new();
        let b = ctx.zeros_f32(8);
        let mem = ctx.global_mem();
        mem.store(b.0, 8, Val::F32(7.0)).unwrap();
        assert_eq!(mem.load(b.0, 8, 1).unwrap(), Val::F32(7.0));
        drop(mem);
        assert_eq!(ctx.read_f32(b)[2], 7.0);
    }

    #[test]
    fn vector_roundtrip() {
        let mut ctx = Context::new();
        let b = ctx.zeros_f32(8);
        let mem = ctx.global_mem();
        mem.store(b.0, 16, Val::VF32([1.0, 2.0, 3.0, 4.0], 4))
            .unwrap();
        assert_eq!(
            mem.load(b.0, 16, 4).unwrap(),
            Val::VF32([1.0, 2.0, 3.0, 4.0], 4)
        );
    }

    #[test]
    fn bounds_checked() {
        let mut ctx = Context::new();
        let b = ctx.zeros_f32(2);
        let mem = ctx.global_mem();
        assert!(matches!(
            mem.load(b.0, 8, 1),
            Err(ExecError::OutOfBounds { .. })
        ));
        assert!(matches!(
            mem.store(b.0, -4, Val::F32(0.0)),
            Err(ExecError::BadAddress(_))
        ));
        assert!(matches!(mem.load(b.0, 2, 1), Err(ExecError::BadAddress(_))));
    }

    #[test]
    fn type_checked_store() {
        let mut ctx = Context::new();
        let b = ctx.zeros_f32(2);
        let mem = ctx.global_mem();
        assert!(matches!(
            mem.store(b.0, 0, Val::I32(1)),
            Err(ExecError::TypeMismatch(_))
        ));
    }
}
