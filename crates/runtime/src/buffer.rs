//! Host-side buffer management (the `clCreateBuffer` / `clEnqueueRead…`
//! corner of the OpenCL host API).

use grover_ir::Scalar;

use crate::val::Val;
use crate::ExecError;

/// Handle to a device buffer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Buffer(pub(crate) u32);

/// Typed buffer storage.
#[derive(Clone, Debug)]
pub enum BufferData {
    /// 32-bit floats.
    F32(Vec<f32>),
    /// 32-bit integers.
    I32(Vec<i32>),
    /// 64-bit integers.
    I64(Vec<i64>),
}

impl BufferData {
    /// Element scalar kind.
    pub fn scalar(&self) -> Scalar {
        match self {
            BufferData::F32(_) => Scalar::F32,
            BufferData::I32(_) => Scalar::I32,
            BufferData::I64(_) => Scalar::I64,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            BufferData::F32(v) => v.len(),
            BufferData::I32(v) => v.len(),
            BufferData::I64(v) => v.len(),
        }
    }

    /// Whether the buffer has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.len() as u64 * self.scalar().size_bytes()
    }
}

/// An execution context owning device buffers, with a flat device address
/// layout used by the memory trace.
#[derive(Clone, Debug, Default)]
pub struct Context {
    buffers: Vec<BufferData>,
    bases: Vec<u64>,
    next_base: u64,
}

const FIRST_BASE: u64 = 0x10_000;
const ALIGN: u64 = 4096;

impl Context {
    /// An empty context with no buffers.
    pub fn new() -> Context {
        Context { buffers: Vec::new(), bases: Vec::new(), next_base: FIRST_BASE }
    }

    fn push(&mut self, data: BufferData) -> Buffer {
        let size = data.size_bytes();
        let base = self.next_base;
        self.next_base = (base + size + ALIGN - 1) / ALIGN * ALIGN;
        self.bases.push(base);
        self.buffers.push(data);
        Buffer(self.buffers.len() as u32 - 1)
    }

    /// Create an `f32` buffer initialised from `data`.
    pub fn buffer_f32(&mut self, data: &[f32]) -> Buffer {
        self.push(BufferData::F32(data.to_vec()))
    }

    /// Create an `i32` buffer initialised from `data`.
    pub fn buffer_i32(&mut self, data: &[i32]) -> Buffer {
        self.push(BufferData::I32(data.to_vec()))
    }

    /// Create an `i64` buffer initialised from `data`.
    pub fn buffer_i64(&mut self, data: &[i64]) -> Buffer {
        self.push(BufferData::I64(data.to_vec()))
    }

    /// Create a zero-filled `f32` buffer.
    pub fn zeros_f32(&mut self, len: usize) -> Buffer {
        self.push(BufferData::F32(vec![0.0; len]))
    }

    /// Create a zero-filled `i32` buffer.
    pub fn zeros_i32(&mut self, len: usize) -> Buffer {
        self.push(BufferData::I32(vec![0; len]))
    }

    /// Read back an `f32` buffer (panics on kind mismatch).
    pub fn read_f32(&self, b: Buffer) -> &[f32] {
        match &self.buffers[b.0 as usize] {
            BufferData::F32(v) => v,
            other => panic!("buffer is {:?}, not f32", other.scalar()),
        }
    }

    /// Read back an `i32` buffer (panics on kind mismatch).
    pub fn read_i32(&self, b: Buffer) -> &[i32] {
        match &self.buffers[b.0 as usize] {
            BufferData::I32(v) => v,
            other => panic!("buffer is {:?}, not i32", other.scalar()),
        }
    }

    /// Raw typed storage of a buffer.
    pub fn data(&self, b: Buffer) -> &BufferData {
        &self.buffers[b.0 as usize]
    }

    /// Device base address of a buffer (trace address space).
    pub fn base_addr(&self, b: Buffer) -> u64 {
        self.bases[b.0 as usize]
    }

    /// Number of buffers created in this context.
    pub fn num_buffers(&self) -> usize {
        self.buffers.len()
    }

    pub(crate) fn scalar_of(&self, b: Buffer) -> Scalar {
        self.buffers[b.0 as usize].scalar()
    }

    /// Load `lanes` elements starting at byte `offset`.
    pub(crate) fn load(
        &self,
        b: Buffer,
        offset: i64,
        lanes: u8,
    ) -> Result<Val, ExecError> {
        let data = &self.buffers[b.0 as usize];
        let esz = data.scalar().size_bytes() as i64;
        if offset < 0 || offset % esz != 0 {
            return Err(ExecError::BadAddress(offset));
        }
        let idx = (offset / esz) as usize;
        let n = lanes as usize;
        if idx + n > data.len() {
            return Err(ExecError::OutOfBounds { buffer: b.0, index: idx + n - 1, len: data.len() });
        }
        Ok(match data {
            BufferData::F32(v) => {
                if n == 1 {
                    Val::F32(v[idx])
                } else {
                    let mut a = [0.0f32; 4];
                    a[..n].copy_from_slice(&v[idx..idx + n]);
                    Val::VF32(a, lanes)
                }
            }
            BufferData::I32(v) => {
                if n == 1 {
                    Val::I32(v[idx])
                } else {
                    let mut a = [0i32; 4];
                    a[..n].copy_from_slice(&v[idx..idx + n]);
                    Val::VI32(a, lanes)
                }
            }
            BufferData::I64(v) => {
                if n == 1 {
                    Val::I64(v[idx])
                } else {
                    return Err(ExecError::Unsupported("vector i64 load".into()));
                }
            }
        })
    }

    /// Store a value at byte `offset`.
    pub(crate) fn store(&mut self, b: Buffer, offset: i64, val: Val) -> Result<(), ExecError> {
        let data = &mut self.buffers[b.0 as usize];
        let esz = data.scalar().size_bytes() as i64;
        if offset < 0 || offset % esz != 0 {
            return Err(ExecError::BadAddress(offset));
        }
        let idx = (offset / esz) as usize;
        let n = val.lanes() as usize;
        if idx + n > data.len() {
            return Err(ExecError::OutOfBounds { buffer: b.0, index: idx + n - 1, len: data.len() });
        }
        match (data, val) {
            (BufferData::F32(v), Val::F32(x)) => v[idx] = x,
            (BufferData::F32(v), Val::VF32(a, l)) => {
                v[idx..idx + l as usize].copy_from_slice(&a[..l as usize])
            }
            (BufferData::I32(v), Val::I32(x)) => v[idx] = x,
            (BufferData::I32(v), Val::Bool(x)) => v[idx] = x as i32,
            (BufferData::I32(v), Val::VI32(a, l)) => {
                v[idx..idx + l as usize].copy_from_slice(&a[..l as usize])
            }
            (BufferData::I64(v), Val::I64(x)) => v[idx] = x,
            (d, v) => {
                return Err(ExecError::TypeMismatch(format!(
                    "store {:?} into {:?} buffer",
                    v.ty(),
                    d.scalar()
                )))
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_read() {
        let mut ctx = Context::new();
        let b = ctx.buffer_f32(&[1.0, 2.0, 3.0]);
        assert_eq!(ctx.read_f32(b), &[1.0, 2.0, 3.0]);
        let z = ctx.zeros_i32(4);
        assert_eq!(ctx.read_i32(z), &[0; 4]);
    }

    #[test]
    fn bases_are_disjoint_and_aligned() {
        let mut ctx = Context::new();
        let a = ctx.zeros_f32(1000);
        let b = ctx.zeros_f32(10);
        let (ba, bb) = (ctx.base_addr(a), ctx.base_addr(b));
        assert!(bb >= ba + 4000);
        assert_eq!(ba % 4096, 0);
        assert_eq!(bb % 4096, 0);
    }

    #[test]
    fn load_store_roundtrip() {
        let mut ctx = Context::new();
        let b = ctx.zeros_f32(8);
        ctx.store(b, 8, Val::F32(7.0)).unwrap();
        assert_eq!(ctx.load(b, 8, 1).unwrap(), Val::F32(7.0));
        assert_eq!(ctx.read_f32(b)[2], 7.0);
    }

    #[test]
    fn vector_roundtrip() {
        let mut ctx = Context::new();
        let b = ctx.zeros_f32(8);
        ctx.store(b, 16, Val::VF32([1.0, 2.0, 3.0, 4.0], 4)).unwrap();
        assert_eq!(ctx.load(b, 16, 4).unwrap(), Val::VF32([1.0, 2.0, 3.0, 4.0], 4));
    }

    #[test]
    fn bounds_checked() {
        let mut ctx = Context::new();
        let b = ctx.zeros_f32(2);
        assert!(matches!(ctx.load(b, 8, 1), Err(ExecError::OutOfBounds { .. })));
        assert!(matches!(ctx.store(b, -4, Val::F32(0.0)), Err(ExecError::BadAddress(_))));
        assert!(matches!(ctx.load(b, 2, 1), Err(ExecError::BadAddress(_))));
    }

    #[test]
    fn type_checked_store() {
        let mut ctx = Context::new();
        let b = ctx.zeros_f32(2);
        assert!(matches!(
            ctx.store(b, 0, Val::I32(1)),
            Err(ExecError::TypeMismatch(_))
        ));
    }
}
