//! The NDRange interpreter: executes kernels with OpenCL work-group
//! semantics. Work-items of a group run serially between barriers (the way
//! CPU OpenCL runtimes schedule them [paper §VI-C]); at a barrier every
//! item of the group must arrive before any proceeds.

use grover_ir::{
    AddressSpace, BinOp, BlockId, Builtin, CastKind, CmpPred, ConstVal, Function, Inst, Scalar,
    Type, ValueDef, ValueId,
};

use crate::buffer::{Buffer, BufferData, Context};
use crate::trace::{AccessEvent, TraceOp, TraceSink};
use crate::val::{PtrVal, Val};
use crate::ExecError;

/// Kernel launch geometry (`clEnqueueNDRangeKernel`).
#[derive(Clone, Copy, Debug)]
pub struct NdRange {
    /// Global work size per dimension.
    pub global: [u64; 3],
    /// Work-group size per dimension.
    pub local: [u64; 3],
}

impl NdRange {
    /// A 1-D launch.
    pub fn d1(global: u64, local: u64) -> NdRange {
        NdRange { global: [global, 1, 1], local: [local, 1, 1] }
    }

    /// A 2-D launch.
    pub fn d2(gx: u64, gy: u64, lx: u64, ly: u64) -> NdRange {
        NdRange { global: [gx, gy, 1], local: [lx, ly, 1] }
    }

    /// A 3-D launch.
    pub fn d3(g: [u64; 3], l: [u64; 3]) -> NdRange {
        NdRange { global: g, local: l }
    }

    /// Work-groups per dimension.
    pub fn num_groups(&self) -> [u64; 3] {
        [
            self.global[0] / self.local[0],
            self.global[1] / self.local[1],
            self.global[2] / self.local[2],
        ]
    }

    /// Work-items per group.
    pub fn items_per_group(&self) -> u64 {
        self.local.iter().product()
    }

    /// Total work-items in the launch.
    pub fn total_items(&self) -> u64 {
        self.global.iter().product()
    }

    fn validate(&self) -> Result<(), ExecError> {
        for d in 0..3 {
            if self.local[d] == 0 || self.global[d] == 0 {
                return Err(ExecError::BadNdRange("zero dimension".into()));
            }
            if self.global[d] % self.local[d] != 0 {
                return Err(ExecError::BadNdRange(format!(
                    "global size {} not divisible by local size {} in dim {d}",
                    self.global[d], self.local[d]
                )));
            }
        }
        Ok(())
    }
}

/// A kernel argument.
#[derive(Clone, Copy, Debug)]
pub enum ArgValue {
    /// A device buffer (pointer parameters).
    Buffer(Buffer),
    /// A 32-bit integer scalar.
    I32(i32),
    /// A 64-bit integer scalar.
    I64(i64),
    /// A 32-bit float scalar.
    F32(f32),
}

/// Aggregate statistics of one launch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaunchStats {
    /// Total IR instructions executed.
    pub instructions: u64,
    /// Barrier rendezvous executed (one per group per barrier).
    pub barriers: u64,
    /// Work-items run.
    pub work_items: u64,
    /// Work-groups run.
    pub work_groups: u64,
}

/// Execution limits.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum total IR instructions across the launch.
    pub max_instructions: u64,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits { max_instructions: 20_000_000_000 }
    }
}

enum Stop {
    Barrier(ValueId),
    Done,
}

struct WorkItem {
    regs: Vec<Option<Val>>,
    block: BlockId,
    inst_idx: usize,
    prev_block: Option<BlockId>,
    done: bool,
    insts: u64,
    lid: [u64; 3],
    wg: [u64; 3],
}

struct GroupCtx<'a> {
    f: &'a Function,
    nd: NdRange,
    group_linear: u32,
    local_mem: Vec<BufferData>,
    local_bases: Vec<u64>,
    /// Device base address of each global buffer (copied from the Context).
    global_bases: Vec<u64>,
}

/// Launch a kernel (the `clEnqueueNDRangeKernel` + `clFinish` pair).
pub fn enqueue(
    ctx: &mut Context,
    kernel: &Function,
    args: &[ArgValue],
    nd: &NdRange,
    sink: &mut dyn TraceSink,
    limits: &Limits,
) -> Result<LaunchStats, ExecError> {
    nd.validate()?;
    validate_args(ctx, kernel, args)?;

    let mut stats = LaunchStats::default();
    let ng = nd.num_groups();
    let mut budget = limits.max_instructions;

    for wz in 0..ng[2] {
        for wy in 0..ng[1] {
            for wx in 0..ng[0] {
                let group_linear = (wz * ng[1] * ng[0] + wy * ng[0] + wx) as u32;
                let n = run_group(
                    ctx,
                    kernel,
                    args,
                    *nd,
                    [wx, wy, wz],
                    group_linear,
                    sink,
                    &mut budget,
                    &mut stats,
                )?;
                stats.work_items += n;
                stats.work_groups += 1;
                sink.workgroup_done(group_linear);
            }
        }
    }
    Ok(stats)
}

fn validate_args(ctx: &Context, kernel: &Function, args: &[ArgValue]) -> Result<(), ExecError> {
    if args.len() != kernel.params().len() {
        return Err(ExecError::ArgCount { expected: kernel.params().len(), got: args.len() });
    }
    for (p, a) in kernel.params().iter().zip(args) {
        let ok = match (p.ty, a) {
            (Type::Ptr { elem, space, .. }, ArgValue::Buffer(b)) => {
                if space == AddressSpace::Local || space == AddressSpace::Private {
                    return Err(ExecError::Unsupported(
                        "local/private pointer kernel arguments".into(),
                    ));
                }
                ctx.scalar_of(*b) == elem
            }
            (Type::Scalar(Scalar::I32), ArgValue::I32(_)) => true,
            (Type::Scalar(Scalar::I64), ArgValue::I64(_)) => true,
            (Type::Scalar(Scalar::F32), ArgValue::F32(_)) => true,
            _ => false,
        };
        if !ok {
            return Err(ExecError::TypeMismatch(format!(
                "argument `{}` expects {}, got {a:?}",
                p.name, p.ty
            )));
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn run_group(
    ctx: &mut Context,
    f: &Function,
    args: &[ArgValue],
    nd: NdRange,
    wg: [u64; 3],
    group_linear: u32,
    sink: &mut dyn TraceSink,
    budget: &mut u64,
    stats: &mut LaunchStats,
) -> Result<u64, ExecError> {
    // Allocate this group's local memory (zero-initialised).
    let mut local_mem = Vec::new();
    let mut local_bases = Vec::new();
    let mut off = 0u64;
    for lb in f.local_bufs() {
        let elems = (lb.len() * lb.lanes as u64) as usize;
        local_bases.push(off);
        off += lb.size_bytes();
        local_mem.push(match lb.elem {
            Scalar::F32 => BufferData::F32(vec![0.0; elems]),
            Scalar::I32 | Scalar::Bool => BufferData::I32(vec![0; elems]),
            Scalar::I64 => BufferData::I64(vec![0; elems]),
        });
    }
    let global_bases: Vec<u64> = (0..)
        .map(Buffer)
        .take_while(|b| (b.0 as usize) < ctx_num_buffers(ctx))
        .map(|b| ctx.base_addr(b))
        .collect();
    let mut g = GroupCtx { f, nd, group_linear, local_mem, local_bases, global_bases };

    // Spawn work-item states.
    let (lsx, lsy, lsz) = (nd.local[0], nd.local[1], nd.local[2]);
    let n_items = (lsx * lsy * lsz) as usize;
    let mut items: Vec<WorkItem> = Vec::with_capacity(n_items);
    for lz in 0..lsz {
        for ly in 0..lsy {
            for lx in 0..lsx {
                let mut regs = vec![None; f.num_values()];
                seed_params(f, args, &mut regs)?;
                items.push(WorkItem {
                    regs,
                    block: f.entry,
                    inst_idx: 0,
                    prev_block: None,
                    done: false,
                    insts: 0,
                    lid: [lx, ly, lz],
                    wg,
                });
            }
        }
    }

    // Barrier-synchronised rounds.
    loop {
        let mut barrier_at: Option<ValueId> = None;
        let mut all_done = true;
        for (i, wi) in items.iter_mut().enumerate() {
            if wi.done {
                continue;
            }
            let stop = run_item(ctx, &mut g, wi, sink, budget)?;
            match stop {
                Stop::Done => {
                    wi.done = true;
                    let local_linear = i as u32;
                    sink.workitem_done(group_linear, local_linear, wi.insts);
                    stats.instructions += wi.insts;
                    wi.insts = 0;
                }
                Stop::Barrier(at) => {
                    all_done = false;
                    match barrier_at {
                        None => barrier_at = Some(at),
                        Some(prev) if prev == at => {}
                        Some(_) => return Err(ExecError::BarrierDivergence),
                    }
                }
            }
        }
        if all_done {
            break;
        }
        if barrier_at.is_some() && items.iter().any(|w| w.done) {
            // Some items returned while others wait at a barrier.
            return Err(ExecError::BarrierDivergence);
        }
        stats.barriers += 1;
        sink.barrier(group_linear, n_items as u32);
    }
    Ok(n_items as u64)
}

fn run_item(
    ctx: &mut Context,
    g: &mut GroupCtx<'_>,
    wi: &mut WorkItem,
    sink: &mut dyn TraceSink,
    budget: &mut u64,
) -> Result<Stop, ExecError> {
    loop {
        // Batch-evaluate phis at a block head (parallel-copy semantics).
        if wi.inst_idx == 0 {
            let insts = &g.f.block(wi.block).insts;
            let mut updates: Vec<(ValueId, Val)> = Vec::new();
            let mut n_phis = 0;
            for &iv in insts {
                let Some(Inst::Phi { incoming }) = g.f.inst(iv) else { break };
                let prev = wi.prev_block.ok_or_else(|| {
                    ExecError::Internal("phi executed with no predecessor".into())
                })?;
                let (_, v) = incoming
                    .iter()
                    .find(|(b, _)| *b == prev)
                    .ok_or_else(|| ExecError::Internal("phi missing incoming edge".into()))?;
                updates.push((iv, value_of(ctx, g, wi, *v)?));
                n_phis += 1;
            }
            for (iv, v) in updates {
                wi.regs[iv.index()] = Some(v);
            }
            wi.inst_idx = n_phis;
            wi.insts += n_phis as u64;
        }

        let insts = &g.f.block(wi.block).insts;
        if wi.inst_idx >= insts.len() {
            return Err(ExecError::Internal("fell off the end of a block".into()));
        }
        let iv = insts[wi.inst_idx];
        let inst = g.f.inst(iv).expect("block entries are instructions");
        wi.insts += 1;
        if *budget == 0 {
            return Err(ExecError::InstructionLimit);
        }
        *budget -= 1;

        match inst {
            Inst::Barrier { .. } => {
                wi.inst_idx += 1;
                return Ok(Stop::Barrier(iv));
            }
            Inst::Ret => return Ok(Stop::Done),
            Inst::Br { target } => {
                wi.prev_block = Some(wi.block);
                wi.block = *target;
                wi.inst_idx = 0;
                continue;
            }
            Inst::CondBr { cond, then_blk, else_blk } => {
                let c = value_of(ctx, g, wi, *cond)?
                    .as_bool()
                    .ok_or_else(|| ExecError::TypeMismatch("condbr on non-bool".into()))?;
                wi.prev_block = Some(wi.block);
                wi.block = if c { *then_blk } else { *else_blk };
                wi.inst_idx = 0;
                continue;
            }
            _ => {}
        }

        let result = eval_inst(ctx, g, wi, iv, inst, sink)?;
        if let Some(v) = result {
            wi.regs[iv.index()] = Some(v);
        }
        wi.inst_idx += 1;
    }
}

fn value_of(
    ctx: &Context,
    g: &GroupCtx<'_>,
    wi: &WorkItem,
    v: ValueId,
) -> Result<Val, ExecError> {
    match &g.f.value(v).def {
        ValueDef::Const(c) => Ok(match c {
            ConstVal::Bool(b) => Val::Bool(*b),
            ConstVal::I32(x) => Val::I32(*x),
            ConstVal::I64(x) => Val::I64(*x),
            ConstVal::F32Bits(b) => Val::F32(f32::from_bits(*b)),
        }),
        ValueDef::Param(_) => wi.regs[v.index()]
            .ok_or_else(|| ExecError::Internal("parameter not seeded".into())),
        ValueDef::LocalBuf(id) => Ok(Val::Ptr(PtrVal {
            space: AddressSpace::Local,
            buf: id.0,
            offset: 0,
        })),
        ValueDef::Inst(_) => wi.regs[v.index()]
            .ok_or_else(|| ExecError::Internal(format!("use of unevaluated value v{}", v.0))),
    }
    .map(|val| {
        let _ = ctx;
        val
    })
}

#[allow(clippy::too_many_lines)]
fn eval_inst(
    ctx: &mut Context,
    g: &mut GroupCtx<'_>,
    wi: &WorkItem,
    iv: ValueId,
    inst: &Inst,
    sink: &mut dyn TraceSink,
) -> Result<Option<Val>, ExecError> {
    let val = |ctx: &Context, g: &GroupCtx<'_>, v: ValueId| value_of(ctx, g, wi, v);
    match inst {
        Inst::Bin { op, lhs, rhs } => {
            let l = val(ctx, g, *lhs)?;
            let r = val(ctx, g, *rhs)?;
            Ok(Some(eval_bin(*op, l, r)?))
        }
        Inst::Cmp { pred, lhs, rhs } => {
            let l = val(ctx, g, *lhs)?;
            let r = val(ctx, g, *rhs)?;
            Ok(Some(eval_cmp(*pred, l, r)?))
        }
        Inst::Select { cond, then_val, else_val } => {
            let c = val(ctx, g, *cond)?
                .as_bool()
                .ok_or_else(|| ExecError::TypeMismatch("select on non-bool".into()))?;
            Ok(Some(if c { val(ctx, g, *then_val)? } else { val(ctx, g, *else_val)? }))
        }
        Inst::Cast { kind, value, to } => {
            let v = val(ctx, g, *value)?;
            Ok(Some(eval_cast(*kind, v, *to)?))
        }
        Inst::Call { builtin, args } => {
            let a: Vec<Val> = args
                .iter()
                .map(|&x| val(ctx, g, x))
                .collect::<Result<_, _>>()?;
            Ok(Some(eval_call(g, wi, *builtin, &a)?))
        }
        Inst::Gep { base, index } => {
            let p = val(ctx, g, *base)?
                .as_ptr()
                .ok_or_else(|| ExecError::TypeMismatch("gep base not a pointer".into()))?;
            let idx = val(ctx, g, *index)?
                .as_int()
                .ok_or_else(|| ExecError::TypeMismatch("gep index not an integer".into()))?;
            let elem = g
                .f
                .ty(*base)
                .pointee()
                .ok_or_else(|| ExecError::TypeMismatch("gep through non-pointer type".into()))?;
            Ok(Some(Val::Ptr(PtrVal {
                space: p.space,
                buf: p.buf,
                offset: p.offset + idx * elem.size_bytes() as i64,
            })))
        }
        Inst::Load { ptr } => {
            let p = val(ctx, g, *ptr)?
                .as_ptr()
                .ok_or_else(|| ExecError::TypeMismatch("load through non-pointer".into()))?;
            let ty = g.f.ty(iv);
            let lanes = ty.lanes();
            let v = mem_load(ctx, g, p, lanes)?;
            emit(sink, g, wi, TraceOp::Load, p, ty.size_bytes() as u32, iv);
            Ok(Some(v))
        }
        Inst::Store { ptr, value } => {
            let p = val(ctx, g, *ptr)?
                .as_ptr()
                .ok_or_else(|| ExecError::TypeMismatch("store through non-pointer".into()))?;
            let v = val(ctx, g, *value)?;
            let bytes = g.f.ty(*value).size_bytes() as u32;
            mem_store(ctx, g, p, v)?;
            emit(sink, g, wi, TraceOp::Store, p, bytes, iv);
            Ok(None)
        }
        Inst::ExtractLane { vector, lane } => {
            let v = val(ctx, g, *vector)?;
            let i = val(ctx, g, *lane)?.as_int().unwrap_or(0) as usize;
            v.lane(i)
                .map(Some)
                .ok_or_else(|| ExecError::TypeMismatch("extractlane out of range".into()))
        }
        Inst::InsertLane { vector, lane, value } => {
            let v = val(ctx, g, *vector)?;
            let i = val(ctx, g, *lane)?.as_int().unwrap_or(0) as usize;
            let x = val(ctx, g, *value)?;
            v.with_lane(i, x)
                .map(Some)
                .ok_or_else(|| ExecError::TypeMismatch("insertlane mismatch".into()))
        }
        Inst::BuildVector { lanes } => {
            if lanes.len() > 4 {
                return Err(ExecError::Unsupported("vectors wider than 4 lanes".into()));
            }
            let vals: Vec<Val> = lanes
                .iter()
                .map(|&x| val(ctx, g, x))
                .collect::<Result<_, _>>()?;
            let n = vals.len() as u8;
            match vals[0] {
                Val::F32(_) => {
                    let mut a = [0.0f32; 4];
                    for (i, v) in vals.iter().enumerate() {
                        a[i] = v.as_f32().ok_or_else(|| {
                            ExecError::TypeMismatch("mixed vector lanes".into())
                        })?;
                    }
                    Ok(Some(Val::VF32(a, n)))
                }
                Val::I32(_) => {
                    let mut a = [0i32; 4];
                    for (i, v) in vals.iter().enumerate() {
                        a[i] = v.as_i32().ok_or_else(|| {
                            ExecError::TypeMismatch("mixed vector lanes".into())
                        })?;
                    }
                    Ok(Some(Val::VI32(a, n)))
                }
                _ => Err(ExecError::Unsupported("vector of this kind".into())),
            }
        }
        Inst::Phi { .. } => Err(ExecError::Internal("phi outside block head".into())),
        Inst::Barrier { .. } | Inst::Br { .. } | Inst::CondBr { .. } | Inst::Ret => {
            Err(ExecError::Internal("control handled by run_item".into()))
        }
    }
}

fn mem_load(ctx: &Context, g: &GroupCtx<'_>, p: PtrVal, lanes: u8) -> Result<Val, ExecError> {
    match p.space {
        AddressSpace::Global | AddressSpace::Constant => ctx.load(Buffer(p.buf), p.offset, lanes),
        AddressSpace::Local => local_load(g, p, lanes),
        AddressSpace::Private => Err(ExecError::Unsupported("private memory pointers".into())),
    }
}

fn mem_store(
    ctx: &mut Context,
    g: &mut GroupCtx<'_>,
    p: PtrVal,
    v: Val,
) -> Result<(), ExecError> {
    match p.space {
        AddressSpace::Global => ctx.store(Buffer(p.buf), p.offset, v),
        AddressSpace::Constant => Err(ExecError::TypeMismatch("store to __constant".into())),
        AddressSpace::Local => local_store(g, p, v),
        AddressSpace::Private => Err(ExecError::Unsupported("private memory pointers".into())),
    }
}

fn local_load(g: &GroupCtx<'_>, p: PtrVal, lanes: u8) -> Result<Val, ExecError> {
    let data = &g.local_mem[p.buf as usize];
    load_from(data, p.offset, lanes)
}

fn local_store(g: &mut GroupCtx<'_>, p: PtrVal, v: Val) -> Result<(), ExecError> {
    let data = &mut g.local_mem[p.buf as usize];
    store_to(data, p.offset, v)
}

fn load_from(data: &BufferData, offset: i64, lanes: u8) -> Result<Val, ExecError> {
    let esz = data.scalar().size_bytes() as i64;
    if offset < 0 || offset % esz != 0 {
        return Err(ExecError::BadAddress(offset));
    }
    let idx = (offset / esz) as usize;
    let n = lanes as usize;
    if idx + n > data.len() {
        return Err(ExecError::OutOfBounds { buffer: u32::MAX, index: idx + n - 1, len: data.len() });
    }
    Ok(match data {
        BufferData::F32(v) => {
            if n == 1 {
                Val::F32(v[idx])
            } else {
                let mut a = [0.0f32; 4];
                a[..n].copy_from_slice(&v[idx..idx + n]);
                Val::VF32(a, lanes)
            }
        }
        BufferData::I32(v) => {
            if n == 1 {
                Val::I32(v[idx])
            } else {
                let mut a = [0i32; 4];
                a[..n].copy_from_slice(&v[idx..idx + n]);
                Val::VI32(a, lanes)
            }
        }
        BufferData::I64(v) => Val::I64(v[idx]),
    })
}

fn store_to(data: &mut BufferData, offset: i64, v: Val) -> Result<(), ExecError> {
    let esz = data.scalar().size_bytes() as i64;
    if offset < 0 || offset % esz != 0 {
        return Err(ExecError::BadAddress(offset));
    }
    let idx = (offset / esz) as usize;
    let n = v.lanes() as usize;
    if idx + n > data.len() {
        return Err(ExecError::OutOfBounds { buffer: u32::MAX, index: idx + n - 1, len: data.len() });
    }
    match (data, v) {
        (BufferData::F32(d), Val::F32(x)) => d[idx] = x,
        (BufferData::F32(d), Val::VF32(a, l)) => {
            d[idx..idx + l as usize].copy_from_slice(&a[..l as usize])
        }
        (BufferData::I32(d), Val::I32(x)) => d[idx] = x,
        (BufferData::I32(d), Val::Bool(x)) => d[idx] = x as i32,
        (BufferData::I32(d), Val::VI32(a, l)) => {
            d[idx..idx + l as usize].copy_from_slice(&a[..l as usize])
        }
        (BufferData::I64(d), Val::I64(x)) => d[idx] = x,
        _ => return Err(ExecError::TypeMismatch("local store kind mismatch".into())),
    }
    Ok(())
}

fn emit(
    sink: &mut dyn TraceSink,
    g: &GroupCtx<'_>,
    wi: &WorkItem,
    op: TraceOp,
    p: PtrVal,
    bytes: u32,
    pc: ValueId,
) {
    let addr = match p.space {
        AddressSpace::Local => g.local_bases[p.buf as usize].wrapping_add(p.offset as u64),
        _ => {
            // Device-wide address: buffer base + offset.
            let base = gbase(g, p.buf);
            base.wrapping_add(p.offset as u64)
        }
    };
    let nd = &g.nd;
    let local_linear =
        (wi.lid[2] * nd.local[1] * nd.local[0] + wi.lid[1] * nd.local[0] + wi.lid[0]) as u32;
    sink.access(&AccessEvent {
        op,
        space: p.space,
        addr,
        bytes,
        group: g.group_linear,
        local: local_linear,
        pc: pc.0,
    });
}

fn gbase(g: &GroupCtx<'_>, buf: u32) -> u64 {
    g.global_bases.get(buf as usize).copied().unwrap_or(0)
}

fn ctx_num_buffers(ctx: &Context) -> usize {
    ctx.num_buffers()
}

fn eval_bin(op: BinOp, l: Val, r: Val) -> Result<Val, ExecError> {
    // Vector ops: elementwise over lanes.
    if l.lanes() > 1 || r.lanes() > 1 {
        let n = l.lanes().max(r.lanes());
        let mut out: Option<Val> = None;
        for i in 0..n as usize {
            let a = l.lane(if l.lanes() > 1 { i } else { 0 }).unwrap();
            let b = r.lane(if r.lanes() > 1 { i } else { 0 }).unwrap();
            let x = eval_bin(op, a, b)?;
            out = Some(match out {
                None => match x {
                    Val::F32(v) => {
                        let mut a = [0.0f32; 4];
                        a[0] = v;
                        Val::VF32(a, n)
                    }
                    Val::I32(v) => {
                        let mut a = [0i32; 4];
                        a[0] = v;
                        Val::VI32(a, n)
                    }
                    _ => return Err(ExecError::Unsupported("vector bin kind".into())),
                },
                Some(acc) => acc.with_lane(i, x).ok_or_else(|| {
                    ExecError::TypeMismatch("vector lane mismatch".into())
                })?,
            });
        }
        return Ok(out.unwrap());
    }

    use BinOp::*;
    match op {
        FAdd | FSub | FMul | FDiv | FMin | FMax => {
            let (a, b) = match (l.as_f32(), r.as_f32()) {
                (Some(a), Some(b)) => (a, b),
                _ => return Err(ExecError::TypeMismatch("float op on non-floats".into())),
            };
            Ok(Val::F32(match op {
                FAdd => a + b,
                FSub => a - b,
                FMul => a * b,
                FDiv => a / b,
                FMin => a.min(b),
                FMax => a.max(b),
                _ => unreachable!(),
            }))
        }
        _ => {
            // Integer ops preserve the width of the left operand.
            let wide = matches!(l, Val::I64(_));
            let (a, b) = match (l.as_int(), r.as_int()) {
                (Some(a), Some(b)) => (a, b),
                _ => return Err(ExecError::TypeMismatch("int op on non-ints".into())),
            };
            if matches!(op, SDiv | UDiv | SRem | URem) && b == 0 {
                return Err(ExecError::DivisionByZero);
            }
            // Bool And/Or/Xor keep bool.
            if matches!(l, Val::Bool(_)) && matches!(op, And | Or | Xor) {
                let v = match op {
                    And => a & b,
                    Or => a | b,
                    Xor => a ^ b,
                    _ => unreachable!(),
                };
                return Ok(Val::Bool(v != 0));
            }
            let v: i64 = match op {
                Add => a.wrapping_add(b),
                Sub => a.wrapping_sub(b),
                Mul => a.wrapping_mul(b),
                SDiv => a.wrapping_div(b),
                UDiv => {
                    if wide {
                        ((a as u64) / (b as u64)) as i64
                    } else {
                        ((a as u32) / (b as u32)) as i64
                    }
                }
                SRem => a.wrapping_rem(b),
                URem => {
                    if wide {
                        ((a as u64) % (b as u64)) as i64
                    } else {
                        ((a as u32) % (b as u32)) as i64
                    }
                }
                Shl => a.wrapping_shl(b as u32),
                LShr => {
                    if wide {
                        ((a as u64) >> (b as u32 & 63)) as i64
                    } else {
                        (((a as u32) >> (b as u32 & 31)) as i32) as i64
                    }
                }
                AShr => a.wrapping_shr(b as u32),
                And => a & b,
                Or => a | b,
                Xor => a ^ b,
                _ => unreachable!(),
            };
            Ok(if wide { Val::I64(v) } else { Val::I32(v as i32) })
        }
    }
}

fn eval_cmp(pred: CmpPred, l: Val, r: Val) -> Result<Val, ExecError> {
    use CmpPred::*;
    if let (Some(a), Some(b)) = (l.as_f32(), r.as_f32()) {
        let v = match pred {
            FEq => a == b,
            FNe => a != b,
            FLt => a < b,
            FLe => a <= b,
            FGt => a > b,
            FGe => a >= b,
            _ => return Err(ExecError::TypeMismatch("int predicate on floats".into())),
        };
        return Ok(Val::Bool(v));
    }
    let (a, b) = match (l.as_int(), r.as_int()) {
        (Some(a), Some(b)) => (a, b),
        _ => return Err(ExecError::TypeMismatch("cmp kind mismatch".into())),
    };
    // Unsigned comparisons act on the operand width.
    let wide = matches!(l, Val::I64(_));
    let (ua, ub) = if wide {
        (a as u64, b as u64)
    } else {
        (a as u32 as u64, b as u32 as u64)
    };
    let v = match pred {
        Eq => a == b,
        Ne => a != b,
        Slt => a < b,
        Sle => a <= b,
        Sgt => a > b,
        Sge => a >= b,
        Ult => ua < ub,
        Ule => ua <= ub,
        Ugt => ua > ub,
        Uge => ua >= ub,
        _ => return Err(ExecError::TypeMismatch("float predicate on ints".into())),
    };
    Ok(Val::Bool(v))
}

fn eval_cast(kind: CastKind, v: Val, to: Type) -> Result<Val, ExecError> {
    use CastKind::*;
    let t = match to {
        Type::Scalar(s) => s,
        _ => return Err(ExecError::Unsupported("vector casts".into())),
    };
    Ok(match (kind, v, t) {
        (SExt, Val::I32(x), Scalar::I64) => Val::I64(x as i64),
        (SExt, Val::Bool(x), Scalar::I32) => Val::I32(-(x as i32)),
        (ZExt, Val::I32(x), Scalar::I64) => Val::I64(x as u32 as i64),
        (ZExt, Val::Bool(x), Scalar::I32) => Val::I32(x as i32),
        (ZExt, Val::Bool(x), Scalar::I64) => Val::I64(x as i64),
        (Trunc, Val::I64(x), Scalar::I32) => Val::I32(x as i32),
        (Trunc, Val::I32(x), Scalar::Bool) => Val::Bool(x & 1 != 0),
        (SiToFp, Val::I32(x), Scalar::F32) => Val::F32(x as f32),
        (SiToFp, Val::I64(x), Scalar::F32) => Val::F32(x as f32),
        (FpToSi, Val::F32(x), Scalar::I32) => Val::I32(x as i32),
        (FpToSi, Val::F32(x), Scalar::I64) => Val::I64(x as i64),
        (Bitcast, Val::I32(x), Scalar::F32) => Val::F32(f32::from_bits(x as u32)),
        (Bitcast, Val::F32(x), Scalar::I32) => Val::I32(x.to_bits() as i32),
        (k, v, t) => {
            return Err(ExecError::Unsupported(format!("cast {k:?} {v:?} -> {t:?}")))
        }
    })
}

fn eval_call(
    g: &GroupCtx<'_>,
    wi: &WorkItem,
    b: Builtin,
    args: &[Val],
) -> Result<Val, ExecError> {
    use Builtin::*;
    if b.is_workitem_query() {
        let d = args[0]
            .as_int()
            .ok_or_else(|| ExecError::TypeMismatch("query dim not integer".into()))?;
        if !(0..3).contains(&d) {
            return Err(ExecError::TypeMismatch(format!("query dim {d} out of range")));
        }
        let d = d as usize;
        let nd = &g.nd;
        let v = match b {
            LocalId => wi.lid[d],
            GroupId => wi.wg[d],
            GlobalId => wi.wg[d] * nd.local[d] + wi.lid[d],
            LocalSize => nd.local[d],
            GlobalSize => nd.global[d],
            NumGroups => nd.global[d] / nd.local[d],
            _ => unreachable!(),
        };
        return Ok(Val::I64(v as i64));
    }
    let f1 = |x: Val| {
        x.as_f32()
            .ok_or_else(|| ExecError::TypeMismatch("math builtin on non-float".into()))
    };
    // Vector math: elementwise.
    if args[0].lanes() > 1 && matches!(b, Sqrt | Rsqrt | Fabs | Exp | Log | Floor | Mad) {
        let n = args[0].lanes();
        let mut out = args[0];
        for i in 0..n as usize {
            let la: Vec<Val> = args.iter().map(|a| a.lane(i).unwrap()).collect();
            let x = eval_call(g, wi, b, &la)?;
            out = out
                .with_lane(i, x)
                .ok_or_else(|| ExecError::TypeMismatch("vector math lanes".into()))?;
        }
        return Ok(out);
    }
    Ok(match b {
        Sqrt => Val::F32(f1(args[0])?.sqrt()),
        Rsqrt => Val::F32(1.0 / f1(args[0])?.sqrt()),
        Fabs => Val::F32(f1(args[0])?.abs()),
        Exp => Val::F32(f1(args[0])?.exp()),
        Log => Val::F32(f1(args[0])?.ln()),
        Floor => Val::F32(f1(args[0])?.floor()),
        Mad => Val::F32(f1(args[0])? * f1(args[1])? + f1(args[2])?),
        IMin | IMax => {
            let (a, bb) = (
                args[0].as_int().ok_or_else(|| ExecError::TypeMismatch("min on non-int".into()))?,
                args[1].as_int().ok_or_else(|| ExecError::TypeMismatch("min on non-int".into()))?,
            );
            let v = if b == IMin { a.min(bb) } else { a.max(bb) };
            match args[0] {
                Val::I64(_) => Val::I64(v),
                _ => Val::I32(v as i32),
            }
        }
        Clamp => {
            if let (Some(x), Some(lo), Some(hi)) =
                (args[0].as_f32(), args[1].as_f32(), args[2].as_f32())
            {
                Val::F32(x.clamp(lo, hi))
            } else {
                let x = args[0].as_int().unwrap_or(0);
                let lo = args[1].as_int().unwrap_or(0);
                let hi = args[2].as_int().unwrap_or(0);
                Val::I32(x.clamp(lo, hi) as i32)
            }
        }
        Dot => {
            let n = args[0].lanes() as usize;
            let mut acc = 0.0f32;
            for i in 0..n {
                acc += f1(args[0].lane(i).unwrap())? * f1(args[1].lane(i).unwrap())?;
            }
            Val::F32(acc)
        }
        _ => return Err(ExecError::Unsupported(format!("builtin {}", b.name()))),
    })
}

/// Seed a work item's registers with its parameter values.
pub(crate) fn seed_params(
    f: &Function,
    args: &[ArgValue],
    regs: &mut [Option<Val>],
) -> Result<(), ExecError> {
    for (i, _) in f.params().iter().enumerate() {
        let pv = f.param_value(i);
        let v = match (f.ty(pv), args[i]) {
            (Type::Ptr { space, .. }, ArgValue::Buffer(b)) => {
                Val::Ptr(PtrVal { space, buf: b.0, offset: 0 })
            }
            (_, ArgValue::I32(x)) => Val::I32(x),
            (_, ArgValue::I64(x)) => Val::I64(x),
            (_, ArgValue::F32(x)) => Val::F32(x),
            _ => return Err(ExecError::TypeMismatch("param seed".into())),
        };
        regs[pv.index()] = Some(v);
    }
    Ok(())
}
