//! The NDRange interpreter: executes kernels with OpenCL work-group
//! semantics. Work-items of a group run serially between barriers (the way
//! CPU OpenCL runtimes schedule them [paper §VI-C]); at a barrier every
//! item of the group must arrive before any proceeds.
//!
//! Work-groups of one launch are independent (OpenCL gives no ordering or
//! synchronisation between groups), so the engine can execute them either
//! serially on the calling thread or partitioned across a pool of worker
//! threads — see [`ExecPolicy`] and [`enqueue_with_policy`]. Both schedules
//! produce bit-identical output buffers, [`LaunchStats`] and trace streams.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use grover_ir::{
    AddressSpace, BinOp, BlockId, Builtin, CastKind, CmpPred, ConstVal, Function, Inst, Scalar,
    Type, ValueDef, ValueId,
};

use crate::buffer::{Buffer, BufferData, Context, GlobalMem};
use crate::bytecode::{self, Backend};
use crate::trace::{AccessEvent, TraceOp, TraceSink};
use crate::val::{PtrVal, Val};
use crate::ExecError;

/// Kernel launch geometry (`clEnqueueNDRangeKernel`).
#[derive(Clone, Copy, Debug)]
pub struct NdRange {
    /// Global work size per dimension.
    pub global: [u64; 3],
    /// Work-group size per dimension.
    pub local: [u64; 3],
}

impl NdRange {
    /// A 1-D launch.
    pub fn d1(global: u64, local: u64) -> NdRange {
        NdRange {
            global: [global, 1, 1],
            local: [local, 1, 1],
        }
    }

    /// A 2-D launch.
    pub fn d2(gx: u64, gy: u64, lx: u64, ly: u64) -> NdRange {
        NdRange {
            global: [gx, gy, 1],
            local: [lx, ly, 1],
        }
    }

    /// A 3-D launch.
    pub fn d3(g: [u64; 3], l: [u64; 3]) -> NdRange {
        NdRange {
            global: g,
            local: l,
        }
    }

    /// Work-groups per dimension.
    pub fn num_groups(&self) -> [u64; 3] {
        [
            self.global[0] / self.local[0],
            self.global[1] / self.local[1],
            self.global[2] / self.local[2],
        ]
    }

    /// Work-items per group.
    pub fn items_per_group(&self) -> u64 {
        self.local.iter().product()
    }

    /// Total work-items in the launch.
    pub fn total_items(&self) -> u64 {
        self.global.iter().product()
    }

    fn validate(&self) -> Result<(), ExecError> {
        for d in 0..3 {
            if self.local[d] == 0 || self.global[d] == 0 {
                return Err(ExecError::BadNdRange("zero dimension".into()));
            }
            if !self.global[d].is_multiple_of(self.local[d]) {
                return Err(ExecError::BadNdRange(format!(
                    "global size {} not divisible by local size {} in dim {d}",
                    self.global[d], self.local[d]
                )));
            }
        }
        Ok(())
    }
}

/// A kernel argument.
#[derive(Clone, Copy, Debug)]
pub enum ArgValue {
    /// A device buffer (pointer parameters).
    Buffer(Buffer),
    /// A 32-bit integer scalar.
    I32(i32),
    /// A 64-bit integer scalar.
    I64(i64),
    /// A 32-bit float scalar.
    F32(f32),
}

/// Aggregate statistics of one launch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaunchStats {
    /// Total IR instructions executed.
    pub instructions: u64,
    /// Barrier rendezvous executed (one per group per barrier).
    pub barriers: u64,
    /// Work-items run.
    pub work_items: u64,
    /// Work-groups run.
    pub work_groups: u64,
}

/// Execution limits.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum total IR instructions across the launch.
    pub max_instructions: u64,
    /// Optional wall-clock deadline for the whole launch. The watchdog is
    /// checked at every work-group start and at budget-refill granularity
    /// (every [`BUDGET_CHUNK`] instructions per worker), so a launch
    /// overshoots the deadline by at most one chunk's execution time; on
    /// expiry the shared instruction budget is drained so every worker
    /// stops at its next refill with [`ExecError::DeadlineExceeded`].
    pub deadline: Option<Duration>,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_instructions: 20_000_000_000,
            deadline: None,
        }
    }
}

/// How the work-groups of a launch are scheduled onto host threads.
///
/// OpenCL defines no ordering or synchronisation between the work-groups of
/// one launch, so they may run concurrently. A kernel in which work-items of
/// *different* groups touch the same global-memory location without
/// synchronisation (at least one of them writing) is already undefined
/// behaviour in the source program; such kernels get no extra serialisation
/// here — exactly as on a real device.
///
/// Whatever the policy, a successful launch is deterministic: output
/// buffers, [`LaunchStats`] and the trace stream a [`TraceSink`] observes
/// are bit-identical between `Serial` and `Parallel` (per-group trace
/// events are buffered and replayed in group-linear order). The only
/// scheduling-visible difference is *which* instruction trips
/// [`Limits::max_instructions`]: the budget is shared by all workers, so
/// under `Parallel` the launch still stops within one claim-chunk of the
/// limit, but not on a deterministic instruction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecPolicy {
    /// Run work-groups one after another on the calling thread.
    #[default]
    Serial,
    /// Partition the work-group index space across a pool of worker
    /// threads (scoped; no detached threads survive the launch).
    Parallel {
        /// Worker-thread count; `0` means one per available CPU.
        threads: usize,
    },
}

impl ExecPolicy {
    /// `Parallel` with the thread count taken from the host CPU.
    pub fn parallel_auto() -> ExecPolicy {
        ExecPolicy::Parallel { threads: 0 }
    }

    /// The number of worker threads this policy resolves to on this host.
    pub fn worker_count(self) -> usize {
        match self {
            ExecPolicy::Serial => 1,
            ExecPolicy::Parallel { threads: 0 } => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            ExecPolicy::Parallel { threads } => threads,
        }
    }
}

/// Per-worker execution statistics, collected only by the observed launch
/// path ([`crate::obs::enqueue_observed`] with an enabled recorder). The
/// serial engine reports itself as a single worker.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerStat {
    /// Work-groups this worker claimed and executed.
    pub groups: u64,
    /// Wall time spent inside group execution (excludes idle waits on the
    /// claim counter — `busy / launch wall time` is the utilisation).
    pub busy: Duration,
    /// The longest single group this worker executed.
    pub max_group: Duration,
}

impl WorkerStat {
    fn note(&mut self, dt: Duration) {
        self.groups += 1;
        self.busy += dt;
        if dt > self.max_group {
            self.max_group = dt;
        }
    }
}

/// Instructions a parallel worker claims from the shared launch budget per
/// refill. Small enough that a launch overshoots `max_instructions` by at
/// most `workers * BUDGET_CHUNK`, large enough that the shared counter is
/// touched ~once per million instructions.
const BUDGET_CHUNK: u64 = 1 << 20;

/// The launch-wide instruction budget ([`Limits::max_instructions`]) and
/// wall-clock watchdog ([`Limits::deadline`]), shared by every worker.
pub(crate) struct BudgetPool {
    avail: AtomicU64,
    start: Instant,
    deadline: Option<Duration>,
    deadline_hit: AtomicBool,
}

impl BudgetPool {
    fn new(limits: &Limits) -> BudgetPool {
        BudgetPool {
            avail: AtomicU64::new(limits.max_instructions),
            start: Instant::now(),
            deadline: limits.deadline,
            deadline_hit: AtomicBool::new(false),
        }
    }

    /// Watchdog check; on expiry, drain the pool so every other worker
    /// stops at its next refill too.
    pub(crate) fn check_deadline(&self) -> Result<(), ExecError> {
        if let Some(d) = self.deadline {
            if self.start.elapsed() > d {
                self.deadline_hit.store(true, Ordering::Relaxed);
                self.avail.store(0, Ordering::Relaxed);
                return Err(ExecError::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Why the pool is empty: a drained-by-watchdog pool reports the
    /// deadline, a genuinely spent one the instruction limit.
    fn exhausted_error(&self) -> ExecError {
        if self.deadline_hit.load(Ordering::Relaxed) {
            ExecError::DeadlineExceeded
        } else {
            ExecError::InstructionLimit
        }
    }
}

/// A worker's claim on the [`BudgetPool`]: spends locally and refills in
/// chunks, so the hot interpreter loop performs no atomic ops. The serial
/// engine uses the same chunking — with a single worker the refills are
/// sequential, so the exact single-counter semantics are preserved: the
/// instruction *after* the budget runs out fails with
/// [`ExecError::InstructionLimit`] — and each refill doubles as a
/// watchdog check.
pub(crate) struct LocalBudget<'a> {
    pool: &'a BudgetPool,
    left: u64,
    chunk: u64,
    /// Injected instruction-site fault: countdown and plan.
    #[cfg(feature = "fault-injection")]
    fault: Option<(u64, std::sync::Arc<crate::fault::Installed>)>,
}

impl<'a> LocalBudget<'a> {
    fn new(launch: &'a LaunchCtx<'_>, chunk: u64) -> LocalBudget<'a> {
        LocalBudget {
            pool: &launch.pool,
            left: 0,
            chunk,
            #[cfg(feature = "fault-injection")]
            fault: launch
                .fault
                .as_ref()
                .and_then(|i| crate::fault::instruction_trigger(i).map(|n| (n, i.clone()))),
        }
    }

    #[inline]
    pub(crate) fn spend(&mut self) -> Result<(), ExecError> {
        #[cfg(feature = "fault-injection")]
        if let Some((countdown, inst)) = &mut self.fault {
            *countdown -= 1;
            if *countdown == 0 {
                let inst = inst.clone();
                self.fault = None;
                crate::fault::instruction_hook(&inst)?;
            }
        }
        if self.left == 0 {
            self.refill()?;
        }
        self.left -= 1;
        Ok(())
    }

    fn refill(&mut self) -> Result<(), ExecError> {
        self.pool.check_deadline()?;
        let mut avail = self.pool.avail.load(Ordering::Relaxed);
        loop {
            if avail == 0 {
                return Err(self.pool.exhausted_error());
            }
            let take = avail.min(self.chunk);
            match self.pool.avail.compare_exchange_weak(
                avail,
                avail - take,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.left = take;
                    return Ok(());
                }
                Err(now) => avail = now,
            }
        }
    }
}

impl Drop for LocalBudget<'_> {
    fn drop(&mut self) {
        // Return the unspent part of the claim so other workers can use it
        // — unless the watchdog drained the pool to stop the launch.
        if self.left > 0 && !self.pool.deadline_hit.load(Ordering::Relaxed) {
            self.pool.avail.fetch_add(self.left, Ordering::Relaxed);
        }
    }
}

enum Stop {
    Barrier(ValueId),
    Done,
}

struct WorkItem {
    regs: Vec<Option<Val>>,
    block: BlockId,
    inst_idx: usize,
    prev_block: Option<BlockId>,
    done: bool,
    insts: u64,
    lid: [u64; 3],
    wg: [u64; 3],
}

/// Launch-wide immutable state, computed once per `enqueue` and shared by
/// every worker: kernel, geometry, the global-memory view (buffer base
/// addresses included — no per-group probing of the [`Context`]), the
/// pre-resolved parameter seeds and the `__local` buffer layout.
pub(crate) struct LaunchCtx<'a> {
    pub(crate) f: &'a Function,
    pub(crate) nd: NdRange,
    pub(crate) mem: GlobalMem<'a>,
    /// `(register index, value)` seeds applied to every work-item.
    pub(crate) params: Vec<(usize, Val)>,
    /// Element kind and element count of each `__local` buffer.
    pub(crate) local_templ: Vec<(Scalar, usize)>,
    /// Byte offset of each `__local` buffer inside the group-local region.
    pub(crate) local_bases: Vec<u64>,
    pub(crate) pool: BudgetPool,
    /// Whether every group's global stores are perturbed
    /// ([`crate::fault::FaultKind::CorruptStores`] at launch scope; always
    /// `false` without the `fault-injection` feature).
    pub(crate) corrupt_launch: bool,
    /// The fault plan matched against this launch's kernel, if any.
    #[cfg(feature = "fault-injection")]
    pub(crate) fault: Option<std::sync::Arc<crate::fault::Installed>>,
}

/// Per-worker scratch reused across the groups that worker executes: the
/// work-item states (register files in particular) and the group's local
/// memory are allocated once and reset per group instead of reallocated.
#[derive(Default)]
struct Scratch {
    items: Vec<WorkItem>,
    local_mem: Vec<BufferData>,
}

/// What one group contributed to the launch statistics.
#[derive(Clone, Copy, Default)]
pub(crate) struct GroupStats {
    pub(crate) items: u64,
    pub(crate) barriers: u64,
    pub(crate) instructions: u64,
}

/// What a parallel worker hands back for one claimed group: the linear
/// group index plus either the group's stats and buffered trace or the
/// error that stopped it.
type GroupOutcome = (usize, Result<(GroupStats, GroupBuf), ExecError>);

/// One buffered trace event of a group (the group id is implicit).
enum GroupEvent {
    Access(AccessEvent),
    Barrier { items: u32 },
    ItemDone { local: u32, insts: u64 },
}

/// Per-group trace buffer used by the parallel engine. Workers record into
/// it; the launch thread replays the buffers in group-linear order so the
/// real sink observes exactly the serial event stream.
struct GroupBuf {
    /// Whether the real sink consumes access events
    /// ([`TraceSink::wants_events`]); barrier/item-done events are always
    /// kept — they are few and carry the launch statistics.
    wants_access: bool,
    events: Vec<GroupEvent>,
}

impl TraceSink for GroupBuf {
    fn access(&mut self, ev: &AccessEvent) {
        if self.wants_access {
            self.events.push(GroupEvent::Access(*ev));
        }
    }

    fn barrier(&mut self, _group: u32, items: u32) {
        self.events.push(GroupEvent::Barrier { items });
    }

    fn workitem_done(&mut self, _group: u32, local: u32, instructions: u64) {
        self.events.push(GroupEvent::ItemDone {
            local,
            insts: instructions,
        });
    }
}

impl GroupBuf {
    fn replay(self, group: u32, sink: &mut dyn TraceSink) {
        for ev in self.events {
            match ev {
                GroupEvent::Access(ev) => sink.access(&ev),
                GroupEvent::Barrier { items } => sink.barrier(group, items),
                GroupEvent::ItemDone { local, insts } => sink.workitem_done(group, local, insts),
            }
        }
        sink.workgroup_done(group);
    }
}

/// Group linear id → 3-D group id, matching the serial `wz/wy/wx` loop
/// nest (`x` fastest).
fn delinearize(gl: usize, ng: [u64; 3]) -> [u64; 3] {
    let gl = gl as u64;
    [gl % ng[0], (gl / ng[0]) % ng[1], gl / (ng[0] * ng[1])]
}

/// Launch a kernel (the `clEnqueueNDRangeKernel` + `clFinish` pair),
/// running work-groups serially on the calling thread.
pub fn enqueue(
    ctx: &mut Context,
    kernel: &Function,
    args: &[ArgValue],
    nd: &NdRange,
    sink: &mut dyn TraceSink,
    limits: &Limits,
) -> Result<LaunchStats, ExecError> {
    enqueue_with_policy(ctx, kernel, args, nd, sink, limits, ExecPolicy::Serial)
}

/// Launch a kernel under an explicit scheduling [`ExecPolicy`].
///
/// See [`ExecPolicy`] for the determinism guarantees. On failure the error
/// of the lowest-numbered failing group is returned (the same one the
/// serial schedule would report), and the sink has observed the complete
/// event streams of every group before it.
pub fn enqueue_with_policy(
    ctx: &mut Context,
    kernel: &Function,
    args: &[ArgValue],
    nd: &NdRange,
    sink: &mut dyn TraceSink,
    limits: &Limits,
    policy: ExecPolicy,
) -> Result<LaunchStats, ExecError> {
    enqueue_impl(
        ctx,
        kernel,
        args,
        nd,
        sink,
        limits,
        policy,
        Backend::Interp,
        None,
        None,
    )
}

/// Launch a kernel under an explicit scheduling [`ExecPolicy`] and
/// execution [`Backend`].
///
/// Both backends produce bit-identical output buffers, [`LaunchStats`] and
/// trace streams for well-formed kernels; the bytecode backend merely
/// executes a pre-lowered form of the kernel in a tighter dispatch loop.
#[allow(clippy::too_many_arguments)]
pub fn enqueue_with_backend(
    ctx: &mut Context,
    kernel: &Function,
    args: &[ArgValue],
    nd: &NdRange,
    sink: &mut dyn TraceSink,
    limits: &Limits,
    policy: ExecPolicy,
    backend: Backend,
) -> Result<LaunchStats, ExecError> {
    enqueue_impl(
        ctx, kernel, args, nd, sink, limits, policy, backend, None, None,
    )
}

/// Launch a kernel like [`enqueue_with_backend`] while collecting a
/// per-opcode execution profile.
///
/// Profiling is only implemented by the bytecode backend: with
/// [`Backend::Bytecode`] and a successful launch, the returned profile is
/// `Some` and its `total_charged` equals the launch's
/// [`LaunchStats::instructions`] exactly; with [`Backend::Interp`] (or on
/// a failed launch) it is `None`. Counts are aggregated by plain addition
/// across work-items and workers, so the profile is bit-identical under
/// [`ExecPolicy::Serial`] and [`ExecPolicy::Parallel`].
#[allow(clippy::too_many_arguments)]
pub fn enqueue_profiled(
    ctx: &mut Context,
    kernel: &Function,
    args: &[ArgValue],
    nd: &NdRange,
    sink: &mut dyn TraceSink,
    limits: &Limits,
    policy: ExecPolicy,
    backend: Backend,
) -> Result<(LaunchStats, Option<bytecode::OpProfile>), ExecError> {
    let mut profile = None;
    let stats = enqueue_impl(
        ctx,
        kernel,
        args,
        nd,
        sink,
        limits,
        policy,
        backend,
        None,
        Some(&mut profile),
    )?;
    Ok((stats, profile))
}

/// The launch engine behind [`enqueue_with_policy`] and
/// [`crate::obs::enqueue_observed`]. When `workers_out` is `Some`, each
/// worker additionally times its group executions and pushes one
/// [`WorkerStat`] (the serial engine pushes exactly one); when `None` —
/// the production path — no clock is read and no stat is kept. When
/// `profile_out` is `Some` and the backend is [`Backend::Bytecode`], each
/// worker counts op/edge executions into a private buffer; the buffers are
/// merged and aggregated into an [`bytecode::OpProfile`] written through
/// `profile_out` iff the launch succeeds. With the interpreter backend, or
/// on any error, `profile_out` is left untouched.
#[allow(clippy::too_many_arguments)]
pub(crate) fn enqueue_impl(
    ctx: &mut Context,
    kernel: &Function,
    args: &[ArgValue],
    nd: &NdRange,
    sink: &mut dyn TraceSink,
    limits: &Limits,
    policy: ExecPolicy,
    backend: Backend,
    workers_out: Option<&mut Vec<WorkerStat>>,
    profile_out: Option<&mut Option<bytecode::OpProfile>>,
) -> Result<LaunchStats, ExecError> {
    nd.validate()?;
    validate_args(ctx, kernel, args)?;

    let params = param_seeds(kernel, args)?;
    let mut local_templ = Vec::new();
    let mut local_bases = Vec::new();
    let mut off = 0u64;
    for lb in kernel.local_bufs() {
        local_templ.push((lb.elem, (lb.len() * lb.lanes as u64) as usize));
        local_bases.push(off);
        off += lb.size_bytes();
    }
    #[cfg(feature = "fault-injection")]
    let fault = crate::fault::for_kernel(kernel);
    #[cfg(feature = "fault-injection")]
    let corrupt_launch = match &fault {
        // A launch-entry panic deliberately propagates out of `enqueue`:
        // it models a failure of the launching thread itself (e.g. one
        // side of a tuner race), not of a work-group worker.
        Some(i) => crate::fault::launch_hook(i)?,
        None => false,
    };
    #[cfg(not(feature = "fault-injection"))]
    let corrupt_launch = false;
    let launch = LaunchCtx {
        f: kernel,
        nd: *nd,
        mem: ctx.global_mem(),
        params,
        local_templ,
        local_bases,
        pool: BudgetPool::new(limits),
        corrupt_launch,
        #[cfg(feature = "fault-injection")]
        fault,
    };

    // Bytecode backend: lower the kernel once per launch; every worker
    // executes the same compiled program.
    let program = match backend {
        Backend::Interp => None,
        Backend::Bytecode => Some(bytecode::LaunchProgram::prepare(kernel, &launch.params)),
    };
    let program = program.as_ref();

    let ng = nd.num_groups();
    let n_groups = (ng[0] * ng[1] * ng[2]) as usize;

    let observe = workers_out.is_some();

    if policy == ExecPolicy::Serial {
        let mut budget = LocalBudget::new(&launch, BUDGET_CHUNK);
        let mut scratch = AnyScratch::new(program.is_some());
        let mut prof = if profile_out.is_some() {
            program.map(bytecode::ProfBuf::for_program)
        } else {
            None
        };
        let mut stats = LaunchStats::default();
        let mut wstat = WorkerStat::default();
        for gl in 0..n_groups {
            let t0 = observe.then(Instant::now);
            let gs = run_group_any(
                &launch,
                program,
                delinearize(gl, ng),
                gl as u32,
                sink,
                &mut budget,
                &mut scratch,
                prof.as_mut(),
            )?;
            if let Some(t0) = t0 {
                wstat.note(t0.elapsed());
            }
            stats.instructions += gs.instructions;
            stats.barriers += gs.barriers;
            stats.work_items += gs.items;
            stats.work_groups += 1;
            sink.workgroup_done(gl as u32);
        }
        if let Some(out) = workers_out {
            out.push(wstat);
        }
        if let Some(out) = profile_out {
            if let (Some(buf), Some(p)) = (&prof, program) {
                *out = Some(p.aggregate(buf));
            }
        }
        return Ok(stats);
    }

    let workers = policy.worker_count().clamp(1, n_groups);
    let wants_access = sink.wants_events();
    let profile = profile_out.is_some();
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let launch_ref = &launch;

    // Workers claim group indices from a shared counter (dynamic load
    // balancing) and run each claimed group to completion. `fetch_add` is
    // monotonic, so when a group fails, every lower-numbered group was
    // claimed earlier by some worker that finishes it before exiting —
    // which is what makes the first-error-in-group-order guarantee hold.
    let mut escaped_panic: Option<String> = None;
    let worker_outputs: Vec<(Vec<GroupOutcome>, WorkerStat, Option<bytecode::ProfBuf>)> =
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut out = Vec::new();
                        let mut wstat = WorkerStat::default();
                        let mut budget = LocalBudget::new(launch_ref, BUDGET_CHUNK);
                        let mut scratch = AnyScratch::new(program.is_some());
                        let mut prof = if profile {
                            program.map(bytecode::ProfBuf::for_program)
                        } else {
                            None
                        };
                        while !stop.load(Ordering::Relaxed) {
                            let gl = next.fetch_add(1, Ordering::Relaxed);
                            if gl >= n_groups {
                                break;
                            }
                            let mut buf = GroupBuf {
                                wants_access,
                                events: Vec::new(),
                            };
                            let t0 = observe.then(Instant::now);
                            let r = run_group_any(
                                launch_ref,
                                program,
                                delinearize(gl, ng),
                                gl as u32,
                                &mut buf,
                                &mut budget,
                                &mut scratch,
                                prof.as_mut(),
                            );
                            if let Some(t0) = t0 {
                                wstat.note(t0.elapsed());
                            }
                            let failed = r.is_err();
                            out.push((gl, r.map(|gs| (gs, buf))));
                            if failed {
                                stop.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                        (out, wstat, prof)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(out) => out,
                    // Per-group isolation catches every panic inside the
                    // worker loop, so this arm is unreachable short of a bug
                    // in the loop itself; degrade to an error regardless.
                    Err(p) => {
                        escaped_panic = Some(panic_message(p.as_ref()));
                        (Vec::new(), WorkerStat::default(), None)
                    }
                })
                .collect()
        });
    if let Some(message) = escaped_panic {
        return Err(ExecError::WorkerPanic {
            group: u32::MAX,
            message,
        });
    }

    let mut slots: Vec<Option<Result<(GroupStats, GroupBuf), ExecError>>> = Vec::new();
    slots.resize_with(n_groups, || None);
    let mut worker_stats = Vec::with_capacity(worker_outputs.len());
    // Merging the per-worker counters is element-wise addition, so the
    // launch-wide profile is independent of which worker ran which group.
    let mut merged_prof = if profile {
        program.map(bytecode::ProfBuf::for_program)
    } else {
        None
    };
    for (outcomes, wstat, wprof) in worker_outputs {
        worker_stats.push(wstat);
        if let (Some(m), Some(w)) = (merged_prof.as_mut(), wprof.as_ref()) {
            m.merge(w);
        }
        for (gl, r) in outcomes {
            slots[gl] = Some(r);
        }
    }
    if let Some(out) = workers_out {
        *out = worker_stats;
    }

    // Replay traces in group-linear order; stop at the first failing group.
    let mut stats = LaunchStats::default();
    for (gl, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(Ok((gs, buf))) => {
                stats.instructions += gs.instructions;
                stats.barriers += gs.barriers;
                stats.work_items += gs.items;
                stats.work_groups += 1;
                buf.replay(gl as u32, sink);
            }
            Some(Err(e)) => return Err(e),
            None => {
                return Err(ExecError::Internal(
                    "work-group skipped without a preceding error".into(),
                ))
            }
        }
    }
    if let Some(out) = profile_out {
        if let (Some(buf), Some(p)) = (&merged_prof, program) {
            *out = Some(p.aggregate(buf));
        }
    }
    Ok(stats)
}

fn validate_args(ctx: &Context, kernel: &Function, args: &[ArgValue]) -> Result<(), ExecError> {
    if args.len() != kernel.params().len() {
        return Err(ExecError::ArgCount {
            expected: kernel.params().len(),
            got: args.len(),
        });
    }
    for (p, a) in kernel.params().iter().zip(args) {
        let ok = match (p.ty, a) {
            (Type::Ptr { elem, space, .. }, ArgValue::Buffer(b)) => {
                if space == AddressSpace::Local || space == AddressSpace::Private {
                    return Err(ExecError::Unsupported(
                        "local/private pointer kernel arguments".into(),
                    ));
                }
                ctx.scalar_of(*b) == elem
            }
            (Type::Scalar(Scalar::I32), ArgValue::I32(_)) => true,
            (Type::Scalar(Scalar::I64), ArgValue::I64(_)) => true,
            (Type::Scalar(Scalar::F32), ArgValue::F32(_)) => true,
            _ => false,
        };
        if !ok {
            return Err(ExecError::TypeMismatch(format!(
                "argument `{}` expects {}, got {a:?}",
                p.name, p.ty
            )));
        }
    }
    Ok(())
}

/// Resolve every kernel argument to its register seed, once per launch.
fn param_seeds(f: &Function, args: &[ArgValue]) -> Result<Vec<(usize, Val)>, ExecError> {
    let mut seeds = Vec::with_capacity(args.len());
    for (i, _) in f.params().iter().enumerate() {
        let pv = f.param_value(i);
        let v = match (f.ty(pv), args[i]) {
            (Type::Ptr { space, .. }, ArgValue::Buffer(b)) => Val::Ptr(PtrVal {
                space,
                buf: b.0,
                offset: 0,
            }),
            (_, ArgValue::I32(x)) => Val::I32(x),
            (_, ArgValue::I64(x)) => Val::I64(x),
            (_, ArgValue::F32(x)) => Val::F32(x),
            _ => return Err(ExecError::TypeMismatch("param seed".into())),
        };
        seeds.push((pv.index(), v));
    }
    Ok(seeds)
}

/// The mutable state `run_item`/`eval_inst` need for one group: the shared
/// launch context plus this group's local memory and id. The bytecode
/// backend builds the same struct so the shared memory/trace helpers
/// ([`mem_load`], [`mem_store`], [`emit_at`]) serve both engines.
pub(crate) struct GroupRun<'a, 'l> {
    pub(crate) launch: &'a LaunchCtx<'l>,
    pub(crate) local_mem: &'a mut Vec<BufferData>,
    pub(crate) group_linear: u32,
    /// Fault injection: perturb this group's global stores.
    pub(crate) corrupt_stores: bool,
    /// Fault injection: offset this group's global loads by this many
    /// elements (`0` = none).
    pub(crate) load_offset: i64,
}

/// Best-effort stringification of a caught panic payload.
fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Per-worker scratch for whichever engine the launch selected. A worker
/// keeps one variant for its whole lifetime, so register files and local
/// memory are still reused across the groups it executes.
enum AnyScratch {
    Interp(Scratch),
    Bytecode(bytecode::BcScratch),
}

impl AnyScratch {
    fn new(bytecode: bool) -> AnyScratch {
        if bytecode {
            AnyScratch::Bytecode(bytecode::BcScratch::default())
        } else {
            AnyScratch::Interp(Scratch::default())
        }
    }
}

/// Run one group on the backend selected at launch, with panic isolation:
/// a panic anywhere inside the group — either engine, a trace sink, or an
/// injected fault — becomes [`ExecError::WorkerPanic`] instead of
/// unwinding through the launch machinery (and, on a worker thread,
/// aborting the process via `std::thread::scope`).
#[allow(clippy::too_many_arguments)]
fn run_group_any(
    launch: &LaunchCtx<'_>,
    program: Option<&bytecode::LaunchProgram>,
    wg: [u64; 3],
    group_linear: u32,
    sink: &mut dyn TraceSink,
    budget: &mut LocalBudget<'_>,
    scratch: &mut AnyScratch,
    prof: Option<&mut bytecode::ProfBuf>,
) -> Result<GroupStats, ExecError> {
    match catch_unwind(AssertUnwindSafe(|| match (program, &mut *scratch) {
        (None, AnyScratch::Interp(s)) => run_group(launch, wg, group_linear, sink, budget, s),
        (Some(p), AnyScratch::Bytecode(s)) => {
            bytecode::run_group(p, launch, wg, group_linear, sink, budget, s, prof)
        }
        _ => Err(ExecError::Internal(
            "worker scratch does not match the launch backend".into(),
        )),
    })) {
        Ok(r) => r,
        Err(p) => Err(ExecError::WorkerPanic {
            group: group_linear,
            message: panic_message(p.as_ref()),
        }),
    }
}

fn run_group(
    launch: &LaunchCtx<'_>,
    wg: [u64; 3],
    group_linear: u32,
    sink: &mut dyn TraceSink,
    budget: &mut LocalBudget<'_>,
    scratch: &mut Scratch,
) -> Result<GroupStats, ExecError> {
    let f = launch.f;
    let nd = launch.nd;

    launch.pool.check_deadline()?;
    #[cfg(feature = "fault-injection")]
    let corrupt_group = match &launch.fault {
        Some(i) => crate::fault::group_hook(i, group_linear)?,
        None => false,
    };
    #[cfg(not(feature = "fault-injection"))]
    let corrupt_group = false;
    #[cfg(feature = "fault-injection")]
    let load_offset = match &launch.fault {
        Some(i) => crate::fault::load_offset(i, group_linear).unwrap_or(0),
        None => 0,
    };
    #[cfg(not(feature = "fault-injection"))]
    let load_offset = 0;

    // (Re)initialise this group's local memory from the launch template.
    if scratch.local_mem.len() != launch.local_templ.len() {
        scratch.local_mem = launch
            .local_templ
            .iter()
            .map(|&(elem, elems)| match elem {
                Scalar::F32 => BufferData::F32(vec![0.0; elems]),
                Scalar::I32 | Scalar::Bool => BufferData::I32(vec![0; elems]),
                Scalar::I64 => BufferData::I64(vec![0; elems]),
            })
            .collect();
    } else {
        for data in &mut scratch.local_mem {
            match data {
                BufferData::F32(v) => v.fill(0.0),
                BufferData::I32(v) => v.fill(0),
                BufferData::I64(v) => v.fill(0),
            }
        }
    }

    // (Re)initialise the work-item states. Register files are allocated on
    // the worker's first group and merely cleared afterwards.
    let (lsx, lsy, lsz) = (nd.local[0], nd.local[1], nd.local[2]);
    let n_items = (lsx * lsy * lsz) as usize;
    if scratch.items.len() != n_items {
        scratch.items = (0..n_items)
            .map(|_| WorkItem {
                regs: vec![None; f.num_values()],
                block: f.entry,
                inst_idx: 0,
                prev_block: None,
                done: false,
                insts: 0,
                lid: [0, 0, 0],
                wg,
            })
            .collect();
    }
    let mut i = 0;
    for lz in 0..lsz {
        for ly in 0..lsy {
            for lx in 0..lsx {
                let wi = &mut scratch.items[i];
                wi.regs.fill(None);
                for &(idx, v) in &launch.params {
                    wi.regs[idx] = Some(v);
                }
                wi.block = f.entry;
                wi.inst_idx = 0;
                wi.prev_block = None;
                wi.done = false;
                wi.insts = 0;
                wi.lid = [lx, ly, lz];
                wi.wg = wg;
                i += 1;
            }
        }
    }

    let Scratch { items, local_mem } = scratch;
    let mut run = GroupRun {
        launch,
        local_mem,
        group_linear,
        corrupt_stores: launch.corrupt_launch || corrupt_group,
        load_offset,
    };
    let mut stats = GroupStats {
        items: n_items as u64,
        ..GroupStats::default()
    };

    // Barrier-synchronised rounds.
    loop {
        let mut barrier_at: Option<ValueId> = None;
        let mut all_done = true;
        for (i, wi) in items.iter_mut().enumerate() {
            if wi.done {
                continue;
            }
            let stop = run_item(&mut run, wi, sink, budget)?;
            match stop {
                Stop::Done => {
                    wi.done = true;
                    let local_linear = i as u32;
                    sink.workitem_done(group_linear, local_linear, wi.insts);
                    stats.instructions += wi.insts;
                    wi.insts = 0;
                }
                Stop::Barrier(at) => {
                    all_done = false;
                    match barrier_at {
                        None => barrier_at = Some(at),
                        Some(prev) if prev == at => {}
                        Some(_) => return Err(ExecError::BarrierDivergence),
                    }
                }
            }
        }
        if all_done {
            break;
        }
        if barrier_at.is_some() && items.iter().any(|w| w.done) {
            // Some items returned while others wait at a barrier.
            return Err(ExecError::BarrierDivergence);
        }
        stats.barriers += 1;
        sink.barrier(group_linear, n_items as u32);
    }
    Ok(stats)
}

fn run_item(
    r: &mut GroupRun<'_, '_>,
    wi: &mut WorkItem,
    sink: &mut dyn TraceSink,
    budget: &mut LocalBudget<'_>,
) -> Result<Stop, ExecError> {
    let f = r.launch.f;
    loop {
        // Batch-evaluate phis at a block head (parallel-copy semantics).
        if wi.inst_idx == 0 {
            let insts = &f.block(wi.block).insts;
            let mut updates: Vec<(ValueId, Val)> = Vec::new();
            let mut n_phis = 0;
            for &iv in insts {
                let Some(Inst::Phi { incoming }) = f.inst(iv) else {
                    break;
                };
                let prev = wi.prev_block.ok_or_else(|| {
                    ExecError::Internal("phi executed with no predecessor".into())
                })?;
                let (_, v) = incoming
                    .iter()
                    .find(|(b, _)| *b == prev)
                    .ok_or_else(|| ExecError::Internal("phi missing incoming edge".into()))?;
                updates.push((iv, value_of(f, wi, *v)?));
                n_phis += 1;
            }
            for (iv, v) in updates {
                wi.regs[iv.index()] = Some(v);
            }
            wi.inst_idx = n_phis;
            wi.insts += n_phis as u64;
        }

        let insts = &f.block(wi.block).insts;
        if wi.inst_idx >= insts.len() {
            return Err(ExecError::Internal("fell off the end of a block".into()));
        }
        let iv = insts[wi.inst_idx];
        let inst = f
            .inst(iv)
            .ok_or_else(|| ExecError::Internal("block entry is not an instruction".into()))?;
        wi.insts += 1;
        budget.spend()?;

        match inst {
            Inst::Barrier { .. } => {
                wi.inst_idx += 1;
                return Ok(Stop::Barrier(iv));
            }
            Inst::Ret => return Ok(Stop::Done),
            Inst::Br { target } => {
                wi.prev_block = Some(wi.block);
                wi.block = *target;
                wi.inst_idx = 0;
                continue;
            }
            Inst::CondBr {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = value_of(f, wi, *cond)?
                    .as_bool()
                    .ok_or_else(|| ExecError::TypeMismatch("condbr on non-bool".into()))?;
                wi.prev_block = Some(wi.block);
                wi.block = if c { *then_blk } else { *else_blk };
                wi.inst_idx = 0;
                continue;
            }
            _ => {}
        }

        let result = eval_inst(r, wi, iv, inst, sink)?;
        if let Some(v) = result {
            wi.regs[iv.index()] = Some(v);
        }
        wi.inst_idx += 1;
    }
}

fn value_of(f: &Function, wi: &WorkItem, v: ValueId) -> Result<Val, ExecError> {
    match &f.value(v).def {
        ValueDef::Const(c) => Ok(match c {
            ConstVal::Bool(b) => Val::Bool(*b),
            ConstVal::I32(x) => Val::I32(*x),
            ConstVal::I64(x) => Val::I64(*x),
            ConstVal::F32Bits(b) => Val::F32(f32::from_bits(*b)),
        }),
        ValueDef::Param(_) => {
            wi.regs[v.index()].ok_or_else(|| ExecError::Internal("parameter not seeded".into()))
        }
        ValueDef::LocalBuf(id) => Ok(Val::Ptr(PtrVal {
            space: AddressSpace::Local,
            buf: id.0,
            offset: 0,
        })),
        ValueDef::Inst(_) => wi.regs[v.index()]
            .ok_or_else(|| ExecError::Internal(format!("use of unevaluated value v{}", v.0))),
    }
}

#[allow(clippy::too_many_lines)]
fn eval_inst(
    r: &mut GroupRun<'_, '_>,
    wi: &WorkItem,
    iv: ValueId,
    inst: &Inst,
    sink: &mut dyn TraceSink,
) -> Result<Option<Val>, ExecError> {
    let f = r.launch.f;
    let val = |v: ValueId| value_of(f, wi, v);
    match inst {
        Inst::Bin { op, lhs, rhs } => {
            let l = val(*lhs)?;
            let rr = val(*rhs)?;
            Ok(Some(eval_bin(*op, l, rr)?))
        }
        Inst::Cmp { pred, lhs, rhs } => {
            let l = val(*lhs)?;
            let rr = val(*rhs)?;
            Ok(Some(eval_cmp(*pred, l, rr)?))
        }
        Inst::Select {
            cond,
            then_val,
            else_val,
        } => {
            let c = val(*cond)?
                .as_bool()
                .ok_or_else(|| ExecError::TypeMismatch("select on non-bool".into()))?;
            Ok(Some(if c { val(*then_val)? } else { val(*else_val)? }))
        }
        Inst::Cast { kind, value, to } => {
            let v = val(*value)?;
            Ok(Some(eval_cast(*kind, v, *to)?))
        }
        Inst::Call { builtin, args } => {
            let a: Vec<Val> = args.iter().map(|&x| val(x)).collect::<Result<_, _>>()?;
            Ok(Some(eval_call(
                &r.launch.nd,
                &wi.lid,
                &wi.wg,
                *builtin,
                &a,
            )?))
        }
        Inst::Gep { base, index } => {
            let p = val(*base)?
                .as_ptr()
                .ok_or_else(|| ExecError::TypeMismatch("gep base not a pointer".into()))?;
            let idx = val(*index)?
                .as_int()
                .ok_or_else(|| ExecError::TypeMismatch("gep index not an integer".into()))?;
            let elem = f
                .ty(*base)
                .pointee()
                .ok_or_else(|| ExecError::TypeMismatch("gep through non-pointer type".into()))?;
            Ok(Some(Val::Ptr(PtrVal {
                space: p.space,
                buf: p.buf,
                offset: p.offset + idx * elem.size_bytes() as i64,
            })))
        }
        Inst::Load { ptr } => {
            let p = val(*ptr)?
                .as_ptr()
                .ok_or_else(|| ExecError::TypeMismatch("load through non-pointer".into()))?;
            let ty = f.ty(iv);
            let lanes = ty.lanes();
            let v = if r.load_offset != 0 && p.space == AddressSpace::Global {
                let pp = PtrVal {
                    offset: p.offset + r.load_offset * ty.size_bytes() as i64,
                    ..p
                };
                mem_load(r, pp, lanes).or_else(|_| mem_load(r, p, lanes))?
            } else {
                mem_load(r, p, lanes)?
            };
            emit(sink, r, wi, TraceOp::Load, p, ty.size_bytes() as u32, iv);
            Ok(Some(v))
        }
        Inst::Store { ptr, value } => {
            let p = val(*ptr)?
                .as_ptr()
                .ok_or_else(|| ExecError::TypeMismatch("store through non-pointer".into()))?;
            let mut v = val(*value)?;
            if r.corrupt_stores && p.space == AddressSpace::Global {
                v = corrupt_val(v);
            }
            let bytes = f.ty(*value).size_bytes() as u32;
            mem_store(r, p, v)?;
            emit(sink, r, wi, TraceOp::Store, p, bytes, iv);
            Ok(None)
        }
        Inst::ExtractLane { vector, lane } => {
            let v = val(*vector)?;
            let i = val(*lane)?.as_int().unwrap_or(0) as usize;
            v.lane(i)
                .map(Some)
                .ok_or_else(|| ExecError::TypeMismatch("extractlane out of range".into()))
        }
        Inst::InsertLane {
            vector,
            lane,
            value,
        } => {
            let v = val(*vector)?;
            let i = val(*lane)?.as_int().unwrap_or(0) as usize;
            let x = val(*value)?;
            v.with_lane(i, x)
                .map(Some)
                .ok_or_else(|| ExecError::TypeMismatch("insertlane mismatch".into()))
        }
        Inst::BuildVector { lanes } => {
            if lanes.len() > 4 {
                return Err(ExecError::Unsupported("vectors wider than 4 lanes".into()));
            }
            let vals: Vec<Val> = lanes.iter().map(|&x| val(x)).collect::<Result<_, _>>()?;
            let n = vals.len() as u8;
            match vals[0] {
                Val::F32(_) => {
                    let mut a = [0.0f32; 4];
                    for (i, v) in vals.iter().enumerate() {
                        a[i] = v
                            .as_f32()
                            .ok_or_else(|| ExecError::TypeMismatch("mixed vector lanes".into()))?;
                    }
                    Ok(Some(Val::VF32(a, n)))
                }
                Val::I32(_) => {
                    let mut a = [0i32; 4];
                    for (i, v) in vals.iter().enumerate() {
                        a[i] = v
                            .as_i32()
                            .ok_or_else(|| ExecError::TypeMismatch("mixed vector lanes".into()))?;
                    }
                    Ok(Some(Val::VI32(a, n)))
                }
                _ => Err(ExecError::Unsupported("vector of this kind".into())),
            }
        }
        Inst::Phi { .. } => Err(ExecError::Internal("phi outside block head".into())),
        Inst::Barrier { .. } | Inst::Br { .. } | Inst::CondBr { .. } | Inst::Ret => {
            Err(ExecError::Internal("control handled by run_item".into()))
        }
    }
}

/// Store perturbation for [`crate::fault::FaultKind::CorruptStores`]:
/// deterministic, value-only (addresses and trace shape are unchanged, so
/// cycle measurements stay comparable while outputs diverge).
pub(crate) fn corrupt_val(v: Val) -> Val {
    match v {
        Val::F32(x) => Val::F32(x + 1.0),
        Val::I32(x) => Val::I32(x ^ 1),
        Val::I64(x) => Val::I64(x ^ 1),
        Val::Bool(b) => Val::Bool(!b),
        Val::VF32(mut a, n) => {
            for x in &mut a {
                *x += 1.0;
            }
            Val::VF32(a, n)
        }
        Val::VI32(mut a, n) => {
            for x in &mut a {
                *x ^= 1;
            }
            Val::VI32(a, n)
        }
        Val::VBool(mut a, n) => {
            for x in &mut a {
                *x = !*x;
            }
            Val::VBool(a, n)
        }
        Val::Ptr(_) => v,
    }
}

pub(crate) fn mem_load(r: &GroupRun<'_, '_>, p: PtrVal, lanes: u8) -> Result<Val, ExecError> {
    match p.space {
        AddressSpace::Global | AddressSpace::Constant => r.launch.mem.load(p.buf, p.offset, lanes),
        AddressSpace::Local => load_from(&r.local_mem[p.buf as usize], p.offset, lanes),
        AddressSpace::Private => Err(ExecError::Unsupported("private memory pointers".into())),
    }
}

pub(crate) fn mem_store(r: &mut GroupRun<'_, '_>, p: PtrVal, v: Val) -> Result<(), ExecError> {
    match p.space {
        AddressSpace::Global => r.launch.mem.store(p.buf, p.offset, v),
        AddressSpace::Constant => Err(ExecError::TypeMismatch("store to __constant".into())),
        AddressSpace::Local => store_to(&mut r.local_mem[p.buf as usize], p.offset, v),
        AddressSpace::Private => Err(ExecError::Unsupported("private memory pointers".into())),
    }
}

fn load_from(data: &BufferData, offset: i64, lanes: u8) -> Result<Val, ExecError> {
    let esz = data.scalar().size_bytes() as i64;
    if offset < 0 || offset % esz != 0 {
        return Err(ExecError::BadAddress(offset));
    }
    let idx = (offset / esz) as usize;
    let n = lanes as usize;
    if idx + n > data.len() {
        return Err(ExecError::OutOfBounds {
            buffer: u32::MAX,
            index: idx + n - 1,
            len: data.len(),
        });
    }
    Ok(match data {
        BufferData::F32(v) => {
            if n == 1 {
                Val::F32(v[idx])
            } else {
                let mut a = [0.0f32; 4];
                a[..n].copy_from_slice(&v[idx..idx + n]);
                Val::VF32(a, lanes)
            }
        }
        BufferData::I32(v) => {
            if n == 1 {
                Val::I32(v[idx])
            } else {
                let mut a = [0i32; 4];
                a[..n].copy_from_slice(&v[idx..idx + n]);
                Val::VI32(a, lanes)
            }
        }
        BufferData::I64(v) => Val::I64(v[idx]),
    })
}

fn store_to(data: &mut BufferData, offset: i64, v: Val) -> Result<(), ExecError> {
    let esz = data.scalar().size_bytes() as i64;
    if offset < 0 || offset % esz != 0 {
        return Err(ExecError::BadAddress(offset));
    }
    let idx = (offset / esz) as usize;
    let n = v.lanes() as usize;
    if idx + n > data.len() {
        return Err(ExecError::OutOfBounds {
            buffer: u32::MAX,
            index: idx + n - 1,
            len: data.len(),
        });
    }
    match (data, v) {
        (BufferData::F32(d), Val::F32(x)) => d[idx] = x,
        (BufferData::F32(d), Val::VF32(a, l)) => {
            d[idx..idx + l as usize].copy_from_slice(&a[..l as usize])
        }
        (BufferData::I32(d), Val::I32(x)) => d[idx] = x,
        (BufferData::I32(d), Val::Bool(x)) => d[idx] = x as i32,
        (BufferData::I32(d), Val::VI32(a, l)) => {
            d[idx..idx + l as usize].copy_from_slice(&a[..l as usize])
        }
        (BufferData::I64(d), Val::I64(x)) => d[idx] = x,
        _ => return Err(ExecError::TypeMismatch("local store kind mismatch".into())),
    }
    Ok(())
}

fn emit(
    sink: &mut dyn TraceSink,
    r: &GroupRun<'_, '_>,
    wi: &WorkItem,
    op: TraceOp,
    p: PtrVal,
    bytes: u32,
    pc: ValueId,
) {
    let nd = &r.launch.nd;
    let local_linear =
        (wi.lid[2] * nd.local[1] * nd.local[0] + wi.lid[1] * nd.local[0] + wi.lid[0]) as u32;
    emit_at(sink, r, local_linear, op, p, bytes, pc.0);
}

/// The access-event emitter behind [`emit`], shared with the bytecode
/// backend (which precomputes each item's linear local id).
pub(crate) fn emit_at(
    sink: &mut dyn TraceSink,
    r: &GroupRun<'_, '_>,
    local_linear: u32,
    op: TraceOp,
    p: PtrVal,
    bytes: u32,
    pc: u32,
) {
    let addr = match p.space {
        AddressSpace::Local => r.launch.local_bases[p.buf as usize].wrapping_add(p.offset as u64),
        _ => {
            // Device-wide address: buffer base + offset.
            r.launch.mem.base(p.buf).wrapping_add(p.offset as u64)
        }
    };
    sink.access(&AccessEvent {
        op,
        space: p.space,
        addr,
        bytes,
        group: r.group_linear,
        local: local_linear,
        pc,
    });
}

pub(crate) fn eval_bin(op: BinOp, l: Val, r: Val) -> Result<Val, ExecError> {
    // Vector ops: elementwise over lanes.
    if l.lanes() > 1 || r.lanes() > 1 {
        let n = l.lanes().max(r.lanes());
        let lane_err = || ExecError::Internal("vector lane out of range".into());
        let mut out: Option<Val> = None;
        for i in 0..n as usize {
            let a = l
                .lane(if l.lanes() > 1 { i } else { 0 })
                .ok_or_else(lane_err)?;
            let b = r
                .lane(if r.lanes() > 1 { i } else { 0 })
                .ok_or_else(lane_err)?;
            let x = eval_bin(op, a, b)?;
            out = Some(match out {
                None => match x {
                    Val::F32(v) => {
                        let mut a = [0.0f32; 4];
                        a[0] = v;
                        Val::VF32(a, n)
                    }
                    Val::I32(v) => {
                        let mut a = [0i32; 4];
                        a[0] = v;
                        Val::VI32(a, n)
                    }
                    _ => return Err(ExecError::Unsupported("vector bin kind".into())),
                },
                Some(acc) => acc
                    .with_lane(i, x)
                    .ok_or_else(|| ExecError::TypeMismatch("vector lane mismatch".into()))?,
            });
        }
        // `n >= 2` here (some operand is a vector), so the loop ran and
        // `out` was seeded on its first iteration.
        return out.ok_or_else(|| ExecError::Internal("empty vector op".into()));
    }

    use BinOp::*;
    match op {
        FAdd | FSub | FMul | FDiv | FMin | FMax => {
            let (a, b) = match (l.as_f32(), r.as_f32()) {
                (Some(a), Some(b)) => (a, b),
                _ => return Err(ExecError::TypeMismatch("float op on non-floats".into())),
            };
            Ok(Val::F32(match op {
                FAdd => a + b,
                FSub => a - b,
                FMul => a * b,
                FDiv => a / b,
                FMin => a.min(b),
                FMax => a.max(b),
                _ => unreachable!(),
            }))
        }
        _ => {
            // Integer ops preserve the width of the left operand.
            let wide = matches!(l, Val::I64(_));
            let (a, b) = match (l.as_int(), r.as_int()) {
                (Some(a), Some(b)) => (a, b),
                _ => return Err(ExecError::TypeMismatch("int op on non-ints".into())),
            };
            if matches!(op, SDiv | UDiv | SRem | URem) && b == 0 {
                return Err(ExecError::DivisionByZero);
            }
            // Bool And/Or/Xor keep bool.
            if matches!(l, Val::Bool(_)) && matches!(op, And | Or | Xor) {
                let v = match op {
                    And => a & b,
                    Or => a | b,
                    Xor => a ^ b,
                    _ => unreachable!(),
                };
                return Ok(Val::Bool(v != 0));
            }
            let v: i64 = match op {
                Add => a.wrapping_add(b),
                Sub => a.wrapping_sub(b),
                Mul => a.wrapping_mul(b),
                SDiv => a.wrapping_div(b),
                UDiv => {
                    if wide {
                        ((a as u64) / (b as u64)) as i64
                    } else {
                        ((a as u32) / (b as u32)) as i64
                    }
                }
                SRem => a.wrapping_rem(b),
                URem => {
                    if wide {
                        ((a as u64) % (b as u64)) as i64
                    } else {
                        ((a as u32) % (b as u32)) as i64
                    }
                }
                Shl => a.wrapping_shl(b as u32),
                LShr => {
                    if wide {
                        ((a as u64) >> (b as u32 & 63)) as i64
                    } else {
                        (((a as u32) >> (b as u32 & 31)) as i32) as i64
                    }
                }
                AShr => a.wrapping_shr(b as u32),
                And => a & b,
                Or => a | b,
                Xor => a ^ b,
                _ => unreachable!(),
            };
            Ok(if wide {
                Val::I64(v)
            } else {
                Val::I32(v as i32)
            })
        }
    }
}

pub(crate) fn eval_cmp(pred: CmpPred, l: Val, r: Val) -> Result<Val, ExecError> {
    use CmpPred::*;
    if let (Some(a), Some(b)) = (l.as_f32(), r.as_f32()) {
        let v = match pred {
            FEq => a == b,
            FNe => a != b,
            FLt => a < b,
            FLe => a <= b,
            FGt => a > b,
            FGe => a >= b,
            _ => return Err(ExecError::TypeMismatch("int predicate on floats".into())),
        };
        return Ok(Val::Bool(v));
    }
    let (a, b) = match (l.as_int(), r.as_int()) {
        (Some(a), Some(b)) => (a, b),
        _ => return Err(ExecError::TypeMismatch("cmp kind mismatch".into())),
    };
    // Unsigned comparisons act on the operand width.
    let wide = matches!(l, Val::I64(_));
    let (ua, ub) = if wide {
        (a as u64, b as u64)
    } else {
        (a as u32 as u64, b as u32 as u64)
    };
    let v = match pred {
        Eq => a == b,
        Ne => a != b,
        Slt => a < b,
        Sle => a <= b,
        Sgt => a > b,
        Sge => a >= b,
        Ult => ua < ub,
        Ule => ua <= ub,
        Ugt => ua > ub,
        Uge => ua >= ub,
        _ => return Err(ExecError::TypeMismatch("float predicate on ints".into())),
    };
    Ok(Val::Bool(v))
}

pub(crate) fn eval_cast(kind: CastKind, v: Val, to: Type) -> Result<Val, ExecError> {
    use CastKind::*;
    let t = match to {
        Type::Scalar(s) => s,
        _ => return Err(ExecError::Unsupported("vector casts".into())),
    };
    Ok(match (kind, v, t) {
        (SExt, Val::I32(x), Scalar::I64) => Val::I64(x as i64),
        (SExt, Val::Bool(x), Scalar::I32) => Val::I32(-(x as i32)),
        (ZExt, Val::I32(x), Scalar::I64) => Val::I64(x as u32 as i64),
        (ZExt, Val::Bool(x), Scalar::I32) => Val::I32(x as i32),
        (ZExt, Val::Bool(x), Scalar::I64) => Val::I64(x as i64),
        (Trunc, Val::I64(x), Scalar::I32) => Val::I32(x as i32),
        (Trunc, Val::I32(x), Scalar::Bool) => Val::Bool(x & 1 != 0),
        (SiToFp, Val::I32(x), Scalar::F32) => Val::F32(x as f32),
        (SiToFp, Val::I64(x), Scalar::F32) => Val::F32(x as f32),
        (FpToSi, Val::F32(x), Scalar::I32) => Val::I32(x as i32),
        (FpToSi, Val::F32(x), Scalar::I64) => Val::I64(x as i64),
        (Bitcast, Val::I32(x), Scalar::F32) => Val::F32(f32::from_bits(x as u32)),
        (Bitcast, Val::F32(x), Scalar::I32) => Val::I32(x.to_bits() as i32),
        (k, v, t) => return Err(ExecError::Unsupported(format!("cast {k:?} {v:?} -> {t:?}"))),
    })
}

/// The value of one work-item geometry query, shared by the interpreter's
/// [`eval_call`] and the bytecode backend's pre-resolved query op. `b` must
/// be a work-item query builtin and `d` a validated dimension (`0..3`).
pub(crate) fn workitem_query(
    nd: &NdRange,
    lid: &[u64; 3],
    wg: &[u64; 3],
    b: Builtin,
    d: usize,
) -> u64 {
    use Builtin::*;
    match b {
        LocalId => lid[d],
        GroupId => wg[d],
        GlobalId => wg[d] * nd.local[d] + lid[d],
        LocalSize => nd.local[d],
        GlobalSize => nd.global[d],
        NumGroups => nd.global[d] / nd.local[d],
        _ => unreachable!(),
    }
}

pub(crate) fn eval_call(
    nd: &NdRange,
    lid: &[u64; 3],
    wg: &[u64; 3],
    b: Builtin,
    args: &[Val],
) -> Result<Val, ExecError> {
    use Builtin::*;
    if b.is_workitem_query() {
        let d = args[0]
            .as_int()
            .ok_or_else(|| ExecError::TypeMismatch("query dim not integer".into()))?;
        if !(0..3).contains(&d) {
            return Err(ExecError::TypeMismatch(format!(
                "query dim {d} out of range"
            )));
        }
        let d = d as usize;
        let v = workitem_query(nd, lid, wg, b, d);
        return Ok(Val::I64(v as i64));
    }
    let f1 = |x: Val| {
        x.as_f32()
            .ok_or_else(|| ExecError::TypeMismatch("math builtin on non-float".into()))
    };
    // Vector math: elementwise.
    if args[0].lanes() > 1 && matches!(b, Sqrt | Rsqrt | Fabs | Exp | Log | Floor | Mad) {
        let n = args[0].lanes();
        let mut out = args[0];
        for i in 0..n as usize {
            let la: Vec<Val> = args
                .iter()
                .map(|a| {
                    a.lane(i)
                        .ok_or_else(|| ExecError::TypeMismatch("vector math lanes".into()))
                })
                .collect::<Result<_, _>>()?;
            let x = eval_call(nd, lid, wg, b, &la)?;
            out = out
                .with_lane(i, x)
                .ok_or_else(|| ExecError::TypeMismatch("vector math lanes".into()))?;
        }
        return Ok(out);
    }
    Ok(match b {
        Sqrt => Val::F32(f1(args[0])?.sqrt()),
        Rsqrt => Val::F32(1.0 / f1(args[0])?.sqrt()),
        Fabs => Val::F32(f1(args[0])?.abs()),
        Exp => Val::F32(f1(args[0])?.exp()),
        Log => Val::F32(f1(args[0])?.ln()),
        Floor => Val::F32(f1(args[0])?.floor()),
        Mad => Val::F32(f1(args[0])? * f1(args[1])? + f1(args[2])?),
        IMin | IMax => {
            let (a, bb) = (
                args[0]
                    .as_int()
                    .ok_or_else(|| ExecError::TypeMismatch("min on non-int".into()))?,
                args[1]
                    .as_int()
                    .ok_or_else(|| ExecError::TypeMismatch("min on non-int".into()))?,
            );
            let v = if b == IMin { a.min(bb) } else { a.max(bb) };
            match args[0] {
                Val::I64(_) => Val::I64(v),
                _ => Val::I32(v as i32),
            }
        }
        Clamp => {
            if let (Some(x), Some(lo), Some(hi)) =
                (args[0].as_f32(), args[1].as_f32(), args[2].as_f32())
            {
                Val::F32(x.clamp(lo, hi))
            } else {
                let x = args[0].as_int().unwrap_or(0);
                let lo = args[1].as_int().unwrap_or(0);
                let hi = args[2].as_int().unwrap_or(0);
                Val::I32(x.clamp(lo, hi) as i32)
            }
        }
        Dot => {
            let n = args[0].lanes() as usize;
            let lane_err = || ExecError::TypeMismatch("dot operand lanes".into());
            let mut acc = 0.0f32;
            for i in 0..n {
                acc += f1(args[0].lane(i).ok_or_else(lane_err)?)?
                    * f1(args[1].lane(i).ok_or_else(lane_err)?)?;
            }
            Val::F32(acc)
        }
        _ => return Err(ExecError::Unsupported(format!("builtin {}", b.name()))),
    })
}
