//! Memory-trace capture: the interpreter streams one event per memory
//! access into a [`TraceSink`]; the device simulator replays them against
//! its cache/SPM models. Streaming (rather than buffering) keeps memory use
//! flat for large launches.

use grover_ir::AddressSpace;

/// Kind of memory operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceOp {
    /// A memory read.
    Load,
    /// A memory write.
    Store,
}

/// One memory access.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AccessEvent {
    /// Load or store.
    pub op: TraceOp,
    /// OpenCL address space of the access.
    pub space: AddressSpace,
    /// Byte address. For global/constant buffers this is a device-wide
    /// address (buffer bases are laid out by the [`crate::Context`]); for
    /// `__local` accesses it is the offset inside the work-group's local
    /// region (the device model decides where that region physically lives).
    pub addr: u64,
    /// Access width in bytes.
    pub bytes: u32,
    /// Linearised work-group id.
    pub group: u32,
    /// Linearised local work-item id within the group.
    pub local: u32,
    /// The load/store instruction's value id — a stable "program counter"
    /// used by the GPU coalescing model to group accesses issued by the
    /// same instruction across the work-items of a warp.
    pub pc: u32,
}

/// Consumer of the execution trace.
pub trait TraceSink {
    /// Called for every memory access, in per-work-item program order.
    /// Work-items of a group are interleaved at barrier granularity (all
    /// accesses of item A between two barriers precede item B's — matching
    /// how CPU OpenCL runtimes serialise work-items between barriers).
    fn access(&mut self, ev: &AccessEvent);

    /// A work-group-wide barrier was executed by group `group`.
    fn barrier(&mut self, group: u32, items: u32) {
        let _ = (group, items);
    }

    /// A work-item finished, having executed `instructions` IR instructions.
    fn workitem_done(&mut self, group: u32, local: u32, instructions: u64) {
        let _ = (group, local, instructions);
    }

    /// A work-group finished.
    fn workgroup_done(&mut self, group: u32) {
        let _ = group;
    }

    /// Whether this sink actually consumes [`AccessEvent`]s. The parallel
    /// launch engine buffers each group's events so it can replay them in
    /// group order; a sink that ignores accesses (e.g. [`NullSink`]) returns
    /// `false` here and skips that buffering entirely.
    fn wants_events(&self) -> bool {
        true
    }
}

/// Discards everything (functional runs).
#[derive(Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn access(&mut self, _ev: &AccessEvent) {}

    fn wants_events(&self) -> bool {
        false
    }
}

/// Per-address-space load/store byte tallies.
#[derive(Default, Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceBytes {
    /// Bytes read from this space.
    pub loaded: u64,
    /// Bytes written to this space.
    pub stored: u64,
}

/// Counts accesses by space and op; cheap sanity-level statistics.
///
/// Every address space is counted — including `__private` and (the
/// statically-rejected, but still counted for totality) `__constant`
/// stores — so the per-space counters always reconcile with the
/// `bytes_loaded`/`bytes_stored` totals; see
/// [`CountingSink::loads_total`]/[`CountingSink::stores_total`].
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct CountingSink {
    /// `__global` loads.
    pub global_loads: u64,
    /// `__global` stores.
    pub global_stores: u64,
    /// `__local` loads.
    pub local_loads: u64,
    /// `__local` stores.
    pub local_stores: u64,
    /// `__constant` loads.
    pub constant_loads: u64,
    /// `__constant` stores (rejected by the interpreter, but a sink may
    /// be fed hand-built events; counted so totals reconcile).
    pub constant_stores: u64,
    /// `__private` loads.
    pub private_loads: u64,
    /// `__private` stores.
    pub private_stores: u64,
    /// Barrier rendezvous.
    pub barriers: u64,
    /// IR instructions executed.
    pub instructions: u64,
    /// Bytes read.
    pub bytes_loaded: u64,
    /// Bytes written.
    pub bytes_stored: u64,
    /// `__global` bytes moved.
    pub global_bytes: SpaceBytes,
    /// `__local` bytes moved.
    pub local_bytes: SpaceBytes,
    /// `__constant` bytes moved.
    pub constant_bytes: SpaceBytes,
    /// `__private` bytes moved.
    pub private_bytes: SpaceBytes,
}

impl CountingSink {
    /// Total loads across all address spaces (reconciles with
    /// `bytes_loaded`: both count every access exactly once).
    pub fn loads_total(&self) -> u64 {
        self.global_loads + self.local_loads + self.constant_loads + self.private_loads
    }

    /// Total stores across all address spaces.
    pub fn stores_total(&self) -> u64 {
        self.global_stores + self.local_stores + self.constant_stores + self.private_stores
    }

    /// The byte tallies of one address space.
    pub fn space_bytes(&self, space: AddressSpace) -> SpaceBytes {
        match space {
            AddressSpace::Global => self.global_bytes,
            AddressSpace::Local => self.local_bytes,
            AddressSpace::Constant => self.constant_bytes,
            AddressSpace::Private => self.private_bytes,
        }
    }
}

impl TraceSink for CountingSink {
    fn access(&mut self, ev: &AccessEvent) {
        let (count, bytes) = match ev.space {
            AddressSpace::Global => (
                [&mut self.global_loads, &mut self.global_stores],
                &mut self.global_bytes,
            ),
            AddressSpace::Local => (
                [&mut self.local_loads, &mut self.local_stores],
                &mut self.local_bytes,
            ),
            AddressSpace::Constant => (
                [&mut self.constant_loads, &mut self.constant_stores],
                &mut self.constant_bytes,
            ),
            AddressSpace::Private => (
                [&mut self.private_loads, &mut self.private_stores],
                &mut self.private_bytes,
            ),
        };
        match ev.op {
            TraceOp::Load => {
                *count[0] += 1;
                bytes.loaded += ev.bytes as u64;
                self.bytes_loaded += ev.bytes as u64;
            }
            TraceOp::Store => {
                *count[1] += 1;
                bytes.stored += ev.bytes as u64;
                self.bytes_stored += ev.bytes as u64;
            }
        }
    }

    fn barrier(&mut self, _group: u32, _items: u32) {
        self.barriers += 1;
    }

    fn workitem_done(&mut self, _group: u32, _local: u32, instructions: u64) {
        self.instructions += instructions;
    }
}

/// Buffers all events in memory (tests and small traces only).
///
/// Ordering contract (what tests may assert): events arrive in per-work-item
/// program order, with the work-items of a group interleaved at *barrier
/// granularity* — every access item A issues between two barriers precedes
/// every access item B issues in that same barrier interval. Completion
/// callbacks follow the same discipline: each `item_done` entry appears
/// after all of that item's accesses, and each `group_done` entry after all
/// of that group's `item_done` entries. Under `ExecPolicy::Parallel` the
/// engine replays buffered groups in group-linear order, so the recorded
/// sequence is bit-identical to a serial run.
#[derive(Default)]
pub struct VecSink {
    /// All access events, in emission order.
    pub events: Vec<AccessEvent>,
    /// `(group, items)` of each barrier rendezvous.
    pub barriers: Vec<(u32, u32)>,
    /// `(group, local, instructions)` of each completed work-item, in
    /// completion order.
    pub item_done: Vec<(u32, u32, u64)>,
    /// Linearised id of each completed work-group, in completion order.
    pub group_done: Vec<u32>,
}

impl TraceSink for VecSink {
    fn access(&mut self, ev: &AccessEvent) {
        self.events.push(*ev);
    }

    fn barrier(&mut self, group: u32, items: u32) {
        self.barriers.push((group, items));
    }

    fn workitem_done(&mut self, group: u32, local: u32, instructions: u64) {
        self.item_done.push((group, local, instructions));
    }

    fn workgroup_done(&mut self, group: u32) {
        self.group_done.push(group);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(space: AddressSpace, op: TraceOp, bytes: u32) -> AccessEvent {
        AccessEvent {
            op,
            space,
            addr: 0,
            bytes,
            group: 0,
            local: 0,
            pc: 0,
        }
    }

    #[test]
    fn counting_sink_tallies() {
        let mut s = CountingSink::default();
        s.access(&ev(AddressSpace::Global, TraceOp::Load, 4));
        s.access(&ev(AddressSpace::Global, TraceOp::Store, 4));
        s.access(&ev(AddressSpace::Local, TraceOp::Load, 16));
        s.barrier(0, 64);
        s.workitem_done(0, 0, 100);
        assert_eq!(s.global_loads, 1);
        assert_eq!(s.global_stores, 1);
        assert_eq!(s.local_loads, 1);
        assert_eq!(s.barriers, 1);
        assert_eq!(s.instructions, 100);
        assert_eq!(s.bytes_loaded, 20);
        assert_eq!(s.bytes_stored, 4);
    }

    #[test]
    fn counting_sink_counts_private_and_reconciles() {
        let mut s = CountingSink::default();
        s.access(&ev(AddressSpace::Private, TraceOp::Load, 8));
        s.access(&ev(AddressSpace::Private, TraceOp::Store, 8));
        s.access(&ev(AddressSpace::Constant, TraceOp::Load, 4));
        s.access(&ev(AddressSpace::Global, TraceOp::Store, 2));
        assert_eq!(s.private_loads, 1);
        assert_eq!(s.private_stores, 1);
        assert_eq!(s.loads_total(), 2);
        assert_eq!(s.stores_total(), 2);
        assert_eq!(s.bytes_loaded, 12);
        assert_eq!(s.bytes_stored, 10);
        assert_eq!(
            s.space_bytes(AddressSpace::Private),
            SpaceBytes {
                loaded: 8,
                stored: 8
            }
        );
        assert_eq!(
            s.global_bytes,
            SpaceBytes {
                loaded: 0,
                stored: 2
            }
        );
    }

    #[test]
    fn vec_sink_records_order() {
        let mut s = VecSink::default();
        s.access(&ev(AddressSpace::Global, TraceOp::Load, 4));
        s.access(&ev(AddressSpace::Local, TraceOp::Store, 8));
        s.workitem_done(0, 0, 7);
        s.workgroup_done(0);
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.events[0].op, TraceOp::Load);
        assert_eq!(s.events[1].bytes, 8);
        assert_eq!(s.item_done, vec![(0, 0, 7)]);
        assert_eq!(s.group_done, vec![0]);
    }
}
