//! Memory-trace capture: the interpreter streams one event per memory
//! access into a [`TraceSink`]; the device simulator replays them against
//! its cache/SPM models. Streaming (rather than buffering) keeps memory use
//! flat for large launches.

use grover_ir::AddressSpace;

/// Kind of memory operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceOp {
    /// A memory read.
    Load,
    /// A memory write.
    Store,
}

/// One memory access.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AccessEvent {
    /// Load or store.
    pub op: TraceOp,
    /// OpenCL address space of the access.
    pub space: AddressSpace,
    /// Byte address. For global/constant buffers this is a device-wide
    /// address (buffer bases are laid out by the [`crate::Context`]); for
    /// `__local` accesses it is the offset inside the work-group's local
    /// region (the device model decides where that region physically lives).
    pub addr: u64,
    /// Access width in bytes.
    pub bytes: u32,
    /// Linearised work-group id.
    pub group: u32,
    /// Linearised local work-item id within the group.
    pub local: u32,
    /// The load/store instruction's value id — a stable "program counter"
    /// used by the GPU coalescing model to group accesses issued by the
    /// same instruction across the work-items of a warp.
    pub pc: u32,
}

/// Consumer of the execution trace.
pub trait TraceSink {
    /// Called for every memory access, in per-work-item program order.
    /// Work-items of a group are interleaved at barrier granularity (all
    /// accesses of item A between two barriers precede item B's — matching
    /// how CPU OpenCL runtimes serialise work-items between barriers).
    fn access(&mut self, ev: &AccessEvent);

    /// A work-group-wide barrier was executed by group `group`.
    fn barrier(&mut self, group: u32, items: u32) {
        let _ = (group, items);
    }

    /// A work-item finished, having executed `instructions` IR instructions.
    fn workitem_done(&mut self, group: u32, local: u32, instructions: u64) {
        let _ = (group, local, instructions);
    }

    /// A work-group finished.
    fn workgroup_done(&mut self, group: u32) {
        let _ = group;
    }

    /// Whether this sink actually consumes [`AccessEvent`]s. The parallel
    /// launch engine buffers each group's events so it can replay them in
    /// group order; a sink that ignores accesses (e.g. [`NullSink`]) returns
    /// `false` here and skips that buffering entirely.
    fn wants_events(&self) -> bool {
        true
    }
}

/// Discards everything (functional runs).
#[derive(Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn access(&mut self, _ev: &AccessEvent) {}

    fn wants_events(&self) -> bool {
        false
    }
}

/// Counts accesses by space and op; cheap sanity-level statistics.
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct CountingSink {
    /// `__global` loads.
    pub global_loads: u64,
    /// `__global` stores.
    pub global_stores: u64,
    /// `__local` loads.
    pub local_loads: u64,
    /// `__local` stores.
    pub local_stores: u64,
    /// `__constant` loads.
    pub constant_loads: u64,
    /// Barrier rendezvous.
    pub barriers: u64,
    /// IR instructions executed.
    pub instructions: u64,
    /// Bytes read.
    pub bytes_loaded: u64,
    /// Bytes written.
    pub bytes_stored: u64,
}

impl TraceSink for CountingSink {
    fn access(&mut self, ev: &AccessEvent) {
        match (ev.space, ev.op) {
            (AddressSpace::Global, TraceOp::Load) => self.global_loads += 1,
            (AddressSpace::Global, TraceOp::Store) => self.global_stores += 1,
            (AddressSpace::Local, TraceOp::Load) => self.local_loads += 1,
            (AddressSpace::Local, TraceOp::Store) => self.local_stores += 1,
            (AddressSpace::Constant, TraceOp::Load) => self.constant_loads += 1,
            _ => {}
        }
        match ev.op {
            TraceOp::Load => self.bytes_loaded += ev.bytes as u64,
            TraceOp::Store => self.bytes_stored += ev.bytes as u64,
        }
    }

    fn barrier(&mut self, _group: u32, _items: u32) {
        self.barriers += 1;
    }

    fn workitem_done(&mut self, _group: u32, _local: u32, instructions: u64) {
        self.instructions += instructions;
    }
}

/// Buffers all events in memory (tests and small traces only).
#[derive(Default)]
pub struct VecSink {
    /// All access events, in emission order.
    pub events: Vec<AccessEvent>,
    /// `(group, items)` of each barrier rendezvous.
    pub barriers: Vec<(u32, u32)>,
}

impl TraceSink for VecSink {
    fn access(&mut self, ev: &AccessEvent) {
        self.events.push(*ev);
    }

    fn barrier(&mut self, group: u32, items: u32) {
        self.barriers.push((group, items));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(space: AddressSpace, op: TraceOp, bytes: u32) -> AccessEvent {
        AccessEvent {
            op,
            space,
            addr: 0,
            bytes,
            group: 0,
            local: 0,
            pc: 0,
        }
    }

    #[test]
    fn counting_sink_tallies() {
        let mut s = CountingSink::default();
        s.access(&ev(AddressSpace::Global, TraceOp::Load, 4));
        s.access(&ev(AddressSpace::Global, TraceOp::Store, 4));
        s.access(&ev(AddressSpace::Local, TraceOp::Load, 16));
        s.barrier(0, 64);
        s.workitem_done(0, 0, 100);
        assert_eq!(s.global_loads, 1);
        assert_eq!(s.global_stores, 1);
        assert_eq!(s.local_loads, 1);
        assert_eq!(s.barriers, 1);
        assert_eq!(s.instructions, 100);
        assert_eq!(s.bytes_loaded, 20);
        assert_eq!(s.bytes_stored, 4);
    }

    #[test]
    fn vec_sink_records_order() {
        let mut s = VecSink::default();
        s.access(&ev(AddressSpace::Global, TraceOp::Load, 4));
        s.access(&ev(AddressSpace::Local, TraceOp::Store, 8));
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.events[0].op, TraceOp::Load);
        assert_eq!(s.events[1].bytes, 8);
    }
}
