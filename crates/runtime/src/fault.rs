//! Deterministic fault injection for the launch and tuning pipeline
//! (compiled only with the `fault-injection` cargo feature).
//!
//! A [`FaultPlan`] names a *target* (which kernels), a *site* (where inside
//! a launch) and a *kind* (what goes wrong). Tests [`inject`] a plan, run
//! the scenario, and drop the returned [`FaultGuard`]; the engine consults
//! the active plan once per launch and at cheap, well-defined points, so
//! every recovery path — panic isolation, the tuner's differential-output
//! guard, the measurement watchdog and the retry loop — is deterministically
//! exercisable without special test-only builds of the interpreter core.
//!
//! Without the feature the hooks compile away entirely; with the feature
//! but no plan installed, the overhead is one `RwLock` read per launch.
//!
//! ```
//! use grover_runtime::fault::{self, FaultKind, FaultPlan, FaultSite, FaultTarget};
//!
//! let _guard = fault::inject(FaultPlan {
//!     target: FaultTarget::kernel("my_kernel"),
//!     site: FaultSite::Group(2),
//!     kind: FaultKind::Panic,
//!     max_fires: 1,
//! });
//! // ... launches of `my_kernel` panic at work-group 2, exactly once ...
//! ```

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::Duration;

use grover_ir::Function;

use crate::ExecError;

/// Which kernels a [`FaultPlan`] applies to. All set conditions must match.
#[derive(Clone, Debug, Default)]
pub struct FaultTarget {
    /// Match kernels with this exact name (`None` = any name).
    pub kernel: Option<String>,
    /// Match on local-memory usage: `Some(true)` hits only kernels with no
    /// `__local` buffers (the Grover-transformed side of a tuner race),
    /// `Some(false)` only kernels that still stage through local memory.
    pub local_mem_free: Option<bool>,
}

impl FaultTarget {
    /// Every kernel.
    pub fn any() -> FaultTarget {
        FaultTarget::default()
    }

    /// Kernels named `name`, either version.
    pub fn kernel(name: &str) -> FaultTarget {
        FaultTarget {
            kernel: Some(name.to_string()),
            local_mem_free: None,
        }
    }

    /// The Grover-transformed (local-memory-free) version of `name`.
    pub fn transformed(name: &str) -> FaultTarget {
        FaultTarget {
            kernel: Some(name.to_string()),
            local_mem_free: Some(true),
        }
    }

    /// The original (local-memory-using) version of `name`.
    pub fn original(name: &str) -> FaultTarget {
        FaultTarget {
            kernel: Some(name.to_string()),
            local_mem_free: Some(false),
        }
    }

    fn matches(&self, f: &Function) -> bool {
        if let Some(k) = &self.kernel {
            if *k != f.name {
                return false;
            }
        }
        if let Some(free) = self.local_mem_free {
            if (f.local_mem_bytes() == 0) != free {
                return false;
            }
        }
        true
    }
}

/// Where inside a launch the fault triggers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// At launch entry, before any work-group runs (the panic propagates
    /// out of `enqueue` itself — this is how a tuner race *thread* is
    /// killed, as opposed to a launch *worker*).
    LaunchStart,
    /// At the start of the work-group with this linear id. For
    /// [`FaultKind::CorruptStores`] the effect covers every group with an
    /// id `>=` this one.
    Group(u32),
    /// After one engine worker has executed this many IR instructions
    /// (launch-deterministic under the serial schedule; per-worker under
    /// the parallel one).
    Instruction(u64),
}

/// What happens when the fault triggers.
#[derive(Clone, Debug)]
pub enum FaultKind {
    /// Panic — exercises panic isolation.
    Panic,
    /// Fail with this [`ExecError`].
    Error(ExecError),
    /// Sleep this long — exercises the wall-clock watchdog.
    Sleep(Duration),
    /// Perturb every global store from the trigger point on (floats are
    /// offset by 1.0, integers XOR-ed with 1) — exercises the tuner's
    /// differential-output guard. Ignores `max_fires`.
    CorruptStores,
    /// Offset the element index of every *global* load by this many
    /// elements from the trigger point on ([`FaultSite::LaunchStart`] =
    /// the whole launch, [`FaultSite::Group`] = every group with an id
    /// `>=` the site's), falling back to the original address at buffer
    /// edges. A deterministic stand-in for an index-arithmetic bug in a
    /// transformed kernel — exercises differential-output oracles such as
    /// the fuzzer's. Ignores `max_fires`.
    OffsetGlobalLoads(i64),
}

/// A deterministic fault to inject into matching launches.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Which kernels to hit.
    pub target: FaultTarget,
    /// Where inside the launch.
    pub site: FaultSite,
    /// What goes wrong.
    pub kind: FaultKind,
    /// Fire at most this many times across launches (`0` = unlimited) —
    /// lets tests model transient failures that a retry survives.
    pub max_fires: u32,
}

/// An installed plan plus its fire counter.
#[derive(Debug)]
pub(crate) struct Installed {
    plan: FaultPlan,
    fires: AtomicU32,
}

impl Installed {
    /// Consume one fire; `false` once `max_fires` is exhausted.
    fn arm(&self) -> bool {
        if self.plan.max_fires == 0 {
            return true;
        }
        self.fires.fetch_add(1, Ordering::Relaxed) < self.plan.max_fires
    }

    fn fire(&self, where_: &str) -> Result<(), ExecError> {
        if !self.arm() {
            return Ok(());
        }
        match &self.plan.kind {
            FaultKind::Panic => panic!("fault-injection: injected panic at {where_}"),
            FaultKind::Error(e) => Err(e.clone()),
            FaultKind::Sleep(d) => {
                std::thread::sleep(*d);
                Ok(())
            }
            // Corruption/offsetting is handled by the memory-access paths,
            // not the trigger.
            FaultKind::CorruptStores | FaultKind::OffsetGlobalLoads(_) => Ok(()),
        }
    }
}

/// Only one plan may be active at a time; `inject` holds this lock for the
/// guard's lifetime so concurrent tests serialise instead of clobbering
/// each other's plans.
static INJECT_LOCK: Mutex<()> = Mutex::new(());
static ACTIVE: RwLock<Option<Arc<Installed>>> = RwLock::new(None);

/// Keeps a [`FaultPlan`] active; dropping it uninstalls the plan.
pub struct FaultGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        *ACTIVE.write().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

/// Install `plan` for the lifetime of the returned guard. Blocks while
/// another guard is alive.
pub fn inject(plan: FaultPlan) -> FaultGuard {
    // A previous holder may have panicked (that is the point of this
    // module); the data behind the lock is just a token, so poisoning
    // carries no meaning here.
    let lock = INJECT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    *ACTIVE.write().unwrap_or_else(|e| e.into_inner()) = Some(Arc::new(Installed {
        plan,
        fires: AtomicU32::new(0),
    }));
    FaultGuard { _lock: lock }
}

/// The active plan, if it targets `kernel`. Resolved once per launch.
pub(crate) fn for_kernel(kernel: &Function) -> Option<Arc<Installed>> {
    let active = ACTIVE.read().unwrap_or_else(|e| e.into_inner());
    active
        .as_ref()
        .filter(|i| i.plan.target.matches(kernel))
        .cloned()
}

/// Launch-entry hook. Returns whether stores of the whole launch corrupt.
pub(crate) fn launch_hook(inst: &Installed) -> Result<bool, ExecError> {
    if inst.plan.site != FaultSite::LaunchStart {
        return Ok(false);
    }
    if matches!(inst.plan.kind, FaultKind::CorruptStores) {
        return Ok(true);
    }
    inst.fire("launch start").map(|()| false)
}

/// Group-start hook. Returns whether stores of this group corrupt.
pub(crate) fn group_hook(inst: &Installed, group: u32) -> Result<bool, ExecError> {
    let FaultSite::Group(g) = inst.plan.site else {
        return Ok(false);
    };
    if matches!(inst.plan.kind, FaultKind::CorruptStores) {
        return Ok(group >= g);
    }
    if group != g {
        return Ok(false);
    }
    inst.fire("group start").map(|()| false)
}

/// Element offset applied to this group's global loads, if the active plan
/// injects [`FaultKind::OffsetGlobalLoads`] covering this group.
pub(crate) fn load_offset(inst: &Installed, group: u32) -> Option<i64> {
    let FaultKind::OffsetGlobalLoads(n) = inst.plan.kind else {
        return None;
    };
    match inst.plan.site {
        FaultSite::LaunchStart => Some(n),
        FaultSite::Group(g) if group >= g => Some(n),
        _ => None,
    }
}

/// Instruction countdown for a worker's budget, if the plan has an
/// instruction site.
pub(crate) fn instruction_trigger(inst: &Installed) -> Option<u64> {
    match inst.plan.site {
        // A zero countdown would never fire in the spend loop; fire on the
        // first instruction instead.
        FaultSite::Instruction(n) => Some(n.max(1)),
        _ => None,
    }
}

/// Instruction-site hook, called when a worker's countdown hits zero.
pub(crate) fn instruction_hook(inst: &Installed) -> Result<(), ExecError> {
    inst.fire("instruction site")
}

// ---------------------------------------------------------------------------
// Named I/O fault sites (journal writes, fsync, ...) — used by service-level
// persistence code to prove crash-safety without a real crash.

/// What goes wrong at an I/O fault site.
#[derive(Clone, Debug)]
pub enum IoFaultKind {
    /// The operation fails outright with an `std::io::Error` carrying this
    /// message (a full short-circuit: nothing reaches the file).
    Error(String),
    /// The write persists only this many bytes of the payload before
    /// failing — the torn record a crash mid-`write` leaves behind.
    Torn(usize),
}

/// A deterministic fault to inject into named I/O sites.
///
/// Unlike [`FaultPlan`], which targets kernel launches, an [`IoFaultPlan`]
/// targets persistence operations by site name (e.g. `"journal.append"`,
/// `"journal.fsync"`). The two plan kinds use independent slots, so a test
/// can fail the tuner *and* the journal at once.
#[derive(Clone, Debug)]
pub struct IoFaultPlan {
    /// The site name the consuming code passes to [`io_fault`].
    pub site: String,
    /// What goes wrong.
    pub kind: IoFaultKind,
    /// Fire at most this many times (`0` = unlimited).
    pub max_fires: u32,
}

struct InstalledIo {
    plan: IoFaultPlan,
    fires: AtomicU32,
}

static IO_INJECT_LOCK: Mutex<()> = Mutex::new(());
static IO_ACTIVE: RwLock<Option<Arc<InstalledIo>>> = RwLock::new(None);

/// Keeps an [`IoFaultPlan`] active; dropping it uninstalls the plan.
pub struct IoFaultGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for IoFaultGuard {
    fn drop(&mut self) {
        *IO_ACTIVE.write().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

/// Install `plan` for the lifetime of the returned guard. Blocks while
/// another I/O guard is alive (kernel-launch plans are unaffected).
pub fn inject_io(plan: IoFaultPlan) -> IoFaultGuard {
    let lock = IO_INJECT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    *IO_ACTIVE.write().unwrap_or_else(|e| e.into_inner()) = Some(Arc::new(InstalledIo {
        plan,
        fires: AtomicU32::new(0),
    }));
    IoFaultGuard { _lock: lock }
}

/// Consult the active I/O plan at `site`.
///
/// * `Ok(None)` — no fault: perform the operation normally.
/// * `Ok(Some(n))` — torn write: persist only the first `n` payload bytes,
///   then report failure.
/// * `Err(e)` — short-circuit: fail without touching the file.
pub fn io_fault(site: &str) -> Result<Option<usize>, std::io::Error> {
    let active = IO_ACTIVE.read().unwrap_or_else(|e| e.into_inner());
    let Some(inst) = active.as_ref().filter(|i| i.plan.site == site) else {
        return Ok(None);
    };
    if inst.plan.max_fires != 0 && inst.fires.fetch_add(1, Ordering::Relaxed) >= inst.plan.max_fires
    {
        return Ok(None);
    }
    match &inst.plan.kind {
        IoFaultKind::Error(msg) => Err(std::io::Error::other(format!(
            "fault-injection: {msg} (site {site})"
        ))),
        IoFaultKind::Torn(n) => Ok(Some(*n)),
    }
}
