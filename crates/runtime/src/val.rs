//! Runtime values for the IR interpreter.

use grover_ir::{AddressSpace, Scalar, Type};

/// A pointer value: a buffer plus a byte offset.
///
/// `buf` indexes the host [`crate::Context`]'s buffer table for
/// global/constant pointers, and the kernel's local-buffer table for
/// `__local` pointers.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PtrVal {
    /// Address space the pointer refers to.
    pub space: AddressSpace,
    /// Buffer index (host table for global/constant, kernel table for local).
    pub buf: u32,
    /// Byte offset from the buffer base.
    pub offset: i64,
}

/// An interpreter value. Vectors support up to 4 lanes (enough for the
/// `float4` kernels of the benchmark suite; wider vectors are rejected at
/// kernel launch).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Val {
    /// Boolean.
    Bool(bool),
    /// 32-bit integer.
    I32(i32),
    /// 64-bit integer.
    I64(i64),
    /// 32-bit float.
    F32(f32),
    /// Float vector (`len` lanes, padded storage).
    VF32([f32; 4], u8),
    /// Integer vector.
    VI32([i32; 4], u8),
    /// Boolean vector.
    VBool([bool; 4], u8),
    /// Pointer.
    Ptr(PtrVal),
}

impl Val {
    /// The boolean, if this is one.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Val::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The `i32`, if this is one.
    pub fn as_i32(self) -> Option<i32> {
        match self {
            Val::I32(v) => Some(v),
            _ => None,
        }
    }

    /// The `i64`, if this is one.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Val::I64(v) => Some(v),
            _ => None,
        }
    }

    /// Any integer kind widened to i64.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Val::Bool(b) => Some(b as i64),
            Val::I32(v) => Some(v as i64),
            Val::I64(v) => Some(v),
            _ => None,
        }
    }

    /// The `f32`, if this is one.
    pub fn as_f32(self) -> Option<f32> {
        match self {
            Val::F32(v) => Some(v),
            _ => None,
        }
    }

    /// The pointer, if this is one.
    pub fn as_ptr(self) -> Option<PtrVal> {
        match self {
            Val::Ptr(p) => Some(p),
            _ => None,
        }
    }

    /// The IR type this value inhabits.
    pub fn ty(self) -> Type {
        match self {
            Val::Bool(_) => Type::BOOL,
            Val::I32(_) => Type::I32,
            Val::I64(_) => Type::I64,
            Val::F32(_) => Type::F32,
            Val::VF32(_, n) => Type::Vector(Scalar::F32, n),
            Val::VI32(_, n) => Type::Vector(Scalar::I32, n),
            Val::VBool(_, n) => Type::Vector(Scalar::Bool, n),
            Val::Ptr(p) => Type::ptr_scalar(Scalar::F32, p.space), // element kind erased
        }
    }

    /// Extract lane `i` of a vector (or the scalar itself for lane 0).
    pub fn lane(self, i: usize) -> Option<Val> {
        match self {
            Val::VF32(v, n) if i < n as usize => Some(Val::F32(v[i])),
            Val::VI32(v, n) if i < n as usize => Some(Val::I32(v[i])),
            Val::VBool(v, n) if i < n as usize => Some(Val::Bool(v[i])),
            s if i == 0 => Some(s),
            _ => None,
        }
    }

    /// Replace lane `i` of a vector.
    pub fn with_lane(self, i: usize, v: Val) -> Option<Val> {
        match (self, v) {
            (Val::VF32(mut a, n), Val::F32(x)) if i < n as usize => {
                a[i] = x;
                Some(Val::VF32(a, n))
            }
            (Val::VI32(mut a, n), Val::I32(x)) if i < n as usize => {
                a[i] = x;
                Some(Val::VI32(a, n))
            }
            (Val::VBool(mut a, n), Val::Bool(x)) if i < n as usize => {
                a[i] = x;
                Some(Val::VBool(a, n))
            }
            _ => None,
        }
    }

    /// Number of lanes (1 for scalars).
    pub fn lanes(self) -> u8 {
        match self {
            Val::VF32(_, n) | Val::VI32(_, n) | Val::VBool(_, n) => n,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_accessors() {
        assert_eq!(Val::I32(5).as_i32(), Some(5));
        assert_eq!(Val::I32(5).as_int(), Some(5));
        assert_eq!(Val::Bool(true).as_int(), Some(1));
        assert_eq!(Val::F32(1.5).as_f32(), Some(1.5));
        assert_eq!(Val::F32(1.5).as_i32(), None);
    }

    #[test]
    fn lane_ops() {
        let v = Val::VF32([1.0, 2.0, 3.0, 4.0], 4);
        assert_eq!(v.lane(2), Some(Val::F32(3.0)));
        assert_eq!(v.lane(4), None);
        let v2 = v.with_lane(0, Val::F32(9.0)).unwrap();
        assert_eq!(v2.lane(0), Some(Val::F32(9.0)));
        assert_eq!(v.lanes(), 4);
        assert_eq!(Val::I32(1).lanes(), 1);
        assert_eq!(Val::I32(7).lane(0), Some(Val::I32(7)));
    }

    #[test]
    fn type_mapping() {
        assert_eq!(Val::VF32([0.0; 4], 4).ty(), Type::Vector(Scalar::F32, 4));
        assert_eq!(Val::I64(1).ty(), Type::I64);
    }
}
